"""Serve a provisioned fleet verifier over TCP.

The server side of ``repro.service.net``: provision an
:class:`~repro.service.AuthService`, wrap it in an
:class:`~repro.service.net.AuthServer`, and serve
enroll / authenticate / spot-check / poll / flush to any number of
concurrent :class:`~repro.service.net.AuthClient` connections.  The
verifier never sees device hardware — only codec frames — and the
coalescer batches arrivals from *different sockets* into shared
micro-rounds on the stacked photonic plane.

Run:   python examples/serve_fleet.py [port]
Then:  python examples/client_auth.py <port printed below>

(With no companion client the demo authenticates against itself from
an in-process client task, so it always runs to completion.)
"""

import asyncio
import sys

from repro.service import AuthService, FleetConfig
from repro.service.net import AuthClient, AuthServer, NetConfig

FLEET = 64
SEED = 42
PUF = dict(challenge_bits=64, n_stages=8, response_bits=32)


async def serve(port: int) -> None:
    # One facade, provisioned once; the server is a transport shell
    # around it — the same AuthService could equally be driven
    # in-process (see examples/authentication_fleet.py).
    service = AuthService.provision(FleetConfig(
        n_devices=FLEET, seed=SEED, puf=PUF,
        latency_budget_s=0.005,        # coalescer micro-round budget
    ))
    config = NetConfig(
        host="127.0.0.1", port=port,
        pending_high=256, pending_low=64,   # per-conn read backpressure
        frame_timeout_s=2.0,                # slow-loris eviction
    )
    async with AuthServer(service, config) as server:
        print(f"serving {FLEET} enrolled devices on "
              f"{server.host}:{server.port}")

        # Demo traffic: a handful of in-process clients, each holding a
        # slice of the fleet's device hardware, authenticating in
        # parallel — arrivals from all connections coalesce into shared
        # micro-rounds.
        async def one_client(devices):
            async with AuthClient.connect("127.0.0.1",
                                          server.port) as client:
                tickets = [await client.submit(device)
                           for device in devices]
                await asyncio.gather(*(t.wait(30) for t in tickets))
                return sum(t.accepted for t in tickets)

        slices = [service.device_list[i::4] for i in range(4)]
        accepted = sum(await asyncio.gather(*(one_client(devices)
                                              for devices in slices)))
        print(f"authenticated {accepted}/{FLEET} devices over "
              f"{len(slices)} concurrent connections")
        print(f"micro-rounds: {server.metrics.micro_rounds} "
              f"(size-flushed {server.metrics.flushed_by_size}, "
              f"deadline-flushed {server.metrics.flushed_by_deadline})")
        # Shutdown drains in-flight tickets before closing sockets.


def main() -> None:
    port = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    asyncio.run(serve(port))


if __name__ == "__main__":
    main()
