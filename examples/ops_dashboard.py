"""Streamlit ops dashboard for the repro.obs observability plane.

Two modes, picked from the sidebar:

* **Live tail** — scrape a running ``AuthServer`` (or any replica of a
  ``ReplicaGroup``) through the wire ``metrics`` / ``trace`` admin
  verbs (wire 1.2), and chart the auth counters, failure taxonomy,
  latency histogram, and the recent round spans.  Point it at the demo
  server from ``examples/serve_fleet.py``, or tick "demo fleet" to
  spin up an in-process instrumented server to watch.
* **Replay** — load any committed ``BENCH_*.json`` record and browse
  it as a table (the benchmark lanes all write flat sorted JSON).

Run:   streamlit run examples/ops_dashboard.py

Streamlit is an optional dependency — this module degrades to a clear
message (and still imports cleanly, so the examples lint lane stays
green) when it is not installed.
"""

import asyncio
import json
import pathlib
import sys

try:
    import streamlit as st
except ImportError:          # pragma: no cover - exercised without streamlit
    st = None

REPO = pathlib.Path(__file__).resolve().parent.parent
if str(REPO / "src") not in sys.path:
    sys.path.insert(0, str(REPO / "src"))

from repro.obs import parse_prometheus  # noqa: E402


def scrape_endpoint(host: str, port: int):
    """One-shot wire scrape: (parsed samples, raw text, spans)."""
    from repro.service.net import AuthClient

    async def main():
        async with AuthClient.connect(host, port,
                                      peer="ops-dashboard") as client:
            text = await client.metrics()
            spans = await client.trace()
        return text, spans

    text, spans = asyncio.run(main())
    return parse_prometheus(text), text, spans


def demo_server():
    """An in-process instrumented server the dashboard can watch."""
    from repro.obs import MetricsRegistry, RoundTracer, instrument_server, \
        instrument_service
    from repro.service import AuthService, FleetConfig
    from repro.service.net import AuthServer

    async def main():
        service = AuthService.provision(FleetConfig(
            n_devices=16, seed=7,
            puf=dict(challenge_bits=32, n_stages=4, response_bits=16)))
        registry = MetricsRegistry()
        instrument_service(service, registry,
                           tracer=RoundTracer(capacity=256))
        async with AuthServer(service) as server:
            instrument_server(server, registry)
            from repro.service.net import AuthClient
            async with AuthClient.connect(
                    "127.0.0.1", server.port) as client:
                await client.authenticate_batch(service.device_list)
                text = await client.metrics()
                spans = await client.trace()
        service.close()
        return text, spans

    text, spans = asyncio.run(main())
    return parse_prometheus(text), text, spans


def counter_table(samples):
    """Flatten parsed samples into rows for a dataframe-less table."""
    rows = []
    for (name, labels), value in sorted(samples.items()):
        label_text = ", ".join(f"{k}={v}" for k, v in labels)
        rows.append({"metric": name, "labels": label_text, "value": value})
    return rows


def latency_series(samples, metric="repro_service_round_latency_seconds"):
    """Cumulative bucket counts -> per-bucket counts for a bar chart."""
    buckets = {}
    for (name, labels), value in samples.items():
        if name != f"{metric}_bucket":
            continue
        le = dict(labels).get("le", "+Inf")
        buckets[le] = buckets.get(le, 0.0) + value
    ordered = sorted(
        buckets.items(),
        key=lambda kv: float("inf") if kv[0] == "+Inf" else float(kv[0]))
    series, previous = [], 0.0
    for le, cumulative in ordered:
        series.append({"le": le, "count": cumulative - previous})
        previous = cumulative
    return series


def render_dashboard():
    st.set_page_config(page_title="repro.obs ops dashboard", layout="wide")
    st.title("repro.obs — fleet observability")
    mode = st.sidebar.radio("Mode", ["Live tail", "Replay BENCH_*.json"])

    if mode == "Live tail":
        use_demo = st.sidebar.checkbox("demo fleet (in-process)", True)
        if use_demo:
            samples, text, spans = demo_server()
        else:
            host = st.sidebar.text_input("host", "127.0.0.1")
            port = int(st.sidebar.number_input("port", value=7900))
            try:
                samples, text, spans = scrape_endpoint(host, port)
            except Exception as error:
                st.error(f"scrape failed: {error}")
                return

        accepted = samples.get(
            ("repro_auth_results_total", (("result", "accepted"),)), 0.0)
        finalized = samples.get(("repro_auth_finalized_total", ()), 0.0)
        aborted = samples.get(("repro_auth_aborted_total", ()), 0.0)
        left, middle, right = st.columns(3)
        left.metric("accepted", int(accepted))
        middle.metric("finalized", int(finalized))
        right.metric("aborted", int(aborted))

        failures = {dict(labels)["result"]: value
                    for (name, labels), value in samples.items()
                    if name == "repro_auth_results_total"
                    and dict(labels)["result"] != "accepted"}
        if failures:
            st.subheader("failure taxonomy")
            st.bar_chart(failures)

        latency = latency_series(samples)
        if latency:
            st.subheader("round latency (per-bucket counts)")
            st.bar_chart({row["le"]: row["count"] for row in latency})

        st.subheader("all series")
        st.table(counter_table(samples))

        st.subheader(f"recent round spans ({len(spans)})")
        st.json(spans[-16:])

        with st.expander("raw Prometheus scrape"):
            st.code(text, language="text")
    else:
        records = sorted(REPO.glob("BENCH_*.json"))
        if not records:
            st.warning("no BENCH_*.json records in the repository root")
            return
        choice = st.sidebar.selectbox(
            "record", records, format_func=lambda p: p.name)
        payload = json.loads(choice.read_text())
        st.subheader(choice.name)
        flat = {key: value for key, value in payload.items()
                if not isinstance(value, (dict, list))}
        st.table([{"key": key, "value": value}
                  for key, value in sorted(flat.items())])
        with st.expander("full record"):
            st.json(payload)


def main():
    if st is None:
        print("examples/ops_dashboard.py needs streamlit, which is not "
              "installed in this environment.\n"
              "Install it with `pip install streamlit`, then run:\n"
              "    streamlit run examples/ops_dashboard.py\n\n"
              "The wire scrape itself needs no extra dependencies — "
              "this works anywhere:\n"
              "    client = await AuthClient.connect(host, port)\n"
              "    print(await client.metrics())")
        return 1
    render_dashboard()
    return 0


if st is not None:          # running under `streamlit run`
    render_dashboard()
elif __name__ == "__main__":
    sys.exit(main())
