"""Fault-tolerant fleet campaigns: drops, adversaries, crash recovery.

The rolling-CRP scheme's whole advantage over CRP-database verifiers is
that one shared secret per device survives hostile conditions: lost
confirmations, replayed traffic, tampered devices, fleet churn, and
verifier restarts.  This example provisions the fleet through one declarative
:class:`repro.service.FleetConfig`, then drives a multi-round campaign
through the :class:`repro.fleet.FleetSimulator` — *just another client
of the AuthService facade* — under all of them at once, crashes the
verifier mid-campaign (persisting the registry to an ``.npz`` snapshot
and restoring from it), and shows the invariant that makes the scheme
production-viable: zero desynchronized devices at the end.

Run:  python examples/fleet_lifecycle.py
"""

import json
import os
import tempfile

from repro.fleet import (
    CorruptionAdversary,
    FaultModel,
    ReplayAdversary,
    TamperAdversary,
    photonic_device_factory,
)
from repro.service import AuthService, FleetConfig


def main() -> None:
    fleet_size, rounds = 24, 30
    puf_kwargs = dict(challenge_bits=32, n_stages=6, response_bits=16)

    print(f"fleet of {fleet_size} devices, {rounds}-round hostile campaign\n")

    service = AuthService.provision(FleetConfig(
        n_devices=fleet_size, seed=7, puf=puf_kwargs,
        fault_model=FaultModel(
            request_drop=0.02,       # verifier's nonce lost in transit
            response_drop=0.05,      # device's m||mac lost
            confirmation_drop=0.20,  # verifier's mac' lost (the hard case)
            max_retries=4,
            enroll_prob=0.15,        # new device joins mid-campaign
            revoke_prob=0.05,        # device decommissioned mid-campaign
            min_fleet_size=fleet_size // 2,
        ),
    ))
    simulator = service.simulator(
        adversaries=[
            ReplayAdversary(probability=0.3),
            TamperAdversary(probability=0.05, factor=1.5),
            CorruptionAdversary(probability=0.08),
        ],
        device_factory=photonic_device_factory(seed=7, **puf_kwargs),
    )

    print("=== campaign with mid-run verifier crash + npz restore ===")
    snapshot = os.path.join(tempfile.mkdtemp(prefix="fleet-lifecycle-"),
                            "registry-snapshot")
    stats = simulator.run_campaign(rounds, crash_after_round=rounds // 2,
                                   snapshot_path=snapshot)
    print(f"snapshot archive: {snapshot}.npz "
          f"({os.path.getsize(snapshot + '.npz')} B for "
          f"{len(simulator.registry)} devices)\n")

    print("=== campaign statistics ===")
    print(json.dumps(stats.to_json(), indent=2, sort_keys=True))

    print("\n=== the invariant ===")
    stranded = simulator.desynchronized()
    print(f"desynchronized devices after {stats.rounds} rounds, "
          f"{stats.dropped_confirmations} lost confirmations, "
          f"{stats.adversary_messages} adversarial messages, "
          f"{stats.enrolled} enrollments, {stats.revoked} revocations "
          f"and one verifier restart: {len(stranded)}")
    assert not stranded, stranded
    print("two-phase commit held: every device still shares its rolling "
          "CRP with the registry")


if __name__ == "__main__":
    main()
