"""The device side of a served fleet: enroll and authenticate over TCP.

An :class:`~repro.service.net.AuthClient` session holding real device
hardware — the PUF never crosses the wire; the client measures, masks,
and MACs locally and ships only codec frames.  The session walks the
full device lifecycle against a remote verifier:

1. HELLO/WELCOME version negotiation,
2. wire enrollment of a freshly provisioned device,
3. repeated mutual authentication (the CRP rolls on every success —
   two-phase commit keeps both sides synchronized even over a lossy
   link),
4. revocation, after which the verifier refuses the device.

Run:   python examples/client_auth.py [port]

With a port, dials a server started by ``examples/serve_fleet.py``;
without one, spins up a loopback server so the demo is self-contained.
"""

import asyncio
import contextlib
import sys

from repro.fleet import FleetDevice
from repro.puf import PhotonicStrongPUF
from repro.service import AuthService, FleetConfig
from repro.service.net import AuthClient, AuthServer

PUF = dict(challenge_bits=64, n_stages=8, response_bits=32)
SEED = 7


async def device_session(port: int) -> None:
    # This side owns the hardware: one fresh photonic die, provisioned
    # locally so only its enrollment response ever leaves the device.
    puf = PhotonicStrongPUF(seed=SEED, die_index=987654, **PUF)
    device = FleetDevice("dev-field-unit-0001", puf)
    device.provision(SEED)

    async with AuthClient.connect("127.0.0.1", port) as client:
        major, minor = client.negotiated_version
        print(f"connected to {client.server_peer!r}, "
              f"negotiated wire {major}.{minor}")

        await client.enroll(device)
        print(f"enrolled {device.device_id}")

        for attempt in range(3):
            ticket = await client.authenticate(device, flush=True)
            print(f"auth #{attempt + 1}: "
                  f"{'accepted' if ticket.accepted else ticket.failure} "
                  f"(CRP rolled, both sides)")

        await client.revoke(device.device_id)
        refused = await client.authenticate(device, flush=True)
        print(f"post-revocation auth refused: {refused.failure_kind} "
              f"({refused.failure})")


async def main() -> None:
    if len(sys.argv) > 1:
        await device_session(int(sys.argv[1]))
        return
    # Self-contained: serve a minimal fleet on a loopback socket.
    service = AuthService.provision(FleetConfig(
        n_devices=1, seed=SEED, puf=PUF))
    async with AuthServer(service) as server:
        print(f"(no port given — started a loopback server on "
              f"{server.port})")
        await device_session(server.port)


if __name__ == "__main__":
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(main())
