"""Secure edge inference: the paper's motivating scenario end to end.

An NN owner deploys a proprietary model to an untrusted edge device and
streams confidential inputs to it (Sec. III-C).  The device decrypts
network and data only inside the hardware layer, runs the photonic
accelerator (PCM weights + MZI meshes), and returns sealed outputs.  A
curious "software layer" observer never sees a plaintext byte, and a
tampered ciphertext is rejected.

The model is a tiny classifier trained here (digital ridge classifier)
on a synthetic two-moons-style task, then executed photonically.

Run:  python examples/secure_inference.py
"""

import numpy as np

from repro.accelerator.network import (
    LayerConfig,
    NetworkConfig,
    reference_forward,
)
from repro.protocols.nn_service import (
    KeyVault,
    NetworkOwner,
    SecureAccelerator,
    ServiceError,
)
from repro.system.soc import DeviceSoC, SoCConfig


def make_dataset(n: int, seed: int = 0):
    """Two noisy interleaved arcs, the classic toy classification task."""
    rng = np.random.default_rng(seed)
    angles = rng.uniform(0, np.pi, n)
    labels = rng.integers(0, 2, n)
    x = np.where(labels == 0, np.cos(angles), 1.0 - np.cos(angles))
    y = np.where(labels == 0, np.sin(angles), 0.5 - np.sin(angles))
    features = np.column_stack([x, y]) + rng.normal(0, 0.08, (n, 2))
    return features, labels


def train_classifier(features, labels, hidden=16, seed=1):
    """Random-feature ridge classifier -> a two-layer NetworkConfig."""
    rng = np.random.default_rng(seed)
    w1 = rng.normal(0, 2.0, size=(hidden, 2))
    b1 = rng.normal(0, 1.0, size=hidden)
    hidden_act = np.tanh(features @ w1.T + b1)
    targets = 2.0 * labels - 1.0
    gram = hidden_act.T @ hidden_act + 1e-3 * np.eye(hidden)
    w2 = np.linalg.solve(gram, hidden_act.T @ targets)
    return NetworkConfig(layers=[
        LayerConfig(w1, b1, "tanh"),
        LayerConfig(w2[np.newaxis, :], np.zeros(1), "linear"),
    ])


def main() -> None:
    print("=== training the owner's private model (off-device) ===")
    train_x, train_y = make_dataset(400, seed=0)
    config = train_classifier(train_x, train_y)
    digital_acc = np.mean([
        (reference_forward(config, x)[0] > 0) == bool(y)
        for x, y in zip(*make_dataset(300, seed=1))
    ])
    print(f"digital reference accuracy: {digital_acc:.3f}")

    print("\n=== deploying to the edge device ===")
    soc = DeviceSoC(SoCConfig(seed=77, memory_size=8 * 1024))
    vault = KeyVault(soc, seed=77)
    secure = SecureAccelerator(soc, vault)
    owner = NetworkOwner(vault)
    sealed_network = owner.seal_network(config)
    print(f"network ciphertext: {len(sealed_network)} bytes")
    secure.load_network(sealed_network)
    print(f"programmed onto {secure.accelerator.n_mzis()} MZIs "
          f"with {secure.accelerator.pcm_model.n_levels}-level PCM weights")

    print("\n=== confidential inference stream ===")
    test_x, test_y = make_dataset(200, seed=2)
    correct = 0
    for x, label in zip(test_x, test_y):
        sealed_out = secure.execute_network(owner.seal_input(x))
        prediction = owner.open_output(sealed_out)[0] > 0
        correct += int(prediction == bool(label))
    print(f"photonic accelerator accuracy: {correct / len(test_y):.3f} "
          f"(PCM quantisation + MZI phase error vs digital "
          f"{digital_acc:.3f})")

    print("\n=== adversarial checks ===")
    snoop = secure.software_visible_log
    leaked = any(config.serialize() in blob for blob in snoop)
    print(f"plaintext network visible to software layer: {leaked}")
    tampered = bytearray(owner.seal_input(test_x[0]))
    tampered[-2] ^= 0xFF
    try:
        secure.execute_network(bytes(tampered))
        print("tampered input accepted: True")
    except ServiceError as exc:
        print(f"tampered input accepted: False ({exc})")

    print("\n=== PCM drift after one month in the field ===")
    secure.accelerator.age(3600 * 24 * 30)
    correct_aged = 0
    for x, label in zip(test_x, test_y):
        sealed_out = secure.execute_network(owner.seal_input(x))
        prediction = owner.open_output(sealed_out)[0] > 0
        correct_aged += int(prediction == bool(label))
    print(f"accuracy after drift: {correct_aged / len(test_y):.3f}")


if __name__ == "__main__":
    main()
