"""Fleet-scale authentication: HSC-IoT vs the CRP-database baseline.

The paper's Sec. III-A scalability argument: a classic verifier stores a
large CRP database per device and *consumes* it, while the HSC-IoT
verifier keeps exactly one CRP per device forever.  This example
provisions a small device fleet and compares verifier storage and
lifetime across many authentication rounds, plus the timing/energy cost
of one session on the device.

Run:  python examples/authentication_fleet.py
"""

from repro.protocols.mutual_auth import (
    CRPDatabaseVerifier,
    provision,
    run_session,
)
from repro.system.channel import Channel
from repro.system.soc import DeviceSoC, SoCConfig


def main() -> None:
    fleet_size = 4
    sessions_per_device = 8

    print(f"fleet of {fleet_size} devices, "
          f"{sessions_per_device} authentications each\n")

    print("=== HSC-IoT (paper Sec. III-A): one rolling CRP per device ===")
    hsc_storage = 0
    for device_index in range(fleet_size):
        soc = DeviceSoC(SoCConfig(seed=100 + device_index,
                                  memory_size=8 * 1024))
        device, verifier = provision(soc, seed=100 + device_index)
        channel = Channel(seed=device_index)
        successes = 0
        for __ in range(sessions_per_device):
            successes += int(run_session(device, verifier,
                                         channel=channel).success)
        hsc_storage += verifier.storage_bytes
        print(f"device {device_index}: {successes}/{sessions_per_device} ok, "
              f"verifier stores {verifier.storage_bytes} B, "
              f"channel carried {channel.stats.bytes_carried} B")
    print(f"fleet verifier storage: {hsc_storage} B (constant in sessions)")

    print("\n=== CRP-database baseline (Suh et al. [16]) ===")
    database_storage = 0
    for device_index in range(fleet_size):
        soc = DeviceSoC(SoCConfig(seed=100 + device_index,
                                  memory_size=8 * 1024))
        database = CRPDatabaseVerifier(soc, n_crps=sessions_per_device,
                                       seed=200 + device_index)
        successes = sum(
            int(database.authenticate(soc)) for __ in range(sessions_per_device)
        )
        database_storage += database.storage_bytes
        print(f"device {device_index}: {successes}/{sessions_per_device} ok, "
              f"verifier stores {database.storage_bytes} B, "
              f"{database.remaining} CRPs left (then re-enrollment)")
    print(f"fleet verifier storage: {database_storage} B "
          f"(grows with the session budget)")

    print("\n=== per-session device cost (HSC-IoT) ===")
    soc = DeviceSoC(SoCConfig(seed=300, memory_size=8 * 1024))
    device, verifier = provision(soc, seed=300)
    record = run_session(device, verifier)
    print(f"device busy time: {record.device_time_s * 1e3:.3f} ms")
    energy = soc.power_report()
    for component, joules in sorted(energy.items()):
        print(f"  {component:<12} {joules * 1e3:8.4f} mJ")


if __name__ == "__main__":
    main()
