"""Fleet-scale batch authentication through the AuthService facade.

The paper's Sec. III-A scalability argument, taken to fleet scale: the
HSC-IoT verifier keeps exactly one rolling CRP per device, and
:class:`repro.service.AuthService` serves a whole fleet's mutual-auth
sessions per call — batch rounds, staged micro-rounds through the
request coalescer, spot checks, rate limiting, audit logging, and the
versioned wire codec — with the photonic interrogations routed through
the compiled vectorized engine.  The classic CRP-database baseline
(Suh et al. [16]) is provisioned alongside for the storage comparison.

Run:  python examples/authentication_fleet.py
"""

import time

from repro.photonics.backend import resolve_backend
from repro.photonics.shard import usable_cores
from repro.protocols.mutual_auth import CRPDatabaseVerifier
from repro.service import (
    AuditLogPolicy,
    AuthService,
    EngineConfig,
    FleetConfig,
    RateLimitPolicy,
    decode_message,
    encode_message,
)
from repro.system.soc import DeviceSoC, SoCConfig


def main() -> None:
    fleet_size = 6
    rounds = 8

    print(f"fleet of {fleet_size} devices, {rounds} authentication rounds\n")

    print("=== enrollment (one declarative FleetConfig) ===")
    audit = AuditLogPolicy()
    # The stacked plane's compute backend is one flag: "numba" JIT-compiles
    # the ring-scan/GEMM kernels when the toolchain is installed, and
    # degrades to the bit-identical numpy reference (with a recorded
    # reason) when it is not — response bits never change either way.
    config = FleetConfig(
        n_devices=fleet_size, seed=100, n_spot_crps=64,
        engine=EngineConfig(stacked=True, backend="numba"),
        latency_budget_s=0.002, max_batch=fleet_size,
        puf=dict(challenge_bits=32, n_stages=6, response_bits=16),
    )
    start = time.perf_counter()
    service = AuthService.provision(config, policies=[
        audit, RateLimitPolicy(max_requests=1000, window_s=1.0),
    ])
    elapsed = time.perf_counter() - start
    backend, degraded = resolve_backend(config.engine.backend)
    print(f"compute backend: {backend.name}"
          + (f" (requested {config.engine.backend!r}: {degraded})"
             if degraded else " (JIT kernels live)"))
    print(f"enrolled {fleet_size} devices in {elapsed:.2f} s "
          f"({fleet_size * 64 / elapsed:.0f} CRPs/s harvested, batched)")
    print(f"verifier storage: {service.registry.storage_bytes} B total "
          f"(constant in session count)\n")

    print("=== batch mutual authentication (Fig. 4, whole fleet per call) ===")
    start = time.perf_counter()
    accepted = sum(service.authenticate_batch().n_accepted
                   for _ in range(rounds))
    elapsed = time.perf_counter() - start
    total = fleet_size * rounds
    print(f"{accepted}/{total} sessions ok in {elapsed * 1e3:.0f} ms "
          f"-> {total / elapsed:.0f} auths/s")
    for device in service.device_list[:2]:
        record = service.registry.record(device.device_id)
        print(f"  {device.device_id}: {record.sessions} sessions, "
              f"verifier stores {record.storage_bytes} B")

    print("\n=== spot check (32 batched CRPs per device, one engine pass) ===")
    start = time.perf_counter()
    spot = service.spot_check(k=32)
    elapsed = time.perf_counter() - start
    checks = fleet_size * 32
    print(f"{spot.n_accepted}/{fleet_size} devices accepted, "
          f"max fractional HD {spot.fractional_hd.max():.3f} "
          f"(threshold {spot.threshold})")
    print(f"{checks} CRP verifications in {elapsed * 1e3:.0f} ms "
          f"-> {checks / elapsed:.0f} auths/s")

    print("\n=== sharded plane + staged micro-rounds (submit/poll) ===")
    workers = max(1, min(2, usable_cores()))
    plane = service.device_list[0].plane
    executor = plane.shard(n_workers=workers)
    print(f"plane sharded over {executor.n_workers} worker(s) "
          f"({executor.memory_footprint_bytes() // 1024} KB shared memory, "
          f"pool {'up' if executor.active else 'inline fallback'})")
    start = time.perf_counter()
    tickets = [service.submit(device) for device in service.device_list]
    while service.coalescer.pending_count:    # trickle under the budget
        time.sleep(0.0005)
        service.poll()
    elapsed = time.perf_counter() - start
    settled = sum(1 for ticket in tickets if ticket.accepted)
    print(f"{settled}/{fleet_size} individually-arriving requests settled "
          f"through {service.coalescer.micro_rounds} micro-round(s) in "
          f"{elapsed * 1e3:.1f} ms (sharded rounds, bit-identical to the "
          f"single-process plane)")
    plane.close_executor()

    print("\n=== one round over the versioned wire codec ===")
    nonces, challenge_frames = service.open_round_wire()
    response_frames = []
    for device in service.device_list:
        challenge = decode_message(challenge_frames[device.device_id])
        response_frames.append(device.respond(challenge.nonce))
    report_frame, confirmation_frames = service.verify_round_wire(
        [encode_message(message) for message in response_frames], nonces)
    report = decode_message(report_frame)
    for device in service.device_list:
        confirmation = decode_message(confirmation_frames[device.device_id])
        device.confirm(confirmation.mac, nonces[device.device_id])
        service.verifier.finalize(device.device_id)
    print(f"{report.n_accepted}/{fleet_size} sessions over self-describing "
          f"frames ({len(report_frame)} B report, schema-versioned headers) "
          "— transports plug in without touching protocol code")

    print(f"\naudit trail: {len(audit.events)} events "
          f"(last: {audit.events[-1]['event']!r})")

    print("\n=== CRP-database baseline (Suh et al. [16]) for storage ===")
    soc = DeviceSoC(SoCConfig(seed=100, memory_size=8 * 1024))
    database = CRPDatabaseVerifier(soc, n_crps=rounds, seed=200)
    print(f"one device, {rounds}-session budget: {database.storage_bytes} B "
          f"(grows with the session budget; the registry above does not)")


if __name__ == "__main__":
    main()
