"""Fleet-scale batch authentication on the compiled engine.

The paper's Sec. III-A scalability argument, taken to fleet scale: the
HSC-IoT verifier keeps exactly one rolling CRP per device, and the
:class:`BatchVerifier` serves a whole fleet's mutual-auth sessions per
call, with the photonic interrogations routed through the compiled
vectorized engine.  The classic CRP-database baseline (Suh et al. [16])
is provisioned alongside for the storage comparison.

Run:  python examples/authentication_fleet.py
"""

import time

from repro.fleet import RoundCoalescer, provision_fleet
from repro.photonics.shard import usable_cores
from repro.protocols.mutual_auth import CRPDatabaseVerifier
from repro.system.soc import DeviceSoC, SoCConfig


def main() -> None:
    fleet_size = 6
    rounds = 8

    print(f"fleet of {fleet_size} devices, {rounds} authentication rounds\n")

    print("=== enrollment (rolling CRP + 64-CRP spot pool per device) ===")
    start = time.perf_counter()
    registry, devices, verifier = provision_fleet(
        fleet_size, seed=100, n_spot_crps=64,
        challenge_bits=32, n_stages=6, response_bits=16,
    )
    elapsed = time.perf_counter() - start
    print(f"enrolled {fleet_size} devices in {elapsed:.2f} s "
          f"({fleet_size * 64 / elapsed:.0f} CRPs/s harvested, batched)")
    print(f"verifier storage: {registry.storage_bytes} B total "
          f"(constant in session count)\n")

    print("=== batch mutual authentication (Fig. 4, whole fleet per call) ===")
    start = time.perf_counter()
    accepted = 0
    for _ in range(rounds):
        report = verifier.authenticate_fleet(devices)
        accepted += report.n_accepted
    elapsed = time.perf_counter() - start
    total = fleet_size * rounds
    print(f"{accepted}/{total} sessions ok in {elapsed * 1e3:.0f} ms "
          f"-> {total / elapsed:.0f} auths/s")
    for device in devices[:2]:
        record = registry.record(device.device_id)
        print(f"  {device.device_id}: {record.sessions} sessions, "
              f"verifier stores {record.storage_bytes} B")

    print("\n=== spot check (32 batched CRPs per device, one engine pass) ===")
    start = time.perf_counter()
    spot = verifier.spot_check(devices, k=32)
    elapsed = time.perf_counter() - start
    checks = fleet_size * 32
    print(f"{spot.n_accepted}/{fleet_size} devices accepted, "
          f"max fractional HD {spot.fractional_hd.max():.3f} "
          f"(threshold {spot.threshold})")
    print(f"{checks} CRP verifications in {elapsed * 1e3:.0f} ms "
          f"-> {checks / elapsed:.0f} auths/s")

    print("\n=== sharded plane + request coalescing ===")
    workers = max(1, min(2, usable_cores()))
    plane = devices[0].plane
    executor = plane.shard(n_workers=workers)
    print(f"plane sharded over {executor.n_workers} worker(s) "
          f"({executor.memory_footprint_bytes() // 1024} KB shared memory, "
          f"pool {'up' if executor.active else 'inline fallback'})")
    coalescer = RoundCoalescer(verifier, latency_budget_s=0.002,
                               max_batch=fleet_size)
    start = time.perf_counter()
    tickets = [coalescer.submit(device) for device in devices]
    while coalescer.pending_count:          # trickle under the budget
        time.sleep(0.0005)
        coalescer.poll()
    elapsed = time.perf_counter() - start
    settled = sum(1 for ticket in tickets if ticket.accepted)
    print(f"{settled}/{fleet_size} individually-arriving requests settled "
          f"through {coalescer.micro_rounds} micro-round(s) in "
          f"{elapsed * 1e3:.1f} ms (sharded rounds, bit-identical to the "
          f"single-process plane)")
    plane.close_executor()

    print("\n=== CRP-database baseline (Suh et al. [16]) for storage ===")
    soc = DeviceSoC(SoCConfig(seed=100, memory_size=8 * 1024))
    database = CRPDatabaseVerifier(soc, n_crps=rounds, seed=200)
    print(f"one device, {rounds}-session budget: {database.storage_bytes} B "
          f"(grows with the session budget; the registry above does not)")


if __name__ == "__main__":
    main()
