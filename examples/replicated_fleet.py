"""A replicated verifier plane surviving a scripted primary crash.

The deployment shape of ``repro.service.ha``: three :class:`AuthServer`
replicas over shared registry state, each fronted by a stable
:class:`ChaosTransport` proxy endpoint (a stand-in for a load-balancer
address) injecting seeded drop/delay/duplicate faults, with
:class:`HAAuthClient` failing the fleet over between them.

The script: one authentication round against the healthy group, a kill
of the live primary, a round that rides the promotion, a restore of the
dead replica as a standby, and a calm reconciliation round — after
which the audit must be exact: no device desynchronized from the
registry, no nonce ever issued twice across replica incarnations.

Run:   python examples/replicated_fleet.py

The full acceptance campaign (64 devices, mid-round kills, bit-exact
equality against a fault-free single server) is
``benchmarks/test_ha_chaos.py``.
"""

import asyncio

from repro.service import FleetConfig, HAConfig, RetryPolicy
from repro.service.ha import HAAuthClient, ReplicaGroup
from repro.service.net import LegChaos, NetConfig

FLEET = 16
SEED = 42
# Small PUF + zero noise: the demo is about the service plane, and a
# deterministic CRP chain keeps every run's audit exact.
PUF = dict(challenge_bits=32, n_stages=4, response_bits=16, noise_mw=0.0)
CHAOS = LegChaos(drop=0.02, delay=0.05, duplicate=0.02)


async def one_round(group: ReplicaGroup, label: str) -> None:
    # Each device is an independent network client; all submit
    # concurrently so the primary coalesces them into micro-rounds.
    async def authenticate(position, device):
        policy = RetryPolicy.network(max_retries=12, seed=position)
        async with HAAuthClient(group.endpoints, retry_policy=policy,
                                verb_timeout_s=2.0) as client:
            ticket = await client.authenticate(device)
            return ticket.accepted, client.failovers

    results = await asyncio.gather(
        *(authenticate(position, device)
          for position, device in enumerate(group.devices)))
    accepted = sum(ok for ok, _ in results)
    failovers = sum(f for _, f in results)
    print(f"{label}: {accepted}/{FLEET} accepted "
          f"(primary replica {group.primary}, {failovers} failovers)")


async def demo() -> None:
    group = await ReplicaGroup.provision(
        FleetConfig(n_devices=FLEET, seed=SEED, puf=PUF,
                    latency_budget_s=0.01,
                    ha=HAConfig(n_replicas=3, lease_timeout_s=0.4,
                                heartbeat_interval_s=0.05)),
        net_config=NetConfig(response_timeout_s=1.0,
                             latency_budget_s=0.01),
        uplink=CHAOS, downlink=CHAOS, chaos_seed=7)
    try:
        await one_round(group, "round 1 (healthy group)")

        # Crash the primary abruptly: no drain, sockets severed.  The
        # steward notices the heartbeat silence when the lease runs
        # out and promotes the lowest-index live standby.
        victim = group.primary
        await group.kill_replica(victim)
        promoted = await group.wait_for_primary()
        print(f"killed replica {victim}; replica {promoted} promoted")

        await one_round(group, "round 2 (after failover)")

        # The dead replica rejoins as a standby on a fresh nonce
        # epoch — nothing it issued before the crash can ever repeat.
        await group.restore_replica(victim)
        print(f"replica {victim} restored as standby")

        # One fault-free round lets any ambiguous commit settle via
        # the shared commit log, so the audit below is exact.
        group.calm()
        await one_round(group, "round 3 (reconcile, chaos off)")

        drifted = group.desynchronized()
        nonces = group.assert_nonces_unique()
        assert drifted == [], f"desynchronized devices: {drifted}"
        print(f"audit: 0 desyncs, {nonces} nonces issued, all unique")
        print(f"lifecycle events: "
              f"{[event['event'] for event in group.events]}")
    finally:
        await group.aclose()


def main() -> None:
    asyncio.run(demo())


if __name__ == "__main__":
    main()
