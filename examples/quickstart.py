"""Quickstart: provision a device and run the full security stack once.

Walks the NEUROPULS flow of Fig. 1 end to end:

1. build an edge-device SoC (photonic weak + strong PUF, SRAM PUF,
   firmware memory, neuromorphic accelerator);
2. derive the hardware master key from the weak PUF (fuzzy extraction);
3. mutually authenticate the device against a verifier (Fig. 4);
4. attest the device's firmware (Sec. III-B);
5. run an encrypted NN inference (Table I);
6. authenticate a small fleet in one batched call (compiled engine).

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import (
    AuthService,
    DeviceSoC,
    FleetConfig,
    SoCConfig,
    provision,
    run_session,
)
from repro.accelerator.network import LayerConfig, NetworkConfig
from repro.protocols import (
    AttestationDevice,
    AttestationVerifier,
    KeyVault,
    NetworkOwner,
    SecureAccelerator,
)


def main() -> None:
    print("=== 1. Device bring-up ===")
    soc = DeviceSoC(SoCConfig(seed=2024, memory_size=16 * 1024))
    print(f"strong PUF: {soc.strong_puf.challenge_bits}-bit challenges, "
          f"{soc.strong_puf.response_bits}-bit responses, "
          f"{soc.strong_puf.throughput_bits_per_s() / 1e9:.0f} Gb/s")
    print(f"weak PUF:   {soc.weak_puf.n_addresses} addressable ring-pair bits")

    print("\n=== 2. Hardware key derivation (weak PUF -> fuzzy extractor) ===")
    vault = KeyVault(soc, seed=2024)
    print(f"helper data: {vault.helper.offset.size} public bits")
    print(f"key reproduced from a fresh noisy measurement: "
          f"{vault.rederive_key(measurement=3)}")

    print("\n=== 3. Mutual authentication (Fig. 4) ===")
    device, verifier = provision(soc, seed=2024)
    for index in range(3):
        record = run_session(device, verifier)
        print(f"session {index}: success={record.success}, "
              f"device->verifier {record.bytes_device_to_verifier} B, "
              f"verifier storage {verifier.storage_bytes} B")

    print("\n=== 4. Software attestation (Sec. III-B) ===")
    att_verifier = AttestationVerifier(
        soc.memory.image(), soc.strong_puf,
        chunk_size=soc.memory.chunk_size, soc_model=soc,
    )
    request = att_verifier.new_request(timestamp=1_000)
    report = AttestationDevice(soc).attest(request)
    verdict = att_verifier.verify(request, report)
    print(f"honest device accepted: {verdict.accepted} "
          f"(walk over {report.n_chunks} chunks in "
          f"{report.elapsed_s * 1e3:.2f} ms, "
          f"budget {verdict.expected_time_s * 1.1 * 1e3:.2f} ms)")

    print("\n=== 5. Encrypted NN inference (Table I) ===")
    rng = np.random.default_rng(7)
    network = NetworkConfig(layers=[
        LayerConfig(rng.normal(size=(8, 4)), rng.normal(size=8), "relu"),
        LayerConfig(rng.normal(size=(3, 8)), rng.normal(size=3), "linear"),
    ])
    secure = SecureAccelerator(soc, vault)
    owner = NetworkOwner(vault)
    secure.load_network(owner.seal_network(network))
    sealed_output = secure.execute_network(
        owner.seal_input(np.array([0.5, -0.2, 0.8, 0.1]))
    )
    output = owner.open_output(sealed_output)
    print(f"load_network(ciphered_network)           -> programmed "
          f"({secure.accelerator.n_mzis()} MZIs)")
    print(f"execute_network(ciphered_input)          -> ciphered_output "
          f"({len(sealed_output)} B)")
    print(f"owner-side decrypted result              -> {np.round(output, 4)}")

    print("\n=== 6. Fleet-scale batch authentication (AuthService) ===")
    service = AuthService.provision(FleetConfig(
        n_devices=4, seed=2024,
        puf=dict(challenge_bits=32, n_stages=6, response_bits=16),
    ))
    start = time.perf_counter()
    rounds = 3
    accepted = sum(
        service.authenticate_batch().n_accepted for _ in range(rounds)
    )
    elapsed = time.perf_counter() - start
    total = len(service) * rounds
    print(f"{accepted}/{total} fleet sessions ok "
          f"-> {total / elapsed:.0f} auths/s")
    print("\nquickstart complete.")


if __name__ == "__main__":
    main()
