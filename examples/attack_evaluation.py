"""Red-team exercise: every attack from Sec. IV against the full stack.

1. ML modeling attacks on arbiter vs XOR-arbiter vs photonic strong PUF
   (with and without challenge encryption [30]);
2. power side-channel correlation, electronic vs photonic;
3. remanence decay against the SRAM PUF vs the photonic response;
4. protocol attacks: replay, tampering, impersonation,
   desynchronisation, attestation evasions.

Run:  python examples/attack_evaluation.py
"""

import numpy as np

from repro.attacks.modeling import (
    LogisticRegressionAttack,
    attack_curve,
    raw_features,
)
from repro.attacks.protocol_attacks import (
    desynchronization_attack,
    impersonation_attack,
    naive_infection_attack,
    relocation_attack,
    replay_attack,
    tamper_attack,
)
from repro.attacks.remanence import (
    photonic_remanence_attempt,
    sram_remanence_sweep,
)
from repro.attacks.side_channel import compare_technologies
from repro.protocols.attestation import AttestationVerifier
from repro.protocols.mutual_auth import provision
from repro.puf import (
    ArbiterPUF,
    ChallengeEncryptedPUF,
    PhotonicStrongPUF,
    SRAMPUF,
    XORArbiterPUF,
)
from repro.puf.arbiter import parity_features
from repro.system.soc import DeviceSoC, SoCConfig


def modeling_attacks() -> None:
    print("=== machine-learning modeling attacks (2000 training CRPs) ===")
    targets = [
        ("arbiter (64 stages)", ArbiterPUF(64, seed=1),
         parity_features),
        ("4-XOR arbiter", XORArbiterPUF(64, k=4, seed=2), parity_features),
        ("photonic strong", PhotonicStrongPUF(64, response_bits=8, seed=3),
         raw_features),
    ]
    photonic = targets[-1][1]
    targets.append((
        "photonic + challenge encryption [30]",
        ChallengeEncryptedPUF(photonic, key=b"weak-puf-derived-key"),
        raw_features,
    ))
    from repro.attacks.modeling import collect_crps

    for name, puf, features in targets:
        point = attack_curve(
            puf, lambda f=features: LogisticRegressionAttack(f),
            [2000], n_test=400,
        )[0]
        # A biased response bit lets a constant guess score above 0.5;
        # report that baseline so "learning" is judged against it.
        __, labels = collect_crps(puf, 400, seed=123)
        baseline = max(labels.mean(), 1 - labels.mean())
        print(f"{name:<40} LR accuracy = {point.accuracy:.3f} "
              f"(constant-guess baseline {baseline:.3f})")


def side_channels() -> None:
    print("\n=== power side channel (400 traces) ===")
    responses = np.random.default_rng(0).integers(0, 2, (400, 32),
                                                  dtype=np.uint8)
    for report in compare_technologies(responses):
        print(f"{report.technology:<12} CPA correlation = "
              f"{report.correlation:.3f}, HW recovery = "
              f"{report.hw_recovery_accuracy:.3f} "
              f"(chance {report.chance_level:.3f})")


def remanence() -> None:
    print("\n=== remanence decay ===")
    sram = SRAMPUF(n_cells=2048, seed=5)
    secret = np.random.default_rng(1).integers(0, 2, 2048, dtype=np.uint8)
    for point in sram_remanence_sweep(sram, secret, [0.01, 0.1, 1.0, 10.0]):
        print(f"SRAM, off {point.off_time_s:6.2f} s: secret recovery = "
              f"{point.secret_recovery:.3f}")
    photonic = PhotonicStrongPUF(32, response_bits=8, seed=6)
    challenge = np.random.default_rng(2).integers(0, 2, 32, dtype=np.uint8)
    for delay in (0.0, 1e-9, 1e-7, 1e-6):
        accuracy = photonic_remanence_attempt(photonic, challenge, delay)
        print(f"photonic, delay {delay:8.1e} s: bit recovery = {accuracy:.3f} "
              f"(response lifetime {photonic.response_lifetime_s():.2e} s)")


def protocol_attacks() -> None:
    print("\n=== protocol attacks ===")
    soc = DeviceSoC(SoCConfig(seed=61, memory_size=8 * 1024))
    device, verifier = provision(soc, seed=61)
    outcomes = [
        replay_attack(device, verifier),
        tamper_attack(device, verifier),
        impersonation_attack(verifier, soc.strong_puf.challenge_bits),
        desynchronization_attack(device, verifier),
    ]
    att_soc = DeviceSoC(SoCConfig(seed=62, memory_size=8 * 1024))
    att_verifier = AttestationVerifier(
        att_soc.memory.image(), att_soc.strong_puf,
        chunk_size=att_soc.memory.chunk_size, soc_model=att_soc,
    )
    outcomes.append(relocation_attack(att_soc, att_verifier))
    outcomes.append(naive_infection_attack(att_soc, att_verifier))
    for outcome in outcomes:
        verdict = "SUCCEEDED (!)" if outcome.succeeded else "defeated"
        print(f"{outcome.name:<20} {verdict:<14} {outcome.detail}")


def main() -> None:
    modeling_attacks()
    side_channels()
    remanence()
    protocol_attacks()


if __name__ == "__main__":
    main()
