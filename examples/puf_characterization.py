"""PUF population study: the statistics behind the paper's Sec. II claims.

Fabricates a population of photonic weak PUF dies, measures each one
repeatedly across temperatures, and reports the standard quality metrics
(uniformity, uniqueness, reliability, bit-aliasing entropy) plus the
NIST-style statistical battery — the study behind the "fractional Hamming
distance close to 50 % intra and inter-device and good score for various
NIST tests" claim [12].

Run:  python examples/puf_characterization.py
"""

import numpy as np

from repro.metrics import (
    pass_fraction,
    quality_report,
    run_suite,
)
from repro.puf import PUFEnvironment
from repro.puf.photonic_weak import photonic_weak_family


def main() -> None:
    n_devices = 12
    n_measurements = 5
    family = photonic_weak_family(
        n_devices, seed=99, n_rings=64, n_wavelengths=4
    )

    print(f"population: {n_devices} photonic weak PUF dies, "
          f"{family.device(0).n_addresses} bits each\n")

    references = []
    repeated = []
    for device in family.devices():
        measurements = [device.read_all(measurement=m)
                        for m in range(n_measurements)]
        references.append(measurements[0])
        repeated.append(np.vstack(measurements))

    report = quality_report(np.vstack(references), repeated)
    print("metric                          measured   ideal")
    for name, value, ideal in report.as_rows():
        print(f"{name:<30} {value:8.4f}   {ideal}")

    print("\nintra-HD distribution:",
          f"mean={np.mean(report.intra_distances):.4f}",
          f"max={np.max(report.intra_distances):.4f}")
    print("inter-HD distribution:",
          f"mean={np.mean(report.inter_distances):.4f}",
          f"min={np.min(report.inter_distances):.4f}",
          f"max={np.max(report.inter_distances):.4f}")

    print("\n=== temperature sensitivity (thermal tracking active) ===")
    device = family.device(0)
    reference = device.read_all(measurement=0)
    for temperature in (0.0, 25.0, 45.0, 65.0):
        env = PUFEnvironment(temperature_c=temperature)
        errors = np.mean([
            np.mean(device.read_all(env, measurement=m) != reference)
            for m in range(1, 4)
        ])
        print(f"T = {temperature:5.1f} C   intra-HD = {errors:.4f}")

    print("\n=== NIST-style battery over the concatenated fingerprints ===")
    stream = np.concatenate(references)
    results = run_suite(stream)
    for result in results:
        flag = "PASS" if result.passed else "FAIL"
        print(f"{result.name:<22} p = {result.p_value:.4f}   {flag}")
    print(f"\npass fraction: {pass_fraction(results):.2f} "
          f"({len(stream)} bits tested)")


if __name__ == "__main__":
    main()
