"""Out-of-core fleets: a large registry on the sharded storage backend.

The verifier-side cost of the rolling-CRP scheme is one record per
device — but at fleet scale even "one record" (a rolling response, a
spot-check CRP pool, a firmware reference) outgrows RAM.  This example
provisions a fleet through ``registry_backend="sharded"``: records
live in an append-only shard directory and page in on demand through
an LRU-bounded resident set, so the registry the process *holds* stays
a few hundred records no matter how many devices are *enrolled*.  It
then authenticates the fleet, takes an incremental pointer snapshot
(O(dirty) flush — the bulk never leaves the shard directory), and
flattens the same fleet into the portable monolithic archive that
migrates it between backends.

Run:  python examples/large_fleet.py
"""

import os
import tempfile

from repro.service import AuthService, FleetConfig


def main() -> None:
    fleet_size = 1000
    root = tempfile.mkdtemp(prefix="large-fleet-")

    print(f"provisioning {fleet_size} devices out-of-core\n")
    service = AuthService.provision(FleetConfig(
        n_devices=fleet_size, seed=11,
        puf=dict(challenge_bits=32, n_stages=4, response_bits=16),
        n_spot_crps=8,
        registry_backend="sharded",                  # default: "memory"
        storage_root=os.path.join(root, "shards"),
        resident_records=128,                        # in-RAM record budget
    ))
    backend = service.registry.backend

    print("=== where the fleet lives ===")
    print(f"verifier storage on disk : "
          f"{service.registry.storage_bytes / 1e6:.1f} MB "
          f"under {backend.root}")
    print(f"records resident in RAM  : {backend.resident_count} "
          f"(cap {backend.resident_records})")

    print("\n=== one authentication round, paging records in on demand ===")
    report = service.authenticate_batch(service.device_list)
    accepted = report.n_accepted
    print(f"accepted {accepted}/{fleet_size}")
    print(f"page faults / evictions  : {backend.stats['faults']} / "
          f"{backend.stats['evictions']}")
    assert accepted == fleet_size

    print("\n=== incremental snapshot: a pointer, not a copy ===")
    archive = service.save(os.path.join(root, "checkpoint"))
    print(f"snapshot archive         : {os.path.getsize(archive)} B "
          f"for {len(service)} devices (generation "
          f"{backend.generation} — the bulk stays in the shards)")

    print("\n=== migration: the portable monolithic archive ===")
    full = service.registry.save(os.path.join(root, "portable"), full=True)
    print(f"full archive             : {os.path.getsize(full) / 1e6:.1f} MB "
          f"(loads into any backend via FleetRegistry.load)")

    service.close()


if __name__ == "__main__":
    main()
