"""Population-level PUF quality metrics.

The standard PUF evaluation vocabulary (paper Secs. II and V):

* **reliability** — 1 minus the mean intra-device fractional Hamming
  distance between repeated measurements (ideal: 1.0);
* **uniqueness** — mean inter-device fractional Hamming distance over all
  device pairs (ideal: 0.5);
* **uniformity** — fraction of ones in a response (ideal: 0.5);
* **bit-aliasing** — per-bit-position bias across devices; expressed as
  Shannon entropy per bit, values near 1 mean no aliasing (ideal: 1.0,
  exactly the y-axis of the paper's Fig. 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.utils.bits import fractional_hamming_distance


def _as_matrix(rows: Sequence[Sequence[int]]) -> np.ndarray:
    matrix = np.vstack([np.asarray(r, dtype=np.uint8) for r in rows])
    if matrix.ndim != 2 or matrix.shape[1] == 0:
        raise ValueError("expected a non-empty (devices x bits) matrix")
    return matrix


def intra_device_distances(measurements: Sequence[Sequence[int]]) -> List[float]:
    """Fractional HD of every repeated measurement against the first."""
    matrix = _as_matrix(measurements)
    if matrix.shape[0] < 2:
        raise ValueError("need at least two measurements")
    reference = matrix[0]
    return [fractional_hamming_distance(reference, row) for row in matrix[1:]]


def inter_device_distances(responses: Sequence[Sequence[int]]) -> List[float]:
    """Fractional HD of every unordered device pair."""
    matrix = _as_matrix(responses)
    n = matrix.shape[0]
    if n < 2:
        raise ValueError("need at least two devices")
    return [
        fractional_hamming_distance(matrix[i], matrix[j])
        for i in range(n)
        for j in range(i + 1, n)
    ]


def reliability(measurements: Sequence[Sequence[int]]) -> float:
    """1 - mean intra-device fractional HD (ideal 1.0)."""
    return 1.0 - float(np.mean(intra_device_distances(measurements)))


def uniqueness(responses: Sequence[Sequence[int]]) -> float:
    """Mean inter-device fractional HD (ideal 0.5)."""
    return float(np.mean(inter_device_distances(responses)))


def uniformity(response: Sequence[int]) -> float:
    """Fraction of ones in one response (ideal 0.5)."""
    arr = np.asarray(response, dtype=np.uint8)
    if arr.size == 0:
        raise ValueError("empty response")
    return float(arr.mean())


def bit_aliasing(responses: Sequence[Sequence[int]]) -> np.ndarray:
    """Per-bit-position probability of 1 across devices (ideal 0.5 each)."""
    matrix = _as_matrix(responses)
    if matrix.shape[0] < 2:
        raise ValueError("need at least two devices")
    return matrix.mean(axis=0)


def binary_entropy(p: np.ndarray) -> np.ndarray:
    """Shannon entropy h(p) in bits, elementwise, h(0) = h(1) = 0."""
    p = np.asarray(p, dtype=np.float64)
    if np.any((p < 0) | (p > 1)):
        raise ValueError("probabilities must lie in [0, 1]")
    out = np.zeros_like(p)
    mask = (p > 0) & (p < 1)
    pm = p[mask]
    out[mask] = -pm * np.log2(pm) - (1 - pm) * np.log2(1 - pm)
    return out


def bit_aliasing_entropy(responses: Sequence[Sequence[int]]) -> np.ndarray:
    """Per-bit Shannon entropy across devices — the Fig. 3 y-axis.

    1.0 means the bit is unbiased across the population (no aliasing);
    0.0 means every device agrees on the bit (fully aliased).
    """
    return binary_entropy(bit_aliasing(responses))


@dataclass(frozen=True)
class PUFQualityReport:
    """Summary statistics of a PUF population study."""

    n_devices: int
    n_bits: int
    uniformity_mean: float
    uniqueness_mean: float
    reliability_mean: float
    aliasing_entropy_mean: float
    intra_distances: tuple
    inter_distances: tuple

    def as_rows(self) -> List[tuple]:
        """(metric, value, ideal) rows for report printing."""
        return [
            ("uniformity", self.uniformity_mean, 0.5),
            ("uniqueness (inter-HD)", self.uniqueness_mean, 0.5),
            ("reliability (1 - intra-HD)", self.reliability_mean, 1.0),
            ("bit-aliasing entropy", self.aliasing_entropy_mean, 1.0),
        ]


def quality_report(
    reference_responses: Sequence[Sequence[int]],
    repeated_measurements: Sequence[Sequence[Sequence[int]]],
) -> PUFQualityReport:
    """Full population study.

    Parameters
    ----------
    reference_responses:
        One response per device (same challenge set).
    repeated_measurements:
        Per device, a list of repeated measurements (first entry is the
        reference).
    """
    matrix = _as_matrix(reference_responses)
    reliabilities = [reliability(m) for m in repeated_measurements]
    return PUFQualityReport(
        n_devices=matrix.shape[0],
        n_bits=matrix.shape[1],
        uniformity_mean=float(np.mean([uniformity(r) for r in matrix])),
        uniqueness_mean=uniqueness(matrix),
        reliability_mean=float(np.mean(reliabilities)),
        aliasing_entropy_mean=float(np.mean(bit_aliasing_entropy(matrix))),
        intra_distances=tuple(
            d for m in repeated_measurements for d in intra_device_distances(m)
        ),
        inter_distances=tuple(inter_device_distances(matrix)),
    )
