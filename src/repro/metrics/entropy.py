"""Entropy estimators for PUF response bitstreams.

Complements the population metrics of :mod:`repro.metrics.hamming` with
sequence-level estimators: Shannon/min-entropy of the bit distribution,
Markov min-entropy (captures inter-bit correlation), and autocorrelation.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np


def shannon_entropy_bits(bits: Sequence[int]) -> float:
    """Shannon entropy of the empirical bit distribution (bits/bit)."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size == 0:
        raise ValueError("empty bit sequence")
    p = float(arr.mean())
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1 - p) * math.log2(1 - p)


def min_entropy_bits(bits: Sequence[int]) -> float:
    """Min-entropy of the empirical bit distribution: -log2(max(p, 1-p))."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size == 0:
        raise ValueError("empty bit sequence")
    p = float(arr.mean())
    return -math.log2(max(p, 1.0 - p))


def markov_min_entropy(bits: Sequence[int]) -> float:
    """First-order Markov min-entropy per bit (NIST SP 800-90B style).

    Estimates transition probabilities P(b_{i+1} | b_i) and returns the
    per-step min-entropy of the most likely path, which penalises
    correlated sequences that look balanced marginally.
    """
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size < 2:
        raise ValueError("need at least two bits")
    # Laplace-smoothed transition counts.
    counts = np.ones((2, 2), dtype=np.float64)
    np.add.at(counts, (arr[:-1], arr[1:]), 1.0)
    transitions = counts / counts.sum(axis=1, keepdims=True)
    p0 = float(np.mean(arr == 0))
    p_init = max(p0, 1.0 - p0)
    # Most likely sequence probability over n steps ~ p_init * p_max^(n-1);
    # per-bit min-entropy is the asymptotic rate.
    p_max = float(transitions.max())
    return -math.log2(p_max)


def autocorrelation(bits: Sequence[int], max_lag: int = 16) -> np.ndarray:
    """Normalised autocorrelation of the +-1 mapped sequence at lags 1..max_lag."""
    arr = np.asarray(bits, dtype=np.float64) * 2.0 - 1.0
    if arr.size <= max_lag:
        raise ValueError("sequence shorter than max_lag")
    arr = arr - arr.mean()
    denominator = float(np.dot(arr, arr))
    if denominator == 0.0:
        return np.zeros(max_lag)
    return np.array([
        float(np.dot(arr[:-lag], arr[lag:])) / denominator
        for lag in range(1, max_lag + 1)
    ])


def collision_entropy_bits(bits: Sequence[int]) -> float:
    """Renyi collision entropy (order 2) of the bit distribution."""
    arr = np.asarray(bits, dtype=np.uint8)
    if arr.size == 0:
        raise ValueError("empty bit sequence")
    p = float(arr.mean())
    return -math.log2(p * p + (1 - p) * (1 - p))
