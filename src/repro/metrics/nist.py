"""NIST SP 800-22-style statistical tests for PUF-derived bitstreams.

The paper cites "good score for various NIST tests" for the microring PUF
[12]; this module implements the eight classic tests that apply to the
modest stream lengths a PUF study produces (no 10^6-bit requirements):
frequency (monobit), block frequency, runs, longest run of ones, DFT
spectral, serial, approximate entropy, and cumulative sums.

Each test returns a :class:`TestResult` with the test statistic, p-value,
and a pass flag at the conventional alpha = 0.01.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np
from scipy.special import erfc, gammaincc
from scipy.stats import norm

ALPHA = 0.01


@dataclass(frozen=True)
class TestResult:
    """Outcome of one statistical test."""

    name: str
    statistic: float
    p_value: float
    passed: bool

    @staticmethod
    def from_p(name: str, statistic: float, p_value: float) -> "TestResult":
        p_value = float(min(max(p_value, 0.0), 1.0))
        return TestResult(name, float(statistic), p_value, p_value >= ALPHA)


def _bits(bits: Sequence[int], minimum: int) -> np.ndarray:
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size < minimum:
        raise ValueError(f"test requires at least {minimum} bits, got {arr.size}")
    if arr.size and arr.max(initial=0) > 1:
        raise ValueError("input must be a 0/1 sequence")
    return arr


def monobit_test(bits: Sequence[int]) -> TestResult:
    """Frequency (monobit) test."""
    arr = _bits(bits, 32)
    s = abs(int(2 * arr.sum()) - arr.size) / math.sqrt(arr.size)
    return TestResult.from_p("monobit", s, erfc(s / math.sqrt(2.0)))


def block_frequency_test(bits: Sequence[int], block_size: int = 16) -> TestResult:
    """Frequency within a block."""
    arr = _bits(bits, 2 * block_size)
    n_blocks = arr.size // block_size
    blocks = arr[: n_blocks * block_size].reshape(n_blocks, block_size)
    proportions = blocks.mean(axis=1)
    chi2 = 4.0 * block_size * float(np.sum((proportions - 0.5) ** 2))
    return TestResult.from_p(
        "block_frequency", chi2, gammaincc(n_blocks / 2.0, chi2 / 2.0)
    )


def runs_test(bits: Sequence[int]) -> TestResult:
    """Runs test (number of uninterrupted runs of identical bits)."""
    arr = _bits(bits, 32)
    pi = float(arr.mean())
    if abs(pi - 0.5) >= 2.0 / math.sqrt(arr.size):
        # Prerequisite monobit failure: the runs p-value is defined as 0.
        return TestResult.from_p("runs", float("nan"), 0.0)
    v_obs = 1 + int(np.count_nonzero(arr[1:] != arr[:-1]))
    num = abs(v_obs - 2.0 * arr.size * pi * (1 - pi))
    den = 2.0 * math.sqrt(2.0 * arr.size) * pi * (1 - pi)
    return TestResult.from_p("runs", v_obs, erfc(num / den))


_LONGEST_RUN_TABLE = {
    # block_size M: (categories upper bounds, probabilities)
    8: ((1, 2, 3), (0.2148, 0.3672, 0.2305, 0.1875)),
    128: ((4, 5, 6, 7, 8), (0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124)),
}


def _longest_runs(blocks: np.ndarray) -> np.ndarray:
    """Per-row longest run of ones of a ``(n_blocks, M)`` 0/1 matrix.

    Runs entirely on numpy cumulative ops: a cumulative sum that resets
    at every zero gives each position's current run length, and the row
    maximum is the longest run — integer-exact, no per-bit Python loop.
    """
    cumulative = np.cumsum(blocks, axis=1)
    # At each zero, remember the cumulative count so far; the running
    # maximum of those anchors is what the cumsum restarts from.
    anchors = np.maximum.accumulate(
        np.where(blocks == 0, cumulative, 0), axis=1
    )
    return (cumulative - anchors).max(axis=1)


def longest_run_test(bits: Sequence[int]) -> TestResult:
    """Longest run of ones within fixed-size blocks."""
    arr = _bits(bits, 128)
    block_size = 8 if arr.size < 6272 else 128
    bounds, probabilities = _LONGEST_RUN_TABLE[block_size]
    n_blocks = arr.size // block_size
    blocks = arr[: n_blocks * block_size].reshape(n_blocks, block_size)
    longest = _longest_runs(blocks)
    # Category of each block: index of the first bound >= longest run,
    # overflowing into the top category — identical to the scalar scan.
    categories = np.searchsorted(np.asarray(bounds), longest, side="left")
    counts = np.bincount(categories, minlength=len(probabilities)).astype(float)
    expected = n_blocks * np.asarray(probabilities)
    chi2 = float(np.sum((counts - expected) ** 2 / expected))
    dof = len(probabilities) - 1
    return TestResult.from_p("longest_run", chi2, gammaincc(dof / 2.0, chi2 / 2.0))


def dft_test(bits: Sequence[int]) -> TestResult:
    """Discrete Fourier transform (spectral) test."""
    arr = _bits(bits, 64).astype(np.float64) * 2.0 - 1.0
    n = arr.size
    magnitudes = np.abs(np.fft.fft(arr))[: n // 2]
    threshold = math.sqrt(math.log(1.0 / 0.05) * n)
    n0 = 0.95 * n / 2.0
    n1 = float(np.count_nonzero(magnitudes < threshold))
    d = (n1 - n0) / math.sqrt(n * 0.95 * 0.05 / 4.0)
    return TestResult.from_p("dft", d, erfc(abs(d) / math.sqrt(2.0)))


def _psi_squared(arr: np.ndarray, m: int) -> float:
    """Psi-squared statistic over overlapping m-bit patterns (with wrap)."""
    if m == 0:
        return 0.0
    n = arr.size
    extended = np.concatenate([arr, arr[: m - 1]]) if m > 1 else arr
    # Encode each overlapping m-window as an integer.
    codes = np.zeros(n, dtype=np.int64)
    for offset in range(m):
        codes = (codes << 1) | extended[offset:offset + n]
    counts = np.bincount(codes, minlength=1 << m)
    return float((1 << m) / n * np.sum(counts.astype(np.float64) ** 2) - n)


def serial_test(bits: Sequence[int], m: int = 3) -> TestResult:
    """Serial test: uniformity of overlapping m-bit patterns."""
    if m < 2:
        raise ValueError("serial test requires m >= 2")
    arr = _bits(bits, 1 << (m + 2))
    psi_m = _psi_squared(arr, m)
    psi_m1 = _psi_squared(arr, m - 1)
    psi_m2 = _psi_squared(arr, m - 2)
    delta1 = psi_m - psi_m1
    delta2 = psi_m - 2.0 * psi_m1 + psi_m2
    p1 = gammaincc(1 << (m - 2), delta1 / 2.0)
    p2 = gammaincc(1 << (m - 3), delta2 / 2.0) if m >= 3 else p1
    return TestResult.from_p("serial", delta1, min(p1, p2))


def approximate_entropy_test(bits: Sequence[int], m: int = 2) -> TestResult:
    """Approximate entropy test: regularity of m vs m+1 patterns."""
    arr = _bits(bits, 1 << (m + 3))
    n = arr.size

    def phi(block: int) -> float:
        if block == 0:
            return 0.0
        extended = np.concatenate([arr, arr[: block - 1]]) if block > 1 else arr
        codes = np.zeros(n, dtype=np.int64)
        for offset in range(block):
            codes = (codes << 1) | extended[offset:offset + n]
        counts = np.bincount(codes, minlength=1 << block).astype(np.float64)
        proportions = counts[counts > 0] / n
        return float(np.sum(proportions * np.log(proportions)))

    ap_en = phi(m) - phi(m + 1)
    chi2 = 2.0 * n * (math.log(2.0) - ap_en)
    return TestResult.from_p(
        "approximate_entropy", chi2, gammaincc(1 << (m - 1), chi2 / 2.0)
    )


def cumulative_sums_test(bits: Sequence[int], forward: bool = True) -> TestResult:
    """Cumulative sums (cusum) test."""
    arr = _bits(bits, 64).astype(np.float64) * 2.0 - 1.0
    if not forward:
        arr = arr[::-1]
    n = arr.size
    z = float(np.max(np.abs(np.cumsum(arr))))
    if z == 0.0:
        return TestResult.from_p("cumulative_sums", 0.0, 0.0)
    sqrt_n = math.sqrt(n)
    total = 1.0
    for k in range(int((-n / z + 1) // 4), int((n / z - 1) // 4) + 1):
        total -= (norm.cdf((4 * k + 1) * z / sqrt_n)
                  - norm.cdf((4 * k - 1) * z / sqrt_n))
    for k in range(int((-n / z - 3) // 4), int((n / z - 1) // 4) + 1):
        total += (norm.cdf((4 * k + 3) * z / sqrt_n)
                  - norm.cdf((4 * k + 1) * z / sqrt_n))
    return TestResult.from_p("cumulative_sums", z, total)


_SUITE: Dict[str, Callable[[Sequence[int]], TestResult]] = {
    "monobit": monobit_test,
    "block_frequency": block_frequency_test,
    "runs": runs_test,
    "longest_run": longest_run_test,
    "dft": dft_test,
    "serial": serial_test,
    "approximate_entropy": approximate_entropy_test,
    "cumulative_sums": cumulative_sums_test,
}


def run_suite(bits: Sequence[int]) -> List[TestResult]:
    """Run every applicable test on a bitstream."""
    results = []
    for name, test in _SUITE.items():
        try:
            results.append(test(bits))
        except ValueError:
            # Stream too short for this test: skip rather than fail.
            continue
    return results


def pass_fraction(results: Sequence[TestResult]) -> float:
    """Fraction of executed tests that passed."""
    if not results:
        raise ValueError("no test results")
    return sum(1 for r in results if r.passed) / len(results)
