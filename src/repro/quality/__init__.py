"""Response-quality improvement: threshold filtering, compensation, masking."""

from repro.quality.compensation import (
    DarkBitMask,
    MajorityVoteReader,
    TemperatureController,
    TemperatureSensor,
)
from repro.quality.filtering import (
    FilterSweepRow,
    ThresholdFilter,
    aliasing_reliability_sweep,
    collect_population_data,
    recommend_band,
)

__all__ = [
    "DarkBitMask",
    "MajorityVoteReader",
    "TemperatureController",
    "TemperatureSensor",
    "FilterSweepRow",
    "ThresholdFilter",
    "aliasing_reliability_sweep",
    "collect_population_data",
    "recommend_band",
]
