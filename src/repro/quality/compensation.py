"""Reliability-improvement techniques beyond threshold filtering.

Paper Sec. II-B lists, besides the margin filter: a photonic temperature
sensor whose reading conditions the response evaluation, hardware
temperature control, and (implicitly, via the ECC block of Fig. 1)
redundancy.  This module provides the device-side building blocks:

* :class:`TemperatureSensor` — noisy on-die thermometer;
* :class:`TemperatureController` — closed-loop setpoint regulation that
  shrinks the ambient excursion seen by the PUF;
* :class:`MajorityVoteReader` — repeated-measurement majority voting;
* :class:`DarkBitMask` — enrollment-time masking of unstable bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.puf.base import NOMINAL_ENV, PUFEnvironment, WeakPUF
from repro.utils.bits import BitArray, majority_vote
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class TemperatureSensor:
    """On-die thermometer with Gaussian measurement error."""

    sigma_k: float = 0.25
    seed: int = 0

    def read(self, env: PUFEnvironment, measurement: int = 0) -> float:
        """Measured temperature in Celsius."""
        rng = derive_rng(self.seed, "tsensor", measurement)
        return env.temperature_c + float(rng.normal(0.0, self.sigma_k))


@dataclass(frozen=True)
class TemperatureController:
    """Closed-loop thermal regulation toward a setpoint.

    ``rejection`` is the fraction of the ambient excursion removed
    (0 = free-running, 1 = ideal); ``max_delta_k`` bounds the actuation
    range, beyond which the residual grows again.
    """

    setpoint_c: float = 25.0
    rejection: float = 0.95
    max_delta_k: float = 40.0

    def regulate(self, env: PUFEnvironment) -> PUFEnvironment:
        """Environment actually seen by the stabilised die."""
        excursion = env.temperature_c - self.setpoint_c
        bounded = float(np.clip(excursion, -self.max_delta_k, self.max_delta_k))
        residual = bounded * (1.0 - self.rejection) + (excursion - bounded)
        return env.with_temperature(self.setpoint_c + residual)


class MajorityVoteReader:
    """Read a weak PUF several times and keep the bitwise majority."""

    def __init__(self, puf: WeakPUF, n_votes: int = 5):
        if n_votes < 1 or n_votes % 2 == 0:
            raise ValueError("n_votes must be odd and positive")
        self.puf = puf
        self.n_votes = n_votes

    def read(
        self,
        env: PUFEnvironment = NOMINAL_ENV,
        base_measurement: Optional[int] = None,
    ) -> BitArray:
        """Majority-voted fingerprint."""
        if base_measurement is None:
            base_measurement = self.puf._measurement_counter
            self.puf._measurement_counter += self.n_votes
        samples = [
            self.puf.read_all(env, measurement=base_measurement + i)
            for i in range(self.n_votes)
        ]
        return majority_vote(samples)


class DarkBitMask:
    """Enrollment-time unstable-bit masking.

    During enrollment the device is read ``n_measurements`` times; bits
    that are not perfectly stable are marked *dark* and excluded from all
    later reads.  This is the classic complement to ECC: it removes the
    worst bits so a lighter code suffices.
    """

    def __init__(self, mask: np.ndarray, reference: BitArray):
        self.mask = np.asarray(mask, dtype=bool)
        self.reference = np.asarray(reference, dtype=np.uint8)
        if self.mask.shape != self.reference.shape:
            raise ValueError("mask and reference must have the same shape")

    @classmethod
    def enroll(
        cls,
        puf: WeakPUF,
        n_measurements: int = 9,
        env: PUFEnvironment = NOMINAL_ENV,
        max_instability: float = 0.0,
    ) -> "DarkBitMask":
        """Measure the device repeatedly and mask unstable bits.

        ``max_instability`` is the tolerated flip fraction per bit
        (0.0 = keep only perfectly stable bits).
        """
        if n_measurements < 2:
            raise ValueError("enrollment needs at least two measurements")
        samples = np.vstack([
            puf.read_all(env, measurement=m) for m in range(n_measurements)
        ])
        reference = majority_vote(samples)
        instability = (samples != reference).mean(axis=0)
        mask = instability <= max_instability
        return cls(mask, reference)

    @property
    def n_stable(self) -> int:
        return int(self.mask.sum())

    def apply(self, bits: Sequence[int]) -> BitArray:
        """Keep only the stable positions of a full-length read."""
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.shape != self.mask.shape:
            raise ValueError("bit vector length does not match the mask")
        return arr[self.mask]

    def stable_reference(self) -> BitArray:
        """The enrollment-time values of the stable bits."""
        return self.reference[self.mask]
