"""Threshold-based CRP filtering: the Vinagrero et al. algorithm [13].

Paper Sec. II-B and Fig. 3: the analog margin behind each response bit
(RO counter difference, or photocurrent amplitude for the photonic PUF)
trades off three quantities as a selection threshold moves away from the
decision boundary:

* margins close to the boundary carry maximum entropy (the random process
  component dominates) but are **unreliable** — noise flips them;
* margins far from the boundary are **reliable** but increasingly
  **aliased** — extreme values are dominated by the systematic layout
  component, which is identical on every die;
* the usable CRP count shrinks as the selection band narrows.

:func:`aliasing_reliability_sweep` regenerates the Fig. 3 curves;
:class:`ThresholdFilter` is the enrollment-time selection rule (a band
``low <= |margin| <= high``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.metrics.hamming import binary_entropy
from repro.puf.base import NOMINAL_ENV, AnalogMarginPUF, PUFEnvironment, PUFFamily


@dataclass(frozen=True)
class ThresholdFilter:
    """Band-pass selection on the absolute analog margin."""

    low: float
    high: float = math.inf

    def __post_init__(self) -> None:
        if self.low < 0:
            raise ValueError("low threshold must be non-negative")
        if self.high <= self.low:
            raise ValueError("high threshold must exceed low threshold")

    def select(self, margins: np.ndarray) -> np.ndarray:
        """Boolean mask of margins inside the band."""
        magnitude = np.abs(np.asarray(margins, dtype=np.float64))
        return (magnitude >= self.low) & (magnitude <= self.high)


@dataclass(frozen=True)
class FilterSweepRow:
    """One threshold point of the Fig. 3 sweep."""

    threshold: float
    aliasing_entropy: float
    reliability: float
    surviving_fraction: float


def collect_population_data(
    family: PUFFamily,
    n_measurements: int = 5,
    env: PUFEnvironment = NOMINAL_ENV,
) -> tuple:
    """Gather (margins, repeated bits) for a family of margin PUFs.

    Returns
    -------
    margins:
        (n_devices, n_addresses) enrollment-time analog margins.
    bits:
        (n_devices, n_measurements, n_addresses) repeated response bits.
    """
    margin_rows: List[np.ndarray] = []
    bit_blocks: List[np.ndarray] = []
    for device in family.devices():
        if not isinstance(device, AnalogMarginPUF):
            raise TypeError("threshold filtering requires AnalogMarginPUF devices")
        if hasattr(device, "all_margins"):
            margins = device.all_margins(env, measurement=0)
        else:
            margins = np.array([
                device.margin(device.address_challenge(a), env, measurement=0)
                for a in range(device.n_addresses)
            ])
        margin_rows.append(margins)
        measurements = []
        for m in range(n_measurements):
            if hasattr(device, "all_margins"):
                measurements.append(
                    (device.all_margins(env, measurement=m) > 0).astype(np.uint8)
                )
            else:
                measurements.append(device.read_all(env, measurement=m))
        bit_blocks.append(np.vstack(measurements))
    return np.vstack(margin_rows), np.stack(bit_blocks)


def aliasing_reliability_sweep(
    margins: np.ndarray,
    bits: np.ndarray,
    thresholds: Sequence[float],
    high: float = math.inf,
) -> List[FilterSweepRow]:
    """Regenerate the Fig. 3 curves from population data.

    For each low threshold: select the (device, address) cells whose
    enrollment margin magnitude is in ``[threshold, high]``, then report

    * mean bit-aliasing Shannon entropy across devices (per address,
      weighted by how many devices selected it),
    * mean reliability of the selected cells over the repeated
      measurements,
    * the surviving fraction of CRPs.
    """
    margins = np.asarray(margins, dtype=np.float64)
    bits = np.asarray(bits, dtype=np.uint8)
    n_devices, n_measurements, n_addresses = bits.shape
    if margins.shape != (n_devices, n_addresses):
        raise ValueError("margins and bits shapes disagree")
    reference = bits[:, 0, :]
    flip_rate = (bits != reference[:, np.newaxis, :]).mean(axis=1)
    rows = []
    for threshold in thresholds:
        mask = ThresholdFilter(float(threshold), high).select(margins)
        surviving = float(mask.mean())
        if mask.sum() == 0:
            rows.append(FilterSweepRow(float(threshold), float("nan"),
                                       float("nan"), 0.0))
            continue
        rel = 1.0 - float(flip_rate[mask].mean())
        # Aliasing entropy per address over the devices that kept it.
        entropies = []
        weights = []
        for address in range(n_addresses):
            selected = mask[:, address]
            count = int(selected.sum())
            if count < 2:
                continue
            p_one = float(reference[selected, address].mean())
            entropies.append(float(binary_entropy(np.array([p_one]))[0]))
            weights.append(count)
        entropy = (float(np.average(entropies, weights=weights))
                   if entropies else float("nan"))
        rows.append(FilterSweepRow(float(threshold), entropy, rel, surviving))
    return rows


def recommend_band(
    rows: Sequence[FilterSweepRow],
    min_entropy: float = 0.8,
    min_reliability: float = 0.99,
) -> Optional[tuple]:
    """The shaded Fig. 3 region: thresholds meeting both quality floors.

    Returns (low, high) threshold bounds of the acceptable band, or
    ``None`` when no threshold satisfies both constraints.
    """
    acceptable = [
        row.threshold
        for row in rows
        if not math.isnan(row.aliasing_entropy)
        and row.aliasing_entropy >= min_entropy
        and row.reliability >= min_reliability
    ]
    if not acceptable:
        return None
    return (min(acceptable), max(acceptable))
