"""Fleet-scale batch authentication on top of the compiled engine.

:class:`BatchVerifier` serves many HSC-IoT-style (paper Fig. 4) mutual
authentications per call:

* :meth:`authenticate_fleet` runs one full rolling-CRP session for every
  device in one call — per-device message framing, MACs, integrity
  evidence (H XOR CC) and anti-replay checks mirror
  :mod:`repro.protocols.mutual_auth` (the field encoding/checking helpers
  are shared), including its two-phase commit: the registry rolls a
  device's CRP only after that device accepted the confirmation.  The
  response unmasking and CRP rollover run as vectorized operations over
  the stacked ``(fleet, response_bits)`` matrices;
* :meth:`spot_check` re-measures ``k`` enrollment CRPs per device in a
  single ``evaluate_batch`` call (the compiled engine's batch path) and
  accepts within a fractional-Hamming-distance threshold, vectorized over
  the whole fleet.

Device-side counterpart is :class:`FleetDevice`; :func:`provision_fleet`
builds a whole enrolled fleet from one photonic die family.
"""

from __future__ import annotations

import hashlib
import time
import warnings
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.crypto.mac import mac as compute_mac
from repro.crypto.mac import verify_mac, verify_mac_batch
from repro.fleet.registry import FleetRegistry
from repro.fleet.rounds import respond_round, respond_round_staged
from repro.protocols.mutual_auth import (
    AuthenticationFailure,
    FailureKind,
    _pad_bits,
    check_clock_count,
    confirmation_mac_batch,
    derive_challenge,
    derive_challenge_batch,
    mask_integrity,
    pad_bits_batch,
    unmask_clock_count,
)
from repro.utils.bits import bits_from_bytes, xor_bits
from repro.utils.rng import derive_bytes, derive_rng
from repro.utils.serialization import (
    decode_fields,
    encode_fields,
    from_hex,
    to_hex,
)


DEFAULT_CLOCK_COUNT = 100_000


def provisioning_challenge(seed: int, device_id: str,
                           n_bits: int) -> np.ndarray:
    """The manufacturing-time challenge of one device's enrollment CRP."""
    rng = derive_rng(seed, "fleet-provision", device_id)
    return rng.integers(0, 2, n_bits, dtype=np.uint8)


class FleetDevice:
    """Device side of the fleet protocol: a strong PUF plus rolling state.

    A device may additionally be *attached* to a fleet-stacked execution
    plane (:meth:`attach_plane`): its PUF then answers round measurements
    as one row of the plane's single tensor pass (see
    :func:`respond_fleet`) instead of a batch-1 interrogation of its own.
    The plane is runtime wiring, not durable state — a device restored
    from a snapshot responds per-device until re-attached.
    """

    def __init__(self, device_id: str, puf, initial_response=None,
                 firmware_hash: Optional[bytes] = None,
                 clock_count: int = DEFAULT_CLOCK_COUNT):
        self.device_id = device_id
        self.puf = puf
        self.firmware_hash = firmware_hash or hashlib.sha256(
            b"fleet-firmware:" + device_id.encode()
        ).digest()
        # Reference cycle count of the integrity-measurement routine; a
        # tampered device runs it slower (Fig. 4's CC evidence).
        self.clock_count = clock_count
        self.current_response = (
            None if initial_response is None
            else np.asarray(initial_response, dtype=np.uint8)
        )
        self._session = 0
        self._pending = None
        self.plane = None
        self.plane_row: Optional[int] = None

    def attach_plane(self, plane, row: int) -> None:
        """Wire this device into a stacked execution plane at ``row``."""
        if plane.pufs[row] is not self.puf:
            raise ValueError(
                f"plane row {row} does not hold device {self.device_id!r}'s PUF"
            )
        self.plane = plane
        self.plane_row = int(row)

    def detach_plane(self) -> None:
        """Drop the stacked-plane wiring (device falls back to batch-1)."""
        self.plane = None
        self.plane_row = None

    def provision(self, seed: int = 0) -> np.ndarray:
        """Measure the manufacturing-time response (enrollment secret)."""
        challenge = provisioning_challenge(seed, self.device_id,
                                           self.puf.challenge_bits)
        self.current_response = np.asarray(
            self.puf.evaluate(challenge), dtype=np.uint8
        )
        return self.current_response

    def derive_next_challenge(self) -> np.ndarray:
        """c_{i+1} = RNG(r_i) for this device's rolling state."""
        if self.current_response is None:
            raise AuthenticationFailure(
                f"device {self.device_id!r} is not provisioned",
                FailureKind.NOT_PROVISIONED,
            )
        return derive_challenge(self.current_response,
                                self.puf.challenge_bits)

    def assemble_response(self, challenge: np.ndarray,
                          new_response: np.ndarray, nonce: bytes,
                          tamper_factor: float = 1.0) -> "AuthResponse":
        """Frame + MAC one turn from an already-measured fresh response."""
        new_response = np.asarray(new_response, dtype=np.uint8)
        masked = xor_bits(self.current_response, new_response)
        integrity = mask_integrity(self.firmware_hash,
                                   int(self.clock_count * tamper_factor))
        body = encode_fields([
            self._session.to_bytes(4, "big"),
            _pad_bits(masked),
            integrity,
            nonce,
        ])
        tag = compute_mac(body, _pad_bits(self.current_response))
        self._pending = (challenge, new_response)
        return AuthResponse(self.device_id, body, tag)

    def respond(self, nonce: bytes, tamper_factor: float = 1.0) -> "AuthResponse":
        """One Fig. 4 device turn: fresh CRP measurement, masked + MAC'd.

        ``tamper_factor`` scales the measured clock count, modelling the
        slowdown a compromised integrity routine exhibits.
        """
        challenge = self.derive_next_challenge()
        new_response = np.asarray(self.puf.evaluate(challenge), dtype=np.uint8)
        return self.assemble_response(challenge, new_response, nonce,
                                      tamper_factor)

    def confirm(self, confirmation: bytes, nonce: bytes) -> None:
        """Check the verifier's mac' and roll the CRP forward."""
        if self._pending is None:
            raise AuthenticationFailure("no session in progress",
                                        FailureKind.NO_SESSION)
        challenge, new_response = self._pending
        expected = encode_fields([_pad_bits(challenge), nonce])
        if not verify_mac(expected, _pad_bits(new_response), confirmation):
            raise AuthenticationFailure("verifier confirmation rejected",
                                        FailureKind.BAD_CONFIRMATION)
        self.current_response = new_response
        self._pending = None
        self._session += 1

    def spot_responses(self, challenges: np.ndarray,
                       measurement: Optional[int] = None) -> np.ndarray:
        """Re-measure a block of challenges in one batched engine pass."""
        return np.asarray(
            self.puf.evaluate_batch(challenges, measurement=measurement),
            dtype=np.uint8,
        )

    def to_state(self) -> dict:
        """Durable device state (the PUF itself is hardware, not state).

        The in-flight ``_pending`` measurement is deliberately transient:
        a device that reboots mid-session simply retries, which the
        two-phase commit makes safe.
        """
        return {
            "device_id": self.device_id,
            "firmware_hash": to_hex(self.firmware_hash),
            "clock_count": int(self.clock_count),
            "session": int(self._session),
            "current_response": (
                None if self.current_response is None
                else to_hex(_pad_bits(self.current_response))
            ),
            "response_bits": (
                None if self.current_response is None
                else int(self.current_response.size)
            ),
        }

    @classmethod
    def from_state(cls, state: dict, puf) -> "FleetDevice":
        """Rebuild a device around its physical PUF from saved state."""
        response = None
        if state["current_response"] is not None:
            bits = bits_from_bytes(from_hex(state["current_response"]))
            response = bits[: state["response_bits"]]
        device = cls(
            state["device_id"], puf,
            initial_response=response,
            firmware_hash=from_hex(state["firmware_hash"]),
            clock_count=int(state["clock_count"]),
        )
        device._session = int(state["session"])
        return device


@dataclass(frozen=True)
class AuthResponse:
    """The ``m || mac`` message of one device's session turn."""

    device_id: str
    body: bytes
    tag: bytes


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated and will be removed two minor releases "
        f"after 0.3.0; use {new} instead (see the README migration table)",
        DeprecationWarning, stacklevel=3,
    )


def respond_fleet_staged(
    devices: Sequence[FleetDevice],
    nonces: Dict[str, bytes],
    tamper_factors: Optional[Dict[str, float]] = None,
) -> Iterator[Tuple[List[int], List[AuthResponse]]]:
    """Deprecated shim over :func:`repro.fleet.rounds.respond_round_staged`.

    The round mechanism lives in :mod:`repro.fleet.rounds`; the
    supported public entry point is
    :meth:`repro.service.AuthService.authenticate_batch`.
    """
    _deprecated("respond_fleet_staged",
                "repro.fleet.rounds.respond_round_staged")
    return respond_round_staged(devices, nonces, tamper_factors)


def respond_fleet(
    devices: Sequence[FleetDevice],
    nonces: Dict[str, bytes],
    tamper_factors: Optional[Dict[str, float]] = None,
) -> List[AuthResponse]:
    """Deprecated shim over :func:`repro.fleet.rounds.respond_round`.

    The round mechanism lives in :mod:`repro.fleet.rounds`; the
    supported public entry point is
    :meth:`repro.service.AuthService.authenticate_batch`.
    """
    _deprecated("respond_fleet", "repro.fleet.rounds.respond_round")
    return respond_round(devices, nonces, tamper_factors)


@dataclass
class BatchAuthReport:
    """Outcome of one :meth:`BatchVerifier.authenticate_fleet` call.

    ``failures`` maps device id to a human-readable reason;
    ``failure_kinds`` maps the same ids to the shared
    :class:`~repro.protocols.mutual_auth.FailureKind` taxonomy value, so
    round reports aggregate identically to single-session failures.
    """

    confirmations: Dict[str, bytes] = field(default_factory=dict)
    failures: Dict[str, str] = field(default_factory=dict)
    failure_kinds: Dict[str, str] = field(default_factory=dict)

    def record_failure(self, device_id: str,
                       failure: AuthenticationFailure) -> None:
        self.failures[device_id] = str(failure)
        self.failure_kinds[device_id] = failure.kind.value

    @property
    def n_accepted(self) -> int:
        return len(self.confirmations)

    @property
    def n_rejected(self) -> int:
        return len(self.failures)

    @property
    def accepted_ids(self) -> List[str]:
        return list(self.confirmations)


@dataclass
class SpotCheckReport:
    """Outcome of one :meth:`BatchVerifier.spot_check` call."""

    device_ids: List[str]
    fractional_hd: np.ndarray
    accepted: np.ndarray
    threshold: float

    @property
    def n_accepted(self) -> int:
        return int(np.count_nonzero(self.accepted))


class CommitLog:
    """Durable write-ahead record of in-flight two-phase CRP commits.

    :meth:`BatchVerifier._verify_round_into` *parks* every device's
    candidate response here before the confirmation leaves the verifier,
    and :meth:`BatchVerifier.finalize` / a clean abort resolve the entry.
    An *ambiguous* abort — connection death after the confirmation may
    already have reached the device — leaves the entry parked, which is
    the whole point: a replica (or restarted verifier) sharing this log
    can later prove from a device's next message which side of the
    commit the device landed on and complete the registry roll lazily
    (see :meth:`BatchVerifier._recover_interrupted`).  Without it, a
    verifier crash in the confirmation→finalize window desynchronizes
    the device one CRP ahead of the registry forever.
    """

    def __init__(self):
        self._parked: Dict[str, "_ParkedCommit"] = {}

    def park(self, device_id: str, session: int,
             new_response: np.ndarray) -> None:
        self._parked[device_id] = _ParkedCommit(
            int(session), np.asarray(new_response, dtype=np.uint8))

    def mark_exposed(self, device_id: str) -> None:
        """The confirmation left for the device — it *may* roll now.

        From this point on the entry can only be resolved by proof
        (finalize, or :meth:`BatchVerifier._recover_interrupted` reading
        the device's next MAC), never by a blanket unambiguous drop: an
        abort issued later — a retry timing out, a ghost round dying —
        speaks for *its own* attempt, not for this exposed commit.
        """
        entry = self._parked.get(device_id)
        if entry is not None:
            entry.exposed = True

    def commit(self, device_id: str) -> None:
        """The registry rolled — the commit is complete, forget it."""
        self._parked.pop(device_id, None)

    def drop(self, device_id: str) -> None:
        """The confirmation provably never reached the device."""
        self._parked.pop(device_id, None)

    def get(self, device_id: str) -> Optional["_ParkedCommit"]:
        return self._parked.get(device_id)

    def __len__(self) -> int:
        return len(self._parked)

    def device_ids(self) -> List[str]:
        return list(self._parked)

    def to_state(self) -> dict:
        return {
            device_id: {
                "session": entry.session,
                "new_response": to_hex(_pad_bits(entry.new_response)),
                "response_bits": int(entry.new_response.size),
                "exposed": bool(entry.exposed),
            }
            for device_id, entry in self._parked.items()
        }

    @classmethod
    def from_state(cls, state: dict) -> "CommitLog":
        log = cls()
        for device_id, entry in state.items():
            bits = bits_from_bytes(from_hex(entry["new_response"]))
            log.park(device_id, int(entry["session"]),
                     bits[: int(entry["response_bits"])])
            if entry.get("exposed"):
                log.mark_exposed(device_id)
        return log


@dataclass
class _ParkedCommit:
    """One parked confirmation: the session it closes + candidate CRP."""

    session: int
    new_response: np.ndarray
    exposed: bool = False


class BatchVerifier:
    """Verifier serving many mutual-auth sessions per call."""

    def __init__(self, registry: FleetRegistry, seed: int = 0,
                 clock_tolerance: float = 0.05, nonce_counter: int = 0,
                 nonce_epoch: int = 0, replica_index: int = 0,
                 n_replicas: int = 1,
                 commit_log: Optional[CommitLog] = None):
        self.registry = registry
        self.seed = seed
        self.clock_tolerance = clock_tolerance
        if n_replicas < 1:
            raise ValueError("n_replicas must be at least 1")
        if not 0 <= replica_index < n_replicas:
            raise ValueError(
                f"replica_index {replica_index} outside replica group of "
                f"{n_replicas}"
            )
        self.replica_index = int(replica_index)
        self.n_replicas = int(n_replicas)
        # Nonces are derived from (seed, epoch, counter).  The counter is
        # restorable and the epoch bumps on every from_state restore, so
        # a verifier restarted even from a *stale* checkpoint never
        # re-issues a nonce some earlier boot already put on the wire.
        # In a replica group the epochs are additionally partitioned by
        # residue class (stream epoch = epoch * n_replicas + index), so
        # no replica can ever land on another replica's stream no matter
        # how many times either side crashes and restores.
        self._nonce_counter = nonce_counter
        self._nonce_epoch = nonce_epoch
        self.commit_log = commit_log
        # Replay tags and unmasked responses of in-flight sessions only,
        # per device; both are dropped at finalization (a finalized
        # session's messages already fail the session-index check), which
        # keeps verifier memory flat over millions of sessions.
        self._seen_tags: Dict[str, set] = {}
        # device_id -> (round nonce, candidate response): the nonce lets
        # finalize/abort acks prove which round they belong to.
        self._pending: Dict[str, Tuple[bytes, np.ndarray]] = {}
        # Observability hook (repro.obs.ServiceObs); None costs one
        # attribute load per round, and no hook may touch the RNG.
        self._obs = None

    @property
    def stream_epoch(self) -> int:
        """The epoch actually fed to the nonce/spot DRBG streams.

        ``epoch * n_replicas + replica_index`` — with the single-verifier
        defaults this reduces to the raw epoch, keeping every legacy
        nonce stream bit-identical.
        """
        return self._nonce_epoch * self.n_replicas + self.replica_index

    def open_round(self, device_ids: Sequence[str]) -> Dict[str, bytes]:
        """Fresh per-request nonces for every device in the round."""
        nonces = {}
        for device_id in device_ids:
            self.registry.record(device_id)  # fail fast on unknown devices
            nonce = derive_bytes(16, self.seed, "fleet-nonce",
                                 self.stream_epoch, self._nonce_counter)
            self._nonce_counter += 1
            nonces[device_id] = nonce
        if self._obs is not None:
            self._obs.on_challenge(self, nonces)
        return nonces

    def verify_round(self, responses: Sequence[AuthResponse],
                     nonces: Dict[str, bytes]) -> BatchAuthReport:
        """Verify a whole round of device turns in one call.

        MAC verification and confirmation framing run as *batched
        stages* (:func:`repro.crypto.mac.verify_mac_batch` /
        :func:`repro.protocols.mutual_auth.confirmation_mac_batch`);
        response unmasking operates on the stacked response matrices.
        The registry is NOT rolled here: the new response is parked as
        pending state and committed by :meth:`finalize` once the device
        accepted the confirmation — the same two-phase commit as
        ``AuthVerifier.process_response`` / ``finalize``, so a lost
        confirmation never desynchronizes the two sides.

        The pipelined :meth:`authenticate_fleet` calls the underlying
        :meth:`_verify_round_into` once per shard chunk instead, sharing
        one report and duplicate-device set across the round; the two
        produce identical reports for identical messages.
        """
        report = BatchAuthReport()
        self._verify_round_into(report, responses, nonces, set())
        if self._obs is not None:
            self._obs.on_verify(self, report)
        return report

    def _verify_round_into(self, report: BatchAuthReport,
                           responses: Sequence[AuthResponse],
                           nonces: Dict[str, bytes],
                           seen_this_round: set) -> None:
        """One verification stage: framing checks, MACs, confirmations.

        Stage 1 runs the cheap byte-level framing checks and collects
        every candidate's MAC into one batched verification; stage 2
        unmasks all surviving responses as one stacked XOR, derives
        their next challenges in one batched DRBG expansion, and frames
        all confirmations in one batched MAC pass.  Failure kinds and
        their precedence are identical to the sequential path.
        """
        self._recover_interrupted(responses)
        candidates: List[tuple] = []  # (response, record, bound checks ok)
        for response in responses:
            try:
                if response.device_id in seen_this_round:
                    # A second message for the same device would silently
                    # overwrite the first one's pending state and
                    # double-count its row in the unmasking matrix.
                    raise AuthenticationFailure(
                        "duplicate device in round",
                        FailureKind.DUPLICATE_DEVICE,
                    )
                seen_this_round.add(response.device_id)
                record = self.registry.record(response.device_id)
                nonce = nonces.get(response.device_id)
                if nonce is None:
                    raise AuthenticationFailure("no nonce issued this round",
                                                FailureKind.NO_NONCE)
                if bytes(response.tag) in self._seen_tags.get(
                        response.device_id, ()):
                    raise AuthenticationFailure("replayed message",
                                                FailureKind.REPLAY)
            except AuthenticationFailure as failure:
                report.record_failure(response.device_id, failure)
                continue
            candidates.append((response, record, nonce))
        # Batched MAC stage: every candidate's tag in one call, keys
        # packed as one round-wide packbits pass.
        mac_ok = verify_mac_batch(
            [candidate[0].body for candidate in candidates],
            pad_bits_batch([candidate[1].current_response
                            for candidate in candidates]),
            [candidate[0].tag for candidate in candidates],
        )
        valid: List[AuthResponse] = []
        masked_rows: List[np.ndarray] = []
        stored_rows: List[np.ndarray] = []
        for (response, record, nonce), tag_ok in zip(candidates, mac_ok):
            try:
                if not tag_ok:
                    raise AuthenticationFailure("device MAC rejected",
                                                FailureKind.BAD_MAC)
                # A MAC-valid body can still be malformed (buggy device
                # firmware MACs whatever it framed); that must fail this
                # device only, never abort the whole round.
                try:
                    fields = decode_fields(response.body)
                    if len(fields) != 4:
                        raise ValueError(
                            f"expected 4 fields, got {len(fields)}"
                        )
                    session_raw, masked, integrity, echoed = fields
                except ValueError as exc:
                    raise AuthenticationFailure(
                        f"malformed body: {exc}", FailureKind.MALFORMED,
                    ) from exc
                if int.from_bytes(session_raw, "big") != record.sessions:
                    raise AuthenticationFailure("session index mismatch",
                                                FailureKind.SESSION_MISMATCH)
                if echoed != nonce:
                    raise AuthenticationFailure(
                        "nonce mismatch (replay or delay)",
                        FailureKind.NONCE_MISMATCH,
                    )
                clock_count = unmask_clock_count(integrity,
                                                 record.firmware_hash)
                check_clock_count(clock_count, record.expected_clock_count,
                                  self.clock_tolerance)
                bits = bits_from_bytes(masked)
                if bits.size < record.current_response.size:
                    # A short row would make the stacked unmasking matrix
                    # ragged and crash np.vstack for everyone.
                    raise AuthenticationFailure(
                        f"masked response field holds {bits.size} bits, "
                        f"expected {record.current_response.size}",
                        FailureKind.MALFORMED,
                    )
            except AuthenticationFailure as failure:
                report.record_failure(response.device_id, failure)
                continue
            # Cache the replay tag only once every check passed: a
            # rejected message fails the same deterministic checks on
            # replay, so caching it would only grow the per-device set
            # without bound for a device that never reaches finalize.
            self._seen_tags.setdefault(response.device_id, set()).add(
                bytes(response.tag))
            valid.append(response)
            masked_rows.append(bits[: record.current_response.size])
            stored_rows.append(record.current_response)
        if not valid:
            return
        # Vectorized unmasking over the whole round: r_{i+1} = m XOR r_i.
        stored = np.vstack(stored_rows).astype(np.uint8)
        new_responses = np.bitwise_xor(
            np.vstack(masked_rows).astype(np.uint8), stored,
        )
        # The confirmation MAC proves knowledge of c_{i+1}; gather every
        # accepted device's derivation into one batched DRBG expansion.
        challenge_bits = [
            self.registry.record(r.device_id).challenge_bits for r in valid
        ]
        if len(set(challenge_bits)) == 1:
            challenges = derive_challenge_batch(stored, challenge_bits[0])
        else:
            challenges = [derive_challenge(stored[row], challenge_bits[row])
                          for row in range(len(valid))]
        confirmations = confirmation_mac_batch(
            challenges,
            [nonces[response.device_id] for response in valid],
            new_responses,
        )
        for row, response in enumerate(valid):
            # The pending is stamped with its round nonce so finalize and
            # abort acks can prove which round they speak for: a delayed
            # or duplicated ack frame from a superseded round must never
            # settle (or roll!) a later session (see :meth:`finalize`).
            self._pending[response.device_id] = (
                bytes(nonces[response.device_id]), new_responses[row])
            if self.commit_log is not None:
                # Write-ahead: park the candidate before the confirmation
                # can leave the verifier, keyed to the session it closes.
                self.commit_log.park(
                    response.device_id,
                    self.registry.record(response.device_id).sessions,
                    new_responses[row],
                )
            report.confirmations[response.device_id] = confirmations[row]

    def _recover_interrupted(self, responses: Sequence[AuthResponse]) -> None:
        """Complete interrupted two-phase commits proven by fresh traffic.

        A crash (or ambiguous connection death) in the window between
        CONFIRMATION delivery and finalize leaves the device one CRP
        ahead of the registry, with the candidate parked in the shared
        :class:`CommitLog`.  The proof that the device really rolled is
        its *next* message: only a device holding the candidate response
        can MAC with it.  When that proof arrives, roll the registry
        forward and resolve the log entry — then let the message verify
        through the normal path against the now-current record.  A
        device that did *not* roll keeps MACing with the old response,
        which the normal path accepts and whose finalize supersedes the
        stale parked entry.  Hostile messages prove nothing: an
        adversary without the candidate cannot produce the MAC, so the
        sweep never rolls on a forgery.
        """
        if self.commit_log is None or len(self.commit_log) == 0:
            return
        for response in responses:
            entry = self.commit_log.get(response.device_id)
            if entry is None:
                continue
            try:
                record = self.registry.record(response.device_id)
            except AuthenticationFailure:
                self.commit_log.drop(response.device_id)  # revoked
                continue
            if record.sessions != entry.session:
                # The registry moved past the parked session through some
                # other path; the entry is stale, not ambiguous.
                self.commit_log.drop(response.device_id)
                continue
            # A rolled device stamps its next message with the session
            # *after* the parked one.  The stamp matters beyond being a
            # cheap pre-filter: the rolling chain can hit a fixed point
            # (the measured next response equals the current one), and
            # then candidate == record and the MAC alone cannot tell a
            # rolled device from an unrolled one — only the session
            # counter can.  The stamp is not trusted by itself: the roll
            # still requires the MAC proof below, which an adversary
            # without the candidate cannot forge.
            try:
                fields = decode_fields(response.body)
                stamped = int.from_bytes(fields[0], "big") \
                    if len(fields) == 4 else -1
            except ValueError:
                continue
            if stamped != entry.session + 1:
                # Still on the parked session (or garbage): not a roll
                # proof.  The normal path verifies it against the
                # current record and its park supersedes this entry.
                continue
            if verify_mac(response.body, _pad_bits(entry.new_response),
                          response.tag):
                self.registry.roll(response.device_id, entry.new_response)
                self.commit_log.commit(response.device_id)
                # The completed session's replay tags are obsolete (its
                # messages now fail the session-index check).
                self._seen_tags.pop(response.device_id, None)
                if self._obs is not None:
                    self._obs.on_recovered(self)

    def finalize(self, device_id: str,
                 token: Optional[bytes] = None) -> None:
        """Commit one device's pending session: roll the CRP atomically.

        ``token`` (the round nonce, when the caller knows it) fences the
        commit to the round that earned it.  A finalize whose token does
        not match the pending's nonce is a *stale ack* — a chaos-delayed
        or duplicated frame from a round that has since been superseded
        — and is ignored: rolling on it would advance the registry with
        a candidate the device never confirmed.  ``token=None`` (the
        in-process paths, where acks cannot reorder) commits
        unconditionally.
        """
        pending = self._pending.get(device_id)
        if pending is None:
            raise AuthenticationFailure(
                f"device {device_id!r} has no session to finalise",
                FailureKind.NO_SESSION,
            )
        nonce, new_response = pending
        if token is not None and bytes(token) != nonce:
            return
        del self._pending[device_id]
        self.registry.roll(device_id, new_response)
        if self.commit_log is not None:
            self.commit_log.commit(device_id)
        # A finalized session's messages fail the session-index check, so
        # their replay tags can be dropped.
        self._seen_tags.pop(device_id, None)
        if self._obs is not None:
            self._obs.on_finalize(self, device_id)

    def expose(self, device_id: str) -> None:
        """Record that this device's confirmation is leaving the server.

        Called by the transport layer just before the CONFIRMATION frame
        is written: past this point the device may roll, so the parked
        candidate becomes un-droppable by unambiguous aborts (only
        finalize or MAC-proven recovery may resolve it).
        """
        if self.commit_log is not None:
            self.commit_log.mark_exposed(device_id)

    def abort(self, device_id: str, ambiguous: bool = False,
              token: Optional[bytes] = None) -> None:
        """Discard a pending session (confirmation undeliverable/rejected).

        Both sides stay on the current CRP; the device simply retries.
        ``ambiguous=True`` means the confirmation *may* have reached the
        device (connection died after it was sent): the in-memory
        pending is still dropped, but the parked :class:`CommitLog`
        entry survives so :meth:`_recover_interrupted` can settle the
        question from the device's next message.

        Like :meth:`finalize`, ``token`` fences the abort to its round:
        a stale ack whose nonce does not match the current pending is
        ignored outright rather than tearing down a later session.

        Even an "unambiguous" abort only drops an *unexposed* entry.
        An abort is evidence about the attempt that issued it — a client
        retry timing out, a rejected confirmation — not about an earlier
        exposed commit still parked under the same device id (the
        crash-window entry a promoted replica must keep until the
        device's next MAC settles it).  Dropping on device id alone
        would let one lost RESPONSE destroy the only proof of a
        completed roll and desynchronize the device forever.
        """
        pending = self._pending.get(device_id)
        if pending is not None:
            if token is not None and bytes(token) != pending[0]:
                return
            del self._pending[device_id]
            if self._obs is not None:
                self._obs.on_abort(self, device_id)
        if ambiguous or self.commit_log is None:
            return
        entry = self.commit_log.get(device_id)
        if entry is not None and not entry.exposed:
            self.commit_log.drop(device_id)

    def evict(self, device_id: str) -> None:
        """Drop all per-device verifier state (revocation cleanup)."""
        self._pending.pop(device_id, None)
        self._seen_tags.pop(device_id, None)
        if self.commit_log is not None:
            self.commit_log.drop(device_id)

    def to_state(self) -> dict:
        """Durable verifier state beyond the registry.

        Only the nonce stream state matters across a restart.  In-flight
        pendings and replay tags are transient by design — an interrupted
        session is simply retried under the two-phase commit.  The
        shared :class:`CommitLog` is deliberately *not* captured here:
        it is group-owned durable state with its own ``to_state``.
        """
        return {"seed": int(self.seed),
                "clock_tolerance": float(self.clock_tolerance),
                "nonce_counter": int(self._nonce_counter),
                "nonce_epoch": int(self._nonce_epoch),
                "replica_index": int(self.replica_index),
                "n_replicas": int(self.n_replicas)}

    @classmethod
    def from_state(cls, registry: FleetRegistry, state: dict,
                   commit_log: Optional[CommitLog] = None) -> "BatchVerifier":
        """Restart from a snapshot; the nonce epoch advances by one.

        The epoch bump makes every post-restart nonce fresh even when the
        snapshot is stale (counter behind the crashed verifier's), which
        closes the replay window a counter-only restore would leave open.
        The replica partition (index, group size) rides along, so the
        bumped epoch stays in the same residue class — a restored
        replica can still never collide with its peers.
        """
        return cls(registry, seed=int(state["seed"]),
                   clock_tolerance=float(state["clock_tolerance"]),
                   nonce_counter=int(state["nonce_counter"]),
                   nonce_epoch=int(state.get("nonce_epoch", 0)) + 1,
                   replica_index=int(state.get("replica_index", 0)),
                   n_replicas=int(state.get("n_replicas", 1)),
                   commit_log=commit_log)

    def authenticate_fleet(self, devices: Sequence[FleetDevice]) -> BatchAuthReport:
        """Run one full mutual-auth session for every device, in one call.

        The round is a pipeline over shards: device turns stream out of
        :func:`repro.fleet.rounds.respond_round_staged` one shard chunk
        at a time (challenge
        derivation up front, plane passes on the sharded executor's
        workers when one is attached), and each chunk's MAC framing and
        verification run *while the next shard's tensor pass is still in
        flight*.  Without an executor there is a single chunk and the
        flow reduces to the PR 3 batch path; either way the resulting
        report, device state, and message bytes are identical.
        """
        nonces = self.open_round([device.device_id for device in devices])
        report = BatchAuthReport()
        seen_this_round: set = set()
        for __, messages in respond_round_staged(devices, nonces):
            self._verify_round_into(report, messages, nonces,
                                    seen_this_round)
        if self._obs is not None:
            # Before the commit sweep: "accepted" means a confirmation
            # was issued, matching the wire path's verify_round; the
            # sweep's finalize/abort hooks then settle each one.
            self._obs.on_verify(self, report)
        # One backend transaction for the whole commit sweep: on a
        # journaling backend the round's rolls group-commit as a single
        # write instead of one per device.
        with self.registry.transaction():
            for device in devices:
                confirmation = report.confirmations.get(device.device_id)
                if confirmation is None:
                    continue
                try:
                    device.confirm(confirmation, nonces[device.device_id])
                except AuthenticationFailure as failure:
                    if self._obs is not None:
                        self._obs.on_result(failure.kind.value)
                    report.record_failure(
                        device.device_id,
                        AuthenticationFailure(f"confirmation: {failure}",
                                              failure.kind),
                    )
                    del report.confirmations[device.device_id]
                    self.abort(device.device_id)
                    continue
                self.finalize(device.device_id)
        return report

    def spot_check(self, devices: Sequence[FleetDevice], k: int = 8,
                   threshold: float = 0.25) -> SpotCheckReport:
        """Burn ``k`` enrollment CRPs per device; one batched pass each.

        Every device answers its ``k`` challenges through a single
        ``evaluate_batch`` call (compiled engine), and the accept decision
        is one vectorized fractional-Hamming-distance comparison across
        the whole fleet.
        """
        rng = derive_rng(self.seed, "fleet-spot", self.stream_epoch,
                         self._nonce_counter)
        self._nonce_counter += 1
        # Draw every device's burn indices first (one shared RNG stream,
        # in fleet order), then harvest: plane-attached devices answer
        # their k challenges as rows of one stacked pass per plane.
        # The draws run in one backend transaction so the burn journal
        # group-commits per sweep, not per device.
        challenge_rows: List[np.ndarray] = []
        expected_rows: List[np.ndarray] = []
        ids: List[str] = []
        with self.registry.transaction():
            for device in devices:
                record = self.registry.record(device.device_id)
                indices = self.registry.draw_spot_indices(
                    device.device_id, k, rng)
                challenge_rows.append(record.crp_challenges[indices])
                expected_rows.append(record.crp_responses[indices])
                ids.append(device.device_id)
        fresh_rows: List[Optional[np.ndarray]] = [None] * len(devices)
        groups: Dict[int, List[int]] = {}
        planes: Dict[int, object] = {}
        for position, device in enumerate(devices):
            if device.plane is None or device.plane_row is None:
                fresh_rows[position] = device.spot_responses(
                    challenge_rows[position]
                )
            else:
                groups.setdefault(id(device.plane), []).append(position)
                planes[id(device.plane)] = device.plane
        for key, positions in groups.items():
            plane = planes[key]
            rows = [devices[p].plane_row for p in positions]
            stacked = plane.evaluate(
                np.stack([challenge_rows[p] for p in positions]), dies=rows
            )
            for index, position in enumerate(positions):
                fresh_rows[position] = np.asarray(stacked[index],
                                                  dtype=np.uint8)
        fresh = np.stack(fresh_rows)        # (fleet, k, response_bits)
        expected = np.stack(expected_rows)
        distances = np.mean(fresh != expected, axis=(1, 2))
        return SpotCheckReport(
            device_ids=ids,
            fractional_hd=distances,
            accepted=distances <= threshold,
            threshold=threshold,
        )

    def open_spot_check(self, device_id: str,
                        k: int = 8) -> Tuple[np.ndarray, np.ndarray]:
        """Draw and burn ``k`` spot CRPs for one *remote* device.

        The transport-facing half of :meth:`spot_check`: when the device
        hardware lives on the far side of a socket the verifier can only
        ship challenges and compare what comes back.  Returns
        ``(challenges, expected)``; the RNG draw matches a one-device
        :meth:`spot_check` bit for bit (same stream label, same counter
        advance), so in-process and remote spot checks burn identical
        pool indices.
        """
        rng = derive_rng(self.seed, "fleet-spot", self.stream_epoch,
                         self._nonce_counter)
        self._nonce_counter += 1
        record = self.registry.record(device_id)
        indices = self.registry.draw_spot_indices(device_id, k, rng)
        return record.crp_challenges[indices], record.crp_responses[indices]

    @staticmethod
    def close_spot_check(expected: np.ndarray, fresh: np.ndarray,
                         threshold: float = 0.25) -> Tuple[float, bool]:
        """Score a remote device's spot measurements: ``(hd, accepted)``."""
        fresh = np.asarray(fresh, dtype=np.uint8)
        if fresh.shape != expected.shape:
            raise AuthenticationFailure(
                f"spot measurement shape {fresh.shape} does not match "
                f"the drawn challenges {expected.shape}",
                FailureKind.MALFORMED,
            )
        distance = float(np.mean(fresh != expected))
        return distance, distance <= threshold


@dataclass
class CoalescedAuth:
    """The pending/settled outcome of one coalesced auth request."""

    device_id: str
    done: bool = False
    accepted: bool = False
    failure: Optional[str] = None
    failure_kind: Optional[str] = None

    def settle(self, report: BatchAuthReport) -> None:
        self.done = True
        self.accepted = self.device_id in report.confirmations
        if not self.accepted:
            self.failure = report.failures.get(
                self.device_id, "not part of the round"
            )
            self.failure_kind = report.failure_kinds.get(self.device_id)


class RoundCoalescer:
    """Batches individually-arriving auth requests into micro-rounds.

    Production traffic is not a neat fleet-wide round: devices check in
    one at a time.  Authenticating each arrival alone would waste the
    stacked plane (a batch-1 tensor pass per device); the coalescer
    holds arrivals in a pending micro-round and flushes them through
    one pipelined :meth:`BatchVerifier.authenticate_fleet` call when

    * the oldest pending request has waited ``latency_budget_s`` (the
      per-request latency cap trades batch efficiency against response
      time), or
    * ``max_batch`` requests are pending (a full micro-round), or
    * a device already pending arrives again (one device cannot appear
      twice in one round — the duplicate flushes the round first).

    ``clock`` is injectable (tests drive a fake clock); callers in an
    event loop call :meth:`poll` on their tick to enforce the budget.
    """

    def __init__(self, verifier: BatchVerifier,
                 latency_budget_s: float = 0.005, max_batch: int = 256,
                 clock=time.monotonic):
        if latency_budget_s < 0.0:
            raise ValueError("latency_budget_s must be non-negative")
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        self.verifier = verifier
        self.latency_budget_s = float(latency_budget_s)
        self.max_batch = int(max_batch)
        self._clock = clock
        self._pending: List[tuple] = []          # (device, ticket)
        self._pending_ids: set = set()
        self._deadline: Optional[float] = None
        self.micro_rounds = 0
        self.submitted = 0
        self.flushed_by_size = 0
        self.flushed_by_deadline = 0
        # Observability hook (repro.obs.ServiceObs), None when unwired.
        self._obs = None

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def deadline(self) -> Optional[float]:
        """The injected clock's flush deadline, or ``None`` when idle."""
        return self._deadline

    def time_to_deadline(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds (on the injected clock) until the budget flush is due.

        ``0.0`` means due *now* — :meth:`poll` flushes at exactly the
        boundary (``clock() >= deadline``), so an event-loop timer that
        sleeps this long and then polls honors the latency budget on the
        same monotonic clock the coalescer itself reads.  ``None`` while
        nothing is pending.
        """
        if self._deadline is None:
            return None
        if now is None:
            now = self._clock()
        return max(0.0, self._deadline - now)

    def submit(self, device: FleetDevice) -> CoalescedAuth:
        """Queue one device's auth request; may trigger a flush.

        Unknown devices are rejected here, at the door — one stray
        request must not poison the micro-round it would have joined.
        """
        self.verifier.registry.record(device.device_id)
        if device.device_id in self._pending_ids:
            self.flush()
        ticket = CoalescedAuth(device.device_id)
        self._pending.append((device, ticket))
        self._pending_ids.add(device.device_id)
        self.submitted += 1
        if self._obs is not None:
            self._obs.on_coalescer_submit(len(self._pending))
        if self._deadline is None:
            self._deadline = self._clock() + self.latency_budget_s
        if len(self._pending) >= self.max_batch:
            self.flushed_by_size += 1
            self.flush()
        return ticket

    def poll(self) -> Optional[BatchAuthReport]:
        """Flush if the oldest pending request exhausted its budget."""
        if self._pending and self._clock() >= self._deadline:
            self.flushed_by_deadline += 1
            return self.flush()
        return None

    def flush(self) -> Optional[BatchAuthReport]:
        """Run the pending micro-round now; settle every ticket.

        A device revoked between submit and flush settles *its own*
        ticket as a ``not-enrolled`` rejection here, before the round
        opens — it must not poison the micro-round it would have joined
        (``open_round`` would raise for everyone).  Every other ticket
        settles even when the round itself fails: a protocol-level
        :class:`AuthenticationFailure` settles the whole micro-round as
        failed and returns ``None`` — callers polling their tickets see
        the outcome instead of hanging; unexpected errors settle the
        tickets the same way, then propagate.
        """
        if not self._pending:
            return None
        pending, self._pending = self._pending, []
        self._pending_ids = set()
        self._deadline = None
        live = []
        for device, ticket in pending:
            if device.device_id in self.verifier.registry:
                live.append((device, ticket))
            else:
                ticket.done = True
                ticket.accepted = False
                ticket.failure = (
                    f"device {device.device_id!r} was revoked while its "
                    "request was pending"
                )
                ticket.failure_kind = FailureKind.NOT_ENROLLED.value
        pending = live
        if not pending:
            return None
        self.micro_rounds += 1
        if self._obs is not None:
            self._obs.on_coalescer_flush(len(pending))
        try:
            report = self.verifier.authenticate_fleet(
                [device for device, __ in pending]
            )
        except Exception as exc:
            kind = getattr(exc, "kind", None)
            for __, ticket in pending:
                ticket.done = True
                ticket.accepted = False
                ticket.failure = f"micro-round failed: {exc}"
                ticket.failure_kind = kind.value if kind is not None else None
            if isinstance(exc, AuthenticationFailure):
                return None
            raise
        for __, ticket in pending:
            ticket.settle(report)
        return report


def provision_fleet(
    n_devices: int,
    seed: int = 0,
    n_spot_crps: int = 0,
    stacked: bool = True,
    shard_workers: Optional[int] = None,
    **puf_kwargs,
):
    """Deprecated shim over :meth:`repro.service.AuthService.provision`.

    Returns the legacy ``(registry, devices, verifier)`` tuple; the
    supported entry point is

    >>> from repro.service import AuthService, EngineConfig, FleetConfig
    >>> service = AuthService.provision(FleetConfig(n_devices=4))

    which yields bit-identical provisioning (same challenge streams,
    noise realisations, and enrollment records) plus the facade verbs
    on top.  The execution plane the service compiles stays attached to
    the returned devices; shut its sharded executor down with
    ``devices[0].plane.close_executor()`` when ``shard_workers`` was
    used.
    """
    _deprecated(
        "provision_fleet",
        "repro.service.AuthService.provision(FleetConfig(...))",
    )
    from repro.service import AuthService, EngineConfig, FleetConfig

    service = AuthService.provision(FleetConfig(
        n_devices=n_devices,
        seed=seed,
        n_spot_crps=n_spot_crps,
        engine=EngineConfig(stacked=stacked, shard_workers=shard_workers),
        puf=puf_kwargs,
    ))
    return service.registry, service.device_list, service.verifier
