"""Fleet enrollment registry.

The verifier-side state for fleet-scale authentication.  Each enrolled
device contributes one :class:`DeviceRecord` holding

* the rolling CRP of the HSC-IoT scheme (paper Sec. III-A): exactly one
  current response per device, updated atomically after every successful
  session — the storage argument against CRP-database verifiers;
* the device's integrity reference (firmware hash);
* optionally, a pre-harvested spot-check CRP pool: ``n_spot_crps``
  challenge/response pairs measured at enrollment through the compiled
  engine's batch path in a single vectorized pass, burned one index at a
  time by :meth:`~repro.fleet.verifier.BatchVerifier.spot_check`.

The registry is the *only* verifier-side state that must survive a
restart: :meth:`FleetRegistry.to_state` / :meth:`FleetRegistry.from_state`
capture it as numpy arrays plus a JSON manifest, and
:meth:`FleetRegistry.save` / :meth:`FleetRegistry.load` round-trip that
state through one ``.npz`` archive (see
:func:`repro.utils.serialization.save_state`), so a verifier crash
mid-campaign never strands a device's rolling CRP.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.protocols.mutual_auth import AuthenticationFailure, FailureKind
from repro.utils.rng import derive_rng
from repro.utils.serialization import from_hex, load_state, save_state, to_hex

STATE_FORMAT = "fleet-registry"
STATE_VERSION = 1


@dataclass
class DeviceRecord:
    """Verifier-side state for one enrolled device."""

    device_id: str
    challenge_bits: int
    current_response: np.ndarray
    firmware_hash: bytes
    expected_clock_count: int
    crp_challenges: np.ndarray
    crp_responses: np.ndarray
    crp_used: np.ndarray
    sessions: int = 0

    @property
    def spot_crps_left(self) -> int:
        return int(np.count_nonzero(~self.crp_used))

    @property
    def storage_bytes(self) -> int:
        """Rolling CRP + integrity reference + spot pool, in bytes."""
        rolling = math.ceil(self.current_response.size / 8)
        pool = math.ceil(self.crp_challenges.size / 8) + math.ceil(
            self.crp_responses.size / 8
        )
        return rolling + len(self.firmware_hash) + pool


class FleetRegistry:
    """Enrollment registry: device_id -> :class:`DeviceRecord`."""

    def __init__(self) -> None:
        self._records: Dict[str, DeviceRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._records

    def device_ids(self) -> List[str]:
        return list(self._records)

    @staticmethod
    def _pool_challenges(device, n_spot_crps: int, seed: int) -> np.ndarray:
        """The device's spot-pool challenge block (one derived stream)."""
        pool_rng = derive_rng(seed, "fleet-enroll", device.device_id)
        return pool_rng.integers(
            0, 2, size=(n_spot_crps, device.puf.challenge_bits),
            dtype=np.uint8,
        )

    def _build_record(self, device, challenges: np.ndarray,
                      responses: np.ndarray) -> DeviceRecord:
        if device.device_id in self._records:
            raise ValueError(f"device {device.device_id!r} already enrolled")
        record = DeviceRecord(
            device_id=device.device_id,
            challenge_bits=int(device.puf.challenge_bits),
            current_response=np.asarray(device.current_response, dtype=np.uint8),
            firmware_hash=bytes(device.firmware_hash),
            expected_clock_count=int(device.clock_count),
            crp_challenges=challenges,
            crp_responses=responses,
            crp_used=np.zeros(len(challenges), dtype=bool),
        )
        self._records[device.device_id] = record
        return record

    def enroll(self, device, n_spot_crps: int = 0, seed: int = 0,
               measurement: int = 0) -> DeviceRecord:
        """Enroll one device (duck-typed: id, PUF, response, firmware hash).

        The spot-check pool is harvested with a single ``evaluate_batch``
        call, which the photonic strong PUF serves through the compiled
        engine — enrollment cost stays flat as ``n_spot_crps`` grows into
        the hundreds.
        """
        if device.device_id in self._records:
            raise ValueError(f"device {device.device_id!r} already enrolled")
        puf = device.puf
        if n_spot_crps > 0:
            challenges = self._pool_challenges(device, n_spot_crps, seed)
            responses = np.asarray(
                puf.evaluate_batch(challenges, measurement=measurement),
                dtype=np.uint8,
            )
        else:
            challenges = np.zeros((0, puf.challenge_bits), dtype=np.uint8)
            responses = np.zeros((0, puf.response_bits), dtype=np.uint8)
        return self._build_record(device, challenges, responses)

    def enroll_fleet(self, devices: Sequence, n_spot_crps: int = 0,
                     seed: int = 0, measurement: int = 0) -> List[DeviceRecord]:
        """Enroll many devices, harvesting every spot pool in one pass.

        Plane-attached devices (see
        :meth:`repro.fleet.verifier.FleetDevice.attach_plane`) answer all
        ``n_devices x n_spot_crps`` pool challenges through a single
        fleet-stacked tensor pass per plane; the challenge streams, noise
        realisations, and resulting records are identical to calling
        :meth:`enroll` per device.
        """
        devices = list(devices)
        # Validate the whole batch before harvesting anything: a mid-list
        # duplicate must not leave earlier devices committed (nor burn a
        # fleet-sized harvest on a doomed call).
        seen = set()
        for device in devices:
            if device.device_id in self._records or device.device_id in seen:
                raise ValueError(
                    f"device {device.device_id!r} already enrolled"
                )
            seen.add(device.device_id)
        if n_spot_crps <= 0:
            return [self.enroll(device, n_spot_crps=0, seed=seed,
                                measurement=measurement)
                    for device in devices]
        blocks = [self._pool_challenges(device, n_spot_crps, seed)
                  for device in devices]
        harvested: List[Optional[np.ndarray]] = [None] * len(devices)
        groups: Dict[int, List[int]] = {}
        planes: Dict[int, object] = {}
        for position, device in enumerate(devices):
            plane = getattr(device, "plane", None)
            if plane is None or getattr(device, "plane_row", None) is None:
                harvested[position] = np.asarray(
                    device.puf.evaluate_batch(blocks[position],
                                              measurement=measurement),
                    dtype=np.uint8,
                )
            else:
                groups.setdefault(id(plane), []).append(position)
                planes[id(plane)] = plane
        # Plane groups harvest through the staged path when available:
        # with a sharded executor attached, each worker measures its
        # shard's pool rows while the parent converts the previous
        # shard's harvest into records.
        staged_groups = []
        for key, positions in groups.items():
            plane = planes[key]
            rows = [devices[p].plane_row for p in positions]
            stacked_blocks = np.stack([blocks[p] for p in positions])
            if hasattr(plane, "evaluate_staged"):
                staged = plane.evaluate_staged(
                    stacked_blocks, measurements=measurement, dies=rows,
                )
            else:
                staged = iter([(
                    np.arange(len(positions)),
                    plane.evaluate(stacked_blocks,
                                   measurements=measurement, dies=rows),
                )])
            staged_groups.append((positions, staged))
        for positions, staged in staged_groups:
            for chunk, bits in staged:
                for index, local in enumerate(np.asarray(chunk,
                                                         dtype=np.intp)):
                    harvested[positions[local]] = np.asarray(
                        bits[index], dtype=np.uint8,
                    )
        return [self._build_record(device, blocks[position],
                                   harvested[position])
                for position, device in enumerate(devices)]

    def record(self, device_id: str) -> DeviceRecord:
        try:
            return self._records[device_id]
        except KeyError:
            raise AuthenticationFailure(
                f"device {device_id!r} is not enrolled",
                FailureKind.NOT_ENROLLED,
            ) from None

    def revoke(self, device_id: str) -> DeviceRecord:
        """Remove one device from the fleet (decommissioned/compromised)."""
        self.record(device_id)  # uniform not-enrolled failure
        return self._records.pop(device_id)

    def records(self, device_ids: Iterable[str]) -> List[DeviceRecord]:
        return [self.record(device_id) for device_id in device_ids]

    def response_matrix(self, device_ids: Iterable[str]) -> np.ndarray:
        """(n_devices, response_bits) stacked current responses."""
        return np.vstack([self.record(d).current_response for d in device_ids])

    def roll(self, device_id: str, new_response: np.ndarray) -> None:
        """Atomically advance one device's rolling CRP."""
        record = self.record(device_id)
        record.current_response = np.asarray(new_response, dtype=np.uint8)
        record.sessions += 1

    def draw_spot_indices(self, device_id: str, k: int,
                          rng: np.random.Generator) -> np.ndarray:
        """Pick ``k`` unused spot-check indices and burn them (anti-replay)."""
        record = self.record(device_id)
        unused = np.flatnonzero(~record.crp_used)
        if unused.size < k:
            raise AuthenticationFailure(
                f"device {device_id!r} has {unused.size} spot CRPs left, "
                f"{k} requested", FailureKind.POOL_EXHAUSTED,
            )
        chosen = rng.choice(unused, size=k, replace=False)
        record.crp_used[chosen] = True
        return np.sort(chosen)

    @property
    def storage_bytes(self) -> int:
        return sum(record.storage_bytes for record in self._records.values())

    def to_state(self) -> dict:
        """Capture the whole registry as ``{"manifest": ..., "arrays": ...}``.

        The manifest carries the scalar/string state (JSON-serializable);
        the arrays dict holds each record's rolling response, spot pool
        and burn mask under per-device keys listed in the manifest.
        """
        manifest = {"format": STATE_FORMAT, "version": STATE_VERSION,
                    "devices": []}
        arrays: Dict[str, np.ndarray] = {}
        for index, device_id in enumerate(sorted(self._records)):
            record = self._records[device_id]
            key = f"d{index:06d}"
            manifest["devices"].append({
                "device_id": device_id,
                "key": key,
                "challenge_bits": int(record.challenge_bits),
                "firmware_hash": to_hex(record.firmware_hash),
                "expected_clock_count": int(record.expected_clock_count),
                "sessions": int(record.sessions),
            })
            # Copies, not views: the registry mutates current_response and
            # crp_used in place, and a snapshot must stay a value capture.
            arrays[f"{key}_response"] = record.current_response.copy()
            arrays[f"{key}_crp_challenges"] = record.crp_challenges.copy()
            arrays[f"{key}_crp_responses"] = record.crp_responses.copy()
            arrays[f"{key}_crp_used"] = record.crp_used.copy()
        return {"manifest": manifest, "arrays": arrays}

    @classmethod
    def from_state(cls, state: dict) -> "FleetRegistry":
        """Rebuild a registry from :meth:`to_state` output."""
        manifest, arrays = state["manifest"], state["arrays"]
        if manifest.get("format") != STATE_FORMAT:
            raise ValueError(
                f"not a fleet-registry state: {manifest.get('format')!r}"
            )
        if manifest.get("version") != STATE_VERSION:
            raise ValueError(
                f"unsupported state version {manifest.get('version')!r}"
            )
        registry = cls()
        for entry in manifest["devices"]:
            key = entry["key"]
            # np.array (not asarray): a registry restored from a snapshot
            # must not alias the snapshot's arrays, or its in-place
            # mutations would corrupt a later restore from the same state.
            record = DeviceRecord(
                device_id=entry["device_id"],
                challenge_bits=int(entry["challenge_bits"]),
                current_response=np.array(arrays[f"{key}_response"],
                                          dtype=np.uint8),
                firmware_hash=from_hex(entry["firmware_hash"]),
                expected_clock_count=int(entry["expected_clock_count"]),
                crp_challenges=np.array(arrays[f"{key}_crp_challenges"],
                                        dtype=np.uint8),
                crp_responses=np.array(arrays[f"{key}_crp_responses"],
                                       dtype=np.uint8),
                crp_used=np.array(arrays[f"{key}_crp_used"], dtype=bool),
                sessions=int(entry["sessions"]),
            )
            registry._records[record.device_id] = record
        return registry

    def save(self, path: str) -> str:
        """Persist to one ``.npz`` archive; returns the path written."""
        state = self.to_state()
        return save_state(path, state["manifest"], state["arrays"])

    @classmethod
    def load(cls, path: str) -> "FleetRegistry":
        """Load a registry persisted by :meth:`save`."""
        manifest, arrays = load_state(path)
        return cls.from_state({"manifest": manifest, "arrays": arrays})
