"""Fleet enrollment registry.

The verifier-side state for fleet-scale authentication.  Each enrolled
device contributes one :class:`DeviceRecord` holding

* the rolling CRP of the HSC-IoT scheme (paper Sec. III-A): exactly one
  current response per device, updated atomically after every successful
  session — the storage argument against CRP-database verifiers;
* the device's integrity reference (firmware hash);
* optionally, a pre-harvested spot-check CRP pool: ``n_spot_crps``
  challenge/response pairs measured at enrollment through the compiled
  engine's batch path in a single vectorized pass, burned one index at a
  time by :meth:`~repro.fleet.verifier.BatchVerifier.spot_check`.

The registry itself is a thin façade: every record lives behind a
:class:`~repro.fleet.storage.base.RegistryBackend` (see
:mod:`repro.fleet.storage`).  The default
:class:`~repro.fleet.storage.memory.MemoryBackend` is bit-for-bit the
historical dict-backed behavior; an out-of-core
:class:`~repro.fleet.storage.sharded.ShardedFileBackend` pages CRP
pools from append-only shard files so fleet size is bounded by disk,
not RAM.  The façade owns everything RNG-shaped (pool challenge
derivation, spot-index draws) so the bit-streams are identical on
every backend.

The registry is the *only* verifier-side state that must survive a
restart: :meth:`FleetRegistry.to_state` / :meth:`FleetRegistry.from_state`
capture it as numpy arrays plus a JSON manifest, and
:meth:`FleetRegistry.save` / :meth:`FleetRegistry.load` round-trip that
state through one ``.npz`` archive (see
:func:`repro.utils.serialization.save_state`), so a verifier crash
mid-campaign never strands a device's rolling CRP.  On an out-of-core
backend the capture is an incremental *pointer* snapshot (O(dirty)
flush + a manifest referencing the shard directory); pass
``full=True`` to force the portable monolithic archive.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from repro.fleet.storage.base import (
    DeviceRecord,
    RegistryBackend,
    make_backend,
)
from repro.fleet.storage.memory import (
    MONOLITHIC_STATE_VERSION,
    POINTER_STATE_VERSION,
    STATE_FORMAT,
    MemoryBackend,
)
from repro.protocols.mutual_auth import AuthenticationFailure, FailureKind
from repro.utils.rng import derive_rng
from repro.utils.serialization import from_hex, load_state, save_state, to_hex

#: Historical alias: the monolithic capture has always been version 1.
STATE_VERSION = MONOLITHIC_STATE_VERSION

__all__ = [
    "DeviceRecord",
    "FleetRegistry",
    "STATE_FORMAT",
    "STATE_VERSION",
]


class FleetRegistry:
    """Enrollment registry: device_id -> :class:`DeviceRecord`.

    ``backend`` is a :class:`~repro.fleet.storage.base.RegistryBackend`
    instance or a backend name for
    :func:`~repro.fleet.storage.base.make_backend`; the default is the
    in-memory reference backend (the historical behavior).
    """

    def __init__(self, backend: Optional[RegistryBackend] = None) -> None:
        if backend is None:
            backend = MemoryBackend()
        elif isinstance(backend, str):
            backend = make_backend(backend)
        self.backend = backend

    def __len__(self) -> int:
        return len(self.backend)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self.backend

    def device_ids(self) -> List[str]:
        """All device ids as a list (kept for API stability; prefer
        :meth:`iter_device_ids` for fleet-sized iteration)."""
        return list(self.backend.iter_ids())

    def iter_device_ids(self) -> Iterator[str]:
        """Device ids, lazily — no fleet-sized list materialization."""
        return self.backend.iter_ids()

    @staticmethod
    def _pool_challenges(device, n_spot_crps: int, seed: int) -> np.ndarray:
        """The device's spot-pool challenge block (one derived stream)."""
        pool_rng = derive_rng(seed, "fleet-enroll", device.device_id)
        return pool_rng.integers(
            0, 2, size=(n_spot_crps, device.puf.challenge_bits),
            dtype=np.uint8,
        )

    @staticmethod
    def _make_record(device, challenges: np.ndarray,
                     responses: np.ndarray) -> DeviceRecord:
        return DeviceRecord(
            device_id=device.device_id,
            challenge_bits=int(device.puf.challenge_bits),
            current_response=np.asarray(device.current_response, dtype=np.uint8),
            firmware_hash=bytes(device.firmware_hash),
            expected_clock_count=int(device.clock_count),
            crp_challenges=challenges,
            crp_responses=responses,
            crp_used=np.zeros(len(challenges), dtype=bool),
        )

    def _build_record(self, device, challenges: np.ndarray,
                      responses: np.ndarray) -> DeviceRecord:
        if device.device_id in self.backend:
            raise ValueError(f"device {device.device_id!r} already enrolled")
        record = self._make_record(device, challenges, responses)
        self.backend.put(record)
        return record

    def enroll(self, device, n_spot_crps: int = 0, seed: int = 0,
               measurement: int = 0) -> DeviceRecord:
        """Enroll one device (duck-typed: id, PUF, response, firmware hash).

        The spot-check pool is harvested with a single ``evaluate_batch``
        call, which the photonic strong PUF serves through the compiled
        engine — enrollment cost stays flat as ``n_spot_crps`` grows into
        the hundreds.
        """
        if device.device_id in self.backend:
            raise ValueError(f"device {device.device_id!r} already enrolled")
        puf = device.puf
        if n_spot_crps > 0:
            challenges = self._pool_challenges(device, n_spot_crps, seed)
            responses = np.asarray(
                puf.evaluate_batch(challenges, measurement=measurement),
                dtype=np.uint8,
            )
        else:
            challenges = np.zeros((0, puf.challenge_bits), dtype=np.uint8)
            responses = np.zeros((0, puf.response_bits), dtype=np.uint8)
        return self._build_record(device, challenges, responses)

    def enroll_fleet(self, devices: Sequence, n_spot_crps: int = 0,
                     seed: int = 0, measurement: int = 0) -> List[DeviceRecord]:
        """Enroll many devices, harvesting every spot pool in one pass.

        Plane-attached devices (see
        :meth:`repro.fleet.verifier.FleetDevice.attach_plane`) answer all
        ``n_devices x n_spot_crps`` pool challenges through a single
        fleet-stacked tensor pass per plane; the challenge streams, noise
        realisations, and resulting records are identical to calling
        :meth:`enroll` per device.  Records are committed through the
        backend's batch path (one coalesced write per shard on the
        sharded backend).
        """
        devices = list(devices)
        # Validate the whole batch before harvesting anything: a mid-list
        # duplicate must not leave earlier devices committed (nor burn a
        # fleet-sized harvest on a doomed call).
        seen = set()
        for device in devices:
            if device.device_id in self.backend or device.device_id in seen:
                raise ValueError(
                    f"device {device.device_id!r} already enrolled"
                )
            seen.add(device.device_id)
        if n_spot_crps <= 0:
            records = [
                self._make_record(
                    device,
                    np.zeros((0, device.puf.challenge_bits), dtype=np.uint8),
                    np.zeros((0, device.puf.response_bits), dtype=np.uint8),
                )
                for device in devices
            ]
            self.backend.put_many(records)
            return records
        blocks = [self._pool_challenges(device, n_spot_crps, seed)
                  for device in devices]
        harvested: List[Optional[np.ndarray]] = [None] * len(devices)
        groups: Dict[int, List[int]] = {}
        planes: Dict[int, object] = {}
        for position, device in enumerate(devices):
            plane = getattr(device, "plane", None)
            if plane is None or getattr(device, "plane_row", None) is None:
                harvested[position] = np.asarray(
                    device.puf.evaluate_batch(blocks[position],
                                              measurement=measurement),
                    dtype=np.uint8,
                )
            else:
                groups.setdefault(id(plane), []).append(position)
                planes[id(plane)] = plane
        # Plane groups harvest through the staged path when available:
        # with a sharded executor attached, each worker measures its
        # shard's pool rows while the parent converts the previous
        # shard's harvest into records.
        staged_groups = []
        for key, positions in groups.items():
            plane = planes[key]
            rows = [devices[p].plane_row for p in positions]
            stacked_blocks = np.stack([blocks[p] for p in positions])
            if hasattr(plane, "evaluate_staged"):
                staged = plane.evaluate_staged(
                    stacked_blocks, measurements=measurement, dies=rows,
                )
            else:
                staged = iter([(
                    np.arange(len(positions)),
                    plane.evaluate(stacked_blocks,
                                   measurements=measurement, dies=rows),
                )])
            staged_groups.append((positions, staged))
        for positions, staged in staged_groups:
            for chunk, bits in staged:
                for index, local in enumerate(np.asarray(chunk,
                                                         dtype=np.intp)):
                    harvested[positions[local]] = np.asarray(
                        bits[index], dtype=np.uint8,
                    )
        records = [self._make_record(device, blocks[position],
                                     harvested[position])
                   for position, device in enumerate(devices)]
        self.backend.put_many(records)
        return records

    def record(self, device_id: str) -> DeviceRecord:
        try:
            return self.backend.get(device_id)
        except KeyError:
            raise AuthenticationFailure(
                f"device {device_id!r} is not enrolled",
                FailureKind.NOT_ENROLLED,
            ) from None

    def revoke(self, device_id: str) -> DeviceRecord:
        """Remove one device from the fleet (decommissioned/compromised)."""
        self.record(device_id)  # uniform not-enrolled failure
        return self.backend.delete(device_id)

    def records(self, device_ids: Iterable[str]) -> List[DeviceRecord]:
        return [self.record(device_id) for device_id in device_ids]

    def iter_records(self) -> Iterator[DeviceRecord]:
        """Records, lazily; on an out-of-core backend each record is
        paged in on demand, so callers must not retain the whole fleet."""
        return self.backend.iter_records()

    def response_matrix(self, device_ids: Iterable[str]) -> np.ndarray:
        """(n_devices, response_bits) stacked current responses."""
        return np.vstack([self.record(d).current_response for d in device_ids])

    def roll(self, device_id: str, new_response: np.ndarray) -> None:
        """Atomically advance one device's rolling CRP."""
        self.record(device_id)  # uniform not-enrolled failure
        self.backend.roll(device_id, new_response)

    def draw_spot_indices(self, device_id: str, k: int,
                          rng: np.random.Generator) -> np.ndarray:
        """Pick ``k`` unused spot-check indices and burn them (anti-replay)."""
        record = self.record(device_id)
        unused = np.flatnonzero(~record.crp_used)
        if unused.size < k:
            raise AuthenticationFailure(
                f"device {device_id!r} has {unused.size} spot CRPs left, "
                f"{k} requested", FailureKind.POOL_EXHAUSTED,
            )
        chosen = rng.choice(unused, size=k, replace=False)
        self.backend.burn_spot_indices(device_id, chosen)
        return np.sort(chosen)

    def transaction(self):
        """Backend group-commit scope (see
        :meth:`~repro.fleet.storage.base.RegistryBackend.transaction`)."""
        return self.backend.transaction()

    @property
    def storage_bytes(self) -> int:
        """Fleet-wide verifier storage — a running total maintained by
        the backend on enroll/roll/revoke, never an O(n) walk."""
        return self.backend.storage_bytes

    def _monolithic_capture(self) -> dict:
        """The portable version-1 capture, built from any backend.

        Byte-identical to the memory backend's :meth:`to_state` — the
        historical archive format, and the migration vehicle between
        backends.
        """
        manifest = {"format": STATE_FORMAT,
                    "version": MONOLITHIC_STATE_VERSION,
                    "devices": []}
        arrays: Dict[str, np.ndarray] = {}
        for index, device_id in enumerate(sorted(self.backend.iter_ids())):
            record = self.backend.get(device_id)
            key = f"d{index:06d}"
            manifest["devices"].append({
                "device_id": device_id,
                "key": key,
                "challenge_bits": int(record.challenge_bits),
                "firmware_hash": to_hex(record.firmware_hash),
                "expected_clock_count": int(record.expected_clock_count),
                "sessions": int(record.sessions),
            })
            # Copies, not views: the registry mutates current_response and
            # crp_used in place, and a snapshot must stay a value capture.
            arrays[f"{key}_response"] = record.current_response.copy()
            arrays[f"{key}_crp_challenges"] = record.crp_challenges.copy()
            arrays[f"{key}_crp_responses"] = record.crp_responses.copy()
            arrays[f"{key}_crp_used"] = record.crp_used.copy()
        return {"manifest": manifest, "arrays": arrays}

    def to_state(self, full: bool = False) -> dict:
        """Capture the registry as ``{"manifest": ..., "arrays": ...}``.

        The memory backend always emits the monolithic version-1 capture
        (every array inline — the historical format).  An out-of-core
        backend flushes incrementally and emits a version-2 *pointer*
        manifest referencing its shard directory; ``full=True`` forces
        the monolithic capture on any backend (portable, but O(fleet)).
        """
        if full:
            return self._monolithic_capture()
        return self.backend.to_state()

    @classmethod
    def from_state(cls, state: dict,
                   backend: Optional[RegistryBackend] = None,
                   ) -> "FleetRegistry":
        """Rebuild a registry from :meth:`to_state` output.

        Monolithic (version-1) states load into ``backend`` (default: a
        fresh memory backend) — passing a sharded backend here is the
        migration path from a legacy archive to out-of-core storage.
        Pointer (version-2) states re-attach the referenced shard
        directory at its recorded generation; ``backend`` must be None.
        """
        manifest = state["manifest"]
        if manifest.get("format") != STATE_FORMAT:
            raise ValueError(
                f"not a fleet-registry state: {manifest.get('format')!r}"
            )
        version = manifest.get("version")
        if version == MONOLITHIC_STATE_VERSION:
            return cls._from_monolithic(state, backend)
        if version == POINTER_STATE_VERSION:
            if backend is not None:
                raise ValueError(
                    "a pointer state re-attaches its own shard directory; "
                    "it cannot load into a caller-supplied backend"
                )
            return cls._from_pointer(manifest)
        raise ValueError(
            f"unsupported state version {version!r}"
        )

    @classmethod
    def _from_monolithic(cls, state: dict,
                         backend: Optional[RegistryBackend],
                         ) -> "FleetRegistry":
        manifest, arrays = state["manifest"], state["arrays"]
        registry = cls(backend)
        records = []
        for entry in manifest["devices"]:
            key = entry["key"]
            # np.array (not asarray): a registry restored from a snapshot
            # must not alias the snapshot's arrays, or its in-place
            # mutations would corrupt a later restore from the same state.
            records.append(DeviceRecord(
                device_id=entry["device_id"],
                challenge_bits=int(entry["challenge_bits"]),
                current_response=np.array(arrays[f"{key}_response"],
                                          dtype=np.uint8),
                firmware_hash=from_hex(entry["firmware_hash"]),
                expected_clock_count=int(entry["expected_clock_count"]),
                crp_challenges=np.array(arrays[f"{key}_crp_challenges"],
                                        dtype=np.uint8),
                crp_responses=np.array(arrays[f"{key}_crp_responses"],
                                       dtype=np.uint8),
                crp_used=np.array(arrays[f"{key}_crp_used"], dtype=bool),
                sessions=int(entry["sessions"]),
            ))
        registry.backend.put_many(records)
        return registry

    @classmethod
    def _from_pointer(cls, manifest: dict) -> "FleetRegistry":
        from repro.fleet.storage.sharded import ShardedFileBackend

        storage = manifest["storage"]
        if storage.get("backend") != ShardedFileBackend.name:
            raise ValueError(
                f"unknown pointer-state backend {storage.get('backend')!r}"
            )
        return cls(ShardedFileBackend.attach(
            storage["root"], generation=storage.get("generation"),
        ))

    def save(self, path: str, full: bool = False) -> str:
        """Persist to one ``.npz`` archive; returns the path written.

        On the sharded backend this writes the lightweight pointer
        snapshot by default (the bulk stays in the shard directory);
        ``full=True`` writes the portable monolithic archive.
        """
        state = self.to_state(full=full)
        return save_state(path, state["manifest"], state["arrays"])

    @classmethod
    def load(cls, path: str,
             backend: Optional[RegistryBackend] = None) -> "FleetRegistry":
        """Load a registry persisted by :meth:`save`.

        ``backend`` (monolithic archives only) selects the storage the
        fleet loads into — the legacy-npz → out-of-core migration path.
        """
        manifest, arrays = load_state(path)
        return cls.from_state({"manifest": manifest, "arrays": arrays},
                              backend=backend)

    def close(self) -> None:
        """Release backend resources (file handles, scratch dirs)."""
        self.backend.close()
