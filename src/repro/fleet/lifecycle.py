"""Fleet lifecycle simulation: fault injection, adversaries, persistence.

:class:`FleetSimulator` drives multi-round authentication campaigns over
a configurable fault model and reports campaign-level statistics.  It is
the torture harness for the two-phase CRP commit of
:class:`~repro.fleet.verifier.BatchVerifier`: every failure ordering the
rolling-CRP scheme must tolerate — lost requests/responses/confirmations,
replayed and corrupted messages, tampered integrity evidence, device
churn, and verifier restarts — is exercised here, and the invariant under
test is always the same: *no device ever desynchronizes from the
registry's rolling CRP*.

Building blocks
---------------
* :class:`FaultModel` — per-message drop probabilities (request /
  response / confirmation), the device retry budget, and
  enrollment/revocation churn rates;
* :class:`Adversary` and its stock subclasses
  (:class:`ReplayAdversary`, :class:`TamperAdversary`,
  :class:`CorruptionAdversary`) — pluggable attackers that tamper with a
  device's integrity measurement or mutate/inject round traffic;
* :class:`CampaignStats` — the aggregate of every per-round
  :class:`~repro.fleet.verifier.BatchAuthReport`, keyed by the shared
  :class:`~repro.protocols.mutual_auth.FailureKind` taxonomy;
* :meth:`FleetSimulator.snapshot` / :meth:`FleetSimulator.restore` — a
  verifier crash/restart: registry and nonce counter come back from the
  persisted state (see :meth:`repro.fleet.registry.FleetRegistry.save`),
  in-flight sessions are lost, and devices recover by plain retry.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import asdict, dataclass, field, fields
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from repro.fleet.registry import FleetRegistry
from repro.fleet.rounds import respond_round
from repro.fleet.storage.base import adopt_scratch
from repro.fleet.verifier import (
    AuthResponse,
    BatchAuthReport,
    BatchVerifier,
    FleetDevice,
)
from repro.protocols.mutual_auth import AuthenticationFailure
from repro.puf.photonic_strong import PhotonicStrongPUF
from repro.utils.rng import derive_rng
from repro.utils.serialization import load_state, save_state


@dataclass
class FaultModel:
    """Per-round fault probabilities and the device retry policy.

    Drop probabilities apply independently per message per attempt:
    ``request_drop`` loses the verifier's nonce on the way out (the
    device never responds), ``response_drop`` loses the device's
    ``m || mac`` message, and ``confirmation_drop`` loses the verifier's
    ``mac'`` — the ordering the two-phase commit exists for, since the
    verifier has already checked the response when the confirmation
    vanishes.  ``max_retries`` bounds how many extra attempts a device
    gets within one round; ``enroll_prob`` / ``revoke_prob`` are the
    per-round probabilities of fleet churn.
    """

    request_drop: float = 0.0
    response_drop: float = 0.0
    confirmation_drop: float = 0.0
    max_retries: int = 3
    enroll_prob: float = 0.0
    revoke_prob: float = 0.0
    min_fleet_size: int = 1

    def __post_init__(self) -> None:
        for name in ("request_drop", "response_drop", "confirmation_drop",
                     "enroll_prob", "revoke_prob"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {value}")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.min_fleet_size < 1:
            # Churn must never revoke the fleet to empty, or campaigns
            # would pass their zero-desync gate vacuously.
            raise ValueError("min_fleet_size must be at least 1")


class Adversary:
    """Base adversary: hooks into each round attempt at two points.

    :meth:`tamper_factor` may override a device's integrity-measurement
    timing before it responds (Fig. 4's CC evidence); :meth:`mutate` sees
    the round's in-flight messages plus a wiretap of earlier rounds'
    traffic and may corrupt entries or inject extras.
    """

    name = "adversary"

    def tamper_factor(self, device_id: str, round_index: int,
                      rng: np.random.Generator) -> Optional[float]:
        return None

    def mutate(self, messages: List[AuthResponse],
               captured: Sequence[AuthResponse],
               rng: np.random.Generator) -> List[AuthResponse]:
        return messages


class TamperAdversary(Adversary):
    """Compromises a device's integrity routine with some probability.

    The slowdown shows up as an out-of-band clock count, which the
    verifier rejects as ``clock-anomaly``.
    """

    name = "tamper"

    def __init__(self, probability: float = 0.1, factor: float = 1.5):
        self.probability = probability
        self.factor = factor

    def tamper_factor(self, device_id: str, round_index: int,
                      rng: np.random.Generator) -> Optional[float]:
        if rng.random() < self.probability:
            return self.factor
        return None


class ReplayAdversary(Adversary):
    """Injects a stale captured message into the round with some probability.

    Stale messages fail the MAC check once the victim's CRP has rolled
    (old key) or the replay-tag/session checks otherwise; when the stale
    message lands *before* the victim's fresh one it additionally trips
    the duplicate-device rejection, forcing the honest device into a
    retry — a denial attempt the retry budget must absorb.
    """

    name = "replay"

    def __init__(self, probability: float = 0.3):
        self.probability = probability

    def mutate(self, messages: List[AuthResponse],
               captured: Sequence[AuthResponse],
               rng: np.random.Generator) -> List[AuthResponse]:
        if not captured or rng.random() >= self.probability:
            return messages
        stale = captured[int(rng.integers(len(captured)))]
        position = int(rng.integers(len(messages) + 1))
        mutated = list(messages)
        mutated.insert(position, stale)
        return mutated


class CorruptionAdversary(Adversary):
    """Corrupts in-flight messages: bit flips and truncations.

    Flipped bodies/tags fail the MAC check; truncations exercise the
    malformed-message path.  Either way the round must fail only the
    victim device.
    """

    name = "corruption"

    def __init__(self, probability: float = 0.1):
        self.probability = probability

    def mutate(self, messages: List[AuthResponse],
               captured: Sequence[AuthResponse],
               rng: np.random.Generator) -> List[AuthResponse]:
        mutated = []
        for message in messages:
            if rng.random() < self.probability:
                mutated.append(self._corrupt(message, rng))
            else:
                mutated.append(message)
        return mutated

    @staticmethod
    def _corrupt(message: AuthResponse,
                 rng: np.random.Generator) -> AuthResponse:
        body, tag = message.body, message.tag
        mode = int(rng.integers(3))
        if mode == 0 and body:
            index = int(rng.integers(len(body)))
            body = body[:index] + bytes([body[index] ^ 0x01]) + body[index + 1:]
        elif mode == 1 and len(body) > 4:
            body = body[: int(rng.integers(1, len(body)))]
        elif tag:
            index = int(rng.integers(len(tag)))
            tag = tag[:index] + bytes([tag[index] ^ 0x01]) + tag[index + 1:]
        return AuthResponse(message.device_id, body, tag)


@dataclass
class CampaignStats:
    """Aggregate outcome of a :meth:`FleetSimulator.run_campaign`."""

    rounds: int = 0
    attempts: int = 0
    authenticated: int = 0
    retries: int = 0
    dropped_requests: int = 0
    dropped_responses: int = 0
    dropped_confirmations: int = 0
    adversary_messages: int = 0
    failures_by_kind: Dict[str, int] = field(default_factory=dict)
    enrolled: int = 0
    revoked: int = 0
    snapshots: int = 0
    restores: int = 0
    desynchronized: int = 0
    elapsed_s: float = 0.0

    @property
    def auths_per_sec(self) -> float:
        return self.authenticated / self.elapsed_s if self.elapsed_s else 0.0

    def count_failure(self, kind: str) -> None:
        self.failures_by_kind[kind] = self.failures_by_kind.get(kind, 0) + 1

    def to_json(self) -> dict:
        payload = asdict(self)
        payload["auths_per_sec"] = round(self.auths_per_sec, 3)
        return payload

    def to_state(self) -> dict:
        """A JSON-faithful snapshot: ``from_state(to_state())`` is
        equality (``to_json`` adds the derived rate, this does not)."""
        return asdict(self)

    @classmethod
    def from_state(cls, state: dict) -> "CampaignStats":
        """Rebuild from :meth:`to_state` output (or a JSON round-trip
        of it); unknown keys — e.g. ``auths_per_sec`` from
        :meth:`to_json` — are ignored."""
        names = {f.name for f in fields(cls)}
        kwargs = {name: value for name, value in state.items()
                  if name in names}
        if "failures_by_kind" in kwargs:
            kwargs["failures_by_kind"] = {
                str(kind): int(count)
                for kind, count in kwargs["failures_by_kind"].items()}
        return cls(**kwargs)


@dataclass
class RoundOutcome:
    """What one :meth:`FleetSimulator.run_round` call achieved."""

    round_index: int
    authenticated: Set[str] = field(default_factory=set)
    unresolved: List[str] = field(default_factory=list)
    retries: int = 0
    reports: List[BatchAuthReport] = field(default_factory=list)


def photonic_device_factory(seed: int = 0, die_offset: int = 1_000_000,
                            prefix: str = "dev-churn",
                            **puf_kwargs) -> Callable[[int], FleetDevice]:
    """Device source for mid-campaign enrollments: one fresh die per call.

    ``die_offset`` keeps churn dies disjoint from the initial fleet's
    die indices under the same design seed.
    """

    def build(index: int) -> FleetDevice:
        puf = PhotonicStrongPUF(seed=seed, die_index=die_offset + index,
                                **puf_kwargs)
        device = FleetDevice(f"{prefix}-{index:06d}", puf)
        device.provision(seed)
        return device

    return build


class FleetSimulator:
    """Drives authentication campaigns over a faulty, hostile network.

    The simulator owns the end-to-end loop of one round: churn, nonce
    issue, device responses (with adversarial tampering), message
    transport (drops, corruption, injected replays), batch verification,
    confirmation delivery, and the finalize/abort decision per device —
    retrying transiently-failed devices within the round up to the fault
    model's budget.  Campaign statistics accumulate in :attr:`stats`.
    """

    def __init__(
        self,
        registry: FleetRegistry,
        devices: Sequence[FleetDevice],
        verifier: Optional[BatchVerifier] = None,
        faults: Optional[FaultModel] = None,
        adversaries: Sequence[Adversary] = (),
        seed: int = 0,
        device_factory: Optional[Callable[[int], FleetDevice]] = None,
        capture_window: int = 256,
        shard_workers: Optional[int] = None,
    ):
        self.registry = registry
        self.devices: Dict[str, FleetDevice] = {
            device.device_id: device for device in devices
        }
        # Incrementally-maintained sorted id list: campaign rounds and
        # churn sampling need the fleet in sorted order every round, and
        # re-sorting the whole fleet per round is O(n log n) x rounds.
        # bisect keeps it O(log n) per enroll/revoke — and the order is
        # byte-identical to sorted(self.devices), so every RNG-driven
        # selection (churn victims) is unchanged.
        self._sorted_ids: List[str] = sorted(self.devices)
        # Sharded execution: attach a multi-core executor to every
        # distinct stacked plane in the fleet, so campaign rounds run
        # one shard per worker through the pipelined scheduler.  Planes
        # that already carry an executor are left as wired.
        self._sharded_planes: List = []
        if shard_workers is not None:
            seen_planes = set()
            for device in self.devices.values():
                plane = device.plane
                if (plane is None or id(plane) in seen_planes
                        or not hasattr(plane, "shard")):
                    continue
                seen_planes.add(id(plane))
                if getattr(plane, "executor", None) is None:
                    plane.shard(n_workers=shard_workers)
                    self._sharded_planes.append(plane)
        self.verifier = verifier or BatchVerifier(registry, seed=seed)
        self.faults = faults or FaultModel()
        self.adversaries = list(adversaries)
        self.seed = seed
        self.capture_window = capture_window
        self.stats = CampaignStats()
        self._rng = derive_rng(seed, "fleet-lifecycle")
        self._captured: List[AuthResponse] = []
        self._device_factory = device_factory
        self._churn_counter = 0
        self._round_index = 0

    @classmethod
    def from_service(cls, service, faults: Optional[FaultModel] = None,
                     adversaries: Sequence[Adversary] = (),
                     **kwargs) -> "FleetSimulator":
        """Drive campaigns against an :class:`repro.service.AuthService`.

        The simulator is just another client of the facade: it shares
        the service's registry, devices, and verifier (duck-typed, so
        this module never imports :mod:`repro.service`).  Equivalent to
        :meth:`repro.service.AuthService.simulator`.
        """
        return cls(
            service.registry, service.device_list, service.verifier,
            faults=faults if faults is not None
            else getattr(service.config, "fault_model", None),
            adversaries=adversaries, seed=service.config.seed, **kwargs,
        )

    # -- lifecycle: churn -------------------------------------------------

    def enroll_device(self, device: FleetDevice,
                      n_spot_crps: int = 0) -> None:
        """Mid-campaign enrollment (provisions the device if needed)."""
        if device.current_response is None:
            device.provision(self.seed)
        self.registry.enroll(device, n_spot_crps=n_spot_crps, seed=self.seed)
        if device.device_id not in self.devices:
            bisect.insort(self._sorted_ids, device.device_id)
        self.devices[device.device_id] = device
        self.stats.enrolled += 1

    def revoke_device(self, device_id: str) -> None:
        """Mid-campaign revocation: registry record and verifier state go."""
        self.registry.revoke(device_id)
        self.verifier.evict(device_id)
        if self.devices.pop(device_id, None) is not None:
            position = bisect.bisect_left(self._sorted_ids, device_id)
            if position < len(self._sorted_ids) \
                    and self._sorted_ids[position] == device_id:
                del self._sorted_ids[position]
        self.stats.revoked += 1

    def _churn(self, rng: np.random.Generator) -> None:
        faults = self.faults
        if (self._device_factory is not None
                and rng.random() < faults.enroll_prob):
            self.enroll_device(self._device_factory(self._churn_counter))
            self._churn_counter += 1
        if (faults.revoke_prob > 0.0
                and len(self.devices) > faults.min_fleet_size
                and rng.random() < faults.revoke_prob):
            ids = self._sorted_ids
            self.revoke_device(ids[int(rng.integers(len(ids)))])

    # -- lifecycle: rounds ------------------------------------------------

    def run_round(self) -> RoundOutcome:
        """One campaign round: every enrolled device attempts one session.

        Devices that fail transiently (drops, adversarial interference)
        are retried with fresh nonces up to ``faults.max_retries`` times;
        whatever is left in ``unresolved`` simply retries next round —
        by the two-phase commit it is still synchronized.
        """
        rng = self._rng
        self._round_index += 1
        self.stats.rounds += 1
        self._churn(rng)
        outcome = RoundOutcome(round_index=self._round_index)
        todo = list(self._sorted_ids)
        for attempt in range(self.faults.max_retries + 1):
            if not todo:
                break
            if attempt:
                self.stats.retries += len(todo)
                outcome.retries += len(todo)
            authenticated = self._attempt(todo, rng, outcome)
            todo = [device_id for device_id in todo
                    if device_id not in authenticated]
        outcome.unresolved = todo
        return outcome

    # -- transport hooks --------------------------------------------------
    #
    # The four verifier touch-points of an attempt are overridable so a
    # transport-backed simulator (e.g. AuthClient → AuthServer over real
    # sockets, tests/service/test_net_equality.py) can reroute them over
    # a wire while the fault/adversary RNG draw sequence — which lives
    # entirely in _attempt — stays bit-identical to the in-process path.

    def _transport_open_round(self, ids: List[str]) -> Dict[str, bytes]:
        return self.verifier.open_round(ids)

    def _transport_verify_round(self, messages: List[AuthResponse],
                                nonces: Dict[str, bytes]):
        return self.verifier.verify_round(messages, nonces)

    def _transport_finalize(self, device_id: str) -> None:
        self.verifier.finalize(device_id)

    def _transport_abort(self, device_id: str) -> None:
        self.verifier.abort(device_id)

    def _attempt(self, ids: List[str], rng: np.random.Generator,
                 outcome: RoundOutcome) -> Set[str]:
        faults = self.faults
        nonces = self._transport_open_round(ids)
        # Decide per-device faults and tamper overrides first (one RNG
        # draw sequence per device, as before), then measure every
        # responding device in one stacked pass per execution plane.
        responders: List[str] = []
        factors: Dict[str, float] = {}
        delivered: Dict[str, bool] = {}
        for device_id in ids:
            self.stats.attempts += 1
            if rng.random() < faults.request_drop:
                self.stats.dropped_requests += 1
                continue
            factor = 1.0
            for adversary in self.adversaries:
                override = adversary.tamper_factor(device_id,
                                                   self._round_index, rng)
                if override is not None:
                    factor = override
            responders.append(device_id)
            factors[device_id] = factor
            if rng.random() < faults.response_drop:
                self.stats.dropped_responses += 1
                delivered[device_id] = False
            else:
                delivered[device_id] = True
        fresh: List[AuthResponse] = respond_round(
            [self.devices[device_id] for device_id in responders],
            nonces, factors,
        )
        messages: List[AuthResponse] = [
            message for message in fresh if delivered[message.device_id]
        ]
        for adversary in self.adversaries:
            before = {id(message) for message in messages}
            messages = list(adversary.mutate(messages, tuple(self._captured),
                                             rng))
            self.stats.adversary_messages += sum(
                1 for message in messages if id(message) not in before
            )
        report = self._transport_verify_round(messages, nonces)
        outcome.reports.append(report)
        for kind in report.failure_kinds.values():
            self.stats.count_failure(kind)
        authenticated: Set[str] = set()
        for device_id, confirmation in report.confirmations.items():
            if rng.random() < faults.confirmation_drop:
                # Delivery timed out after the verifier already accepted
                # the response — the exact ordering that desynchronizes a
                # naive verifier.  Abort keeps both sides on the old CRP.
                self.stats.dropped_confirmations += 1
                self._transport_abort(device_id)
                continue
            try:
                self.devices[device_id].confirm(confirmation,
                                                nonces[device_id])
            except AuthenticationFailure as failure:
                self.stats.count_failure(failure.kind.value)
                self._transport_abort(device_id)
                continue
            self._transport_finalize(device_id)
            authenticated.add(device_id)
            self.stats.authenticated += 1
        # Wiretap for the replay adversary: traffic becomes capturable
        # only after the attempt, so replays are genuinely stale.
        self._captured = (self._captured + fresh)[-self.capture_window:]
        outcome.authenticated |= authenticated
        return authenticated

    def run_campaign(self, n_rounds: int,
                     crash_after_round: Optional[int] = None,
                     snapshot_path: Optional[str] = None) -> CampaignStats:
        """Run ``n_rounds`` rounds, optionally crashing the verifier once.

        With ``crash_after_round`` set, the verifier snapshots its state
        after that round, is discarded, and a fresh verifier resumes from
        the snapshot (round-tripped through ``snapshot_path`` on disk
        when given, in memory otherwise).  Final stats include the
        campaign-end desynchronization count — the number that must be
        zero for the scheme to be fault-tolerant.
        """
        start = time.perf_counter()
        for round_number in range(1, n_rounds + 1):
            self.run_round()
            if crash_after_round is not None \
                    and round_number == crash_after_round:
                if snapshot_path is not None:
                    written = self.save_snapshot(snapshot_path)
                    manifest, arrays = load_state(written)
                    self.restore({"manifest": manifest, "arrays": arrays})
                else:
                    self.restore(self.snapshot())
        self.stats.elapsed_s += time.perf_counter() - start
        self.stats.desynchronized = len(self.desynchronized())
        return self.stats

    def close(self) -> None:
        """Shut down any sharded executors this simulator attached."""
        for plane in self._sharded_planes:
            plane.close_executor()
        self._sharded_planes = []

    # -- lifecycle: persistence -------------------------------------------

    def snapshot(self) -> dict:
        """Everything a restarted verifier needs, plus device-side state.

        The registry arrays and manifest come from
        :meth:`FleetRegistry.to_state`; the verifier's nonce counter and
        each device's durable state ride along in the manifest.
        """
        state = self.registry.to_state()
        state["manifest"]["verifier"] = self.verifier.to_state()
        state["manifest"]["device_states"] = [
            self.devices[device_id].to_state()
            for device_id in sorted(self.devices)
        ]
        self.stats.snapshots += 1
        return state

    def save_snapshot(self, path: str) -> str:
        """Persist :meth:`snapshot` as one ``.npz`` archive."""
        state = self.snapshot()
        return save_state(path, state["manifest"], state["arrays"])

    def restore(self, state: dict) -> None:
        """Verifier restart: rebuild registry + verifier from a snapshot.

        The physical devices are untouched — their rolling state lives on
        the devices themselves.  In-flight sessions die with the old
        verifier; affected devices recover by plain retry because neither
        side committed (two-phase commit).
        """
        old_registry = self.registry
        self.registry = FleetRegistry.from_state(state)
        adopt_scratch(old_registry.backend, self.registry.backend)
        if old_registry.backend is not self.registry.backend:
            old_registry.close()
        self.verifier = BatchVerifier.from_state(
            self.registry, state["manifest"]["verifier"]
        )
        self.stats.restores += 1

    # -- invariants -------------------------------------------------------

    def desynchronized(self) -> List[str]:
        """Devices whose rolling CRP disagrees with the registry's."""
        stranded = []
        for device_id in sorted(self.devices):
            if device_id not in self.registry:
                continue
            device = self.devices[device_id]
            record = self.registry.record(device_id)
            if device.current_response is None or not np.array_equal(
                device.current_response, record.current_response
            ):
                stranded.append(device_id)
        return stranded
