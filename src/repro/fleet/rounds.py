"""Device-side round flow: every device's Fig. 4 turn per plane pass.

This module owns the *mechanism* of one authentication round's device
turns — grouping plane-attached devices, dispatching the stacked tensor
passes, and framing per-device messages while later shards are still
propagating.  It is internal machinery consumed by
:meth:`repro.fleet.verifier.BatchVerifier.authenticate_fleet` and the
lifecycle simulator; the supported public entry point is
:class:`repro.service.AuthService`.  The former free functions
``respond_fleet`` / ``respond_fleet_staged`` in
:mod:`repro.fleet.verifier` are deprecated shims over these.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.protocols.mutual_auth import derive_challenge_batch


def respond_round_staged(
    devices: Sequence,
    nonces: Dict[str, bytes],
    tamper_factors: Optional[Dict[str, float]] = None,
) -> Iterator[Tuple[List[int], List]]:
    """Device turns as a pipeline of per-shard stages.

    Yields ``(positions, messages)`` chunks: the challenge-derivation
    stage runs up front per plane group (one batched DRBG expansion),
    the plane pass runs per shard (on the plane's sharded executor when
    one is attached — see
    :meth:`~repro.puf.photonic_strong.PhotonicFleet.shard`), and the
    MAC-framing stage for shard ``i`` runs *while shard ``i + 1`` is
    still propagating* — the consumer (the pipelined
    :meth:`~repro.fleet.verifier.BatchVerifier.authenticate_fleet`)
    likewise overlaps its verification stage with later shards' plane
    passes.

    Unattached devices (heterogeneous hardware, mid-campaign churn
    before re-stacking) fall back to their own batch-1
    :meth:`~repro.fleet.verifier.FleetDevice.respond` and are yielded as
    the first chunk.  Concatenating all chunks by position reproduces
    the flat :func:`respond_round` output exactly.
    """
    tamper_factors = tamper_factors or {}
    fallback: List[int] = []
    groups: Dict[int, List[int]] = {}
    planes: Dict[int, object] = {}
    for position, device in enumerate(devices):
        if (device.plane is None or device.plane_row is None
                or device.current_response is None):
            fallback.append(position)
        else:
            groups.setdefault(id(device.plane), []).append(position)
            planes[id(device.plane)] = device.plane
    # Dispatch every plane group's pass first (an attached executor's
    # workers start immediately), so the fallback devices' batch-1 turns
    # and all per-shard framing below overlap the in-flight passes.
    dispatched: List[tuple] = []
    for key, positions in groups.items():
        plane = planes[key]
        members = [devices[p] for p in positions]
        stored = np.vstack([device.current_response for device in members])
        challenges = derive_challenge_batch(
            stored, members[0].puf.challenge_bits
        )
        rows = [device.plane_row for device in members]
        if hasattr(plane, "evaluate_staged"):
            staged = plane.evaluate_staged(challenges[:, np.newaxis, :],
                                           dies=rows)
        else:  # duck-typed plane without a staged path: one chunk
            staged = iter([(
                np.arange(len(rows)),
                plane.evaluate(challenges[:, np.newaxis, :], dies=rows),
            )])
        dispatched.append((positions, challenges, staged))
    if fallback:
        yield fallback, [
            devices[position].respond(
                nonces[devices[position].device_id],
                tamper_factors.get(devices[position].device_id, 1.0),
            )
            for position in fallback
        ]
    for positions, challenges, staged in dispatched:
        for chunk, fresh in staged:
            chunk_positions: List[int] = []
            messages: List = []
            for index, local in enumerate(np.asarray(chunk, dtype=np.intp)):
                position = positions[local]
                device = devices[position]
                chunk_positions.append(position)
                messages.append(device.assemble_response(
                    challenges[local], fresh[index, 0, :],
                    nonces[device.device_id],
                    tamper_factors.get(device.device_id, 1.0),
                ))
            yield chunk_positions, messages


def respond_round(
    devices: Sequence,
    nonces: Dict[str, bytes],
    tamper_factors: Optional[Dict[str, float]] = None,
) -> List:
    """Every device's Fig. 4 turn, measured as one tensor pass per plane.

    Devices attached to a stacked execution plane are grouped: their next
    challenges are gathered first (:func:`derive_challenge_batch`), all
    fresh responses come back from the plane's tensor pass — sharded
    across worker cores when an executor is attached — and only the
    per-device message framing remains sequential.  Message order
    matches ``devices``.  (This is the flat view of
    :func:`respond_round_staged`.)
    """
    messages: List = [None] * len(devices)
    for positions, chunk in respond_round_staged(devices, nonces,
                                                 tamper_factors):
        for position, message in zip(positions, chunk):
            messages[position] = message
    return messages
