"""Fleet-scale enrollment, batch authentication, and lifecycle simulation.

Built on the compiled photonic engine: enrollment harvests CRPs through
``evaluate_batch`` in single vectorized passes, and :class:`BatchVerifier`
serves many mutual-auth-style sessions (or Hamming-threshold spot checks)
per call.  See ``registry`` for the verifier-side state (with npz+JSON
persistence), ``verifier`` for the protocol, ``lifecycle`` for the
fault-injection campaign simulator (:class:`FleetSimulator`), and
``storage`` for the pluggable registry backends (in-memory reference
vs. out-of-core sharded files).
"""

from repro.fleet.lifecycle import (
    Adversary,
    CampaignStats,
    CorruptionAdversary,
    FaultModel,
    FleetSimulator,
    ReplayAdversary,
    RoundOutcome,
    TamperAdversary,
    photonic_device_factory,
)
from repro.fleet.registry import DeviceRecord, FleetRegistry
from repro.fleet.rounds import respond_round, respond_round_staged
from repro.fleet.storage import (
    MemoryBackend,
    RegistryBackend,
    ShardedFileBackend,
    make_backend,
)
from repro.fleet.verifier import (
    AuthResponse,
    BatchAuthReport,
    BatchVerifier,
    CoalescedAuth,
    FleetDevice,
    RoundCoalescer,
    SpotCheckReport,
    provision_fleet,
    respond_fleet,
    respond_fleet_staged,
)

__all__ = [
    "Adversary",
    "AuthResponse",
    "BatchAuthReport",
    "BatchVerifier",
    "CampaignStats",
    "CoalescedAuth",
    "CorruptionAdversary",
    "DeviceRecord",
    "FaultModel",
    "FleetDevice",
    "FleetRegistry",
    "FleetSimulator",
    "MemoryBackend",
    "RegistryBackend",
    "ReplayAdversary",
    "RoundCoalescer",
    "RoundOutcome",
    "ShardedFileBackend",
    "SpotCheckReport",
    "TamperAdversary",
    "make_backend",
    "photonic_device_factory",
    "provision_fleet",
    "respond_fleet",
    "respond_fleet_staged",
    "respond_round",
    "respond_round_staged",
]
