"""Fleet-scale enrollment and batch authentication.

Built on the compiled photonic engine: enrollment harvests CRPs through
``evaluate_batch`` in single vectorized passes, and :class:`BatchVerifier`
serves many mutual-auth-style sessions (or Hamming-threshold spot checks)
per call.  See ``registry`` for the verifier-side state and ``verifier``
for the protocol.
"""

from repro.fleet.registry import DeviceRecord, FleetRegistry
from repro.fleet.verifier import (
    AuthResponse,
    BatchAuthReport,
    BatchVerifier,
    FleetDevice,
    SpotCheckReport,
    provision_fleet,
)

__all__ = [
    "DeviceRecord",
    "FleetRegistry",
    "AuthResponse",
    "BatchAuthReport",
    "BatchVerifier",
    "FleetDevice",
    "SpotCheckReport",
    "provision_fleet",
]
