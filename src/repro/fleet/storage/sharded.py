"""Out-of-core registry storage: sharded files, mmap paging, a WAL.

:class:`ShardedFileBackend` holds a fleet's device records on disk so
registry size is bounded by storage, not RAM — the path to the
million-device fleet on a laptop:

* **Sharding.**  Each device hashes (CRC-32 of its id) into one of
  ``n_shards`` shards.  A shard owns three files: an append-only
  ``pool-XXXX.bin`` holding the immutable spot-CRP pools, a fixed-slot
  ``state-XXXX.bin`` holding the small mutable state (rolling response,
  burn mask, session counter, firmware hash), and a ``meta-XXXX.npz``
  manifest of the shard's record layout (written only when the shard's
  *membership* changes — rolls never touch it).
* **Lazy CRP-pool paging.**  Pools are served as zero-copy
  ``numpy.frombuffer`` views over a per-shard ``mmap``; a spot check
  that reads ``k`` pool rows faults in just those pages.  Pool bytes
  are never resident unless touched.
* **LRU-bounded resident set.**  Materialized records (the mutable
  state plus pool views) live in a clean-record LRU capped at
  ``resident_records``; records dirtied since the last snapshot are
  pinned until flushed.  The in-memory index keeps only a compact
  per-device layout entry (a few dozen bytes), never the arrays.
* **Write-ahead journaling.**  Every enroll/roll/burn/revoke appends
  one journal line *before* the next snapshot persists it, so
  :meth:`ShardedFileBackend.to_state` is an O(dirty) incremental flush
  — slot writes for rolled devices plus manifests for churned shards;
  the pool bytes (the fleet's bulk) are written once at enrollment and
  never again.  Reopening a crashed backend replays the journal
  (``replay_journal=True``); restoring a snapshot truncates it.

The emitted state is a *pointer* manifest (``version 2``) referencing
the shard directory plus a generation stamp; restoring checks the
generation so a stale pointer can never silently read newer state.
"""

from __future__ import annotations

import json
import mmap
import os
import tempfile
import zlib
from contextlib import contextmanager
from typing import Dict, Iterable, Iterator, List, Optional, Set

import numpy as np

from repro.fleet.storage.base import DeviceRecord, RegistryBackend
from repro.fleet.storage.memory import POINTER_STATE_VERSION, STATE_FORMAT

#: ``backend.json`` format stamp.
DIR_FORMAT = "fleet-registry-shards"
DIR_SCHEMA = 1

_SESSIONS_BYTES = 8


class _Entry:
    """Compact always-resident layout of one device (no arrays)."""

    __slots__ = ("shard", "pool_off", "n_pool", "challenge_bits",
                 "response_bits", "expected_clock_count", "fw_len",
                 "state_off", "record", "dirty")

    def __init__(self, shard: int, pool_off: int, n_pool: int,
                 challenge_bits: int, response_bits: int,
                 expected_clock_count: int, fw_len: int, state_off: int):
        self.shard = shard
        self.pool_off = pool_off
        self.n_pool = n_pool
        self.challenge_bits = challenge_bits
        self.response_bits = response_bits
        self.expected_clock_count = expected_clock_count
        self.fw_len = fw_len
        self.state_off = state_off
        self.record: Optional[DeviceRecord] = None
        self.dirty = False

    @property
    def slot_len(self) -> int:
        return (self.response_bits + self.n_pool + _SESSIONS_BYTES
                + self.fw_len)

    @property
    def pool_len(self) -> int:
        return self.n_pool * (self.challenge_bits + self.response_bits)

    @property
    def storage_bytes(self) -> int:
        rolling = -(-self.response_bits // 8)
        pool = (-(-self.n_pool * self.challenge_bits // 8)
                + -(-self.n_pool * self.response_bits // 8))
        return rolling + self.fw_len + pool


def _shard_of(device_id: str, n_shards: int) -> int:
    return zlib.crc32(device_id.encode()) % n_shards


class ShardedFileBackend(RegistryBackend):
    """Append-only sharded files + mmap paging + WAL journaling.

    ``root=None`` uses an ephemeral scratch directory (removed when the
    backend is garbage-collected / closed); pass a path for durable
    storage.  Opening a ``root`` that already holds a shard directory
    resumes it — replaying the journal by default, so an unclean
    shutdown loses nothing that reached the WAL.
    """

    name = "sharded"

    def __init__(self, root: Optional[str] = None, *,
                 n_shards: int = 64, resident_records: int = 65536,
                 replay_journal: bool = True):
        if n_shards < 1:
            raise ValueError(f"n_shards must be >= 1, got {n_shards}")
        if resident_records < 1:
            raise ValueError(
                f"resident_records must be >= 1, got {resident_records}"
            )
        self._tmpdir = None
        if root is None:
            self._tmpdir = tempfile.TemporaryDirectory(
                prefix="repro-registry-")
            root = self._tmpdir.name
        self.root = str(root)
        self._resident_records = int(resident_records)
        self._index: Dict[str, _Entry] = {}
        self._members: List[Dict[str, None]] = []   # per-shard ordered ids
        self._resident: Dict[str, None] = {}        # clean-record LRU
        self._dirty: Dict[str, None] = {}           # pinned until snapshot
        self._dirty_shards: Set[int] = set()        # membership changed
        self._storage_bytes = 0
        self._txn_depth = 0
        self._txn_buffer: List[str] = []
        self._pool_maps: List[Optional[mmap.mmap]] = []
        self.stats = {"faults": 0, "evictions": 0, "wal_records": 0,
                      "checkpoints": 0}
        self._obs = None                 # set by repro.obs.instrument_backend
        existing = os.path.exists(self._dir_manifest_path())
        if existing:
            self._open_existing(replay_journal=replay_journal)
        else:
            self._create_fresh(n_shards)

    # -- directory layout --------------------------------------------------

    def _dir_manifest_path(self) -> str:
        return os.path.join(self.root, "backend.json")

    def _wal_path(self) -> str:
        return os.path.join(self.root, "wal.log")

    def _shard_path(self, kind: str, shard: int, ext: str = "bin") -> str:
        return os.path.join(self.root, "shards", f"{kind}-{shard:04d}.{ext}")

    def _create_fresh(self, n_shards: int) -> None:
        os.makedirs(os.path.join(self.root, "shards"), exist_ok=True)
        self.n_shards = int(n_shards)
        self.generation = 0
        self._open_files()
        self._members = [dict() for _ in range(self.n_shards)]
        self._write_dir_manifest()

    def _open_existing(self, replay_journal: bool) -> None:
        with open(self._dir_manifest_path()) as handle:
            manifest = json.load(handle)
        if manifest.get("format") != DIR_FORMAT:
            raise ValueError(
                f"{self.root!r} is not a registry shard directory "
                f"(format {manifest.get('format')!r})"
            )
        if int(manifest.get("schema", -1)) != DIR_SCHEMA:
            raise ValueError(
                f"{self.root!r} uses shard schema "
                f"{manifest.get('schema')!r}; this build reads "
                f"{DIR_SCHEMA} only"
            )
        self.n_shards = int(manifest["n_shards"])
        self.generation = int(manifest["generation"])
        self._open_files()
        self._members = [dict() for _ in range(self.n_shards)]
        self._load_shard_manifests()
        if replay_journal:
            self._replay_wal()
        else:
            os.ftruncate(self._wal_fd, 0)
            self._wal_end = 0

    def _open_files(self) -> None:
        flags = os.O_RDWR | os.O_CREAT
        self._pool_fds, self._state_fds = [], []
        self._pool_end, self._state_end = [], []
        for shard in range(self.n_shards):
            pool_fd = os.open(self._shard_path("pool", shard), flags, 0o644)
            state_fd = os.open(self._shard_path("state", shard), flags, 0o644)
            self._pool_fds.append(pool_fd)
            self._state_fds.append(state_fd)
            self._pool_end.append(os.fstat(pool_fd).st_size)
            self._state_end.append(os.fstat(state_fd).st_size)
        self._pool_maps = [None] * self.n_shards
        self._wal_fd = os.open(self._wal_path(), flags, 0o644)
        self._wal_end = os.fstat(self._wal_fd).st_size

    def _write_dir_manifest(self) -> None:
        payload = {"format": DIR_FORMAT, "schema": DIR_SCHEMA,
                   "n_shards": self.n_shards,
                   "generation": self.generation,
                   "n_devices": len(self._index)}
        with open(self._dir_manifest_path(), "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")

    # -- shard manifests ---------------------------------------------------

    _META_FIELDS = ("pool_off", "n_pool", "challenge_bits", "response_bits",
                    "expected_clock_count", "fw_len", "state_off")

    def _write_shard_manifest(self, shard: int) -> None:
        ids = list(self._members[shard])
        columns = {field: np.array(
            [getattr(self._index[i], field) for i in ids], dtype=np.int64)
            for field in self._META_FIELDS}
        np.savez(self._shard_path("meta", shard, ext="npz"),
                 ids=np.array(ids) if ids else np.array([], dtype="U1"),
                 **columns)

    def _load_shard_manifests(self) -> None:
        entries: List[tuple] = []
        for shard in range(self.n_shards):
            path = self._shard_path("meta", shard, ext="npz")
            if not os.path.exists(path):
                continue
            with np.load(path) as archive:
                ids = [str(device_id) for device_id in archive["ids"]]
                columns = {field: archive[field]
                           for field in self._META_FIELDS}
            for row, device_id in enumerate(ids):
                entries.append((device_id, _Entry(
                    shard, *(int(columns[field][row])
                             for field in self._META_FIELDS))))
        # Sorted insertion: a restored registry iterates in sorted id
        # order on every backend (the monolithic manifest is written
        # sorted too), so iteration order never depends on the store.
        for device_id, entry in sorted(entries):
            self._index[device_id] = entry
            self._members[entry.shard][device_id] = None
            self._storage_bytes += entry.storage_bytes

    # -- WAL ---------------------------------------------------------------

    def _wal_append(self, op: dict) -> None:
        line = json.dumps(op, sort_keys=True) + "\n"
        self.stats["wal_records"] += 1
        if self._txn_depth > 0:
            self._txn_buffer.append(line)
            return
        self._wal_write(line)

    def _wal_write(self, text: str) -> None:
        data = text.encode()
        os.pwrite(self._wal_fd, data, self._wal_end)
        self._wal_end += len(data)

    @contextmanager
    def transaction(self):
        self._txn_depth += 1
        try:
            yield self
        finally:
            self._txn_depth -= 1
            if self._txn_depth == 0 and self._txn_buffer:
                buffered, self._txn_buffer = self._txn_buffer, []
                self._wal_write("".join(buffered))

    def _replay_wal(self) -> None:
        with open(self._wal_path(), "rb") as handle:
            raw = handle.read()
        for line in raw.splitlines():
            if not line.strip():
                continue
            op = json.loads(line)
            kind = op["op"]
            device_id = op["id"]
            if kind == "enroll":
                entry = _Entry(op["shard"], op["pool_off"], op["n_pool"],
                               op["cb"], op["rb"], op["cc"], op["fw_len"],
                               op["state_off"])
                self._index[device_id] = entry
                self._members[entry.shard][device_id] = None
                self._dirty_shards.add(entry.shard)
                self._storage_bytes += entry.storage_bytes
            elif kind == "roll":
                record = self._materialize(device_id)
                record.current_response = np.frombuffer(
                    bytes.fromhex(op["resp"]), dtype=np.uint8).copy()
                record.sessions = int(op["sessions"])
                self._mark_dirty(device_id)
            elif kind == "burn":
                record = self._materialize(device_id)
                record.crp_used[np.asarray(op["idx"], dtype=np.intp)] = True
                self._mark_dirty(device_id)
            elif kind == "revoke":
                entry = self._index.pop(device_id)
                self._members[entry.shard].pop(device_id, None)
                self._dirty_shards.add(entry.shard)
                self._storage_bytes -= entry.storage_bytes
                self._resident.pop(device_id, None)
                self._dirty.pop(device_id, None)
            else:  # pragma: no cover - forward-compat guard
                raise ValueError(f"unknown WAL op {kind!r}")

    # -- paging ------------------------------------------------------------

    def _pool_view(self, shard: int, end: int) -> mmap.mmap:
        current = self._pool_maps[shard]
        if current is None or current.size() < end:
            # The superseded map stays alive as long as any served pool
            # view references it (numpy holds the buffer); dropping the
            # reference lets the GC unmap it once the views die.
            self._pool_maps[shard] = mmap.mmap(
                self._pool_fds[shard], self._pool_end[shard],
                access=mmap.ACCESS_READ,
            )
        return self._pool_maps[shard]

    def _materialize(self, device_id: str) -> DeviceRecord:
        entry = self._index[device_id]
        if entry.record is not None:
            if not entry.dirty:
                self._resident[device_id] = self._resident.pop(
                    device_id, None)  # LRU touch
            return entry.record
        self.stats["faults"] += 1
        slot = os.pread(self._state_fds[entry.shard], entry.slot_len,
                        entry.state_off)
        if len(slot) != entry.slot_len:  # pragma: no cover - corruption
            raise ValueError(
                f"truncated state slot for device {device_id!r}"
            )
        rb, n_pool = entry.response_bits, entry.n_pool
        response = np.frombuffer(slot[:rb], dtype=np.uint8).copy()
        used = np.frombuffer(slot[rb:rb + n_pool], dtype=np.uint8) != 0
        sessions = int.from_bytes(
            slot[rb + n_pool:rb + n_pool + _SESSIONS_BYTES], "big")
        firmware = bytes(slot[rb + n_pool + _SESSIONS_BYTES:])
        if n_pool:
            view = self._pool_view(entry.shard,
                                   entry.pool_off + entry.pool_len)
            challenge_len = n_pool * entry.challenge_bits
            challenges = np.frombuffer(
                view, dtype=np.uint8, count=challenge_len,
                offset=entry.pool_off,
            ).reshape(n_pool, entry.challenge_bits)
            responses = np.frombuffer(
                view, dtype=np.uint8, count=n_pool * rb,
                offset=entry.pool_off + challenge_len,
            ).reshape(n_pool, rb)
        else:
            challenges = np.zeros((0, entry.challenge_bits), dtype=np.uint8)
            responses = np.zeros((0, rb), dtype=np.uint8)
        entry.record = DeviceRecord(
            device_id=device_id,
            challenge_bits=entry.challenge_bits,
            current_response=response,
            firmware_hash=firmware,
            expected_clock_count=entry.expected_clock_count,
            crp_challenges=challenges,
            crp_responses=responses,
            crp_used=used,
            sessions=sessions,
        )
        self._resident[device_id] = None
        self._evict_excess()
        return entry.record

    @property
    def resident_records(self) -> int:
        """Resident-set cap; shrinking it evicts clean records at once."""
        return self._resident_records

    @resident_records.setter
    def resident_records(self, value: int) -> None:
        value = int(value)
        if value < 1:
            raise ValueError(f"resident_records must be >= 1, got {value}")
        self._resident_records = value
        self._evict_excess()

    def _evict_excess(self) -> None:
        while len(self._resident) > self._resident_records:
            evicted = next(iter(self._resident))
            del self._resident[evicted]
            self._index[evicted].record = None
            self.stats["evictions"] += 1

    def _mark_dirty(self, device_id: str) -> None:
        entry = self._index[device_id]
        entry.dirty = True
        self._resident.pop(device_id, None)
        self._dirty[device_id] = None

    def _slot_bytes(self, entry: _Entry, record: DeviceRecord) -> bytes:
        return (np.ascontiguousarray(record.current_response,
                                     dtype=np.uint8).tobytes()
                + np.ascontiguousarray(record.crp_used,
                                       dtype=np.uint8).tobytes()
                + int(record.sessions).to_bytes(_SESSIONS_BYTES, "big")
                + bytes(record.firmware_hash))

    # -- storage -----------------------------------------------------------

    def get(self, device_id: str) -> DeviceRecord:
        if device_id not in self._index:
            raise KeyError(device_id)
        return self._materialize(device_id)

    def _stage_put(self, record: DeviceRecord,
                   pool_chunks: Dict[int, List[bytes]],
                   state_chunks: Dict[int, List[bytes]]) -> None:
        device_id = record.device_id
        if device_id in self._index:
            raise ValueError(f"device {device_id!r} already enrolled")
        shard = _shard_of(device_id, self.n_shards)
        challenges = np.ascontiguousarray(record.crp_challenges,
                                          dtype=np.uint8)
        responses = np.ascontiguousarray(record.crp_responses,
                                         dtype=np.uint8)
        entry = _Entry(
            shard, self._pool_end[shard], int(challenges.shape[0]),
            int(record.challenge_bits), int(record.current_response.size),
            int(record.expected_clock_count), len(record.firmware_hash),
            self._state_end[shard],
        )
        if entry.n_pool:
            blob = challenges.tobytes() + responses.tobytes()
            pool_chunks.setdefault(shard, []).append(blob)
            self._pool_end[shard] += len(blob)
        slot = self._slot_bytes(entry, record)
        state_chunks.setdefault(shard, []).append(slot)
        self._state_end[shard] += len(slot)
        self._index[device_id] = entry
        self._members[shard][device_id] = None
        self._dirty_shards.add(shard)
        self._storage_bytes += entry.storage_bytes
        self._wal_append({"op": "enroll", "id": device_id, "shard": shard,
                          "pool_off": entry.pool_off,
                          "n_pool": entry.n_pool,
                          "cb": entry.challenge_bits,
                          "rb": entry.response_bits,
                          "cc": entry.expected_clock_count,
                          "fw_len": entry.fw_len,
                          "state_off": entry.state_off})
        # Serve the caller's record object while it stays resident; the
        # slab copy just written makes it evictable immediately.
        entry.record = record
        self._resident[device_id] = None

    def _flush_chunks(self, pool_chunks: Dict[int, List[bytes]],
                      state_chunks: Dict[int, List[bytes]]) -> None:
        for shard, blobs in pool_chunks.items():
            blob = b"".join(blobs)
            os.pwrite(self._pool_fds[shard], blob,
                      self._pool_end[shard] - len(blob))
        for shard, blobs in state_chunks.items():
            blob = b"".join(blobs)
            os.pwrite(self._state_fds[shard], blob,
                      self._state_end[shard] - len(blob))

    def put(self, record: DeviceRecord) -> None:
        pool_chunks: Dict[int, List[bytes]] = {}
        state_chunks: Dict[int, List[bytes]] = {}
        self._stage_put(record, pool_chunks, state_chunks)
        self._flush_chunks(pool_chunks, state_chunks)
        self._evict_excess()

    def put_many(self, records: Iterable[DeviceRecord]) -> None:
        """Batch enrollment: one pool + one state write per shard."""
        pool_chunks: Dict[int, List[bytes]] = {}
        state_chunks: Dict[int, List[bytes]] = {}
        with self.transaction():
            for record in records:
                self._stage_put(record, pool_chunks, state_chunks)
        self._flush_chunks(pool_chunks, state_chunks)
        self._evict_excess()

    def delete(self, device_id: str) -> DeviceRecord:
        record = self.get(device_id)
        entry = self._index.pop(device_id)
        self._members[entry.shard].pop(device_id, None)
        self._dirty_shards.add(entry.shard)
        self._storage_bytes -= entry.storage_bytes
        self._resident.pop(device_id, None)
        self._dirty.pop(device_id, None)
        self._wal_append({"op": "revoke", "id": device_id})
        return record

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._index

    def __len__(self) -> int:
        return len(self._index)

    def iter_ids(self) -> Iterator[str]:
        return iter(self._index)

    # -- protocol mutations ------------------------------------------------

    def roll(self, device_id: str, new_response: np.ndarray) -> None:
        record = self._materialize(device_id)
        new_response = np.asarray(new_response, dtype=np.uint8)
        if new_response.size != self._index[device_id].response_bits:
            raise ValueError(
                f"rolled response holds {new_response.size} bits; device "
                f"{device_id!r} enrolled with "
                f"{self._index[device_id].response_bits} (fixed-slot "
                "storage cannot resize a rolling CRP)"
            )
        record.current_response = new_response
        record.sessions += 1
        self._mark_dirty(device_id)
        self._wal_append({"op": "roll", "id": device_id,
                          "resp": new_response.tobytes().hex(),
                          "sessions": int(record.sessions)})

    def burn_spot_indices(self, device_id: str,
                          indices: np.ndarray) -> None:
        record = self._materialize(device_id)
        record.crp_used[indices] = True
        self._mark_dirty(device_id)
        self._wal_append({"op": "burn", "id": device_id,
                          "idx": [int(i) for i in np.asarray(indices)]})

    # -- accounting --------------------------------------------------------

    @property
    def storage_bytes(self) -> int:
        return self._storage_bytes

    @property
    def resident_count(self) -> int:
        """Materialized records currently held in memory."""
        return len(self._resident) + len(self._dirty)

    # -- persistence -------------------------------------------------------

    def checkpoint(self) -> int:
        """Incremental flush: dirty slots + churned shard manifests.

        O(records dirtied since the last checkpoint) slot writes plus
        one manifest rewrite per shard whose membership changed — pool
        bytes are never rewritten.  Truncates the journal and bumps the
        generation; a no-op (same generation) when nothing changed.
        """
        if not (self._dirty or self._dirty_shards or self._wal_end
                or self._txn_buffer):
            return self.generation
        obs = self._obs
        started = obs.registry.clock() if obs is not None else 0.0
        written = 0
        for device_id in self._dirty:
            entry = self._index[device_id]
            blob = self._slot_bytes(entry, entry.record)
            os.pwrite(self._state_fds[entry.shard], blob, entry.state_off)
            written += len(blob)
            entry.dirty = False
            self._resident[device_id] = None
        self._dirty.clear()
        for shard in sorted(self._dirty_shards):
            self._write_shard_manifest(shard)
        self._dirty_shards.clear()
        self._txn_buffer.clear()
        os.ftruncate(self._wal_fd, 0)
        self._wal_end = 0
        self.generation += 1
        self._write_dir_manifest()
        self.stats["checkpoints"] += 1
        if obs is not None:
            obs.on_checkpoint(written, obs.registry.clock() - started)
        self._evict_excess()
        return self.generation

    def pointer_state(self) -> dict:
        """The lightweight manifest referencing this backend's shards."""
        return {
            "manifest": {
                "format": STATE_FORMAT,
                "version": POINTER_STATE_VERSION,
                "storage": {"backend": self.name, "root": self.root,
                            "generation": self.generation,
                            "n_shards": self.n_shards,
                            "n_devices": len(self._index)},
            },
            "arrays": {},
        }

    def to_state(self) -> dict:
        self.checkpoint()
        return self.pointer_state()

    @classmethod
    def attach(cls, root: str, *, generation: Optional[int] = None,
               resident_records: int = 65536) -> "ShardedFileBackend":
        """Reopen a shard directory at its last snapshot.

        Post-snapshot journal entries are *discarded* (that is what
        restoring a snapshot means); pass the directory to the
        constructor instead to resume with journal replay.  With
        ``generation`` given, refuses to attach when the directory has
        snapshotted past it — a stale pointer must fail loudly, never
        silently read newer state.
        """
        backend = cls(root, resident_records=resident_records,
                      replay_journal=False)
        if generation is not None and backend.generation != int(generation):
            backend.close()
            raise ValueError(
                f"snapshot generation {generation} is superseded: "
                f"{root!r} is at generation {backend.generation} "
                "(each checkpoint invalidates earlier pointer states; "
                "save full archives for long-lived copies)"
            )
        return backend

    def compact(self) -> None:
        """Rewrite shard files dropping dead bytes (revoked devices,
        orphaned post-snapshot appends), then checkpoint."""
        self.checkpoint()
        for shard in range(self.n_shards):
            pool_parts: List[bytes] = []
            state_parts: List[bytes] = []
            pool_off = state_off = 0
            for device_id in self._members[shard]:
                entry = self._index[device_id]
                if entry.n_pool:
                    view = self._pool_view(
                        shard, entry.pool_off + entry.pool_len)
                    pool_parts.append(
                        view[entry.pool_off:entry.pool_off + entry.pool_len])
                slot = os.pread(self._state_fds[shard], entry.slot_len,
                                entry.state_off)
                state_parts.append(slot)
                entry.pool_off, entry.state_off = pool_off, state_off
                entry.record = None
                pool_off += entry.pool_len if entry.n_pool else 0
                state_off += entry.slot_len
            for kind, parts, fds, ends in (
                ("pool", pool_parts, self._pool_fds, self._pool_end),
                ("state", state_parts, self._state_fds, self._state_end),
            ):
                path = self._shard_path(kind, shard)
                scratch = path + ".compact"
                with open(scratch, "wb") as handle:
                    handle.write(b"".join(parts))
                os.replace(scratch, path)
                os.close(fds[shard])
                fds[shard] = os.open(path, os.O_RDWR)
                ends[shard] = os.fstat(fds[shard]).st_size
            self._pool_maps[shard] = None
            self._write_shard_manifest(shard)
        self._resident.clear()
        self.generation += 1
        self._write_dir_manifest()

    def __del__(self):  # pragma: no cover - GC-timing dependent
        try:
            self.close()
        except Exception:
            pass

    def close(self) -> None:
        for fd in getattr(self, "_pool_fds", []):
            os.close(fd)
        for fd in getattr(self, "_state_fds", []):
            os.close(fd)
        if getattr(self, "_wal_fd", None) is not None:
            os.close(self._wal_fd)
        self._pool_fds, self._state_fds, self._wal_fd = [], [], None
        for position, pool_map in enumerate(self._pool_maps):
            if pool_map is not None:
                try:
                    pool_map.close()
                except BufferError:  # served views still alive
                    pass
                self._pool_maps[position] = None
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None
