"""Pluggable registry storage backends.

See :mod:`repro.fleet.storage.base` for the contract.  The fleet
registry picks its backend via :func:`make_backend` (driven by
``FleetConfig.registry_backend``): ``"memory"`` is the dict-backed
reference, ``"sharded"`` pages a fleet of any size from append-only
shard files with an LRU-bounded resident set.
"""

from repro.fleet.storage.base import (
    BACKEND_NAMES,
    DeviceRecord,
    RegistryBackend,
    make_backend,
)
from repro.fleet.storage.memory import (
    MONOLITHIC_STATE_VERSION,
    POINTER_STATE_VERSION,
    STATE_FORMAT,
    MemoryBackend,
)
from repro.fleet.storage.sharded import ShardedFileBackend

__all__ = [
    "BACKEND_NAMES",
    "DeviceRecord",
    "MONOLITHIC_STATE_VERSION",
    "POINTER_STATE_VERSION",
    "STATE_FORMAT",
    "MemoryBackend",
    "RegistryBackend",
    "ShardedFileBackend",
    "make_backend",
]
