"""The registry storage contract: :class:`RegistryBackend`.

:class:`~repro.fleet.registry.FleetRegistry` is a thin façade; every
byte of verifier-side device state lives behind a backend implementing
this protocol.  Two implementations ship:

* :class:`~repro.fleet.storage.memory.MemoryBackend` — an in-process
  dict, bit-for-bit the registry's historical behavior and the
  reference every other backend is pinned against;
* :class:`~repro.fleet.storage.sharded.ShardedFileBackend` — an
  out-of-core store: device records hashed into append-only shard
  files, CRP pools served as memory-mapped views (only touched rows
  are faulted in), an LRU-bounded resident set, and write-ahead
  roll/revoke journaling so a snapshot is an O(dirty) incremental
  flush.

The contract is deliberately *record-shaped*: backends store and serve
:class:`~repro.fleet.registry.DeviceRecord` values, and the protocol
mutators (:meth:`RegistryBackend.roll`,
:meth:`RegistryBackend.burn_spot_indices`) mirror the only in-place
mutations the registry performs, so a backend can journal them.  All
other record fields are immutable after enrollment.

Backends also maintain the registry's running ``storage_bytes`` total
(updated on enroll/roll/revoke) so fleet-wide accounting never walks
every record, and expose :meth:`RegistryBackend.transaction` — a
group-commit scope batching journal writes for whole rounds (a no-op
for the memory backend).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional

import numpy as np

#: Names accepted by :func:`make_backend` and
#: ``FleetConfig.registry_backend``.
BACKEND_NAMES = ("memory", "sharded")


@dataclass
class DeviceRecord:
    """Verifier-side state for one enrolled device.

    The value type every :class:`RegistryBackend` stores.  Lives here
    (next to the storage contract) so backends need no import of the
    registry façade; :mod:`repro.fleet.registry` re-exports it under
    its historical name.
    """

    device_id: str
    challenge_bits: int
    current_response: np.ndarray
    firmware_hash: bytes
    expected_clock_count: int
    crp_challenges: np.ndarray
    crp_responses: np.ndarray
    crp_used: np.ndarray
    sessions: int = 0

    @property
    def spot_crps_left(self) -> int:
        return int(np.count_nonzero(~self.crp_used))

    @property
    def storage_bytes(self) -> int:
        """Rolling CRP + integrity reference + spot pool, in bytes."""
        rolling = math.ceil(self.current_response.size / 8)
        pool = math.ceil(self.crp_challenges.size / 8) + math.ceil(
            self.crp_responses.size / 8
        )
        return rolling + len(self.firmware_hash) + pool


class RegistryBackend(ABC):
    """Storage contract behind :class:`~repro.fleet.registry.FleetRegistry`.

    Keyed by ``device_id``; values are
    :class:`~repro.fleet.registry.DeviceRecord`.  ``KeyError`` is the
    uniform miss signal (the registry maps it onto its
    ``not-enrolled`` :class:`AuthenticationFailure`); duplicate puts
    raise ``ValueError``.  Iteration order is enrollment order for a
    live backend and sorted order after a restore — identical across
    implementations.
    """

    #: Short name used by :func:`make_backend` / config knobs.
    name: str = "backend"

    # -- storage ----------------------------------------------------------

    @abstractmethod
    def get(self, device_id: str) -> DeviceRecord:
        """The record for ``device_id``; raises ``KeyError`` when absent."""

    @abstractmethod
    def put(self, record: DeviceRecord) -> None:
        """Store a freshly-enrolled record; ``ValueError`` on duplicates."""

    def put_many(self, records: Iterable[DeviceRecord]) -> None:
        """Batch enrollment; backends override to coalesce writes."""
        for record in records:
            self.put(record)

    @abstractmethod
    def delete(self, device_id: str) -> DeviceRecord:
        """Remove and return one record; raises ``KeyError`` when absent."""

    @abstractmethod
    def __contains__(self, device_id: str) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def iter_ids(self) -> Iterator[str]:
        """Device ids, lazily (no fleet-sized list materialization)."""

    def iter_records(self) -> Iterator[DeviceRecord]:
        """Records, lazily; pages records in and out on an out-of-core
        backend, so callers must not retain more than they consume."""
        for device_id in self.iter_ids():
            yield self.get(device_id)

    # -- protocol mutations (journal points) ------------------------------

    @abstractmethod
    def roll(self, device_id: str, new_response: np.ndarray) -> None:
        """Advance the rolling CRP: replace ``current_response``, bump
        ``sessions``.  The only mutation the mutual-auth commit makes."""

    @abstractmethod
    def burn_spot_indices(self, device_id: str,
                          indices: np.ndarray) -> None:
        """Mark spot-pool entries used (anti-replay burn)."""

    # -- accounting -------------------------------------------------------

    @property
    @abstractmethod
    def storage_bytes(self) -> int:
        """Running fleet-wide total, maintained incrementally — never an
        O(n) walk.  Pinned against a cold recount by the tests."""

    # -- transactions -----------------------------------------------------

    @contextmanager
    def transaction(self):
        """Group-commit scope: journal writes inside are batched.

        Not a rollback mechanism — record mutations apply immediately
        (matching the memory backend's in-place semantics); the scope
        only coalesces durability work, e.g. one journal write per
        authentication round instead of one per device.
        """
        yield self

    # -- persistence ------------------------------------------------------

    @abstractmethod
    def to_state(self) -> dict:
        """The registry's ``{"manifest": ..., "arrays": ...}`` capture.

        The memory backend emits the historical monolithic form (every
        array inline); an out-of-core backend flushes incrementally and
        emits a *pointer* manifest referencing its on-disk shards.
        """

    def compact(self) -> None:
        """Reclaim dead storage (revoked devices, superseded journal)."""

    def close(self) -> None:
        """Release file handles / scratch directories."""


def adopt_scratch(old: RegistryBackend, new: RegistryBackend) -> None:
    """Transfer scratch-directory ownership from ``old`` to ``new``.

    When a pointer snapshot is restored *in the same process*, the new
    backend re-attaches the very directory the old backend owns; if
    that directory is an ephemeral scratch dir, closing the old backend
    would delete the files under the new one.  Call this before closing
    ``old`` — a no-op unless both backends share a root and ``old``
    owns it as scratch.
    """
    old_scratch = getattr(old, "_tmpdir", None)
    if old_scratch is not None \
            and getattr(old, "root", None) == getattr(new, "root", None):
        new._tmpdir = old_scratch
        old._tmpdir = None


def make_backend(name: str = "memory", *,
                 root: Optional[str] = None,
                 resident_records: Optional[int] = None,
                 n_shards: Optional[int] = None) -> RegistryBackend:
    """Build a backend from a config-level name plus storage knobs.

    ``root``/``resident_records``/``n_shards`` parameterize the sharded
    backend (a ``memory`` backend accepts none of them — passing one is
    a configuration error, caught here rather than silently ignored).
    """
    if name == "memory":
        if root is not None or resident_records is not None \
                or n_shards is not None:
            raise ValueError(
                "the memory backend takes no storage knobs "
                "(root/resident_records/n_shards are sharded-only)"
            )
        from repro.fleet.storage.memory import MemoryBackend

        return MemoryBackend()
    if name == "sharded":
        from repro.fleet.storage.sharded import ShardedFileBackend

        kwargs: Dict[str, object] = {}
        if resident_records is not None:
            kwargs["resident_records"] = resident_records
        if n_shards is not None:
            kwargs["n_shards"] = n_shards
        return ShardedFileBackend(root, **kwargs)
    raise ValueError(
        f"unknown registry backend {name!r}; expected one of {BACKEND_NAMES}"
    )
