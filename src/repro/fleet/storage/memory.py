"""The in-process reference backend: a dict of records.

Bit-for-bit the historical ``FleetRegistry`` behavior — records are
stored by object identity, mutations happen in place, and
:meth:`MemoryBackend.to_state` emits the exact monolithic manifest +
arrays capture the registry has always produced (sorted device order,
per-device array keys, value copies).  Every other backend is pinned
against this one by the cross-backend equivalence suite.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator

import numpy as np

from repro.fleet.storage.base import DeviceRecord, RegistryBackend
from repro.utils.serialization import to_hex

#: Manifest stamp of a registry state capture (both monolithic and
#: pointer forms carry it).
STATE_FORMAT = "fleet-registry"

#: Monolithic capture: every device's arrays inline in the archive.
MONOLITHIC_STATE_VERSION = 1

#: Pointer capture: a lightweight manifest referencing an out-of-core
#: backend's on-disk shards (see ``ShardedFileBackend``).
POINTER_STATE_VERSION = 2


class MemoryBackend(RegistryBackend):
    """Dict-backed storage; the semantics every backend must match."""

    name = "memory"

    def __init__(self) -> None:
        self._records: Dict[str, DeviceRecord] = {}
        self._storage_bytes = 0

    # -- storage ----------------------------------------------------------

    def get(self, device_id: str) -> DeviceRecord:
        return self._records[device_id]

    def put(self, record: DeviceRecord) -> None:
        if record.device_id in self._records:
            raise ValueError(
                f"device {record.device_id!r} already enrolled"
            )
        self._records[record.device_id] = record
        self._storage_bytes += record.storage_bytes

    def put_many(self, records: Iterable[DeviceRecord]) -> None:
        for record in records:
            self.put(record)

    def delete(self, device_id: str) -> DeviceRecord:
        record = self._records.pop(device_id)
        self._storage_bytes -= record.storage_bytes
        return record

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def iter_ids(self) -> Iterator[str]:
        return iter(self._records)

    def iter_records(self) -> Iterator[DeviceRecord]:
        return iter(self._records.values())

    # -- protocol mutations -----------------------------------------------

    def roll(self, device_id: str, new_response: np.ndarray) -> None:
        record = self._records[device_id]
        old_rolling = math.ceil(record.current_response.size / 8)
        record.current_response = np.asarray(new_response, dtype=np.uint8)
        record.sessions += 1
        self._storage_bytes += \
            math.ceil(record.current_response.size / 8) - old_rolling

    def burn_spot_indices(self, device_id: str,
                          indices: np.ndarray) -> None:
        self._records[device_id].crp_used[indices] = True

    # -- accounting -------------------------------------------------------

    @property
    def storage_bytes(self) -> int:
        return self._storage_bytes

    # -- persistence ------------------------------------------------------

    def to_state(self) -> dict:
        """The monolithic capture (the registry's historical format).

        The manifest carries the scalar/string state (JSON-serializable);
        the arrays dict holds each record's rolling response, spot pool
        and burn mask under per-device keys listed in the manifest.
        Copies, not views: the registry mutates ``current_response`` and
        ``crp_used`` in place, and a snapshot must stay a value capture.
        """
        manifest = {"format": STATE_FORMAT,
                    "version": MONOLITHIC_STATE_VERSION,
                    "devices": []}
        arrays: Dict[str, np.ndarray] = {}
        for index, device_id in enumerate(sorted(self._records)):
            record = self._records[device_id]
            key = f"d{index:06d}"
            manifest["devices"].append({
                "device_id": device_id,
                "key": key,
                "challenge_bits": int(record.challenge_bits),
                "firmware_hash": to_hex(record.firmware_hash),
                "expected_clock_count": int(record.expected_clock_count),
                "sessions": int(record.sessions),
            })
            arrays[f"{key}_response"] = record.current_response.copy()
            arrays[f"{key}_crp_challenges"] = record.crp_challenges.copy()
            arrays[f"{key}_crp_responses"] = record.crp_responses.copy()
            arrays[f"{key}_crp_used"] = record.crp_used.copy()
        return {"manifest": manifest, "arrays": arrays}
