"""Security services: mutual authentication, attestation, NN encryption, AKA."""

from repro.protocols.aka import AkaError, AkaSession, establish_session
from repro.protocols.attestation import (
    AttestationDevice,
    AttestationReport,
    AttestationRequest,
    AttestationVerdict,
    AttestationVerifier,
)
from repro.protocols.mutual_auth import (
    AuthDevice,
    AuthenticationFailure,
    AuthVerifier,
    CRPDatabaseVerifier,
    SessionRecord,
    derive_challenge,
    provision,
    run_session,
)
from repro.protocols.nn_service import (
    KeyVault,
    NetworkOwner,
    SecureAccelerator,
    ServiceError,
)

__all__ = [
    "AkaError",
    "AkaSession",
    "establish_session",
    "AttestationDevice",
    "AttestationReport",
    "AttestationRequest",
    "AttestationVerdict",
    "AttestationVerifier",
    "AuthDevice",
    "AuthenticationFailure",
    "AuthVerifier",
    "CRPDatabaseVerifier",
    "SessionRecord",
    "derive_challenge",
    "provision",
    "run_session",
    "KeyVault",
    "NetworkOwner",
    "SecureAccelerator",
    "ServiceError",
]
