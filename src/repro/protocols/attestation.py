"""PUF-based remote software attestation (paper Sec. III-B).

The Verifier sends (timestamp t, challenge c1).  The Device:

1. computes ``r_1 = pPUF(c_1)``;
2. seeds an RNG with ``r_1 + t`` to generate a random walk visiting every
   memory chunk: ``m_1, ..., m_n = RNG(r_1 + t)``;
3. chains ``h_1 = HASH(m_1, r_1)``; the response is simultaneously fed
   back as the next challenge, ``r_{i+1} = pPUF(r_i)``, and
   ``h_{i+1} = HASH(m_{i+1}, r_{i+1}, h_i)``;
4. returns the final ``h_n``.

The Verifier holds a copy of the clean memory and a model of the pPUF, so
it computes the expected ``h_n`` independently and checks both the value
and the *elapsed time* against a temporal constraint.  Because the pPUF
runs at >= 5 Gb/s, challenge generation never stalls the walk, so the
time budget is set by the hash/memory path alone — which is what lets the
constraint be strict enough to catch memory-relocation attacks.

The protocol assumes an ideally reliable strong PUF (the paper states
this assumption explicitly); attestation therefore evaluates the PUF in
its noise-free regime.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.crypto.drbg import HmacDrbg
from repro.puf.base import PUFEnvironment
from repro.system.cpu import ProcessorModel
from repro.system.memory import DeviceMemory, RelocatingCompromisedMemory
from repro.system.soc import DeviceSoC
from repro.utils.bits import BitArray, bits_from_bytes, bytes_from_bits

_QUIET = PUFEnvironment(noise_scale=0.0)


def _pad_bits(bits: BitArray) -> bytes:
    padded = np.concatenate([
        np.asarray(bits, dtype=np.uint8),
        np.zeros((-len(bits)) % 8, dtype=np.uint8),
    ])
    return bytes_from_bits(padded)


def _walk_order(seed_response: BitArray, timestamp: int, n_chunks: int) -> list:
    """The memory walk m_1..m_n: a DRBG-seeded permutation of all chunks."""
    drbg = HmacDrbg(_pad_bits(seed_response) + timestamp.to_bytes(8, "big"),
                    personalization=b"attestation-walk")
    order = list(range(n_chunks))
    # Fisher-Yates with DRBG randomness: both sides reproduce it exactly.
    for i in range(n_chunks - 1, 0, -1):
        j = drbg.randint_below(i + 1)
        order[i], order[j] = order[j], order[i]
    return order


def _response_to_challenge(response: BitArray, challenge_bits: int) -> BitArray:
    """r_i -> next challenge (width adaptation via DRBG expansion)."""
    drbg = HmacDrbg(_pad_bits(response), personalization=b"attestation-chain")
    raw = drbg.generate(math.ceil(challenge_bits / 8))
    return bits_from_bytes(raw)[:challenge_bits]


@dataclass(frozen=True)
class AttestationRequest:
    timestamp: int
    challenge: BitArray


@dataclass(frozen=True)
class AttestationReport:
    """What the Device returns: the final hash and its elapsed time."""

    final_hash: bytes
    elapsed_s: float
    n_chunks: int


@dataclass(frozen=True)
class AttestationVerdict:
    accepted: bool
    hash_ok: bool
    time_ok: bool
    expected_time_s: float
    reported_time_s: float


class AttestationDevice:
    """Device-side attestation engine running on the SoC."""

    def __init__(self, soc: DeviceSoC,
                 memory: Optional[DeviceMemory] = None):
        self.soc = soc
        self.memory = memory or soc.memory

    def attest(self, request: AttestationRequest) -> AttestationReport:
        """Run the full chained walk and report h_n with timing."""
        puf = self.soc.strong_puf
        elapsed = 0.0
        response = puf.evaluate(request.challenge, _QUIET, measurement=0)
        elapsed += puf.interrogation_time_s()
        order = _walk_order(response, request.timestamp, self.memory.n_chunks)
        chain = b""
        for chunk_index in order:
            chunk = self.memory.read_chunk(chunk_index)
            if isinstance(self.memory, RelocatingCompromisedMemory):
                elapsed += self.memory.chunk_read_time_for(chunk_index)
            else:
                elapsed += self.memory.chunk_read_time()
            hasher = hashlib.sha256()
            hasher.update(chunk)
            hasher.update(_pad_bits(response))
            hasher.update(chain)
            chain = hasher.digest()
            hash_cost = self.soc.cpu.hash_time(
                len(chunk) + len(chain) + len(_pad_bits(response))
            )
            # The pPUF evaluates the next challenge concurrently with the
            # hash; at >= 5 Gb/s it always finishes first (Sec. III-B), so
            # the step cost is max(hash, puf) = hash.
            puf_cost = puf.interrogation_time_s()
            elapsed += max(hash_cost, puf_cost)
            next_challenge = _response_to_challenge(response, puf.challenge_bits)
            response = puf.evaluate(next_challenge, _QUIET, measurement=0)
        return AttestationReport(final_hash=chain, elapsed_s=elapsed,
                                 n_chunks=self.memory.n_chunks)


class AttestationVerifier:
    """Verifier with a clean memory copy and a model of the device pPUF."""

    def __init__(
        self,
        clean_image: bytes,
        puf_model,
        chunk_size: int = 256,
        soc_model: Optional[DeviceSoC] = None,
        time_slack: float = 0.10,
        seed: int = 0,
    ):
        if len(clean_image) % chunk_size:
            raise ValueError("image must be a multiple of the chunk size")
        self.clean_image = clean_image
        self.chunk_size = chunk_size
        self.puf_model = puf_model
        self.time_slack = time_slack
        self.seed = seed
        self._soc_model = soc_model
        self._request_counter = 0

    @property
    def n_chunks(self) -> int:
        return len(self.clean_image) // self.chunk_size

    def new_request(self, timestamp: int) -> AttestationRequest:
        """Fresh attestation request (timestamp + random challenge)."""
        from repro.utils.rng import derive_rng

        rng = derive_rng(self.seed, "attreq", self._request_counter)
        self._request_counter += 1
        challenge = rng.integers(0, 2, self.puf_model.challenge_bits,
                                 dtype=np.uint8)
        return AttestationRequest(timestamp=timestamp, challenge=challenge)

    def _read_chunk(self, index: int) -> bytes:
        start = index * self.chunk_size
        return self.clean_image[start:start + self.chunk_size]

    def expected(self, request: AttestationRequest) -> tuple:
        """(expected hash, expected honest duration)."""
        puf = self.puf_model
        response = puf.evaluate(request.challenge, _QUIET, measurement=0)
        elapsed = puf.interrogation_time_s()
        order = _walk_order(response, request.timestamp, self.n_chunks)
        chain = b""
        cpu = (self._soc_model.cpu if self._soc_model is not None
               else ProcessorModel())
        chunk_latency = (self._soc_model.memory.chunk_read_time()
                         if self._soc_model is not None else 120e-9)
        for chunk_index in order:
            chunk = self._read_chunk(chunk_index)
            hasher = hashlib.sha256()
            hasher.update(chunk)
            hasher.update(_pad_bits(response))
            hasher.update(chain)
            chain = hasher.digest()
            elapsed += chunk_latency
            elapsed += max(
                cpu.hash_time(len(chunk) + 32 + len(_pad_bits(response))),
                puf.interrogation_time_s(),
            )
            next_challenge = _response_to_challenge(response, puf.challenge_bits)
            response = puf.evaluate(next_challenge, _QUIET, measurement=0)
        return chain, elapsed

    def verify(self, request: AttestationRequest,
               report: AttestationReport) -> AttestationVerdict:
        """Check the hash value and the temporal constraint."""
        expected_hash, expected_time = self.expected(request)
        hash_ok = report.final_hash == expected_hash
        time_ok = report.elapsed_s <= expected_time * (1.0 + self.time_slack)
        return AttestationVerdict(
            accepted=hash_ok and time_ok,
            hash_ok=hash_ok,
            time_ok=time_ok,
            expected_time_s=expected_time,
            reported_time_s=report.elapsed_s,
        )
