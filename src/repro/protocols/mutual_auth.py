"""HSC-IoT mutual authentication (paper Fig. 4, Sec. III-A).

One CRP is shared between Device and Verifier at manufacturing time and
rolled forward after every session:

* Verifier -> Device: authentication request (session index, nonce);
* Device: derives the next challenge ``c_{i+1} = RNG(r_i)``, measures the
  fresh response ``r_{i+1}`` on the strong PUF, and sends

      m = (r_i XOR r_{i+1}) || (H XOR CC) || N,   mac = MAC(m, r_i)

  where H is the firmware hash and CC the clock count (integrity
  evidence), N the nonce;
* Verifier: checks the MAC with the shared ``r_i``, recovers ``r_{i+1}``,
  checks H and CC against its references, and answers with
  ``mac' = MAC(c_{i+1} || N, r_{i+1})``, proving knowledge of the *new*
  secret;
* both sides atomically roll the CRP to ``(c_{i+1}, r_{i+1})``.

The Verifier stores exactly one CRP per device — the scalability argument
against CRP-database schemes (Suh et al. [16]) that the paper makes;
:class:`CRPDatabaseVerifier` implements that baseline for the FIG4 bench.
"""

from __future__ import annotations

import hashlib
import math
from collections import OrderedDict
from dataclasses import dataclass
from enum import Enum
from typing import List, Optional, Tuple

import numpy as np

from repro.crypto.drbg import HmacDrbg
from repro.crypto.mac import mac as compute_mac
from repro.crypto.mac import mac_batch, verify_mac
from repro.system.channel import Channel
from repro.system.soc import DeviceSoC
from repro.utils.bits import BitArray, bits_from_bytes, bytes_from_bits, xor_bits
from repro.utils.rng import derive_rng
from repro.utils.serialization import decode_fields, encode_fields


class FailureKind(str, Enum):
    """Shared failure taxonomy for every authentication path.

    The single-session verifier (:class:`AuthVerifier`), the fleet batch
    verifier (:class:`repro.fleet.verifier.BatchVerifier`) and the device
    side all classify rejections with the same vocabulary, so per-round
    failure reports and campaign statistics aggregate identically no
    matter which path produced them.
    """

    MALFORMED = "malformed-message"
    REPLAY = "replay"
    BAD_MAC = "bad-mac"
    SESSION_MISMATCH = "session-mismatch"
    NONCE_MISMATCH = "nonce-mismatch"
    FIRMWARE_MISMATCH = "firmware-mismatch"
    CLOCK_ANOMALY = "clock-anomaly"
    NOT_ENROLLED = "not-enrolled"
    NOT_PROVISIONED = "not-provisioned"
    DUPLICATE_DEVICE = "duplicate-device"
    NO_NONCE = "no-nonce"
    BAD_CONFIRMATION = "bad-confirmation"
    NO_SESSION = "no-session"
    POOL_EXHAUSTED = "pool-exhausted"
    # Service-layer kinds: policy vetoes and wire-codec rejections from
    # repro.service classify with the same vocabulary as protocol checks.
    RATE_LIMITED = "rate-limited"
    UNSUPPORTED_VERSION = "unsupported-version"
    # HA/failover kinds: replicated deployments classify transport-level
    # trouble with the same vocabulary, so one retry taxonomy covers the
    # in-process, wire, and replicated paths alike.
    REPLICA_UNAVAILABLE = "replica-unavailable"
    LEASE_EXPIRED = "lease-expired"
    CONNECTION_LOST = "connection-lost"
    TIMEOUT = "timeout"
    UNSPECIFIED = "unspecified"


class AuthenticationFailure(Exception):
    """A protocol check failed (bad MAC, bad integrity evidence, replay).

    Carries a :class:`FailureKind` so callers can aggregate failures by
    cause without parsing the human-readable message.
    """

    def __init__(self, message: str = "",
                 kind: "FailureKind" = FailureKind.UNSPECIFIED):
        super().__init__(message)
        self.kind = FailureKind(kind)


def _pad_bits(bits: BitArray) -> bytes:
    padded = np.concatenate([
        np.asarray(bits, dtype=np.uint8),
        np.zeros((-len(bits)) % 8, dtype=np.uint8),
    ])
    return bytes_from_bits(padded)


def pad_bits_batch(rows) -> List[bytes]:
    """:func:`_pad_bits` for a whole round of bit rows in one pass.

    Equal-length rows (the common fleet case) pack as one
    ``np.packbits`` call over the stacked matrix — ``packbits`` pads
    each row's tail with zero bits exactly like ``_pad_bits``; ragged
    rows (mixed device generations) fall back per row.
    """
    rows = [np.asarray(row, dtype=np.uint8) for row in rows]
    if not rows:
        return []
    if len({row.size for row in rows}) == 1:
        packed = np.packbits(np.vstack(rows), axis=1)
        return [row.tobytes() for row in packed]
    return [_pad_bits(row) for row in rows]


# SHA-256(packed response) + n_bytes -> DRBG expansion.  The verifier
# re-derives c_{i+1} from the same stored response the device derived it
# from, so every accepted session computes the identical expansion twice
# per round; memoizing the (deterministic) map halves that cost.  The
# cache key is a *hash* of the rolling secret, never the secret itself —
# a heap dump of a long-lived verifier must not surface thousands of
# current and rolled r_i values.  LRU-bounded so a verifier rolling
# through millions of sessions stays flat — rolled responses never
# recur, dead entries age out.
_CHALLENGE_CACHE_MAX = 8192
_challenge_cache: "OrderedDict[tuple, bytes]" = OrderedDict()


def _derive_challenge_bytes(packed: bytes, n_bytes: int) -> bytes:
    key = (hashlib.sha256(b"chal:" + packed).digest(), n_bytes)
    cached = _challenge_cache.get(key)
    if cached is not None:
        _challenge_cache.move_to_end(key)
        return cached
    raw = HmacDrbg(packed,
                   personalization=b"hsc-iot-challenge").generate(n_bytes)
    _challenge_cache[key] = raw
    if len(_challenge_cache) > _CHALLENGE_CACHE_MAX:
        _challenge_cache.popitem(last=False)
    return raw


def derive_challenge(response: BitArray, n_bits: int) -> BitArray:
    """c_{i+1} = RNG(r_i): expand the current response through the DRBG."""
    raw = _derive_challenge_bytes(_pad_bits(response), math.ceil(n_bits / 8))
    return bits_from_bytes(raw)[:n_bits]


def derive_challenge_batch(responses, n_bits: int) -> np.ndarray:
    """Gathered c_{i+1} derivation for a whole round of sessions.

    ``responses`` is ``(n_devices, response_bits)`` (one current response
    per row); returns the ``(n_devices, n_bits)`` stacked next challenges.
    Each row's DRBG stream is identical to :func:`derive_challenge` — the
    DRBG keying is inherently per-secret — while the packing of the
    response rows and the expansion of the output bytes into challenge
    bits run vectorized over the whole round.  This is the gather step
    that lets the fleet verifier run one stacked tensor pass for every
    device's fresh measurement.
    """
    matrix = np.atleast_2d(np.asarray(responses, dtype=np.uint8))
    n_bytes = math.ceil(n_bits / 8)
    pad = (-matrix.shape[1]) % 8
    if pad:
        padded = np.concatenate(
            [matrix, np.zeros((matrix.shape[0], pad), dtype=np.uint8)], axis=1
        )
    else:
        padded = matrix
    packed = np.packbits(padded, axis=1)
    raw = b"".join(
        _derive_challenge_bytes(row.tobytes(), n_bytes)
        for row in packed
    )
    bits = np.unpackbits(
        np.frombuffer(raw, dtype=np.uint8).reshape(matrix.shape[0], n_bytes),
        axis=1,
    )
    return bits[:, :n_bits]


def confirmation_mac_batch(challenges, nonces, new_responses) -> List[bytes]:
    """``mac' = MAC(c_{i+1} || N, r_{i+1})`` for a whole round at once.

    The framing counterpart of :func:`derive_challenge_batch`: the fleet
    verifier's confirmation stage proves knowledge of every accepted
    device's *new* secret in one batched MAC pass
    (:func:`repro.crypto.mac.mac_batch`).  Row ``i`` is byte-identical
    to ``compute_mac(encode_fields([_pad_bits(challenges[i]),
    nonces[i]]), _pad_bits(new_responses[i]))``.
    """
    if not len(challenges) == len(nonces) == len(new_responses):
        raise ValueError(
            f"got {len(challenges)} challenges, {len(nonces)} nonces, "
            f"{len(new_responses)} responses"
        )
    bodies = [
        encode_fields([packed, nonce])
        for packed, nonce in zip(pad_bits_batch(challenges), nonces)
    ]
    return mac_batch(bodies, pad_bits_batch(new_responses))


def mask_integrity(firmware_hash: bytes, clock_count: int) -> bytes:
    """The H XOR CC integrity field of Fig. 4 (shared with the fleet path)."""
    width = len(firmware_hash)
    cc_bytes = clock_count.to_bytes(8, "big").rjust(width, b"\x00")[:width]
    masked = int.from_bytes(firmware_hash, "big") ^ int.from_bytes(cc_bytes, "big")
    return masked.to_bytes(width, "big")


def unmask_clock_count(integrity: bytes, expected_hash: bytes) -> int:
    """Recover CC from H XOR CC; reject when the hash does not match."""
    if len(integrity) != len(expected_hash):
        raise AuthenticationFailure(
            f"integrity field is {len(integrity)} bytes, "
            f"expected {len(expected_hash)}", FailureKind.MALFORMED,
        )
    unmasked = int.from_bytes(expected_hash, "big") ^ int.from_bytes(integrity, "big")
    cc_field = unmasked.to_bytes(len(expected_hash), "big")
    if any(cc_field[:-8]):
        raise AuthenticationFailure("firmware hash mismatch",
                                    FailureKind.FIRMWARE_MISMATCH)
    return int.from_bytes(cc_field[-8:], "big")


def check_clock_count(clock_count: int, expected: int, tolerance: float) -> None:
    """Fig. 4 tamper evidence: CC must sit within the expected band."""
    low = expected * (1 - tolerance)
    high = expected * (1 + tolerance)
    if not low <= clock_count <= high:
        raise AuthenticationFailure(
            f"clock count {clock_count} outside [{low:.0f}, {high:.0f}]",
            FailureKind.CLOCK_ANOMALY,
        )


@dataclass
class SessionRecord:
    """Bookkeeping of one authentication session (for the FIG4 bench)."""

    session_index: int
    success: bool
    bytes_device_to_verifier: int
    bytes_verifier_to_device: int
    device_time_s: float
    verifier_checks: str = "ok"


class AuthDevice:
    """Device side: owns the SoC (PUF, firmware, clock counter)."""

    def __init__(self, soc: DeviceSoC, initial_response: BitArray,
                 seed: int = 0):
        self.soc = soc
        self.current_response = np.asarray(initial_response, dtype=np.uint8)
        self.seed = seed
        self._session = 0
        self._pending: Optional[Tuple[BitArray, BitArray]] = None
        self.elapsed_s = 0.0

    def handle_request(self, nonce: bytes,
                       tamper_factor: float = 1.0) -> bytes:
        """Produce the ``m || mac`` message of Fig. 4."""
        challenge = derive_challenge(self.current_response,
                                     self.soc.strong_puf.challenge_bits)
        new_response, puf_time = self.soc.strong_puf_evaluate(challenge)
        firmware_hash, hash_time = self.soc.firmware_hash()
        clock_count = self.soc.measure_clock_count(tamper_factor)
        masked_response = xor_bits(self.current_response, new_response)
        integrity = mask_integrity(firmware_hash, clock_count)
        body = encode_fields([
            self._session.to_bytes(4, "big"),
            _pad_bits(masked_response),
            integrity,
            nonce,
        ])
        tag = compute_mac(body, _pad_bits(self.current_response))
        self._pending = (challenge, new_response)
        mac_time = self.soc.mac_time(len(body))
        self.elapsed_s += puf_time + hash_time + mac_time
        return encode_fields([body, tag])

    def verify_confirmation(self, confirmation: bytes, nonce: bytes) -> None:
        """Check mac' and roll the CRP forward (the last step of Fig. 4)."""
        if self._pending is None:
            raise AuthenticationFailure("no session in progress",
                                        FailureKind.NO_SESSION)
        challenge, new_response = self._pending
        expected_body = encode_fields([_pad_bits(challenge), nonce])
        if not verify_mac(expected_body, _pad_bits(new_response), confirmation):
            raise AuthenticationFailure("verifier confirmation rejected",
                                        FailureKind.BAD_CONFIRMATION)
        self.current_response = new_response
        self._pending = None
        self._session += 1


class AuthVerifier:
    """Verifier side: stores one CRP plus the device's integrity references."""

    def __init__(
        self,
        initial_response: BitArray,
        expected_firmware_hash: bytes,
        expected_clock_count: int,
        clock_tolerance: float = 0.05,
        seed: int = 0,
    ):
        self.current_response = np.asarray(initial_response, dtype=np.uint8)
        self.expected_firmware_hash = expected_firmware_hash
        self.expected_clock_count = expected_clock_count
        self.clock_tolerance = clock_tolerance
        self.seed = seed
        self._session = 0
        self._pending_response: Optional[BitArray] = None
        self._seen_tags: set = set()
        self._nonce_counter = 0

    def new_nonce(self) -> bytes:
        # Fresh per *request*, not per session: a failed session must not
        # reuse its nonce on retry.
        nonce = derive_rng(self.seed, "nonce", self._nonce_counter).bytes(16)
        self._nonce_counter += 1
        return nonce

    def process_response(self, message: bytes, nonce: bytes,
                         challenge_bits: int) -> bytes:
        """Verify ``m || mac``; emit the confirmation mac'."""
        try:
            fields = decode_fields(message)
            if len(fields) != 2:
                raise ValueError(f"expected 2 fields, got {len(fields)}")
            body, tag = fields
        except ValueError as exc:
            raise AuthenticationFailure(f"malformed message: {exc}",
                                        FailureKind.MALFORMED) from exc
        if bytes(tag) in self._seen_tags:
            raise AuthenticationFailure("replayed message", FailureKind.REPLAY)
        if not verify_mac(body, _pad_bits(self.current_response), tag):
            raise AuthenticationFailure("device MAC rejected",
                                        FailureKind.BAD_MAC)
        try:
            fields = decode_fields(body)
            if len(fields) != 4:
                raise ValueError(f"expected 4 fields, got {len(fields)}")
            session_raw, masked, integrity, echoed_nonce = fields
        except ValueError as exc:
            raise AuthenticationFailure(f"malformed body: {exc}",
                                        FailureKind.MALFORMED) from exc
        if int.from_bytes(session_raw, "big") != self._session:
            raise AuthenticationFailure("session index mismatch",
                                        FailureKind.SESSION_MISMATCH)
        if echoed_nonce != nonce:
            raise AuthenticationFailure("nonce mismatch (replay or delay)",
                                        FailureKind.NONCE_MISMATCH)
        masked_bits = bits_from_bytes(masked)
        if masked_bits.size < self.current_response.size:
            raise AuthenticationFailure(
                f"masked response field holds {masked_bits.size} bits, "
                f"expected {self.current_response.size}",
                FailureKind.MALFORMED,
            )
        masked_bits = masked_bits[: self.current_response.size]
        new_response = xor_bits(self.current_response, masked_bits)
        self._check_integrity(integrity)
        challenge = derive_challenge(self.current_response, challenge_bits)
        confirmation = compute_mac(
            encode_fields([_pad_bits(challenge), nonce]),
            _pad_bits(new_response),
        )
        # Cache the replay tag only for accepted messages: a rejected one
        # fails the same deterministic checks again, so caching it would
        # grow the set without bound between finalizes.
        self._seen_tags.add(bytes(tag))
        self._pending_response = new_response
        return confirmation

    def _check_integrity(self, integrity: bytes) -> None:
        """Unmask CC with the expected hash; verify both fields."""
        clock_count = unmask_clock_count(integrity, self.expected_firmware_hash)
        check_clock_count(clock_count, self.expected_clock_count,
                          self.clock_tolerance)

    def finalize(self) -> None:
        """Roll the CRP after the confirmation went out.

        Replay tags are pruned here (as :class:`BatchVerifier` already
        does): once the CRP rolled, a replayed message fails the MAC
        check (old key) and the session-index check, so keeping its tag
        would only grow ``_seen_tags`` without bound across sessions.
        """
        if self._pending_response is None:
            raise AuthenticationFailure("no session to finalise",
                                        FailureKind.NO_SESSION)
        self.current_response = self._pending_response
        self._pending_response = None
        self._session += 1
        self._seen_tags.clear()

    @property
    def storage_bytes(self) -> int:
        """Verifier-side storage: one response + references (scalability)."""
        return (math.ceil(self.current_response.size / 8)
                + len(self.expected_firmware_hash) + 8)


def provision(soc: DeviceSoC, seed: int = 0) -> tuple:
    """Manufacturing-time setup: measure the first CRP, build both parties."""
    rng = derive_rng(seed, "provision")
    challenge = rng.integers(0, 2, soc.strong_puf.challenge_bits, dtype=np.uint8)
    response, __ = soc.strong_puf_evaluate(challenge)
    device = AuthDevice(soc, response, seed)
    firmware_hash, __ = soc.firmware_hash()
    clock_count = soc.measure_clock_count()
    verifier = AuthVerifier(response, firmware_hash, clock_count, seed=seed)
    return device, verifier


def run_session(
    device: AuthDevice,
    verifier: AuthVerifier,
    channel: Optional[Channel] = None,
    tamper_factor: float = 1.0,
) -> SessionRecord:
    """Execute one full mutual-authentication session over a channel."""
    channel = channel or Channel()
    index = verifier._session
    nonce = verifier.new_nonce()
    request, __ = channel.send(nonce)
    message = device.handle_request(request, tamper_factor)
    delivered, __ = channel.send(message)
    try:
        confirmation = verifier.process_response(
            delivered, nonce, device.soc.strong_puf.challenge_bits
        )
        delivered_confirmation, __ = channel.send(confirmation)
        device.verify_confirmation(delivered_confirmation, nonce)
        verifier.finalize()
        success = True
        checks = "ok"
    except AuthenticationFailure as failure:
        success = False
        checks = str(failure)
    return SessionRecord(
        session_index=index,
        success=success,
        bytes_device_to_verifier=len(message),
        bytes_verifier_to_device=len(nonce) + 32,
        device_time_s=device.elapsed_s,
        verifier_checks=checks,
    )


class CRPDatabaseVerifier:
    """The classic Suh-style baseline: a big per-device CRP database.

    Stored for the scalability comparison of the FIG4 bench: the verifier
    pre-collects ``n_crps`` challenge/response pairs at enrollment and
    burns one per authentication.
    """

    def __init__(self, soc: DeviceSoC, n_crps: int, seed: int = 0):
        rng = derive_rng(seed, "crpdb")
        self._entries: List[Tuple[bytes, bytes]] = []
        for index in range(n_crps):
            challenge = rng.integers(0, 2, soc.strong_puf.challenge_bits,
                                     dtype=np.uint8)
            response, __ = soc.strong_puf_evaluate(challenge)
            self._entries.append((_pad_bits(challenge), _pad_bits(response)))
        self._cursor = 0

    @property
    def storage_bytes(self) -> int:
        return sum(len(c) + len(r) for c, r in self._entries)

    @property
    def remaining(self) -> int:
        return len(self._entries) - self._cursor

    def authenticate(self, soc: DeviceSoC, max_fractional_hd: float = 0.25) -> bool:
        """Burn one stored CRP against the live device.

        PUF re-measurement is noisy, so the classic scheme accepts
        responses within a Hamming-distance threshold rather than
        requiring equality.
        """
        if self._cursor >= len(self._entries):
            raise AuthenticationFailure("CRP database exhausted",
                                        FailureKind.POOL_EXHAUSTED)
        challenge_bytes, expected = self._entries[self._cursor]
        self._cursor += 1
        challenge = bits_from_bytes(challenge_bytes)[: soc.strong_puf.challenge_bits]
        response, __ = soc.strong_puf_evaluate(challenge)
        expected_bits = bits_from_bytes(expected)[: response.size]
        distance = float(np.mean(response != expected_bits))
        return distance <= max_fractional_hd
