"""Neural-network configuration and data encryption service.

Paper Sec. III-C and Table I:

=================  ===================  ==================
Function name      Parameters           Results
=================  ===================  ==================
load_network       ciphered_network
execute_network    ciphered_input       ciphered_output
=================  ===================  ==================

The master key is derived *in hardware* from the photonic weak PUF
through the fuzzy extractor (Fig. 1) and never leaves the hardware layer.
Decryption and encryption happen inside :class:`SecureAccelerator`;
plaintext never crosses the hardware/software boundary, which the class
enforces by only ever returning sealed bytes and by recording every value
handed to the software layer in :attr:`software_visible_log` (the TAB1
bench asserts the plaintext is absent from it).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.accelerator.network import NetworkConfig, NeuromorphicAccelerator
from repro.crypto.fuzzy_extractor import FuzzyExtractor, HelperData
from repro.crypto.modes import AuthenticatedCipher, AuthenticationError
from repro.system.soc import DeviceSoC
from repro.utils.rng import derive_rng


class ServiceError(Exception):
    """Service-level failure (bad ciphertext, missing network...)."""


class KeyVault:
    """Hardware key derivation: weak PUF -> fuzzy extractor -> master key.

    The enrollment measurement produces the helper data; every later boot
    re-measures the (noisy) PUF and reproduces the same key.  The key is
    private to the hardware layer — no getter exists.
    """

    def __init__(self, soc: DeviceSoC, extractor: Optional[FuzzyExtractor] = None,
                 seed: int = 0):
        self.soc = soc
        self.extractor = extractor or FuzzyExtractor(key_length=32, seed=seed)
        fingerprint = self._measure_response(measurement=0)
        result = self.extractor.generate(fingerprint)
        self.helper: HelperData = result.helper
        self._master_key = result.key

    def _measure_response(self, measurement: int) -> np.ndarray:
        """Read enough weak-PUF bits for the extractor's code length."""
        needed = self.extractor.response_bits
        blocks: List[np.ndarray] = []
        collected = 0
        index = 0
        while collected < needed:
            bits, __ = self.soc.weak_puf_read(measurement=measurement + 100 * index)
            blocks.append(bits)
            collected += bits.size
            index += 1
        return np.concatenate(blocks)[:needed]

    def rederive_key(self, measurement: int = 1) -> bool:
        """Boot-time key reproduction from a fresh noisy measurement.

        Returns True when the reproduced key matches enrollment (the
        normal case; ECC absorbs the noise).
        """
        from repro.crypto.fuzzy_extractor import KeyRecoveryError

        noisy = self._measure_response(measurement)
        try:
            key = self.extractor.reproduce(noisy, self.helper)
        except KeyRecoveryError:
            return False
        matches = key == self._master_key
        if matches:
            self._master_key = key
        return matches

    def cipher(self) -> AuthenticatedCipher:
        """The hardware-layer AEAD bound to the master key."""
        return AuthenticatedCipher(self._master_key)


class SecureAccelerator:
    """The hardware layer of Table I: ciphertext in, ciphertext out."""

    def __init__(self, soc: DeviceSoC, vault: Optional[KeyVault] = None,
                 seed: int = 0):
        self.soc = soc
        self.vault = vault or KeyVault(soc, seed=seed)
        self.accelerator: NeuromorphicAccelerator = soc.accelerator
        self.software_visible_log: List[bytes] = []
        self._nonce_counter = 0
        self.load_time_s = 0.0
        self.execute_time_s = 0.0

    def _next_nonce(self) -> bytes:
        nonce = self._nonce_counter.to_bytes(6, "big")
        self._nonce_counter += 1
        return nonce

    def load_network(self, ciphered_network: bytes) -> None:
        """Table I ``load_network``: decrypt in hardware and program."""
        cipher = self.vault.cipher()
        try:
            plaintext = cipher.decrypt(ciphered_network, associated=b"network")
        except AuthenticationError as exc:
            raise ServiceError(f"network rejected: {exc}") from exc
        config = NetworkConfig.deserialize(plaintext)
        self.accelerator.load(config)
        self.load_time_s = self.soc.cipher_time(len(ciphered_network))
        self.load_time_s += self.soc.accelerator_time(self.accelerator.n_mzis())
        self.software_visible_log.append(b"<load_network: ok>")

    def execute_network(self, ciphered_input: bytes) -> bytes:
        """Table I ``execute_network``: sealed input -> sealed output."""
        if not self.accelerator.is_loaded:
            raise ServiceError("no network loaded")
        cipher = self.vault.cipher()
        try:
            raw = cipher.decrypt(ciphered_input, associated=b"input")
        except AuthenticationError as exc:
            raise ServiceError(f"input rejected: {exc}") from exc
        x = np.frombuffer(raw, dtype=np.float64)
        output = self.accelerator.infer(x)
        sealed = cipher.encrypt(output.tobytes(), nonce=self._next_nonce(),
                                associated=b"output")
        elapsed = self.soc.cipher_time(len(ciphered_input) + len(sealed))
        elapsed += self.soc.accelerator_time(self.accelerator.n_mzis())
        self.execute_time_s = elapsed
        # Only the sealed output ever reaches the software layer.
        self.software_visible_log.append(sealed)
        return sealed


class NetworkOwner:
    """The external party that owns the NN and the data (shares the key).

    In deployment the owner obtains the key through the AKA session
    (Sec. IV) or provisioning; here it holds a cipher bound to the same
    vault for test and bench purposes.
    """

    def __init__(self, vault: KeyVault, seed: int = 0):
        self._cipher = vault.cipher()
        self._rng = derive_rng(seed, "owner-nonce")

    def _nonce(self) -> bytes:
        return bytes(self._rng.integers(0, 256, 6, dtype=np.uint8).tolist())

    def seal_network(self, config: NetworkConfig) -> bytes:
        return self._cipher.encrypt(config.serialize(), nonce=self._nonce(),
                                    associated=b"network")

    def seal_input(self, x: np.ndarray) -> bytes:
        data = np.asarray(x, dtype=np.float64).tobytes()
        return self._cipher.encrypt(data, nonce=self._nonce(),
                                    associated=b"input")

    def open_output(self, sealed: bytes) -> np.ndarray:
        raw = self._cipher.decrypt(sealed, associated=b"output")
        return np.frombuffer(raw, dtype=np.float64)
