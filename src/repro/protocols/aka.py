"""Authentication and Key Agreement (AKA) built on EKE (paper Sec. IV).

"One approach is to see the CRP as a low-entropy shared secret.  With
this, we can consider the use of the well-established and secure EKE
protocol to achieve both mutual authentication and key exchange" — with
perfect forward secrecy for the data-encryption session keys, at a higher
computational cost than the plain HSC-IoT update (quantified by the
CLM-AKA bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.crypto.eke import EkeError, EkeInitiator, EkeResponder
from repro.system.soc import DeviceSoC
from repro.utils.bits import BitArray, bytes_from_bits


class AkaError(Exception):
    """Session establishment failed."""


def _crp_password(response: BitArray) -> bytes:
    """Serialise the shared CRP response into the EKE password."""
    padded = np.concatenate([
        np.asarray(response, dtype=np.uint8),
        np.zeros((-len(response)) % 8, dtype=np.uint8),
    ])
    return bytes_from_bits(padded)


@dataclass
class AkaSession:
    """Outcome of one AKA run."""

    session_key: bytes
    messages: int
    bytes_exchanged: int
    modexp_total: int
    device_time_s: float


# Cost model: one 1536-bit modular exponentiation on a 100 MHz RV32 core
# in software takes on the order of 100 ms — this is the "computationally
# more expensive" the paper warns about.
MODEXP_SECONDS_RV32 = 0.12


def establish_session(
    shared_response: BitArray,
    device_soc: Optional[DeviceSoC] = None,
    seed: int = 0,
    session_id: int = 0,
    device_response: Optional[BitArray] = None,
) -> AkaSession:
    """Run the EKE handshake with the CRP as the password.

    ``device_response`` defaults to the verifier's ``shared_response``;
    pass a different value to model a desynchronised or counterfeit
    device (raises :class:`AkaError`).
    """
    verifier_password = _crp_password(shared_response)
    device_password = _crp_password(
        shared_response if device_response is None else device_response
    )
    initiator = EkeInitiator(verifier_password, seed, session_id)
    responder = EkeResponder(device_password, seed, session_id)
    try:
        message_1 = initiator.message_1()
        message_2 = responder.process_message_1(message_1)
        message_3 = initiator.process_message_2(message_2)
        responder.process_message_3(message_3)
    except EkeError as exc:
        raise AkaError(f"AKA failed: {exc}") from exc
    if initiator.session_key != responder.session_key:
        raise AkaError("session keys disagree")
    device_time = responder.cost.modexp_count * MODEXP_SECONDS_RV32
    if device_soc is not None:
        device_time += device_soc.cipher_time(len(message_2))
        device_time += device_soc.mac_time(64)
    return AkaSession(
        session_key=responder.session_key,
        messages=initiator.cost.messages + responder.cost.messages,
        bytes_exchanged=(initiator.cost.bytes_sent + responder.cost.bytes_sent),
        modexp_total=(initiator.cost.modexp_count + responder.cost.modexp_count),
        device_time_s=device_time,
    )
