"""Brute-force and guessing-cost estimates for CRP-based secrets.

Supports the Sec. IV analysis of the EKE-based AKA: a CRP used as a
low-entropy shared secret must survive offline guessing for the duration
of one session, and the protocol design (EKE) prevents offline attacks
entirely — these estimators quantify what the attacker faces either way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class GuessingCost:
    """Expected cost of guessing a secret."""

    entropy_bits: float
    expected_guesses: float
    seconds_at_rate: float


def response_entropy_bits(
    responses: np.ndarray,
    account_bias: bool = True,
) -> float:
    """Empirical entropy of a response corpus (per full response word).

    With ``account_bias`` the per-bit Shannon entropy over the corpus is
    summed; otherwise the raw bit length is returned.
    """
    responses = np.atleast_2d(np.asarray(responses, dtype=np.uint8))
    if not account_bias:
        return float(responses.shape[1])
    p = responses.mean(axis=0)
    entropy = np.zeros_like(p)
    mask = (p > 0) & (p < 1)
    pm = p[mask]
    entropy[mask] = -pm * np.log2(pm) - (1 - pm) * np.log2(1 - pm)
    return float(entropy.sum())


def guessing_cost(
    entropy_bits: float,
    guesses_per_second: float = 1e9,
) -> GuessingCost:
    """Expected brute-force effort for a secret of the given entropy."""
    if entropy_bits < 0:
        raise ValueError("entropy must be non-negative")
    expected = 2.0 ** (entropy_bits - 1.0)
    return GuessingCost(
        entropy_bits=entropy_bits,
        expected_guesses=expected,
        seconds_at_rate=expected / guesses_per_second,
    )


def online_guess_success_probability(
    entropy_bits: float,
    attempts: int,
) -> float:
    """Probability that an online attacker (rate-limited to ``attempts``
    guesses, as EKE enforces) hits the secret."""
    if attempts < 0:
        raise ValueError("attempts must be non-negative")
    return min(1.0, attempts / 2.0 ** entropy_bits)
