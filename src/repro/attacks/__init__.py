"""Attack models: ML modeling, side channels, remanence, guessing costs.

Protocol-level attacks (replay, desynchronisation, attestation evasion)
live in :mod:`repro.attacks.protocol_attacks` once the protocols they
target are imported; see :mod:`repro.protocols`.
"""

from repro.attacks.brute_force import (
    GuessingCost,
    guessing_cost,
    online_guess_success_probability,
    response_entropy_bits,
)
from repro.attacks.modeling import (
    AttackCurvePoint,
    LogisticRegressionAttack,
    MLPAttack,
    attack_curve,
    collect_crps,
    raw_features,
)
from repro.attacks.remanence import (
    RemanencePoint,
    photonic_remanence_attempt,
    sram_remanence_sweep,
)
from repro.attacks.side_channel import (
    ELECTRONIC_LEAKAGE,
    PHOTONIC_LEAKAGE,
    LeakageModel,
    SideChannelReport,
    compare_technologies,
    hamming_weight_recovery,
    leakage_correlation,
    simulate_traces,
)

__all__ = [
    "GuessingCost",
    "guessing_cost",
    "online_guess_success_probability",
    "response_entropy_bits",
    "AttackCurvePoint",
    "LogisticRegressionAttack",
    "MLPAttack",
    "attack_curve",
    "collect_crps",
    "raw_features",
    "RemanencePoint",
    "photonic_remanence_attempt",
    "sram_remanence_sweep",
    "ELECTRONIC_LEAKAGE",
    "PHOTONIC_LEAKAGE",
    "LeakageModel",
    "SideChannelReport",
    "compare_technologies",
    "hamming_weight_recovery",
    "leakage_correlation",
    "simulate_traces",
]
