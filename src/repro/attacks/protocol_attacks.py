"""Protocol-level attacks against the NEUROPULS security services.

Implements the adversaries the paper's Sec. III/IV protocols are designed
to resist: replay and tampering against the mutual-authentication
exchange, impersonation without the shared CRP, desynchronisation by
message dropping, and the attestation evasions (naive infection and
memory relocation).  Each attack returns whether it *succeeded*, so the
test-suite and benches can assert the defence holds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.protocols.attestation import (
    AttestationDevice,
    AttestationVerifier,
)
from repro.protocols.mutual_auth import (
    AuthDevice,
    AuthenticationFailure,
    AuthVerifier,
    run_session,
)
from repro.system.memory import RelocatingCompromisedMemory
from repro.system.soc import DeviceSoC
from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class AttackOutcome:
    """Result of one attack attempt."""

    name: str
    succeeded: bool
    detail: str = ""


def replay_attack(device: AuthDevice, verifier: AuthVerifier) -> AttackOutcome:
    """Record one session's device message, replay it in the next session.

    The CRP rolls forward after every session, so the replayed MAC is
    keyed with a stale response and must be rejected.
    """
    nonce = verifier.new_nonce()
    message = device.handle_request(nonce)
    confirmation = verifier.process_response(
        message, nonce, device.soc.strong_puf.challenge_bits
    )
    device.verify_confirmation(confirmation, nonce)
    verifier.finalize()
    # Replay the captured message against the *next* session.
    next_nonce = verifier.new_nonce()
    try:
        verifier.process_response(message, next_nonce,
                                  device.soc.strong_puf.challenge_bits)
        return AttackOutcome("replay", succeeded=True,
                             detail="stale message accepted")
    except AuthenticationFailure as failure:
        return AttackOutcome("replay", succeeded=False, detail=str(failure))


def tamper_attack(device: AuthDevice, verifier: AuthVerifier,
                  flip_byte: int = 12) -> AttackOutcome:
    """Flip a ciphertext byte in flight; the MAC must catch it."""
    nonce = verifier.new_nonce()
    message = bytearray(device.handle_request(nonce))
    message[flip_byte % len(message)] ^= 0x01
    try:
        verifier.process_response(bytes(message), nonce,
                                  device.soc.strong_puf.challenge_bits)
        return AttackOutcome("tamper", succeeded=True,
                             detail="modified message accepted")
    except AuthenticationFailure as failure:
        device._pending = None  # the session dies on both sides
        return AttackOutcome("tamper", succeeded=False, detail=str(failure))


def impersonation_attack(verifier: AuthVerifier, challenge_bits: int,
                         seed: int = 0) -> AttackOutcome:
    """Attempt authentication without knowing the current response."""
    from repro.crypto.mac import mac as compute_mac
    from repro.utils.serialization import encode_fields

    rng = derive_rng(seed, "impersonator")
    fake_response = bytes(rng.integers(0, 256, 8, dtype=np.uint8).tolist())
    nonce = verifier.new_nonce()
    body = encode_fields([
        (0).to_bytes(4, "big"),
        fake_response,
        bytes(32),
        nonce,
    ])
    forged = encode_fields([body, compute_mac(body, b"guessed-key")])
    try:
        verifier.process_response(forged, nonce, challenge_bits)
        return AttackOutcome("impersonation", succeeded=True)
    except AuthenticationFailure as failure:
        return AttackOutcome("impersonation", succeeded=False,
                             detail=str(failure))


def desynchronization_attack(device: AuthDevice,
                             verifier: AuthVerifier) -> AttackOutcome:
    """Drop the verifier's confirmation so only one side rolls the CRP.

    HSC-IoT's ordering makes this safe: the device rolls only after the
    confirmation, the verifier only after emitting it; a dropped
    confirmation leaves the device on the old CRP and the verifier
    pending.  The attack succeeds only if the two sides can no longer
    authenticate afterwards.
    """
    nonce = verifier.new_nonce()
    message = device.handle_request(nonce)
    verifier.process_response(message, nonce,
                              device.soc.strong_puf.challenge_bits)
    # Confirmation dropped: device keeps the old CRP.
    device._pending = None
    # The verifier must fall back to the pre-session CRP for recovery.
    verifier._pending_response = None
    record = run_session(device, verifier)
    if record.success:
        return AttackOutcome("desynchronization", succeeded=False,
                             detail="parties recovered")
    return AttackOutcome("desynchronization", succeeded=True,
                         detail=record.verifier_checks)


def naive_infection_attack(soc: DeviceSoC,
                           verifier: AttestationVerifier,
                           timestamp: int = 7_000) -> AttackOutcome:
    """Infect memory without hiding; the hash check must catch it."""
    soc.memory.infect(address=0, length=1024)
    request = verifier.new_request(timestamp)
    report = AttestationDevice(soc).attest(request)
    verdict = verifier.verify(request, report)
    if verdict.accepted:
        return AttackOutcome("naive_infection", succeeded=True)
    return AttackOutcome(
        "naive_infection", succeeded=False,
        detail=f"hash_ok={verdict.hash_ok} time_ok={verdict.time_ok}",
    )


def relocation_attack(soc: DeviceSoC,
                      verifier: AttestationVerifier,
                      n_infected_chunks: int = 8,
                      timestamp: int = 9_000) -> AttackOutcome:
    """Hide malware behind a clean copy; the timing check must catch it."""
    compromised = RelocatingCompromisedMemory(
        soc.memory.image(),
        chunk_size=soc.memory.chunk_size,
        infected_chunks=set(range(n_infected_chunks)),
    )
    request = verifier.new_request(timestamp)
    report = AttestationDevice(soc, memory=compromised).attest(request)
    verdict = verifier.verify(request, report)
    if verdict.accepted:
        return AttackOutcome("relocation", succeeded=True)
    return AttackOutcome(
        "relocation", succeeded=False,
        detail=f"hash_ok={verdict.hash_ok} time_ok={verdict.time_ok}",
    )
