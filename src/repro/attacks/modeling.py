"""Machine-learning modeling attacks on PUFs.

Paper Sec. IV: "by acquiring a sufficiently large number of CRPs (for
strong PUFs), the adversary can build a model to predict the response to
the next challenge" — and these attacks "have been particularly successful
against common types of PUF, such as PUFs with ring oscillators (ROs) or
arbiters" [28], while photonic PUFs "are expected to provide a greater
gain with respect to modeling attacks".

This module implements the attacker: a from-scratch logistic regression
(the classic arbiter-PUF breaker, exact when given the parity feature
transform) and a small multi-layer perceptron (for targets without a known
linear form).  The CLM-ML bench sweeps training-set sizes and compares
electronic vs photonic targets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.puf.arbiter import parity_features
from repro.puf.base import NOMINAL_ENV, PUFEnvironment, StrongPUF

FeatureMap = Callable[[np.ndarray], np.ndarray]


def raw_features(challenges: np.ndarray) -> np.ndarray:
    """Challenge bits mapped to +-1 with a bias column."""
    signs = 1.0 - 2.0 * np.atleast_2d(np.asarray(challenges, dtype=np.float64))
    bias = np.ones((signs.shape[0], 1))
    return np.hstack([signs, bias])


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class LogisticRegressionAttack:
    """Batch-gradient logistic regression over a pluggable feature map.

    With ``feature_map=parity_features`` this is the textbook arbiter-PUF
    attack: the target function is exactly linear in that space, so
    accuracy approaches 100 % with a few thousand CRPs.
    """

    def __init__(
        self,
        feature_map: FeatureMap = parity_features,
        learning_rate: float = 0.2,
        epochs: int = 300,
        l2: float = 1e-4,
        seed: int = 0,
    ):
        self.feature_map = feature_map
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self.seed = seed
        self._weights: Optional[np.ndarray] = None

    def fit(self, challenges: np.ndarray, responses: np.ndarray) -> "LogisticRegressionAttack":
        features = np.asarray(self.feature_map(challenges), dtype=np.float64)
        labels = np.asarray(responses, dtype=np.float64).ravel()
        if features.shape[0] != labels.size:
            raise ValueError("challenge and response counts disagree")
        rng = np.random.default_rng(self.seed)
        weights = rng.normal(0.0, 0.01, size=features.shape[1])
        n = features.shape[0]
        for __ in range(self.epochs):
            predictions = _sigmoid(features @ weights)
            gradient = features.T @ (predictions - labels) / n + self.l2 * weights
            weights -= self.learning_rate * gradient
        self._weights = weights
        return self

    def predict(self, challenges: np.ndarray) -> np.ndarray:
        if self._weights is None:
            raise RuntimeError("fit() must be called first")
        features = np.asarray(self.feature_map(challenges), dtype=np.float64)
        return (features @ self._weights > 0).astype(np.uint8)

    def accuracy(self, challenges: np.ndarray, responses: np.ndarray) -> float:
        predictions = self.predict(challenges)
        return float(np.mean(predictions == np.asarray(responses).ravel()))


class MLPAttack:
    """One-hidden-layer perceptron attacker (tanh / sigmoid), plain SGD.

    Used against targets with no known linear form: XOR-arbiter chains and
    the photonic strong PUF.
    """

    def __init__(
        self,
        feature_map: FeatureMap = raw_features,
        hidden: int = 32,
        learning_rate: float = 0.1,
        epochs: int = 400,
        batch_size: int = 64,
        seed: int = 0,
    ):
        self.feature_map = feature_map
        self.hidden = hidden
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.batch_size = batch_size
        self.seed = seed
        self._params: Optional[tuple] = None

    def fit(self, challenges: np.ndarray, responses: np.ndarray) -> "MLPAttack":
        features = np.asarray(self.feature_map(challenges), dtype=np.float64)
        labels = np.asarray(responses, dtype=np.float64).ravel()
        rng = np.random.default_rng(self.seed)
        d = features.shape[1]
        w1 = rng.normal(0.0, 1.0 / np.sqrt(d), size=(d, self.hidden))
        b1 = np.zeros(self.hidden)
        w2 = rng.normal(0.0, 1.0 / np.sqrt(self.hidden), size=self.hidden)
        b2 = 0.0
        n = features.shape[0]
        for epoch in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                batch = order[start:start + self.batch_size]
                x, y = features[batch], labels[batch]
                hidden_act = np.tanh(x @ w1 + b1)
                output = _sigmoid(hidden_act @ w2 + b2)
                delta_out = output - y
                grad_w2 = hidden_act.T @ delta_out / batch.size
                grad_b2 = float(delta_out.mean())
                delta_hidden = np.outer(delta_out, w2) * (1.0 - hidden_act**2)
                grad_w1 = x.T @ delta_hidden / batch.size
                grad_b1 = delta_hidden.mean(axis=0)
                w2 -= self.learning_rate * grad_w2
                b2 -= self.learning_rate * grad_b2
                w1 -= self.learning_rate * grad_w1
                b1 -= self.learning_rate * grad_b1
        self._params = (w1, b1, w2, b2)
        return self

    def predict(self, challenges: np.ndarray) -> np.ndarray:
        if self._params is None:
            raise RuntimeError("fit() must be called first")
        w1, b1, w2, b2 = self._params
        features = np.asarray(self.feature_map(challenges), dtype=np.float64)
        hidden_act = np.tanh(features @ w1 + b1)
        return (_sigmoid(hidden_act @ w2 + b2) > 0.5).astype(np.uint8)

    def accuracy(self, challenges: np.ndarray, responses: np.ndarray) -> float:
        predictions = self.predict(challenges)
        return float(np.mean(predictions == np.asarray(responses).ravel()))


@dataclass(frozen=True)
class AttackCurvePoint:
    """One point of an accuracy-vs-training-size curve."""

    n_train: int
    accuracy: float


def collect_crps(
    puf: StrongPUF,
    n_crps: int,
    seed: int = 0,
    env: PUFEnvironment = NOMINAL_ENV,
    response_bit: int = 0,
) -> tuple:
    """(challenges, single-bit responses) for attack training/evaluation.

    Harvesting always goes through ``puf.evaluate_batch`` (every PUF has
    it — engine-backed devices serve the whole block as one vectorized
    pass); the old per-challenge ``evaluate`` list comprehension made
    dataset collection the bottleneck of attack sweeps against compiled
    targets.
    """
    rng = np.random.default_rng(seed)
    challenges = rng.integers(0, 2, size=(n_crps, puf.challenge_bits),
                              dtype=np.uint8)
    responses = np.atleast_2d(
        puf.evaluate_batch(challenges, env, measurement=0)
    )
    if responses.shape[0] != n_crps:  # single-bit batch shape (n,)
        responses = responses.T
    bit = responses[:, response_bit] if responses.ndim == 2 else responses
    return challenges, np.asarray(bit, dtype=np.uint8).ravel()


def attack_curve(
    puf: StrongPUF,
    attacker_factory: Callable[[], object],
    train_sizes: Sequence[int],
    n_test: int = 500,
    seed: int = 0,
    response_bit: int = 0,
) -> List[AttackCurvePoint]:
    """Accuracy of a fresh attacker at each training-set size.

    The largest training set plus the test set are collected once; smaller
    training sets are prefixes, so the curve is monotone in data, not in
    attacker luck.
    """
    max_train = max(train_sizes)
    challenges, responses = collect_crps(
        puf, max_train + n_test, seed=seed, response_bit=response_bit
    )
    test_x, test_y = challenges[max_train:], responses[max_train:]
    points = []
    for size in train_sizes:
        attacker = attacker_factory()
        attacker.fit(challenges[:size], responses[:size])
        points.append(AttackCurvePoint(size, attacker.accuracy(test_x, test_y)))
    return points
