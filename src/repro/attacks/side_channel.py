"""Power/RF side-channel simulation and correlation analysis.

Paper Sec. IV: electronic PUFs leak through the silicon substrate — "by
performing a power analysis, it was possible to extract key information
about PUF behavior and thus carry out modeling attacks" [9], [24] —
whereas photonic signals "leak out only a few hundred nanometers" from the
waveguide, leaving only the PIC/ASIC interface as a (much weaker and
harder to exploit) leakage point.

We model each technology's evaluation as a power trace whose informative
component is proportional to the Hamming weight of the processed response
word, with technology-specific leakage coefficients, and implement the
attacker as a Pearson-correlation analysis (CPA-style) plus a
trace-thresholding response-recovery attack.  The CLM-SC bench compares
electronic and photonic leakage and recovery rates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class LeakageModel:
    """Power-trace model of one PUF evaluation.

    trace[t] = baseline + leak * HW(response) * window(t) + noise

    Attributes
    ----------
    leak_per_bit:
        Amplitude contributed per set response bit at the leakage instant
        (arbitrary power units).  The electronic/photonic asymmetry lives
        here.
    noise_sigma:
        Gaussian measurement noise per sample.
    n_samples:
        Trace length; the leakage is concentrated mid-trace.
    """

    leak_per_bit: float
    noise_sigma: float = 1.0
    n_samples: int = 64
    baseline: float = 10.0

    def window(self) -> np.ndarray:
        """Leakage window: a raised-cosine bump centred mid-trace."""
        t = np.arange(self.n_samples)
        centre = self.n_samples / 2.0
        width = self.n_samples / 8.0
        return np.exp(-0.5 * ((t - centre) / width) ** 2)


ELECTRONIC_LEAKAGE = LeakageModel(leak_per_bit=0.8)
# Photonic evaluation: information stays optical; only the ASIC-side ADC
# activity leaks, two orders of magnitude weaker (Sec. IV).
PHOTONIC_LEAKAGE = LeakageModel(leak_per_bit=0.008)


def simulate_traces(
    responses: np.ndarray,
    model: LeakageModel,
    seed: int = 0,
) -> np.ndarray:
    """(n_evaluations, n_samples) power traces for a batch of responses."""
    responses = np.atleast_2d(np.asarray(responses, dtype=np.uint8))
    weights = responses.sum(axis=1).astype(np.float64)
    rng = derive_rng(seed, "sidechannel", "traces")
    window = model.window()
    traces = (model.baseline
              + np.outer(weights * model.leak_per_bit, window)
              + model.noise_sigma * rng.standard_normal(
                  (responses.shape[0], model.n_samples)))
    return traces


def leakage_correlation(traces: np.ndarray, responses: np.ndarray) -> float:
    """Peak |Pearson correlation| between trace samples and response HW.

    This is the CPA distinguisher value: near 1 means the side channel
    reveals the response Hamming weight, near 0 means it is useless.
    """
    traces = np.asarray(traces, dtype=np.float64)
    weights = np.atleast_2d(np.asarray(responses, dtype=np.uint8)).sum(axis=1)
    if traces.shape[0] != weights.size:
        raise ValueError("trace and response counts disagree")
    if np.all(weights == weights[0]):
        return 0.0
    centred_w = weights - weights.mean()
    centred_t = traces - traces.mean(axis=0)
    denom = (np.linalg.norm(centred_w)
             * np.linalg.norm(centred_t, axis=0))
    with np.errstate(invalid="ignore", divide="ignore"):
        correlations = np.where(denom > 0, centred_t.T @ centred_w / denom, 0.0)
    return float(np.max(np.abs(correlations)))


def hamming_weight_recovery(
    traces: np.ndarray,
    responses: np.ndarray,
) -> float:
    """Accuracy of recovering HW(response) from the trace peak.

    The attacker regresses the mid-trace amplitude onto integer Hamming
    weights using the best linear fit, then rounds.  Returns the fraction
    of evaluations whose weight is recovered exactly.
    """
    traces = np.asarray(traces, dtype=np.float64)
    weights = np.atleast_2d(np.asarray(responses, dtype=np.uint8)).sum(axis=1)
    peak = traces[:, traces.shape[1] // 2]
    # Least-squares fit peak = a * weight + b (attacker has a profiling set).
    a, b = np.polyfit(weights, peak, 1)
    if abs(a) < 1e-12:
        return float(np.mean(weights == round(np.mean(weights))))
    estimates = np.clip(np.round((peak - b) / a), 0, None)
    return float(np.mean(estimates == weights))


@dataclass(frozen=True)
class SideChannelReport:
    """Comparison row for the CLM-SC bench."""

    technology: str
    correlation: float
    hw_recovery_accuracy: float
    chance_level: float


def compare_technologies(
    responses: np.ndarray,
    seed: int = 0,
) -> Sequence[SideChannelReport]:
    """Run the identical attack against electronic and photonic leakage."""
    responses = np.atleast_2d(np.asarray(responses, dtype=np.uint8))
    weights = responses.sum(axis=1)
    values, counts = np.unique(weights, return_counts=True)
    chance = float(counts.max() / weights.size)
    reports = []
    for technology, model in (("electronic", ELECTRONIC_LEAKAGE),
                              ("photonic", PHOTONIC_LEAKAGE)):
        traces = simulate_traces(responses, model, seed)
        reports.append(SideChannelReport(
            technology=technology,
            correlation=leakage_correlation(traces, responses),
            hw_recovery_accuracy=hamming_weight_recovery(traces, responses),
            chance_level=chance,
        ))
    return reports
