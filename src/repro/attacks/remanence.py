"""Remanence-decay side channel: SRAM PUFs vs photonic PUFs.

Paper Sec. IV, citing [27]: SRAM PUFs that share their array with other
functionality are exposed to the remanence-decay attack — an attacker who
briefly cuts power can read back a mixture of the previously stored data
and the PUF fingerprint, and by sweeping the off-time can separate the
two.  The photonic PUF's response, by contrast, "is present in the PUF
for a very short period of time (below 100 ns)", so there is nothing left
to read after interrogation.

This module implements both sides: the attack against the SRAM model and
the equivalent attempt against the photonic strong PUF's decayed optical
state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.puf.photonic_strong import PhotonicStrongPUF
from repro.puf.sram import SRAMPUF


@dataclass(frozen=True)
class RemanencePoint:
    """Recovery accuracy after one power-off duration."""

    off_time_s: float
    secret_recovery: float  # fraction of previously stored bits recovered
    fingerprint_contamination: float  # fraction of cells already at power-up value


def sram_remanence_sweep(
    puf: SRAMPUF,
    secret: np.ndarray,
    off_times_s: Sequence[float],
    measurement_base: int = 0,
) -> List[RemanencePoint]:
    """Attack an SRAM PUF that shares its array with stored data.

    The attacker wrote ``secret`` into the array, cuts power for each
    ``off_time``, then reads at power-up.  Short off-times recover the
    secret (a confidentiality break); long off-times recover the
    fingerprint (a cloning aid).
    """
    secret = np.asarray(secret, dtype=np.uint8)
    fingerprint = puf.power_up(measurement=measurement_base)
    points = []
    for index, off_time in enumerate(off_times_s):
        read = puf.remanence_read(
            secret, float(off_time), measurement=measurement_base + 1 + index
        )
        points.append(RemanencePoint(
            off_time_s=float(off_time),
            secret_recovery=float(np.mean(read == secret)),
            fingerprint_contamination=float(np.mean(read == fingerprint)),
        ))
    return points


def photonic_remanence_attempt(
    puf: PhotonicStrongPUF,
    challenge: np.ndarray,
    delay_s: float,
    measurement: int = 0,
) -> float:
    """Attempt to read the photonic response ``delay_s`` after interrogation.

    The recirculating optical energy decays exponentially with the ring
    time constant; the attacker thresholds whatever energy remains.
    Returns the fraction of response bits recovered (0.5 = chance).
    """
    challenge = np.asarray(challenge, dtype=np.uint8)
    energies = puf.slot_energies(challenge, measurement=measurement)
    true_bits = puf.evaluate(challenge, measurement=measurement)
    # Energy that remains after the delay: every slot value decays with
    # the slowest ring's time constant.
    lifetime = puf.response_lifetime_s()
    # response_lifetime_s is the ~1e-4 decay point: convert to a time
    # constant (energy halves every tau_half).
    tau_decay = lifetime / np.log(1e4)
    surviving = energies * np.exp(-delay_s / max(tau_decay, 1e-15))
    noise_floor = puf.noise_mw
    rng = np.random.default_rng(measurement + 17)
    measured = surviving + noise_floor * rng.standard_normal(surviving.shape)
    recovered = []
    for (slot, pair) in puf._assignments:
        recovered.append(1 if measured[pair, slot] > measured[pair + 1, slot] else 0)
    return float(np.mean(np.asarray(recovered) == true_bits))
