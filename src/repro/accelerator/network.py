"""Neuromorphic network running on the photonic accelerator.

A feed-forward network whose dense layers execute on
:class:`~repro.accelerator.mesh.PhotonicMatrixUnit` hardware with
PCM-quantised weights, plus the byte-level configuration format the
security services encrypt (paper Sec. III-C: ``load_network`` receives
the network *ciphered*; Table I).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.accelerator.mesh import PhotonicMatrixUnit
from repro.accelerator.pcm import PCMCellArray, PCMModel


def photodetector_relu(x: np.ndarray) -> np.ndarray:
    """Rectifying opto-electronic nonlinearity (PD + thresholding)."""
    return np.maximum(x, 0.0)


def saturable_absorber(x: np.ndarray) -> np.ndarray:
    """Saturable-absorption nonlinearity: tanh-like optical squashing."""
    return np.tanh(x)


_ACTIVATIONS = {
    "relu": photodetector_relu,
    "tanh": saturable_absorber,
    "linear": lambda x: x,
}


@dataclass
class LayerConfig:
    """One dense layer: weights, bias, activation name."""

    weights: np.ndarray
    bias: np.ndarray
    activation: str = "relu"

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        self.bias = np.asarray(self.bias, dtype=np.float64)
        if self.weights.ndim != 2:
            raise ValueError("layer weights must be a matrix")
        if self.bias.shape != (self.weights.shape[0],):
            raise ValueError("bias shape must match the output dimension")
        if self.activation not in _ACTIVATIONS:
            raise ValueError(f"unknown activation {self.activation!r}")


@dataclass
class NetworkConfig:
    """Serialisable network description (the object that gets encrypted)."""

    layers: List[LayerConfig]

    def serialize(self) -> bytes:
        """Canonical byte encoding of the configuration."""
        payload = []
        for layer in self.layers:
            payload.append({
                "weights": layer.weights.tolist(),
                "bias": layer.bias.tolist(),
                "activation": layer.activation,
            })
        return json.dumps(payload, separators=(",", ":")).encode()

    @classmethod
    def deserialize(cls, data: bytes) -> "NetworkConfig":
        try:
            payload = json.loads(data.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"malformed network configuration: {exc}") from exc
        layers = [
            LayerConfig(
                weights=np.asarray(entry["weights"], dtype=np.float64),
                bias=np.asarray(entry["bias"], dtype=np.float64),
                activation=entry.get("activation", "relu"),
            )
            for entry in payload
        ]
        return cls(layers=layers)

    @property
    def input_dim(self) -> int:
        return self.layers[0].weights.shape[1]

    @property
    def output_dim(self) -> int:
        return self.layers[-1].weights.shape[0]


class _ProgrammedLayer:
    """A layer as physically programmed: PCM cells + MZI mesh."""

    def __init__(self, layer: LayerConfig, pcm_model: PCMModel,
                 mesh_sigma: float, seed: int):
        self.bias = layer.bias
        self.activation = layer.activation
        self.sign = np.sign(layer.weights)
        magnitude = np.abs(layer.weights)
        self.top = float(magnitude.max()) if magnitude.size else 0.0
        self.pcm = PCMCellArray(layer.weights.shape, pcm_model, seed=seed)
        if self.top > 0:
            self.pcm.program_levels(self.pcm.quantize_weights(magnitude / self.top))
        self._mesh_sigma = mesh_sigma
        self._seed = seed
        self._unit: Optional[PhotonicMatrixUnit] = None
        self._unit_age = -1.0

    def realized_weights(self, age_seconds: float) -> np.ndarray:
        """Weight matrix as the hardware currently realises it."""
        if self.top == 0:
            return np.zeros_like(self.sign)
        return self.sign * self.pcm.transmissions(age_seconds) * self.top

    def unit(self, age_seconds: float) -> PhotonicMatrixUnit:
        """MZI mesh for the current (drifted) weights, cached per age."""
        if self._unit is None or self._unit_age != age_seconds:
            self._unit = PhotonicMatrixUnit(
                self.realized_weights(age_seconds),
                imperfection_sigma=self._mesh_sigma,
                seed=self._seed,
            )
            self._unit_age = age_seconds
        return self._unit


class NeuromorphicAccelerator:
    """Photonic inference engine with PCM weight storage.

    Weights are split into sign and magnitude; magnitudes are quantised
    into PCM transmission levels (write noise, drift), and each layer's
    matrix-vector product runs through an MZI mesh with per-MZI phase
    error.  ``mesh_imperfection_sigma=0`` with a fine-grained PCM model
    approaches the ideal digital reference.
    """

    def __init__(
        self,
        mesh_imperfection_sigma: float = 0.005,
        pcm_model: Optional[PCMModel] = None,
        detection_noise: float = 0.0,
        seed: int = 0,
    ):
        self.mesh_imperfection_sigma = mesh_imperfection_sigma
        self.pcm_model = pcm_model if pcm_model is not None else PCMModel()
        self.detection_noise = detection_noise
        self.seed = seed
        self._layers: List[_ProgrammedLayer] = []
        self._config: Optional[NetworkConfig] = None
        self._age_seconds = 0.0

    @property
    def is_loaded(self) -> bool:
        return self._config is not None

    @property
    def age_seconds(self) -> float:
        return self._age_seconds

    def load(self, config: NetworkConfig) -> None:
        """Program the network into the photonic hardware."""
        self._layers = [
            _ProgrammedLayer(layer, self.pcm_model,
                             self.mesh_imperfection_sigma,
                             seed=self.seed * 1000 + index)
            for index, layer in enumerate(config.layers)
        ]
        self._config = config
        self._age_seconds = 0.0

    def age(self, seconds: float) -> None:
        """Advance PCM drift time (weights fade slightly)."""
        if seconds < 0:
            raise ValueError("cannot age backwards")
        self._age_seconds += seconds

    def infer(self, x: Sequence[float]) -> np.ndarray:
        """Run one input through the loaded network."""
        if self._config is None:
            raise RuntimeError("no network loaded")
        activation = np.asarray(x, dtype=np.float64)
        rng = np.random.default_rng(self.seed + 7)
        for layer in self._layers:
            unit = layer.unit(self._age_seconds)
            z = unit.apply(activation, self.detection_noise, rng) + layer.bias
            activation = _ACTIVATIONS[layer.activation](z)
        return activation

    def infer_batch(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised inference over rows of ``xs``."""
        xs = np.atleast_2d(np.asarray(xs, dtype=np.float64))
        return np.vstack([self.infer(x) for x in xs])

    def n_mzis(self) -> int:
        """Total MZI count of the programmed network."""
        return sum(layer.unit(self._age_seconds).n_mzis for layer in self._layers)


def reference_forward(config: NetworkConfig, x: Sequence[float]) -> np.ndarray:
    """Ideal digital forward pass (ground truth for accuracy studies)."""
    activation = np.asarray(x, dtype=np.float64)
    for layer in config.layers:
        z = layer.weights @ activation + layer.bias
        activation = _ACTIVATIONS[layer.activation](z)
    return activation
