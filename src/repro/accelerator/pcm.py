"""Phase-change material (PCM) weight cells.

NEUROPULS builds its neuromorphic accelerator on "phase change materials
augmented silicon photonics" [11]: synaptic weights are stored as the
optical transmission of a PCM patch on a waveguide, programmed between
amorphous (transparent-ish, low loss... high transmission) and crystalline
(absorbing) states.  The model captures the properties the security
services care about: quantised programmable levels, programming noise,
and conductance drift over time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.utils.rng import derive_rng


@dataclass(frozen=True)
class PCMModel:
    """Technology parameters of a PCM weight cell.

    Attributes
    ----------
    n_levels:
        Number of programmable transmission levels.
    t_min / t_max:
        Optical power transmission of the fully crystalline / fully
        amorphous states.
    sigma_program:
        Relative programming inaccuracy (per write).
    drift_nu:
        Drift exponent: T(t) = T(t0) * (t / t0)^(-nu) toward lower
        transmission, the standard PCM resistance-drift law mapped onto
        transmission.
    """

    n_levels: int = 16
    t_min: float = 0.05
    t_max: float = 0.95
    sigma_program: float = 0.01
    drift_nu: float = 0.02
    t0_seconds: float = 60.0

    def level_transmission(self, level: int) -> float:
        """Nominal transmission of a programmed level."""
        if not 0 <= level < self.n_levels:
            raise ValueError(f"level {level} out of range [0, {self.n_levels})")
        fraction = level / (self.n_levels - 1)
        return self.t_min + (self.t_max - self.t_min) * fraction


class PCMCellArray:
    """A programmable array of PCM cells with drift and write noise."""

    def __init__(self, shape, model: Optional[PCMModel] = None, seed: int = 0):
        self.shape = tuple(shape)
        self.model = model or PCMModel()
        self.seed = seed
        self._levels = np.zeros(self.shape, dtype=np.int64)
        self._programmed = np.full(self.shape, self.model.t_max, dtype=np.float64)
        self._write_count = 0

    def program_levels(self, levels: np.ndarray) -> None:
        """Write quantised levels into the array (one write pulse each)."""
        levels = np.asarray(levels, dtype=np.int64)
        if levels.shape != self.shape:
            raise ValueError(f"levels must have shape {self.shape}")
        if levels.min() < 0 or levels.max() >= self.model.n_levels:
            raise ValueError("level out of range")
        rng = derive_rng(self.seed, "pcm", "write", self._write_count)
        self._write_count += 1
        nominal = (self.model.t_min
                   + (self.model.t_max - self.model.t_min)
                   * levels / (self.model.n_levels - 1))
        noise = 1.0 + rng.normal(0.0, self.model.sigma_program, size=self.shape)
        self._levels = levels
        self._programmed = np.clip(nominal * noise, 0.0, 1.0)

    def quantize_weights(self, weights: np.ndarray) -> np.ndarray:
        """Map real weights in [0, 1] to the nearest programmable level."""
        weights = np.asarray(weights, dtype=np.float64)
        if weights.min() < 0.0 or weights.max() > 1.0:
            raise ValueError("weights must be normalised to [0, 1]")
        return np.round(weights * (self.model.n_levels - 1)).astype(np.int64)

    def transmissions(self, age_seconds: float = 0.0) -> np.ndarray:
        """Current transmission of every cell, including drift."""
        if age_seconds < 0:
            raise ValueError("age must be non-negative")
        if age_seconds <= self.model.t0_seconds:
            return self._programmed.copy()
        drift = (age_seconds / self.model.t0_seconds) ** (-self.model.drift_nu)
        return np.clip(self._programmed * drift, 0.0, 1.0)

    @property
    def levels(self) -> np.ndarray:
        return self._levels.copy()
