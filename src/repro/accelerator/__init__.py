"""Neuromorphic photonic accelerator: PCM weights, MZI meshes, reservoir."""

from repro.accelerator.mesh import (
    PhotonicMatrixUnit,
    reck_compose,
    reck_decompose,
)
from repro.accelerator.network import (
    LayerConfig,
    NetworkConfig,
    NeuromorphicAccelerator,
    photodetector_relu,
    reference_forward,
    saturable_absorber,
)
from repro.accelerator.pcm import PCMCellArray, PCMModel
from repro.accelerator.reservoir import PhotonicReservoir, narma10

__all__ = [
    "PhotonicMatrixUnit",
    "reck_compose",
    "reck_decompose",
    "LayerConfig",
    "NetworkConfig",
    "NeuromorphicAccelerator",
    "photodetector_relu",
    "reference_forward",
    "saturable_absorber",
    "PCMCellArray",
    "PCMModel",
    "PhotonicReservoir",
    "narma10",
]
