"""Programmable MZI-mesh linear optics for the neuromorphic accelerator.

A unitary matrix is realised as a triangular (Reck-style) cascade of 2x2
MZI rotations plus an output phase screen; an arbitrary real matrix is
realised as U Sigma V^dagger (SVD): mesh - attenuator column - mesh, the
standard coherent photonic matrix-multiplier architecture.

Hardware imperfection enters per MZI: each programmed 2x2 rotation is
perturbed by a small random rotation (phase-setting error), which is what
limits inference accuracy on the physical accelerator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.utils.rng import derive_rng


def reck_decompose(unitary: np.ndarray) -> Tuple[List[Tuple[int, np.ndarray]], np.ndarray]:
    """Decompose a unitary into 2x2 rotations on adjacent modes.

    Returns ``(rotations, diagonal)`` such that

        U = (R_1^dagger R_2^dagger ... R_k^dagger) @ diag(phases)

    where each ``R`` is returned as ``(top_mode, 2x2 unitary)`` acting on
    modes (top_mode, top_mode + 1) and the list is given in application
    order for reconstruction (see :func:`reck_compose`).
    """
    u = np.array(unitary, dtype=np.complex128)
    n = u.shape[0]
    if u.shape != (n, n):
        raise ValueError("matrix must be square")
    if not np.allclose(u @ u.conj().T, np.eye(n), atol=1e-8):
        raise ValueError("matrix is not unitary")
    rotations: List[Tuple[int, np.ndarray]] = []
    for col in range(n - 1):
        for row in range(n - 1, col, -1):
            a, b = u[row - 1, col], u[row, col]
            if abs(b) < 1e-14:
                continue  # element already null: no MZI needed
            norm = np.sqrt(abs(a) ** 2 + abs(b) ** 2)
            givens = np.array([[np.conj(a), np.conj(b)],
                               [-b, a]], dtype=np.complex128) / norm
            embed = np.eye(n, dtype=np.complex128)
            embed[row - 1:row + 1, row - 1:row + 1] = givens
            u = embed @ u
            rotations.append((row - 1, givens))
    diagonal = np.diag(u).copy()
    if not np.allclose(u, np.diag(diagonal), atol=1e-8):
        raise AssertionError("nulling did not reach diagonal form")
    return rotations, diagonal


def reck_compose(
    rotations: List[Tuple[int, np.ndarray]],
    diagonal: np.ndarray,
    imperfection_sigma: float = 0.0,
    seed: int = 0,
) -> np.ndarray:
    """Rebuild the unitary from its decomposition, with MZI errors.

    ``imperfection_sigma`` is the std. dev. (radians) of the per-MZI phase
    programming error; zero rebuilds the exact matrix.
    """
    n = diagonal.size
    result = np.diag(np.asarray(diagonal, dtype=np.complex128))
    rng = derive_rng(seed, "mesh", "imperfection")
    for index in range(len(rotations) - 1, -1, -1):
        top, givens = rotations[index]
        block = givens.conj().T
        if imperfection_sigma > 0:
            theta = rng.normal(0.0, imperfection_sigma)
            phi = rng.normal(0.0, imperfection_sigma)
            error = np.array([
                [np.cos(theta) * np.exp(1j * phi), -np.sin(theta)],
                [np.sin(theta), np.cos(theta) * np.exp(-1j * phi)],
            ], dtype=np.complex128)
            block = error @ block
        embed = np.eye(n, dtype=np.complex128)
        embed[top:top + 2, top:top + 2] = block
        result = embed @ result
    return result


@dataclass
class PhotonicMatrixUnit:
    """Coherent photonic multiplier for an arbitrary real matrix.

    The matrix is factored as ``W = U diag(s) V^h`` and realised as two
    MZI meshes around an attenuator column.  Singular values are
    normalised so every attenuator transmission is <= 1; the overall scale
    is re-applied electronically after detection.
    """

    weights: np.ndarray
    imperfection_sigma: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        w = np.asarray(self.weights, dtype=np.float64)
        if w.ndim != 2:
            raise ValueError("weights must be a matrix")
        u, s, vh = np.linalg.svd(w)
        self._scale = float(s.max()) if s.size and s.max() > 0 else 1.0
        self._attenuations = s / self._scale
        rot_u, diag_u = reck_decompose(u)
        rot_v, diag_v = reck_decompose(vh)
        self._u = reck_compose(rot_u, diag_u, self.imperfection_sigma, self.seed)
        self._vh = reck_compose(rot_v, diag_v, self.imperfection_sigma, self.seed + 1)
        self._n_mzis = len(rot_u) + len(rot_v)

    @property
    def n_mzis(self) -> int:
        """MZI count — the optical footprint of this layer."""
        return self._n_mzis

    def apply(self, x: np.ndarray, noise_sigma: float = 0.0,
              rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """y = W x through the (imperfect) optical path.

        Input is encoded as field amplitudes, output is coherently
        detected (real part), with optional additive detection noise.
        """
        x = np.asarray(x, dtype=np.complex128)
        if x.shape[-1] != self._vh.shape[1]:
            raise ValueError("input dimension mismatch")
        modes = x @ self._vh.T
        full = np.zeros(modes.shape[:-1] + (self._u.shape[1],),
                        dtype=np.complex128)
        k = self._attenuations.size
        full[..., :k] = modes[..., :k] * self._attenuations
        detected = np.real(full @ self._u.T) * self._scale
        if noise_sigma > 0:
            rng = rng or np.random.default_rng(self.seed + 99)
            detected = detected + rng.normal(0.0, noise_sigma, size=detected.shape)
        return detected
