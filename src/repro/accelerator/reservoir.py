"""Photonic reservoir computing layer.

The paper motivates the strong PUF's memory effects by analogy to
reservoir computing (Sec. II-A); the NEUROPULS accelerator itself offers
a reservoir mode where a fixed random photonic network provides the
temporal feature expansion and only a linear readout is trained.  This
module implements an echo-state reservoir with photonic-flavoured
parameters (saturable-absorber nonlinearity, fixed random interferometric
coupling) and a ridge-regression readout.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import derive_rng


class PhotonicReservoir:
    """Echo-state network with a fixed photonic coupling matrix.

    Parameters
    ----------
    n_nodes:
        Reservoir dimensionality (number of photonic nodes).
    spectral_radius:
        Largest |eigenvalue| of the recurrent coupling after rescaling;
        < 1 gives the echo-state (fading memory) property — the same
        fading memory the strong PUF's rings exhibit.
    input_scale:
        Gain applied to the scalar input stream.
    leak:
        Leaky-integrator coefficient (photodetector bandwidth analogue).
    """

    def __init__(
        self,
        n_nodes: int = 64,
        spectral_radius: float = 0.9,
        input_scale: float = 1.0,
        leak: float = 0.8,
        seed: int = 0,
    ):
        if not 0 < spectral_radius < 1:
            raise ValueError("spectral radius must lie in (0, 1) for echo state")
        if not 0 < leak <= 1:
            raise ValueError("leak must lie in (0, 1]")
        self.n_nodes = n_nodes
        self.spectral_radius = spectral_radius
        self.input_scale = input_scale
        self.leak = leak
        rng = derive_rng(seed, "reservoir", "coupling")
        coupling = rng.normal(0.0, 1.0, size=(n_nodes, n_nodes))
        radius = float(np.max(np.abs(np.linalg.eigvals(coupling))))
        self._coupling = coupling * (spectral_radius / radius)
        self._input_weights = derive_rng(seed, "reservoir", "input").uniform(
            -input_scale, input_scale, size=n_nodes
        )
        self._readout: Optional[np.ndarray] = None

    def run(self, inputs: np.ndarray, washout: int = 10) -> np.ndarray:
        """Collect reservoir states for a scalar input sequence.

        Returns states of shape (len(inputs) - washout, n_nodes + 1); the
        final column is a constant bias term.
        """
        inputs = np.asarray(inputs, dtype=np.float64).ravel()
        if inputs.size <= washout:
            raise ValueError("sequence shorter than the washout period")
        state = np.zeros(self.n_nodes)
        collected = []
        for step, u in enumerate(inputs):
            preactivation = self._coupling @ state + self._input_weights * u
            state = ((1 - self.leak) * state
                     + self.leak * np.tanh(preactivation))
            if step >= washout:
                collected.append(np.concatenate([state, [1.0]]))
        return np.vstack(collected)

    def fit_readout(
        self,
        inputs: np.ndarray,
        targets: np.ndarray,
        washout: int = 10,
        ridge: float = 1e-6,
    ) -> float:
        """Train the linear readout by ridge regression; returns train NRMSE."""
        targets = np.asarray(targets, dtype=np.float64).ravel()
        states = self.run(inputs, washout)
        y = targets[washout:]
        if states.shape[0] != y.size:
            raise ValueError("inputs and targets must have equal length")
        gram = states.T @ states + ridge * np.eye(states.shape[1])
        self._readout = np.linalg.solve(gram, states.T @ y)
        predictions = states @ self._readout
        return _nrmse(predictions, y)

    def predict(self, inputs: np.ndarray, washout: int = 10) -> np.ndarray:
        """Readout predictions for a fresh input sequence."""
        if self._readout is None:
            raise RuntimeError("fit_readout() must be called first")
        states = self.run(inputs, washout)
        return states @ self._readout

    def score(self, inputs: np.ndarray, targets: np.ndarray,
              washout: int = 10) -> float:
        """NRMSE on a held-out sequence."""
        predictions = self.predict(inputs, washout)
        return _nrmse(predictions, np.asarray(targets).ravel()[washout:])


def _nrmse(predictions: np.ndarray, targets: np.ndarray) -> float:
    scale = np.std(targets)
    if scale == 0:
        scale = 1.0
    return float(np.sqrt(np.mean((predictions - targets) ** 2)) / scale)


def narma10(n_steps: int, seed: int = 0) -> tuple:
    """The NARMA-10 benchmark sequence (standard reservoir task)."""
    rng = derive_rng(seed, "narma10")
    u = rng.uniform(0.0, 0.5, size=n_steps)
    y = np.zeros(n_steps)
    for t in range(9, n_steps - 1):
        y[t + 1] = (0.3 * y[t]
                    + 0.05 * y[t] * y[t - 9:t + 1].sum()
                    + 1.5 * u[t - 9] * u[t]
                    + 0.1)
    return u, y
