"""Wiring the metrics registry through every layer of the stack.

This module is deliberately **import-light**: it never imports
:mod:`repro.service` or :mod:`repro.fleet` (the service modules import
*it* for the deprecation shims, so a top-level import here would be a
cycle).  Everything binds by duck typing:

- :func:`instrument_service` /
  :meth:`ServiceObs.bind_verifier` — outcome counters, round-latency
  histograms, coalescer depth/flush metrics, spot-pool gauges, and
  round trace spans for an :class:`~repro.service.facade.AuthService`
  or a bare :class:`~repro.fleet.verifier.BatchVerifier`.
- :func:`instrument_server` / :func:`instrument_chaos` — migrate the
  (deprecated) ``ServerMetrics``/``ChaosMetrics`` attribute counters
  onto a shared registry, carrying over any counts already taken, and
  add handshake-latency timing.
- :func:`instrument_backend` — checkpoint duration/bytes plus sampled
  eviction/fault/WAL counters for a ``ShardedFileBackend``.
- :func:`instrument_replica_group` — one shared registry across a
  whole :class:`~repro.service.ha.ReplicaGroup` (lease transitions,
  promotions, fenced refusals, WAL replay time, per-replica
  incarnations), so scraping *any* replica returns fleet-wide totals.

The binding sites inside the instrumented classes are all of the form
``if self._obs is not None: self._obs.on_...(...)`` — an
uninstrumented object pays one attribute load, and an instrumented
object with a *disabled* registry pays exactly one further branch
(every hook begins with the enabled check).  No hook ever touches an
RNG or a non-injected clock: metrics on vs off is transcript- and
nonce-stream-identical (tests/obs/test_noninterference.py).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs.registry import MetricsRegistry, _deprecated
from repro.obs.trace import RoundTracer

__all__ = [
    "GroupObs",
    "RegistryBackedCounters",
    "ServerObs",
    "ServiceObs",
    "instrument_backend",
    "instrument_chaos",
    "instrument_replica_group",
    "instrument_server",
    "instrument_service",
    "instrument_verifier",
]

#: Fleets larger than this skip the per-device spot-pool sweep on
#: scrape — sampling a million-device out-of-core registry would fault
#: every page in.
POOL_SAMPLE_LIMIT = 4096

#: Micro-round size buckets (devices per coalesced flush).
MICRO_ROUND_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                       256.0, 512.0)

#: Checkpoint size buckets (bytes, powers of 16 from 4 KiB).
CHECKPOINT_BYTE_BUCKETS = tuple(4096.0 * 16.0 ** k for k in range(8))


class RegistryBackedCounters:
    """Base for the deprecated ``ServerMetrics``/``ChaosMetrics`` shims.

    The attribute API is preserved exactly — ``metrics.requests += 1``
    and ``metrics.to_json()`` behave as before — but the counts now
    live as :class:`~repro.obs.registry.Counter` series.  Standalone
    construction (no registry argument) is deprecated and backs the
    instance with a private registry; :func:`instrument_server` /
    :func:`instrument_chaos` rebind onto a shared one.

    Attribute writes go through ``Counter._set_total`` deliberately
    un-gated on the registry's enabled flag: the legacy API promised
    the counts are always live, and the socket server's accounting
    (e.g. ``drained_tickets``) must stay correct even when an operator
    disables scraping.
    """

    _PREFIX = "repro_"
    _FIELDS: Tuple[str, ...] = ()
    _HELP: Dict[str, str] = {}

    def __init__(self, registry: Optional[MetricsRegistry] = None,
                 labels: Optional[Dict[str, object]] = None):
        if registry is None:
            _deprecated(
                f"constructing {type(self).__name__}() without a registry",
                "repro.obs.MetricsRegistry (instrument_server / "
                "instrument_chaos)",
            )
            registry = MetricsRegistry()
        self._bind_registry(registry, labels)

    @classmethod
    def _for_owner(cls, registry: Optional[MetricsRegistry] = None,
                   labels: Optional[Dict[str, object]] = None
                   ) -> "RegistryBackedCounters":
        """Internal constructor: no deprecation chatter."""
        self = cls.__new__(cls)
        self._bind_registry(
            registry if registry is not None else MetricsRegistry(), labels)
        return self

    def _bind_registry(self, registry: MetricsRegistry,
                       labels: Optional[Dict[str, object]]) -> None:
        bind = object.__setattr__
        bind(self, "_registry", registry)
        bind(self, "_labels",
             {name: str(value) for name, value in (labels or {}).items()})
        labelnames = tuple(sorted(self._labels))
        counters = {}
        for name in self._FIELDS:
            counters[name] = registry.counter(
                self._PREFIX + name,
                self._HELP.get(name, name.replace("_", " ")),
                labelnames,
            )
        bind(self, "_counters", counters)

    def __getattr__(self, name: str) -> int:
        if name in type(self)._FIELDS:
            return int(self._counters[name].value(**self._labels))
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def __setattr__(self, name: str, value: object) -> None:
        if name in type(self)._FIELDS:
            self._counters[name]._set_total(int(value), **self._labels)
        else:
            object.__setattr__(self, name, value)

    def to_json(self) -> dict:
        return {name: getattr(self, name) for name in self._FIELDS}


class ServiceObs:
    """Observer for the verify plane: facade, verifier, coalescer.

    One instance may be bound to several services at once (an HA
    replica group shares one), in which case the counters aggregate
    across replicas and sampled gauges sum over the live coalescers.
    """

    def __init__(self, registry: MetricsRegistry,
                 tracer: Optional[RoundTracer] = None):
        self.registry = registry
        self.tracer = tracer
        self._services: List[object] = []
        self._pool_sources: List[object] = []
        self._span = None
        self._pre_round: List[tuple] = []  # buffered (event, t) marks
        self.incarnations: Dict[int, int] = {}
        metrics = registry
        self.results = metrics.counter(
            "repro_auth_results_total",
            "Per-device authentication outcomes from every verified round",
            ("result",))
        self.rounds = metrics.counter(
            "repro_auth_rounds_total", "Verification rounds completed")
        self.challenges = metrics.counter(
            "repro_auth_challenges_total",
            "Round nonces issued (challenge phase)")
        self.finalized = metrics.counter(
            "repro_auth_finalized_total",
            "Two-phase commits settled (registry CRP rolled)")
        self.aborted = metrics.counter(
            "repro_auth_aborted_total",
            "Pending sessions aborted (confirmation undeliverable or "
            "rejected)")
        self.recovered = metrics.counter(
            "repro_auth_recovered_total",
            "Interrupted commits settled by MAC-proven recovery")
        self.round_latency = metrics.histogram(
            "repro_service_round_latency_seconds",
            "AuthService round latency by phase", ("phase",))
        self.enrolled = metrics.counter(
            "repro_service_enrolled_total",
            "Devices enrolled through the service facade")
        self.revoked = metrics.counter(
            "repro_service_revoked_total",
            "Devices revoked through the service facade")
        self.queue_depth = metrics.gauge(
            "repro_coalescer_queue_depth",
            "Tickets pending in the round coalescer")
        self.micro_round_size = metrics.histogram(
            "repro_coalescer_micro_round_size",
            "Devices per coalesced micro-round",
            buckets=MICRO_ROUND_BUCKETS)
        self.submitted = metrics.counter(
            "repro_coalescer_submitted_total",
            "Tickets submitted to the coalescer")
        self.micro_rounds = metrics.counter(
            "repro_coalescer_micro_rounds_total",
            "Coalesced micro-rounds flushed")
        self.flushes = metrics.counter(
            "repro_coalescer_flushes_total",
            "Coalescer flushes by trigger", ("reason",))
        self.spot_pool = metrics.gauge(
            "repro_service_spot_pool_remaining",
            "Unburned spot-check CRPs remaining, by device class",
            ("device_class",))
        registry.register_collector(self._collect)

    # -- binding ----------------------------------------------------------

    def bind(self, service: object) -> "ServiceObs":
        """Attach to an ``AuthService`` (verifier + coalescer ride along)."""
        if not any(bound is service for bound in self._services):
            self._services.append(service)
        service._obs = self
        self.bind_verifier(service.verifier)
        coalescer = getattr(service, "coalescer", None)
        if coalescer is not None:
            coalescer._obs = self
        return self

    def bind_verifier(self, verifier: object) -> "ServiceObs":
        """Attach to a bare ``BatchVerifier`` (the simulator path)."""
        verifier._obs = self
        fleet_registry = getattr(verifier, "registry", None)
        if fleet_registry is not None and not any(
                source is fleet_registry for source in self._pool_sources):
            self._pool_sources.append(fleet_registry)
        return self

    def set_incarnation(self, replica: int, incarnation: int) -> None:
        self.incarnations[int(replica)] = int(incarnation)

    # -- sampled gauges (scrape-time collector) ---------------------------

    def _collect(self) -> None:
        depth = submitted = micro = by_size = by_deadline = 0
        sampled = False
        for service in self._services:
            coalescer = getattr(service, "coalescer", None)
            if coalescer is None:
                continue
            sampled = True
            depth += coalescer.pending_count
            submitted += coalescer.submitted
            micro += coalescer.micro_rounds
            by_size += coalescer.flushed_by_size
            by_deadline += coalescer.flushed_by_deadline
        if sampled:
            self.queue_depth.set(depth)
            self.submitted._set_total(submitted)
            self.micro_rounds._set_total(micro)
            self.flushes._set_total(by_size, reason="size")
            self.flushes._set_total(by_deadline, reason="deadline")
        for source in reversed(self._pool_sources):
            try:
                if len(source) > POOL_SAMPLE_LIMIT:
                    continue
                totals: Dict[str, int] = {}
                for device_id in source.device_ids():
                    record = source.record(device_id)
                    device_class = (f"{record.challenge_bits}x"
                                    f"{record.current_response.size}")
                    totals[device_class] = totals.get(device_class, 0) + int(
                        record.crp_used.size - record.crp_used.sum())
                for device_class, remaining in totals.items():
                    self.spot_pool.set(remaining, device_class=device_class)
            except Exception:
                # A torn-down backend (closed files after promotion) is
                # not worth failing a scrape over; try the next source.
                continue
            break

    # -- verifier hooks ---------------------------------------------------

    def on_challenge(self, verifier: object,
                     nonces: Dict[str, bytes]) -> None:
        if not self.registry._enabled:
            return
        self.challenges.inc(len(nonces))
        if self.tracer is not None:
            replica = int(getattr(verifier, "replica_index", 0))
            span = self.tracer.begin(
                sorted(nonces), replica, self.incarnations.get(replica, 0))
            span.events.extend(self._pre_round[-16:])
            self._pre_round.clear()
            span.correlate(nonces)
            self.tracer.mark(span, "challenge")
            self._span = span

    def on_verify(self, verifier: object, report: object) -> None:
        if not self.registry._enabled:
            return
        self.rounds.inc()
        if report.confirmations:
            self.results.inc(len(report.confirmations), result="accepted")
        for kind in report.failure_kinds.values():
            self.results.inc(result=kind)
        span = self._span
        if self.tracer is not None and span is not None:
            self.tracer.mark(span, "verify")
            self.tracer.finish(span, "verified")

    def on_result(self, kind: str) -> None:
        if not self.registry._enabled:
            return
        self.results.inc(result=kind)

    def on_finalize(self, verifier: object, device_id: str) -> None:
        if not self.registry._enabled:
            return
        self.finalized.inc()
        span = self._span
        # Mark the span's state transition once per round, not once per
        # device: a 64-device round settles with 64 finalize calls, and
        # 64 identical marks would only add clock reads to the hot path.
        if self.tracer is not None and span is not None \
                and span.status != "finalized" \
                and device_id in span.nonces:
            self.tracer.mark(span, "finalize")
            span.status = "finalized"

    def on_abort(self, verifier: object, device_id: str) -> None:
        if not self.registry._enabled:
            return
        self.aborted.inc()
        span = self._span
        if self.tracer is not None and span is not None \
                and span.status not in ("aborted", "finalized") \
                and device_id in span.nonces:
            self.tracer.mark(span, "abort")
            span.status = "aborted"

    def on_recovered(self, verifier: object) -> None:
        if not self.registry._enabled:
            return
        self.recovered.inc()

    # -- facade hooks -----------------------------------------------------

    def on_round(self, report: object, elapsed: float, phase: str) -> None:
        if not self.registry._enabled:
            return
        self.round_latency.observe(elapsed, phase=phase)

    def on_enroll(self) -> None:
        if not self.registry._enabled:
            return
        self.enrolled.inc()

    def on_revoke(self) -> None:
        if not self.registry._enabled:
            return
        self.revoked.inc()

    # -- coalescer hooks --------------------------------------------------

    def on_coalescer_submit(self, depth: int) -> None:
        if not self.registry._enabled:
            return
        self.queue_depth.set(depth)
        if self.tracer is not None and len(self._pre_round) < 1024:
            self._pre_round.append(("submit", self.tracer.clock()))

    def on_coalescer_flush(self, size: int) -> None:
        if not self.registry._enabled:
            return
        self.micro_round_size.observe(size)
        if self.tracer is not None and len(self._pre_round) < 1024:
            self._pre_round.append(("flush", self.tracer.clock()))


class ServerObs:
    """Socket-server extras beyond the migrated ``ServerMetrics``."""

    def __init__(self, registry: MetricsRegistry,
                 labels: Optional[Dict[str, object]] = None):
        self.registry = registry
        self.labels = {name: str(value)
                       for name, value in (labels or {}).items()}
        self.handshake_latency = registry.histogram(
            "repro_net_handshake_latency_seconds",
            "Wire hello/welcome handshake latency",
            tuple(sorted(self.labels)))

    def on_handshake(self, elapsed: float) -> None:
        if not self.registry._enabled:
            return
        self.handshake_latency.observe(elapsed, **self.labels)


class BackendObs:
    """Checkpoint timing/size for a sharded storage backend."""

    def __init__(self, registry: MetricsRegistry,
                 labels: Optional[Dict[str, object]] = None):
        self.registry = registry
        self.labels = {name: str(value)
                       for name, value in (labels or {}).items()}
        labelnames = tuple(sorted(self.labels))
        self.checkpoint_seconds = registry.histogram(
            "repro_storage_checkpoint_seconds",
            "Checkpoint sweep duration", labelnames)
        self.checkpoint_bytes = registry.histogram(
            "repro_storage_checkpoint_bytes",
            "Bytes written per checkpoint sweep", labelnames,
            buckets=CHECKPOINT_BYTE_BUCKETS)
        self._stat_counters = {
            name: registry.counter(
                f"repro_storage_{name}_total", help_text, labelnames)
            for name, help_text in (
                ("faults", "Record page faults into the resident set"),
                ("evictions", "Resident-set evictions"),
                ("wal_records", "Write-ahead-log records appended"),
                ("checkpoints", "Checkpoint sweeps completed"),
            )
        }
        self.resident = registry.gauge(
            "repro_storage_resident_records",
            "Records currently resident in memory", labelnames)

    def on_checkpoint(self, written: int, elapsed: float) -> None:
        if not self.registry._enabled:
            return
        self.checkpoint_bytes.observe(written, **self.labels)
        self.checkpoint_seconds.observe(elapsed, **self.labels)

    def make_collector(self, backend: object) -> Callable[[], None]:
        def collect() -> None:
            stats = getattr(backend, "stats", None)
            if stats is None:
                return
            for name, counter in self._stat_counters.items():
                if name in stats:
                    counter._set_total(int(stats[name]), **self.labels)
            resident = getattr(backend, "resident_count", None)
            if resident is not None:
                self.resident.set(int(resident() if callable(resident)
                                      else resident), **self.labels)
        return collect


class GroupObs:
    """Replica-group observer: HA control-plane events + shared plane."""

    def __init__(self, registry: MetricsRegistry,
                 tracer: Optional[RoundTracer] = None):
        self.registry = registry
        self.tracer = tracer
        self.service_obs = ServiceObs(registry, tracer)
        self.promotions = registry.counter(
            "repro_ha_promotions_total", "Standby promotions to primary")
        self.lease_transitions = registry.counter(
            "repro_ha_lease_transitions_total",
            "Lease grants and renewals by holder transition", ("event",))
        self.fenced = registry.counter(
            "repro_ha_fenced_refusals_total",
            "Mutating verbs refused by the lease fence", ("kind",))
        self.wal_replay = registry.histogram(
            "repro_ha_wal_replay_seconds",
            "Durable-state attach (WAL replay) time during promotion")
        self.incarnations = registry.gauge(
            "repro_ha_replica_incarnations",
            "Server starts per replica (the trace incarnation)",
            ("replica",))

    def on_lease(self, event: str) -> None:
        if not self.registry._enabled:
            return
        self.lease_transitions.inc(event=event)

    def on_promotion(self) -> None:
        if not self.registry._enabled:
            return
        self.promotions.inc()

    def on_fenced(self, kind: str) -> None:
        if not self.registry._enabled:
            return
        self.fenced.inc(kind=kind)

    def on_wal_replay(self, elapsed: float) -> None:
        if not self.registry._enabled:
            return
        self.wal_replay.observe(elapsed)

    def rebind(self, group: object) -> None:
        """(Re)attach every replica — called after start/promotion too,
        so services, servers and transports recreated by failover stay
        instrumented."""
        for replica in group.replicas:
            service = getattr(replica, "service", None)
            if service is not None:
                self.service_obs.bind(service)
            server = getattr(replica, "server", None)
            if server is not None and getattr(server, "_obs", None) is None:
                instrument_server(server, self.registry,
                                  labels={"replica": replica.index})
            chaos = getattr(replica, "chaos", None)
            if chaos is not None \
                    and chaos.metrics._registry is not self.registry:
                instrument_chaos(chaos, self.registry,
                                 labels={"replica": replica.index})
            self.incarnations.set(int(getattr(replica, "starts", 0)),
                                  replica=replica.index)
            self.service_obs.set_incarnation(
                replica.index, int(getattr(replica, "starts", 0)))


# -- entry points ---------------------------------------------------------


def instrument_service(service: object,
                       registry: Optional[MetricsRegistry] = None, *,
                       tracer: Optional[RoundTracer] = None) -> ServiceObs:
    """Attach a (new or shared) registry to an ``AuthService``."""
    if registry is None:
        registry = MetricsRegistry(
            clock=getattr(service, "clock", None) or time.monotonic)
    return ServiceObs(registry, tracer).bind(service)


def instrument_verifier(verifier: object,
                        registry: Optional[MetricsRegistry] = None, *,
                        tracer: Optional[RoundTracer] = None) -> ServiceObs:
    """Attach to a bare ``BatchVerifier`` (e.g. under a simulator)."""
    if registry is None:
        registry = MetricsRegistry()
    return ServiceObs(registry, tracer).bind_verifier(verifier)


def instrument_server(server: object, registry: MetricsRegistry, *,
                      labels: Optional[Dict[str, object]] = None
                      ) -> ServerObs:
    """Migrate a server's counters onto ``registry`` (values carry over)."""
    old = server.metrics
    shim = type(old)._for_owner(registry, labels=labels)
    for name in type(old)._FIELDS:
        setattr(shim, name, getattr(old, name))
    server.metrics = shim
    server._obs = ServerObs(registry, labels)
    return server._obs


def instrument_chaos(transport: object, registry: MetricsRegistry, *,
                     labels: Optional[Dict[str, object]] = None) -> object:
    """Migrate a ``ChaosTransport``'s counters onto ``registry``."""
    old = transport.metrics
    shim = type(old)._for_owner(registry, labels=labels)
    for name in type(old)._FIELDS:
        setattr(shim, name, getattr(old, name))
    transport.metrics = shim
    return shim


def instrument_backend(backend: object, registry: MetricsRegistry, *,
                       labels: Optional[Dict[str, object]] = None
                       ) -> BackendObs:
    """Attach checkpoint/eviction metrics to a storage backend."""
    obs = BackendObs(registry, labels)
    backend._obs = obs
    registry.register_collector(obs.make_collector(backend))
    return obs


def instrument_replica_group(group: object,
                             registry: Optional[MetricsRegistry] = None, *,
                             tracer: Optional[RoundTracer] = None
                             ) -> GroupObs:
    """One shared registry across a whole ``ReplicaGroup``.

    Every replica's service, server and chaos transport write to the
    same registry (per-replica series carry a ``replica`` label), so
    the ``metrics`` verb on *any* endpoint — primary or standby —
    serves the fleet-wide totals.  Replicas restarted or promoted
    later are re-bound by the group's own lifecycle hooks.
    """
    if registry is None:
        registry = MetricsRegistry()
    obs = GroupObs(registry, tracer)
    group._obs = obs
    obs.rebind(group)
    return obs
