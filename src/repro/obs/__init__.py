"""repro.obs — fleet-wide observability: metrics, traces, export.

A production verifier plane needs eyes: this package adds a
hot-path-cheap :class:`MetricsRegistry` (counters, gauges, fixed
log-bucket histograms; one branch when disabled), per-round trace
spans in a bounded ring (:class:`RoundTracer`), Prometheus/JSON
renderers, and instrumentation entry points for every layer — the
:class:`~repro.service.facade.AuthService` facade, the
:class:`~repro.fleet.verifier.BatchVerifier` and its
:class:`~repro.fleet.verifier.RoundCoalescer`, the socket server and
chaos transport, the sharded storage backend, and a whole
:class:`~repro.service.ha.ReplicaGroup`.  Replicas serve their
registry over the wire via the ``metrics`` / ``trace`` admin verbs
(wire 1.2), so ``HAAuthClient.scrape()`` works against any endpoint.

Instrumentation is an *observer*, never a participant: no hook
touches an RNG or an un-injected clock, so campaign transcripts,
nonce streams and registry state are bit-identical with metrics on or
off (pinned by tests/obs/test_noninterference.py).

Metric catalogue
----------------
Authentication plane (:func:`instrument_service` /
:func:`instrument_verifier`):

- ``repro_auth_results_total{result}`` — per-device outcomes;
  ``result`` is ``accepted`` or a
  :class:`~repro.protocols.mutual_auth.FailureKind` value.
- ``repro_auth_rounds_total`` / ``repro_auth_challenges_total`` —
  verification rounds completed / round nonces issued.
- ``repro_auth_finalized_total`` / ``repro_auth_aborted_total`` /
  ``repro_auth_recovered_total`` — two-phase commit settlements.
- ``repro_service_round_latency_seconds{phase}`` — facade round
  latency histogram (``batch`` / ``flush`` / ``poll`` / ``wire``).
- ``repro_service_enrolled_total`` / ``repro_service_revoked_total``.
- ``repro_service_spot_pool_remaining{device_class}`` — unburned
  spot-check CRPs (sampled at scrape; skipped above 4096 devices).

Round coalescer:

- ``repro_coalescer_queue_depth`` (gauge),
  ``repro_coalescer_micro_round_size`` (histogram),
  ``repro_coalescer_submitted_total``,
  ``repro_coalescer_micro_rounds_total``,
  ``repro_coalescer_flushes_total{reason}`` (``size``/``deadline``).

Socket plane (:func:`instrument_server` / :func:`instrument_chaos`;
the deprecated ``ServerMetrics``/``ChaosMetrics`` attribute shims
write the same series):

- ``repro_net_server_*_total`` — one per legacy ``ServerMetrics``
  field (connections, requests, flush reasons, auths, backpressure
  ``reads_paused``, ...).
- ``repro_net_handshake_latency_seconds`` — hello/welcome latency.
- ``repro_net_chaos_*_total`` — frames forwarded / dropped / delayed
  / duplicated / truncated, kills, blackholed legs.

HA control plane (:func:`instrument_replica_group`):

- ``repro_ha_promotions_total``,
  ``repro_ha_lease_transitions_total{event}``,
  ``repro_ha_fenced_refusals_total{kind}``,
  ``repro_ha_wal_replay_seconds``,
  ``repro_ha_replica_incarnations{replica}`` (gauge).

Storage plane (:func:`instrument_backend`):

- ``repro_storage_checkpoint_seconds`` /
  ``repro_storage_checkpoint_bytes`` (histograms),
  ``repro_storage_faults_total`` / ``evictions`` / ``wal_records`` /
  ``checkpoints`` (sampled), ``repro_storage_resident_records``.

Quickstart
----------
>>> from repro import AuthService, FleetConfig
>>> from repro.obs import (instrument_service, parse_prometheus,
...                        render_prometheus)
>>> service = AuthService.provision(FleetConfig(n_devices=4, seed=7))
>>> obs = instrument_service(service)
>>> service.authenticate_batch().n_accepted
4
>>> scrape = render_prometheus(obs.registry.snapshot())
>>> parse_prometheus(scrape)[("repro_auth_challenges_total", ())]
4.0

Over the wire, scrape any replica with
``await client.metrics(fmt="prometheus")`` (wire >= 1.2) or
``await ha_client.scrape()``; the Streamlit demo lives in
``examples/ops_dashboard.py``.
"""

from repro.obs.export import (
    format_value,
    parse_prometheus,
    render_json,
    render_prometheus,
)
from repro.obs.instrument import (
    GroupObs,
    RegistryBackedCounters,
    ServerObs,
    ServiceObs,
    instrument_backend,
    instrument_chaos,
    instrument_replica_group,
    instrument_server,
    instrument_service,
    instrument_verifier,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import RoundTracer, TraceSpan

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "GroupObs",
    "Histogram",
    "MetricsRegistry",
    "RegistryBackedCounters",
    "RoundTracer",
    "ServerObs",
    "ServiceObs",
    "TraceSpan",
    "format_value",
    "instrument_backend",
    "instrument_chaos",
    "instrument_replica_group",
    "instrument_server",
    "instrument_service",
    "instrument_verifier",
    "parse_prometheus",
    "render_json",
    "render_prometheus",
]
