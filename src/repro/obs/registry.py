"""Metrics registry: counters, gauges, histograms for the auth plane.

Design constraints (they shape every line here):

- **Hot-path cheap.**  Metric writes sit inside ``BatchVerifier`` and
  the socket server.  A *disabled* registry must cost exactly one
  branch per write (``if not enabled: return``); an enabled one costs a
  couple of dict operations.  No locks anywhere: the stack is
  single-threaded asyncio, and CPython dict/int mutations are atomic
  under the GIL, so readers (``snapshot()``) never see torn state —
  the registry is lock-free on read by construction.
- **Deterministic.**  The clock is injectable (``clock=`` — default
  :func:`time.monotonic`) so tests drive histograms and timers with a
  fake clock, and nothing here ever touches an RNG: instrumentation
  must not perturb nonce streams or transcripts.
- **Bounded.**  Label sets per metric are capped
  (``max_label_sets``); once the cap is reached, new label
  combinations fold into a single ``other`` series instead of growing
  without bound under hostile label values (e.g. attacker-controlled
  device ids must never become a memory leak).

The registry renders to Prometheus text format or JSON via
:mod:`repro.obs.export` and is served over the wire by the ``metrics``
admin verb (wire 1.2, :mod:`repro.service.net.server`).
"""

from __future__ import annotations

import re
import time
import warnings
from bisect import bisect_left
from typing import Callable, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

# Log-scaled (powers of 4) latency bounds from 1 microsecond to ~17 s:
# 13 finite bounds + the implicit +Inf bucket.  Fixed — every latency
# histogram in the stack shares them, so scrapes from different
# replicas aggregate without bucket realignment.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = tuple(
    1e-6 * 4.0 ** k for k in range(13)
)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: The series every metric folds into once ``max_label_sets`` distinct
#: label combinations exist (bounded-cardinality overflow).
OVERFLOW_LABEL = "other"


def _deprecated(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated and will be removed two minor releases "
        f"after 0.8.0; use {new} instead (see the README migration "
        f"table)",
        DeprecationWarning,
        stacklevel=3,
    )


class Metric:
    """Shared series bookkeeping: label resolution + cardinality cap."""

    kind = ""

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Sequence[str] = ()):
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._series: Dict[Tuple[str, ...], object] = {}
        self._overflow_key = (OVERFLOW_LABEL,) * len(self.labelnames)

    def _key(self, labels: Dict[str, object]) -> Tuple[str, ...]:
        """Resolve ``**labels`` to a series key, folding overflow.

        The cap check only binds for *new* keys: existing series keep
        updating after the cap, so totals already being tracked never
        silently migrate into ``other``.
        """
        if not self.labelnames:
            if labels:
                raise ValueError(
                    f"metric {self.name!r} takes no labels, got {labels!r}"
                )
            return ()
        if len(labels) != len(self.labelnames):
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            )
        try:
            key = tuple(str(labels[name]) for name in self.labelnames)
        except KeyError as exc:
            raise ValueError(
                f"metric {self.name!r} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labels))}"
            ) from exc
        if key not in self._series \
                and len(self._series) >= self._registry.max_label_sets:
            return self._overflow_key
        return key

    def _sorted_keys(self) -> List[Tuple[str, ...]]:
        return sorted(self._series)

    def _snapshot(self) -> dict:
        raise NotImplementedError


class Counter(Metric):
    """Monotonically non-decreasing count (rendered with ``_total``)."""

    kind = "counter"

    def inc(self, amount: float = 1, **labels: object) -> None:
        if not self._registry._enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def value(self, **labels: object) -> float:
        return self._series.get(self._key(labels), 0)

    def _set_total(self, value: float, **labels: object) -> None:
        """Internal: absolute write for collectors and shim setattr.

        Deliberately *not* gated on ``enabled`` — the deprecated
        ``ServerMetrics``/``ChaosMetrics`` attribute APIs promise their
        counts stay correct regardless of registry state.
        """
        self._series[self._key(labels)] = value

    def _snapshot(self) -> dict:
        return {
            "name": self.name, "kind": self.kind, "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": [
                {"labels": dict(zip(self.labelnames, key)),
                 "value": self._series[key]}
                for key in self._sorted_keys()
            ],
        }


class Gauge(Metric):
    """Point-in-time value (queue depth, pool level, resident set)."""

    kind = "gauge"

    def set(self, value: float, **labels: object) -> None:
        if not self._registry._enabled:
            return
        self._series[self._key(labels)] = value

    def inc(self, amount: float = 1, **labels: object) -> None:
        if not self._registry._enabled:
            return
        key = self._key(labels)
        self._series[key] = self._series.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._series.get(self._key(labels), 0)

    def _snapshot(self) -> dict:
        return {
            "name": self.name, "kind": self.kind, "help": self.help,
            "labelnames": list(self.labelnames),
            "samples": [
                {"labels": dict(zip(self.labelnames, key)),
                 "value": self._series[key]}
                for key in self._sorted_keys()
            ],
        }


class _HistogramSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int):
        self.counts = [0] * (n_buckets + 1)  # +1: the +Inf bucket
        self.sum = 0.0
        self.count = 0


class _Timer:
    """``with histogram.time():`` — observes the elapsed clock delta."""

    __slots__ = ("_histogram", "_labels", "_start")

    def __init__(self, histogram: "Histogram", labels: Dict[str, object]):
        self._histogram = histogram
        self._labels = labels
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = self._histogram._registry.clock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.observe(
            self._histogram._registry.clock() - self._start, **self._labels
        )


class Histogram(Metric):
    """Fixed-bucket distribution; buckets shared across all label sets."""

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str,
                 labelnames: Sequence[str] = (),
                 buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(float(bound) for bound in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        if not self._registry._enabled:
            return
        key = self._key(labels)
        series = self._series.get(key)
        if series is None:
            series = self._series[key] = _HistogramSeries(len(self.buckets))
        series.counts[bisect_left(self.buckets, value)] += 1
        series.sum += value
        series.count += 1

    def time(self, **labels: object) -> _Timer:
        return _Timer(self, labels)

    def _snapshot(self) -> dict:
        samples = []
        for key in self._sorted_keys():
            series = self._series[key]
            samples.append({
                "labels": dict(zip(self.labelnames, key)),
                "buckets": list(series.counts),
                "sum": series.sum,
                "count": series.count,
            })
        return {
            "name": self.name, "kind": self.kind, "help": self.help,
            "labelnames": list(self.labelnames),
            "bounds": list(self.buckets),
            "samples": samples,
        }


class MetricsRegistry:
    """The process-wide (or plane-wide) family of metrics.

    One registry is typically shared by a whole verifier plane — in a
    :class:`repro.service.ha.ReplicaGroup` all replicas write to the
    same registry (with a ``replica`` label where it matters), so
    scraping *any* replica returns the fleet-wide totals.

    ``metric = registry.counter(name, ...)`` is idempotent by name:
    re-registering returns the existing metric, and a kind or label
    mismatch raises instead of silently forking the series.
    """

    def __init__(self, *, enabled: bool = True,
                 clock: Callable[[], float] = time.monotonic,
                 max_label_sets: int = 64):
        if max_label_sets < 1:
            raise ValueError("max_label_sets must be at least 1")
        self._enabled = bool(enabled)
        self.clock = clock
        self.max_label_sets = int(max_label_sets)
        self._metrics: Dict[str, Metric] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- lifecycle --------------------------------------------------------

    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        """Metric writes become a single branch; stored series persist."""
        self._enabled = False

    # -- registration -----------------------------------------------------

    def _register(self, cls: type, name: str, help: str,
                  labelnames: Sequence[str], **kwargs: object) -> Metric:
        existing = self._metrics.get(name)
        if existing is not None:
            if type(existing) is not cls \
                    or existing.labelnames != tuple(labelnames):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind} with labels {existing.labelnames}"
                )
            return existing
        metric = cls(self, name, help, labelnames, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                labelnames: Sequence[str] = ()) -> Counter:
        return self._register(Counter, name, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: Sequence[str] = ()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: Sequence[str] = (),
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self._register(
            Histogram, name, help, labelnames,
            buckets=tuple(buckets) if buckets is not None
            else DEFAULT_LATENCY_BUCKETS,
        )

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def register_collector(self, collect: Callable[[], None]) -> None:
        """Add a sampling callback run at :meth:`snapshot` time.

        Collectors pull state that would be too hot (or too scattered)
        to push on every event — coalescer queue depth, spot-pool
        levels, storage-backend stats — so sampled series cost nothing
        between scrapes.
        """
        self._collectors.append(collect)

    # -- reading ----------------------------------------------------------

    def snapshot(self, run_collectors: bool = True) -> dict:
        """A plain-dict capture of every series (render-ready).

        Collectors only run on an *enabled* registry: a disabled one
        must observe nothing, not even on scrape.
        """
        if run_collectors and self._enabled:
            for collect in self._collectors:
                collect()
        return {
            "enabled": self._enabled,
            "metrics": [self._metrics[name]._snapshot()
                        for name in sorted(self._metrics)],
        }
