"""Per-round trace spans in a bounded ring.

A :class:`TraceSpan` records the life of one authentication round —
``submit`` → ``flush`` → ``challenge`` → ``verify`` →
``finalize``/``abort`` — as ``(event, timestamp)`` marks from the
registry's injectable clock, together with the device ids in the
round, the replica index and incarnation that served it, and the hex
prefix of each device's round nonce.  The nonce prefix is the join
key against the durable :class:`repro.fleet.verifier.CommitLog` and
the :class:`repro.service.policy.AuditLogPolicy` ring (whose entries
carry the same clock + incarnation since 0.8.0), so an operator can
walk from a scraped span to the exact commit-log entry it parked.

Spans live in a bounded ``deque`` ring — old rounds fall off the back,
memory stays flat over million-round campaigns — and export as plain
JSON via :meth:`RoundTracer.to_json` (served by the ``trace`` admin
verb on wire 1.2).

Tracing never touches an RNG and never reads the wall clock behind
the injectable one: enabling it cannot perturb nonce streams or
transcripts (pinned by tests/obs/test_noninterference.py).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

__all__ = ["RoundTracer", "TraceSpan"]

#: Bytes of each round nonce kept on a span as the commit-log join key.
NONCE_PREFIX_BYTES = 8


class TraceSpan:
    """One round's event timeline (mutable until finished)."""

    __slots__ = ("round_id", "device_ids", "replica", "incarnation",
                 "events", "status", "nonces")

    def __init__(self, round_id: int, device_ids: Sequence[str] = (),
                 replica: int = 0, incarnation: int = 0):
        self.round_id = int(round_id)
        self.device_ids = list(device_ids)
        self.replica = int(replica)
        self.incarnation = int(incarnation)
        self.events: List[tuple] = []  # (name, timestamp) in mark order
        self.status = "open"
        self.nonces: Dict[str, str] = {}  # device_id -> nonce hex prefix

    def mark(self, event: str, timestamp: float) -> None:
        self.events.append((str(event), float(timestamp)))

    def correlate(self, nonces: Dict[str, bytes]) -> None:
        """Stamp the round's nonce prefixes (the commit-log join key)."""
        for device_id, nonce in nonces.items():
            self.nonces[str(device_id)] = \
                bytes(nonce)[:NONCE_PREFIX_BYTES].hex()

    def to_json(self) -> dict:
        return {
            "round_id": self.round_id,
            "device_ids": list(self.device_ids),
            "replica": self.replica,
            "incarnation": self.incarnation,
            "status": self.status,
            "events": [[name, ts] for name, ts in self.events],
            "nonces": dict(self.nonces),
        }


class RoundTracer:
    """Bounded ring of round spans with an injectable clock."""

    def __init__(self, capacity: int = 256,
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = int(capacity)
        self.clock = clock
        self._ring: Deque[TraceSpan] = deque(maxlen=self.capacity)
        self._next_round_id = 0
        self.dropped = 0  # spans pushed off the back of the ring

    def __len__(self) -> int:
        return len(self._ring)

    def begin(self, device_ids: Sequence[str] = (), replica: int = 0,
              incarnation: int = 0) -> TraceSpan:
        """Open a span and append it to the ring immediately.

        Appending on ``begin`` (not on finish) means a round that dies
        mid-flight still leaves its partial span behind — exactly the
        rounds an operator wants to see.
        """
        span = TraceSpan(self._next_round_id, device_ids, replica,
                         incarnation)
        self._next_round_id += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        self._ring.append(span)
        return span

    def mark(self, span: TraceSpan, event: str) -> None:
        span.mark(event, self.clock())

    def finish(self, span: TraceSpan, status: str) -> None:
        span.status = str(status)

    def spans(self) -> List[TraceSpan]:
        """Oldest-first snapshot of the ring."""
        return list(self._ring)

    def find(self, device_id: str) -> List[TraceSpan]:
        """Every retained span that touched ``device_id``."""
        return [span for span in self._ring
                if device_id in span.device_ids]

    def last(self) -> Optional[TraceSpan]:
        return self._ring[-1] if self._ring else None

    def to_json(self) -> List[dict]:
        return [span.to_json() for span in self._ring]
