"""Renderers for :meth:`repro.obs.MetricsRegistry.snapshot`.

Two output formats:

- :func:`render_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` headers, ``_total``-suffixed counters,
  cumulative ``_bucket{le=...}`` histogram series ending in ``+Inf``,
  label values escaped per the spec).  Deterministic: metrics render
  name-sorted and series label-sorted, and floats format through
  :func:`format_value`, so a seeded campaign scrapes to a stable
  golden file.
- :func:`render_json` — the snapshot as canonical JSON (sorted keys),
  for the dashboard replay path and programmatic consumers.

:func:`parse_prometheus` is the tiny inverse used by the
reconciliation tests and the dashboard live-tail: it reads sample
lines (ignoring comments) back into a ``{(name, labels): value}``
map.  It parses only what :func:`render_prometheus` emits — it is not
a general scrape parser.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Optional, Tuple

__all__ = [
    "format_value",
    "parse_prometheus",
    "render_json",
    "render_prometheus",
]


def _escape_label_value(value: str) -> str:
    """Backslash, double-quote and newline escaping per the spec."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def format_value(value: float) -> str:
    """Deterministic sample formatting: ints bare, floats via repr."""
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_block(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{name}="{_escape_label_value(str(value))}"'
             for name, value in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(snapshot: dict) -> str:
    """Render a registry snapshot to Prometheus text format."""
    lines = []
    for metric in snapshot["metrics"]:
        name = metric["name"]
        kind = metric["kind"]
        rendered = name
        if kind == "counter" and not name.endswith("_total"):
            rendered = name + "_total"
        lines.append(f"# HELP {rendered} {_escape_help(metric['help'])}")
        lines.append(f"# TYPE {rendered} {kind}")
        if kind == "histogram":
            bounds = metric["bounds"]
            for sample in metric["samples"]:
                labels = sample["labels"]
                cumulative = 0
                for bound, count in zip(bounds, sample["buckets"]):
                    cumulative += count
                    block = _label_block(
                        labels, f'le="{format_value(bound)}"')
                    lines.append(f"{rendered}_bucket{block} "
                                 f"{format_value(cumulative)}")
                cumulative += sample["buckets"][-1]
                block = _label_block(labels, 'le="+Inf"')
                lines.append(f"{rendered}_bucket{block} "
                             f"{format_value(cumulative)}")
                block = _label_block(labels)
                lines.append(f"{rendered}_sum{block} "
                             f"{format_value(sample['sum'])}")
                lines.append(f"{rendered}_count{block} "
                             f"{format_value(sample['count'])}")
        else:
            for sample in metric["samples"]:
                block = _label_block(sample["labels"])
                lines.append(f"{rendered}{block} "
                             f"{format_value(sample['value'])}")
    return "\n".join(lines) + "\n" if lines else ""


def render_json(snapshot: dict, indent: Optional[int] = None) -> str:
    """Canonical JSON rendering of a snapshot (sorted keys)."""
    return json.dumps(snapshot, indent=indent, sort_keys=True)


def _parse_labels(block: str) -> Tuple[Tuple[str, str], ...]:
    labels = []
    position = 0
    while position < len(block):
        equals = block.index("=", position)
        name = block[position:equals]
        assert block[equals + 1] == '"'
        position = equals + 2
        value = []
        while block[position] != '"':
            if block[position] == "\\":
                escaped = block[position + 1]
                value.append({"n": "\n", '"': '"', "\\": "\\"}[escaped])
                position += 2
            else:
                value.append(block[position])
                position += 1
        labels.append((name, "".join(value)))
        position += 1  # closing quote
        if position < len(block) and block[position] == ",":
            position += 1
    return tuple(labels)


def parse_prometheus(text: str) \
        -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Parse rendered text back to ``{(name, sorted labels): value}``."""
    samples: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        metric, _, value = line.rpartition(" ")
        if "{" in metric:
            name, _, rest = metric.partition("{")
            labels = _parse_labels(rest.rstrip("}"))
        else:
            name, labels = metric, ()
        samples[(name, tuple(sorted(labels)))] = float(value)
    return samples
