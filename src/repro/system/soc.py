"""Device SoC: CPU + memory + PUF peripherals + accelerator, assembled.

The object the protocols run against: it owns the timing and power
accounting for every hardware operation a protocol step performs, which
is what makes the attestation temporal constraint and the service-latency
benches meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.accelerator.network import NeuromorphicAccelerator
from repro.puf.base import PUF
from repro.puf.photonic_strong import PhotonicStrongPUF
from repro.puf.photonic_weak import PhotonicWeakPUF
from repro.puf.sram import SRAMPUF
from repro.system.cpu import ClockCounter, ProcessorModel
from repro.system.des import EventLog
from repro.system.memory import DeviceMemory
from repro.system.peripheral import PUFPeripheral
from repro.system.power import PowerTracker


@dataclass
class SoCConfig:
    """Construction parameters of the device SoC."""

    seed: int = 0
    die_index: int = 0
    memory_size: int = 64 * 1024
    memory_chunk: int = 256
    weak_puf_rings: int = 32
    strong_challenge_bits: int = 64
    strong_response_bits: int = 32


class DeviceSoC:
    """The NEUROPULS edge device (Fig. 1's hardware layer)."""

    def __init__(self, config: Optional[SoCConfig] = None):
        self.config = config or SoCConfig()
        c = self.config
        self.log = EventLog()
        self.cpu = ProcessorModel()
        self.clock_counter = ClockCounter(self.cpu)
        self.memory = DeviceMemory(c.memory_size, c.memory_chunk,
                                   seed=c.seed)
        self.weak_puf = PhotonicWeakPUF(
            n_rings=c.weak_puf_rings, seed=c.seed, die_index=c.die_index
        )
        self.strong_puf = PhotonicStrongPUF(
            challenge_bits=c.strong_challenge_bits,
            response_bits=c.strong_response_bits,
            seed=c.seed, die_index=c.die_index,
        )
        self.asic_puf = SRAMPUF(n_cells=1024, seed=c.seed,
                                die_index=c.die_index)
        self.strong_peripheral = PUFPeripheral(self.strong_puf, self.log)
        self.accelerator = NeuromorphicAccelerator(seed=c.seed)
        self.power = PowerTracker()
        self.elapsed_s = 0.0

    def _spend(self, seconds: float, component: str) -> None:
        self.elapsed_s += seconds
        if component in self.power.profiles:
            self.power.record_active(component, seconds)

    # -- hardware operations used by the protocols ------------------------

    def strong_puf_evaluate(self, challenge_bits: np.ndarray) -> tuple:
        """(response bits, elapsed seconds) through the MMIO peripheral."""
        response, elapsed = self.strong_peripheral.evaluate(challenge_bits)
        self._spend(elapsed, "puf_pic")
        return response, elapsed

    def weak_puf_read(self, measurement: Optional[int] = None) -> tuple:
        """(fingerprint bits, elapsed seconds) for key generation."""
        bits = self.weak_puf.read_all(measurement=measurement)
        # One spectral sweep per address: interrogation + readout.
        elapsed = self.weak_puf.n_addresses * 2e-6
        self._spend(elapsed, "puf_pic")
        return bits, elapsed

    def hash_time(self, n_bytes: int) -> float:
        elapsed = self.cpu.hash_time(n_bytes)
        self._spend(elapsed, "cpu")
        return elapsed

    def mac_time(self, n_bytes: int) -> float:
        elapsed = self.cpu.mac_time(n_bytes)
        self._spend(elapsed, "cpu")
        return elapsed

    def cipher_time(self, n_bytes: int) -> float:
        elapsed = self.cpu.cipher_time(n_bytes)
        self._spend(elapsed, "cpu")
        return elapsed

    def memory_read_time(self, n_chunks: int = 1) -> float:
        elapsed = self.memory.chunk_read_time() * n_chunks
        self._spend(elapsed, "dram")
        return elapsed

    def accelerator_time(self, n_mzis: int, n_inferences: int = 1) -> float:
        """Optical inference latency: ~1 ns per mesh column plus readout."""
        elapsed = n_inferences * (50e-9 + 0.1e-9 * n_mzis)
        self._spend(elapsed, "accelerator")
        return elapsed

    def measure_clock_count(self, tamper_factor: float = 1.0) -> int:
        """The CC integrity measurement of Fig. 4."""
        count = self.clock_counter.measure(tamper_factor)
        self._spend(self.cpu.seconds(count), "cpu")
        return count

    def firmware_hash(self) -> tuple:
        """(SHA-256 of the full firmware, elapsed seconds) — the H of Fig. 4."""
        import hashlib

        image = self.memory.image()
        elapsed = self.hash_time(len(image))
        elapsed += self.memory_read_time(self.memory.n_chunks)
        return hashlib.sha256(image).digest(), elapsed

    def power_report(self) -> dict:
        self.power.close(max(self.elapsed_s, 1e-12))
        return self.power.report()
