"""Network channel between the Device and the external Verifier.

Carries protocol messages with configurable latency and jitter, and
exposes attacker hooks (eavesdrop, modify, replay) for the protocol
attack studies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.utils.rng import derive_rng


@dataclass
class ChannelStats:
    messages: int = 0
    bytes_carried: int = 0
    total_latency_s: float = 0.0


class Channel:
    """Point-to-point message channel with latency and attacker hooks."""

    def __init__(
        self,
        base_latency_s: float = 2e-3,
        jitter_s: float = 2e-4,
        bandwidth_bytes_per_s: float = 1.25e6,  # ~10 Mbit/s uplink
        seed: int = 0,
    ):
        self.base_latency_s = base_latency_s
        self.jitter_s = jitter_s
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self.stats = ChannelStats()
        self._rng = derive_rng(seed, "channel")
        self.eavesdropper: Optional[Callable[[bytes], None]] = None
        self.tamper: Optional[Callable[[bytes], bytes]] = None
        self._transcript: List[bytes] = []

    def send(self, message: bytes) -> tuple:
        """Deliver a message; returns (delivered bytes, latency seconds).

        The eavesdropper (if any) sees every message; the tamper hook (if
        any) may substitute the delivered bytes — the receiver's MACs are
        what must catch this.
        """
        latency = (self.base_latency_s
                   + float(self._rng.uniform(0.0, self.jitter_s))
                   + len(message) / self.bandwidth_bytes_per_s)
        self.stats.messages += 1
        self.stats.bytes_carried += len(message)
        self.stats.total_latency_s += latency
        self._transcript.append(message)
        if self.eavesdropper is not None:
            self.eavesdropper(message)
        delivered = message
        if self.tamper is not None:
            delivered = self.tamper(message)
        return delivered, latency

    @property
    def transcript(self) -> List[bytes]:
        """Every message ever carried (the replay attacker's notebook)."""
        return list(self._transcript)
