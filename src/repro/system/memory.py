"""Device memory model for the attestation protocol.

Byte-addressable firmware memory with per-access latency, chunked reads
(the units the attestation random walk hashes), and compromise helpers:
infecting a region, and the relocation attack in which malware copies the
clean image elsewhere and serves reads from the copy at an extra latency
cost — exactly the attack temporal attestation constraints are designed
to expose (paper Sec. III-B, [23]).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.utils.rng import derive_rng


class DeviceMemory:
    """Firmware memory with deterministic contents and access timing."""

    def __init__(
        self,
        size: int = 64 * 1024,
        chunk_size: int = 256,
        seed: int = 0,
        read_latency_s_per_chunk: float = 120e-9,
    ):
        if size % chunk_size:
            raise ValueError("size must be a multiple of chunk_size")
        self.size = size
        self.chunk_size = chunk_size
        self.read_latency_s_per_chunk = read_latency_s_per_chunk
        rng = derive_rng(seed, "memory", "firmware")
        self._data = bytearray(rng.integers(0, 256, size=size,
                                            dtype=np.uint8).tobytes())

    @property
    def n_chunks(self) -> int:
        return self.size // self.chunk_size

    def read_chunk(self, index: int) -> bytes:
        """Contents of chunk ``index`` (the honest read path)."""
        if not 0 <= index < self.n_chunks:
            raise ValueError(f"chunk {index} out of range")
        start = index * self.chunk_size
        return bytes(self._data[start:start + self.chunk_size])

    def chunk_read_time(self) -> float:
        """Seconds to fetch one chunk."""
        return self.read_latency_s_per_chunk

    def write(self, address: int, payload: bytes) -> None:
        """Write bytes (firmware update, or malware infection)."""
        if address < 0 or address + len(payload) > self.size:
            raise ValueError("write outside memory")
        self._data[address:address + len(payload)] = payload

    def image(self) -> bytes:
        """Full memory image (what the Verifier keeps a copy of)."""
        return bytes(self._data)

    def infect(self, address: int = 0, length: int = 1024, seed: int = 99) -> None:
        """Overwrite a region with malware bytes."""
        rng = derive_rng(seed, "memory", "malware")
        self.write(address, rng.integers(0, 256, size=length,
                                         dtype=np.uint8).tobytes())


class RelocatingCompromisedMemory(DeviceMemory):
    """Memory under the relocation attack.

    Malware occupies ``infected_chunks`` but keeps a pristine copy of the
    original contents.  To serve attestation reads from the copy it must
    intercept *every* memory access (trap/page-fault style redirection,
    ``interception_overhead_s`` per chunk, thousands of CPU cycles) and
    pay an additional ``relocation_penalty_s`` on the redirected chunks.
    Hashes therefore match the clean image, and only the *timing* gives
    the attack away — the effect the temporal constraint exploits [23].
    """

    def __init__(self, clean_image: bytes, chunk_size: int = 256,
                 infected_chunks: Optional[set] = None,
                 relocation_penalty_s: float = 20e-6,
                 interception_overhead_s: float = 5e-6,
                 read_latency_s_per_chunk: float = 120e-9):
        if len(clean_image) % chunk_size:
            raise ValueError("image size must be a multiple of chunk_size")
        self.size = len(clean_image)
        self.chunk_size = chunk_size
        self.read_latency_s_per_chunk = read_latency_s_per_chunk
        self._data = bytearray(clean_image)  # the copy served to the verifier
        self.infected_chunks = infected_chunks or set(range(4))
        self.relocation_penalty_s = relocation_penalty_s
        self.interception_overhead_s = interception_overhead_s
        # The real memory holds malware in the infected chunks; reads for
        # attestation are redirected to the pristine copy.

    def read_chunk(self, index: int) -> bytes:
        return super().read_chunk(index)

    def chunk_read_time_for(self, index: int) -> float:
        """Read time including interception and relocation costs."""
        base = self.read_latency_s_per_chunk + self.interception_overhead_s
        if index in self.infected_chunks:
            return base + self.relocation_penalty_s
        return base
