"""Discrete-event simulation kernel.

The paper's Sec. V calls for system-level modeling of the PUF together
with CPU, memory and accelerator, with logging for metric collection
(they propose gem5).  This kernel is the purpose-built equivalent: a
time-ordered event queue with deterministic tie-breaking, plus the
gem5-style stats/log facility used by every system component.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple


@dataclass(order=True)
class _QueueEntry:
    time: float
    sequence: int
    event: "Event" = field(compare=False)


class Event:
    """A scheduled callback; cancellable."""

    __slots__ = ("callback", "args", "cancelled", "time")

    def __init__(self, callback: Callable, args: tuple, time: float):
        self.callback = callback
        self.args = args
        self.cancelled = False
        self.time = time

    def cancel(self) -> None:
        self.cancelled = True


class Simulator:
    """Event-driven simulator with seconds as the time unit."""

    def __init__(self):
        self.now = 0.0
        self._queue: List[_QueueEntry] = []
        self._sequence = 0
        self.log = EventLog()

    def schedule(self, delay: float, callback: Callable, *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError("cannot schedule in the past")
        event = Event(callback, args, self.now + delay)
        heapq.heappush(self._queue, _QueueEntry(event.time, self._sequence, event))
        self._sequence += 1
        return event

    def run(self, until: Optional[float] = None) -> None:
        """Process events in time order, optionally up to a horizon."""
        while self._queue:
            if until is not None and self._queue[0].time > until:
                self.now = until
                return
            entry = heapq.heappop(self._queue)
            self.now = entry.time
            if not entry.event.cancelled:
                entry.event.callback(*entry.event.args)
        if until is not None:
            self.now = max(self.now, until)

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        while self._queue:
            entry = heapq.heappop(self._queue)
            self.now = entry.time
            if not entry.event.cancelled:
                entry.event.callback(*entry.event.args)
                return True
        return False

    @property
    def pending(self) -> int:
        return sum(1 for e in self._queue if not e.event.cancelled)


class EventLog:
    """gem5-style statistics: counters, accumulators, and a trace."""

    def __init__(self):
        self.counters: Dict[str, int] = {}
        self.accumulators: Dict[str, float] = {}
        self.trace: List[Tuple[float, str, str]] = []

    def count(self, name: str, increment: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + increment

    def accumulate(self, name: str, value: float) -> None:
        self.accumulators[name] = self.accumulators.get(name, 0.0) + value

    def record(self, time: float, component: str, message: str) -> None:
        self.trace.append((time, component, message))

    def dump(self) -> str:
        """Render all statistics as a printable report."""
        lines = ["=== simulation statistics ==="]
        for name in sorted(self.counters):
            lines.append(f"{name:<40} {self.counters[name]}")
        for name in sorted(self.accumulators):
            lines.append(f"{name:<40} {self.accumulators[name]:.6g}")
        return "\n".join(lines)
