"""System-level model: DES kernel, CPU, memory, PUF peripheral, SoC, channel."""

from repro.system.channel import Channel, ChannelStats
from repro.system.cpu import ClockCounter, ProcessorModel
from repro.system.des import Event, EventLog, Simulator
from repro.system.memory import DeviceMemory, RelocatingCompromisedMemory
from repro.system.peripheral import (
    CTRL_START,
    REG_CHALLENGE_BASE,
    REG_CTRL,
    REG_RESPONSE_BASE,
    REG_STATUS,
    STATUS_BUSY,
    STATUS_DONE,
    STATUS_IDLE,
    PUFPeripheral,
)
from repro.system.power import DEFAULT_PROFILES, PowerProfile, PowerTracker
from repro.system.soc import DeviceSoC, SoCConfig

__all__ = [
    "Channel",
    "ChannelStats",
    "ClockCounter",
    "ProcessorModel",
    "Event",
    "EventLog",
    "Simulator",
    "DeviceMemory",
    "RelocatingCompromisedMemory",
    "PUFPeripheral",
    "CTRL_START",
    "REG_CHALLENGE_BASE",
    "REG_CTRL",
    "REG_RESPONSE_BASE",
    "REG_STATUS",
    "STATUS_BUSY",
    "STATUS_DONE",
    "STATUS_IDLE",
    "DEFAULT_PROFILES",
    "PowerProfile",
    "PowerTracker",
    "DeviceSoC",
    "SoCConfig",
]
