"""RISC-V-class processor timing model.

The edge device hosting the accelerator runs a small RISC-V core
(paper Fig. 2 / Sec. V: responses reach the software layer "by means of a
RISC-V interface", and gem5 modeling connects a peripheral to a RISC-V
microprocessor).  This model provides cycle-accurate-ish costs for the
operations the protocols time: hashing, MAC computation, cipher blocks,
and bookkeeping instructions — enough to give attestation its temporal
constraint and the services their latency numbers.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ProcessorModel:
    """Timing parameters of the device CPU.

    Cycle costs are for a small in-order RV32 core with a hardware SHA
    unit would be lower; these assume software crypto.
    """

    frequency_hz: float = 100e6
    cycles_per_hashed_byte: float = 18.0  # software SHA-256
    hash_setup_cycles: float = 800.0
    cycles_per_mac_byte: float = 20.0
    mac_setup_cycles: float = 2200.0  # two hash passes
    cycles_per_cipher_block: float = 450.0  # SPECK round function loop
    cycles_per_instruction: float = 1.0

    def seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        if cycles < 0:
            raise ValueError("cycles must be non-negative")
        return cycles / self.frequency_hz

    def hash_time(self, n_bytes: int) -> float:
        """Time to SHA-256 ``n_bytes``."""
        return self.seconds(self.hash_setup_cycles
                            + self.cycles_per_hashed_byte * n_bytes)

    def mac_time(self, n_bytes: int) -> float:
        """Time to HMAC ``n_bytes``."""
        return self.seconds(self.mac_setup_cycles
                            + self.cycles_per_mac_byte * n_bytes)

    def cipher_time(self, n_bytes: int, block_size: int = 8) -> float:
        """Time to encrypt/decrypt ``n_bytes`` with a 64-bit block cipher."""
        n_blocks = (n_bytes + block_size - 1) // block_size
        return self.seconds(self.cycles_per_cipher_block * n_blocks)

    def instructions_time(self, n_instructions: float) -> float:
        return self.seconds(self.cycles_per_instruction * n_instructions)


@dataclass
class ClockCounter:
    """The CC value of the mutual-authentication message (Fig. 4).

    Measures the cycle count of a fixed self-test task; a compromised or
    emulated device shows a different count.
    """

    model: ProcessorModel
    task_bytes: int = 4096

    def measure(self, tamper_factor: float = 1.0) -> int:
        """Cycle count for hashing the self-test region.

        ``tamper_factor > 1`` models emulation/hooking overhead that the
        Verifier's CC check is meant to catch.
        """
        cycles = (self.model.hash_setup_cycles
                  + self.model.cycles_per_hashed_byte * self.task_bytes)
        return int(round(cycles * tamper_factor))
