"""Power accounting for the heterogeneous SoC.

Sec. V: "throughput, latency, and power consumption measurements are
essential to understand the practical performance of PUFs in real-world
applications."  Components register (idle, active) power draws; the
tracker integrates energy over active intervals and reports per-component
and total figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class PowerProfile:
    """Static power figures of one component, in watts."""

    idle_w: float
    active_w: float

    def __post_init__(self) -> None:
        if self.idle_w < 0 or self.active_w < self.idle_w:
            raise ValueError("need 0 <= idle <= active power")


# Representative edge-device figures.
DEFAULT_PROFILES = {
    "cpu": PowerProfile(idle_w=0.010, active_w=0.150),
    "dram": PowerProfile(idle_w=0.005, active_w=0.080),
    "puf_pic": PowerProfile(idle_w=0.001, active_w=0.040),  # laser + OM + PDs
    "puf_asic": PowerProfile(idle_w=0.002, active_w=0.060),  # TIA + ADC
    "accelerator": PowerProfile(idle_w=0.020, active_w=0.500),
}


class PowerTracker:
    """Integrates per-component energy over a simulated run."""

    def __init__(self, profiles: Dict[str, PowerProfile] = None):
        self.profiles = dict(profiles or DEFAULT_PROFILES)
        self._active_seconds: Dict[str, float] = {name: 0.0 for name in self.profiles}
        self._total_seconds = 0.0

    def record_active(self, component: str, seconds: float) -> None:
        """Log ``seconds`` of activity for a component."""
        if component not in self.profiles:
            raise KeyError(f"unknown component {component!r}")
        if seconds < 0:
            raise ValueError("activity duration must be non-negative")
        self._active_seconds[component] += seconds

    def close(self, total_seconds: float) -> None:
        """Set the wall-clock span of the measurement window."""
        if total_seconds < max(self._active_seconds.values(), default=0.0):
            raise ValueError("window shorter than recorded activity")
        self._total_seconds = total_seconds

    def energy_joules(self, component: str) -> float:
        """Energy consumed by one component over the window."""
        profile = self.profiles[component]
        active = self._active_seconds[component]
        idle = max(self._total_seconds - active, 0.0)
        return profile.active_w * active + profile.idle_w * idle

    def total_energy_joules(self) -> float:
        return sum(self.energy_joules(name) for name in self.profiles)

    def average_power_w(self) -> float:
        """Mean power over the window (requires close())."""
        if self._total_seconds <= 0:
            raise RuntimeError("close() must be called with the window length")
        return self.total_energy_joules() / self._total_seconds

    def report(self) -> Dict[str, float]:
        """Per-component energy figures in joules."""
        return {name: self.energy_joules(name) for name in self.profiles}
