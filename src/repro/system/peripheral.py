"""Memory-mapped PUF peripheral.

Sec. V: "The gem5 simulation environment allows one to define a
peripheral module connected to the RISC-V microprocessor, providing the
essential infrastructure for the delivery of the programming API."  This
module is that peripheral: challenge/control/status/response registers, a
latency model derived from the underlying PUF's physics, and per-access
statistics in the system event log.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.puf.base import NOMINAL_ENV, PUF, PUFEnvironment
from repro.system.des import EventLog
from repro.utils.bits import bits_from_bytes, bytes_from_bits

# Register map (word offsets).
REG_CTRL = 0x00
REG_STATUS = 0x04
REG_CHALLENGE_BASE = 0x10
REG_RESPONSE_BASE = 0x40

STATUS_IDLE = 0
STATUS_BUSY = 1
STATUS_DONE = 2

CTRL_START = 1


class PUFPeripheral:
    """MMIO front-end for any :class:`~repro.puf.base.PUF`.

    The programming sequence mirrors a real driver:

    1. write the challenge words at ``REG_CHALLENGE_BASE``;
    2. write ``CTRL_START`` to ``REG_CTRL``;
    3. poll ``REG_STATUS`` until ``STATUS_DONE``;
    4. read the response words at ``REG_RESPONSE_BASE``.

    Timing: evaluation takes the PUF's physical interrogation time plus a
    fixed ADC/readout overhead; the elapsed time is tracked on the
    peripheral clock and reported through :attr:`log`.
    """

    def __init__(
        self,
        puf: PUF,
        log: Optional[EventLog] = None,
        readout_overhead_s: float = 200e-9,
        mmio_access_s: float = 20e-9,
    ):
        self.puf = puf
        self.log = log or EventLog()
        self.readout_overhead_s = readout_overhead_s
        self.mmio_access_s = mmio_access_s
        self._challenge_bytes = bytearray(
            math.ceil(puf.challenge_bits / 8)
        )
        self._response_bytes = b""
        self._status = STATUS_IDLE
        self.busy_time_s = 0.0
        self.env = NOMINAL_ENV

    def set_environment(self, env: PUFEnvironment) -> None:
        """Operating conditions for subsequent evaluations."""
        self.env = env

    def write_challenge(self, data: bytes) -> float:
        """Load challenge bytes; returns MMIO time spent."""
        if len(data) != len(self._challenge_bytes):
            raise ValueError(
                f"challenge must be {len(self._challenge_bytes)} bytes"
            )
        self._challenge_bytes[:] = data
        accesses = math.ceil(len(data) / 4)
        elapsed = accesses * self.mmio_access_s
        self.log.count("puf.mmio_writes", accesses)
        return elapsed

    def start(self) -> float:
        """Trigger an evaluation; returns the time until DONE."""
        if self._status == STATUS_BUSY:
            raise RuntimeError("peripheral already busy")
        self._status = STATUS_BUSY
        bits = bits_from_bytes(bytes(self._challenge_bytes))[: self.puf.challenge_bits]
        response = self.puf.evaluate(bits, self.env)
        padded = np.concatenate([
            response,
            np.zeros((-response.size) % 8, dtype=np.uint8),
        ])
        self._response_bytes = bytes_from_bits(padded)
        if hasattr(self.puf, "interrogation_time_s"):
            physical = self.puf.interrogation_time_s()
        else:
            physical = 1e-6  # electronic PUF readout
        elapsed = physical + self.readout_overhead_s
        self.busy_time_s += elapsed
        self._status = STATUS_DONE
        self.log.count("puf.evaluations")
        self.log.accumulate("puf.busy_seconds", elapsed)
        return elapsed

    def status(self) -> int:
        return self._status

    def read_response(self) -> tuple:
        """(response bytes, MMIO time spent)."""
        if self._status != STATUS_DONE:
            raise RuntimeError("no completed evaluation to read")
        self._status = STATUS_IDLE
        accesses = math.ceil(len(self._response_bytes) / 4)
        self.log.count("puf.mmio_reads", accesses)
        return self._response_bytes, accesses * self.mmio_access_s

    def evaluate(self, challenge_bits: np.ndarray) -> tuple:
        """Driver convenience: full sequence, returns (response bits, time).

        ``challenge_bits`` is the raw bit vector; padding to byte
        boundaries is handled here.
        """
        challenge_bits = np.asarray(challenge_bits, dtype=np.uint8)
        if challenge_bits.size != self.puf.challenge_bits:
            raise ValueError("challenge width mismatch")
        padded = np.concatenate([
            challenge_bits,
            np.zeros((-challenge_bits.size) % 8, dtype=np.uint8),
        ])
        total = self.write_challenge(bytes_from_bits(padded))
        total += self.start()
        response_bytes, read_time = self.read_response()
        total += read_time
        bits = bits_from_bytes(response_bytes)[: self.puf.response_bits]
        return bits, total
