"""Keyed bit-level Feistel permutation for challenge encryption.

Paper Sec. IV cites [30]: encrypting the challenge with a key derived
from a *weak* PUF before it reaches the *strong* PUF destroys the
algebraic structure a machine-learning attacker relies on.  An
alternating Feistel network with an HMAC round function gives a bijective
keyed permutation on arbitrary-width challenges (bijectivity matters: the
challenge space must not shrink).

Alternating construction: split the input into halves L and R; even
rounds do ``L ^= F(round, R)``, odd rounds do ``R ^= F(round, L)``.
Applying the rounds in reverse order inverts the permutation, and odd
input widths need no padding.
"""

from __future__ import annotations

import numpy as np

from repro.crypto.mac import hmac_sha256
from repro.utils.bits import BitArray, bits_from_bytes


class FeistelPermutation:
    """Alternating Feistel network on ``n_bits``-wide bit vectors."""

    def __init__(self, key: bytes, n_bits: int, n_rounds: int = 6):
        if n_bits < 2:
            raise ValueError("need at least 2 bits to permute")
        if n_rounds < 2:
            raise ValueError("need at least two rounds")
        self.key = key
        self.n_bits = n_bits
        self.n_rounds = n_rounds
        self._split = n_bits // 2

    def _round_function(self, round_index: int, half: np.ndarray, width: int) -> BitArray:
        digest = hmac_sha256(
            self.key,
            bytes([round_index]) + np.asarray(half, dtype=np.uint8).tobytes(),
        )
        stream = digest
        while len(stream) * 8 < width:
            stream += hmac_sha256(self.key, stream)
        return bits_from_bytes(stream)[:width]

    def _apply(self, bits, rounds) -> BitArray:
        arr = np.asarray(bits, dtype=np.uint8)
        if arr.size != self.n_bits:
            raise ValueError(f"input must have {self.n_bits} bits")
        left = arr[: self._split].copy()
        right = arr[self._split:].copy()
        for round_index in rounds:
            if round_index % 2 == 0:
                left ^= self._round_function(round_index, right, left.size)
            else:
                right ^= self._round_function(round_index, left, right.size)
        return np.concatenate([left, right]).astype(np.uint8)

    def forward(self, bits) -> BitArray:
        """Apply the permutation."""
        return self._apply(bits, range(self.n_rounds))

    def inverse(self, bits) -> BitArray:
        """Invert the permutation (same rounds, reverse order)."""
        return self._apply(bits, range(self.n_rounds - 1, -1, -1))
