"""HKDF (RFC 5869) key derivation over HMAC-SHA256."""

from __future__ import annotations

from repro.crypto.mac import hmac_sha256


def hkdf_extract(salt: bytes, input_key_material: bytes) -> bytes:
    """Extract step: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = b"\x00" * 32
    return hmac_sha256(salt, input_key_material)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """Expand step: OKM of the requested length."""
    if length < 0 or length > 255 * 32:
        raise ValueError("requested length out of range")
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac_sha256(prk, block + info + bytes([counter]))
        output += block
        counter += 1
    return output[:length]


def hkdf(input_key_material: bytes, length: int = 32,
         salt: bytes = b"", info: bytes = b"") -> bytes:
    """One-shot extract-and-expand."""
    return hkdf_expand(hkdf_extract(salt, input_key_material), info, length)
