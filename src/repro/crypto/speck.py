"""SPECK 64/128 lightweight block cipher (NSA, 2013).

Chosen as the data-encryption workhorse because the paper targets
constrained edge devices (Sec. I): SPECK's ARX structure is among the
cheapest ciphers to put next to a RISC-V core.  64-bit blocks, 128-bit
keys, 27 rounds.
"""

from __future__ import annotations

_WORD_BITS = 32
_WORD_MASK = (1 << _WORD_BITS) - 1
_ROUNDS = 27
_ALPHA = 8
_BETA = 3


def _ror(x: int, r: int) -> int:
    return ((x >> r) | (x << (_WORD_BITS - r))) & _WORD_MASK


def _rol(x: int, r: int) -> int:
    return ((x << r) | (x >> (_WORD_BITS - r))) & _WORD_MASK


def _round(x: int, y: int, k: int) -> tuple:
    x = (_ror(x, _ALPHA) + y) & _WORD_MASK
    x ^= k
    y = _rol(y, _BETA) ^ x
    return x, y


def _round_inverse(x: int, y: int, k: int) -> tuple:
    y = _ror(y ^ x, _BETA)
    x = _rol((x ^ k) - y & _WORD_MASK, _ALPHA)
    return x, y


class Speck64_128:
    """SPECK with 64-bit blocks and a 128-bit key."""

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError("key must be 16 bytes")
        words = [int.from_bytes(key[i:i + 4], "big") for i in range(0, 16, 4)]
        # key = (l2, l1, l0, k0) in SPECK's notation (big-endian input).
        l = [words[2], words[1], words[0]]
        k = words[3]
        self._round_keys = [k]
        for i in range(_ROUNDS - 1):
            l_new, k = _round(l[i], k, i)
            l.append(l_new)
            self._round_keys.append(k)

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != 8:
            raise ValueError("block must be 8 bytes")
        x = int.from_bytes(plaintext[:4], "big")
        y = int.from_bytes(plaintext[4:], "big")
        for k in self._round_keys:
            x, y = _round(x, y, k)
        return x.to_bytes(4, "big") + y.to_bytes(4, "big")

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != 8:
            raise ValueError("block must be 8 bytes")
        x = int.from_bytes(ciphertext[:4], "big")
        y = int.from_bytes(ciphertext[4:], "big")
        for k in reversed(self._round_keys):
            x, y = _round_inverse(x, y, k)
        return x.to_bytes(4, "big") + y.to_bytes(4, "big")

    @property
    def block_size(self) -> int:
        return 8
