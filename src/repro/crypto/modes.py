"""Block-cipher modes: CTR keystream encryption and encrypt-then-MAC AEAD.

The NN-configuration and data-encryption service (paper Sec. III-C,
Table I) uses :class:`AuthenticatedCipher`: confidentiality from CTR mode
over a lightweight cipher, integrity from HMAC-SHA256 over the ciphertext.
"""

from __future__ import annotations

from repro.crypto.mac import hmac_sha256, verify_mac
from repro.utils.serialization import decode_fields, encode_fields


class AuthenticationError(Exception):
    """Ciphertext failed integrity verification."""


def ctr_keystream(cipher, nonce: bytes, length: int) -> bytes:
    """CTR-mode keystream of the requested length."""
    block_size = cipher.block_size
    if len(nonce) > block_size - 2:
        raise ValueError("nonce too long for the counter block")
    stream = b""
    counter = 0
    while len(stream) < length:
        block = nonce + counter.to_bytes(block_size - len(nonce), "big")
        stream += cipher.encrypt_block(block)
        counter += 1
        if counter >= 1 << (8 * (block_size - len(nonce))):
            raise OverflowError("CTR counter exhausted")
    return stream[:length]


def ctr_encrypt(cipher, nonce: bytes, plaintext: bytes) -> bytes:
    """XOR the plaintext with the CTR keystream (same op decrypts)."""
    stream = ctr_keystream(cipher, nonce, len(plaintext))
    return bytes(p ^ s for p, s in zip(plaintext, stream))


ctr_decrypt = ctr_encrypt


class AuthenticatedCipher:
    """Encrypt-then-MAC over a CTR-mode block cipher.

    ``cipher_factory(key16)`` builds the block cipher; the 32-byte master
    key is split into an encryption half and a MAC half.
    """

    def __init__(self, master_key: bytes, cipher_factory=None):
        if len(master_key) < 32:
            raise ValueError("master key must be at least 32 bytes")
        from repro.crypto.speck import Speck64_128

        factory = cipher_factory or Speck64_128
        self._cipher = factory(master_key[:16])
        self._mac_key = master_key[16:32]

    def encrypt(self, plaintext: bytes, nonce: bytes, associated: bytes = b"") -> bytes:
        """Sealed message: fields(nonce, ciphertext, tag)."""
        ciphertext = ctr_encrypt(self._cipher, nonce, plaintext)
        tag = hmac_sha256(self._mac_key,
                          encode_fields([nonce, ciphertext, associated]))
        return encode_fields([nonce, ciphertext, tag])

    def decrypt(self, sealed: bytes, associated: bytes = b"") -> bytes:
        """Verify and open a sealed message."""
        try:
            nonce, ciphertext, tag = decode_fields(sealed)
        except ValueError as exc:
            raise AuthenticationError(f"malformed sealed message: {exc}") from exc
        expected = hmac_sha256(self._mac_key,
                               encode_fields([nonce, ciphertext, associated]))
        if not _constant_time_equal(expected, tag):
            raise AuthenticationError("MAC verification failed")
        return ctr_decrypt(self._cipher, nonce, ciphertext)


def _constant_time_equal(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
