"""Repetition and Hamming(7,4) codes.

The light-weight end of the ECC spectrum: a repetition code trades rate
for correction (majority decode), Hamming(7,4) corrects single errors at
rate 4/7.  Concatenating repetition with BCH is the classic PUF key
derivation construction.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bits import BitArray


class RepetitionCode:
    """n-fold repetition with majority decoding (n odd)."""

    def __init__(self, n: int = 5):
        if n < 1 or n % 2 == 0:
            raise ValueError("repetition factor must be odd and positive")
        self.n = n

    def encode(self, message) -> BitArray:
        message = np.asarray(message, dtype=np.uint8)
        return np.repeat(message, self.n)

    def decode(self, received) -> BitArray:
        received = np.asarray(received, dtype=np.uint8)
        if received.size % self.n:
            raise ValueError("received length must be a multiple of n")
        blocks = received.reshape(-1, self.n)
        return (blocks.sum(axis=1) * 2 > self.n).astype(np.uint8)

    def correctable_errors_per_block(self) -> int:
        return (self.n - 1) // 2


class Hamming74:
    """The [7,4,3] Hamming code: corrects one error per block."""

    # Generator (4x7) and parity-check (3x7) matrices, systematic form.
    G = np.array([
        [1, 0, 0, 0, 1, 1, 0],
        [0, 1, 0, 0, 1, 0, 1],
        [0, 0, 1, 0, 0, 1, 1],
        [0, 0, 0, 1, 1, 1, 1],
    ], dtype=np.uint8)
    H = np.array([
        [1, 1, 0, 1, 1, 0, 0],
        [1, 0, 1, 1, 0, 1, 0],
        [0, 1, 1, 1, 0, 0, 1],
    ], dtype=np.uint8)

    def encode(self, message) -> BitArray:
        message = np.asarray(message, dtype=np.uint8)
        if message.size % 4:
            raise ValueError("message length must be a multiple of 4")
        blocks = message.reshape(-1, 4)
        return (blocks @ self.G % 2).astype(np.uint8).ravel()

    def decode(self, received) -> BitArray:
        received = np.asarray(received, dtype=np.uint8).copy()
        if received.size % 7:
            raise ValueError("received length must be a multiple of 7")
        blocks = received.reshape(-1, 7)
        syndromes = blocks @ self.H.T % 2
        columns = self.H.T  # syndrome of a single error at position i
        for row in range(blocks.shape[0]):
            syndrome = syndromes[row]
            if syndrome.any():
                matches = np.where((columns == syndrome).all(axis=1))[0]
                if matches.size:
                    blocks[row, matches[0]] ^= 1
        return blocks[:, :4].ravel()
