"""PRESENT-80 ultra-lightweight block cipher (CHES 2007, ISO/IEC 29192-2).

The canonical hardware-oriented cipher for the kind of edge device the
paper targets; included alongside SPECK so the NN-encryption service can
be benchmarked over more than one cipher.  64-bit blocks, 80-bit keys,
31 rounds.
"""

from __future__ import annotations

_SBOX = [0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
         0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2]
_SBOX_INV = [_SBOX.index(i) for i in range(16)]
_ROUNDS = 31


def _p_layer(state: int) -> int:
    out = 0
    for i in range(64):
        bit = (state >> i) & 1
        position = 63 if i == 63 else (16 * i) % 63
        out |= bit << position
    return out


def _p_layer_inverse(state: int) -> int:
    out = 0
    for i in range(64):
        position = 63 if i == 63 else (16 * i) % 63
        bit = (state >> position) & 1
        out |= bit << i
    return out


def _sbox_layer(state: int, box) -> int:
    out = 0
    for nibble in range(16):
        value = (state >> (4 * nibble)) & 0xF
        out |= box[value] << (4 * nibble)
    return out


class Present80:
    """PRESENT with an 80-bit key."""

    def __init__(self, key: bytes):
        if len(key) != 10:
            raise ValueError("key must be 10 bytes")
        register = int.from_bytes(key, "big")
        self._round_keys = []
        for round_counter in range(1, _ROUNDS + 2):
            self._round_keys.append(register >> 16)
            # Rotate the 80-bit register left by 61.
            register = ((register << 61) | (register >> 19)) & ((1 << 80) - 1)
            top = _SBOX[register >> 76]
            register = (top << 76) | (register & ((1 << 76) - 1))
            register ^= round_counter << 15

    def encrypt_block(self, plaintext: bytes) -> bytes:
        if len(plaintext) != 8:
            raise ValueError("block must be 8 bytes")
        state = int.from_bytes(plaintext, "big")
        for round_index in range(_ROUNDS):
            state ^= self._round_keys[round_index]
            state = _sbox_layer(state, _SBOX)
            state = _p_layer(state)
        state ^= self._round_keys[_ROUNDS]
        return state.to_bytes(8, "big")

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        if len(ciphertext) != 8:
            raise ValueError("block must be 8 bytes")
        state = int.from_bytes(ciphertext, "big")
        state ^= self._round_keys[_ROUNDS]
        for round_index in range(_ROUNDS - 1, -1, -1):
            state = _p_layer_inverse(state)
            state = _sbox_layer(state, _SBOX_INV)
            state ^= self._round_keys[round_index]
        return state.to_bytes(8, "big")

    @property
    def block_size(self) -> int:
        return 8
