"""HMAC-SHA256 message authentication, built from the raw hash primitive.

The ``MAC(data, key)`` function of the mutual-authentication protocol
(paper Fig. 4).  Implemented from the HMAC construction directly (rather
than ``hmac`` stdlib) because the whole point of this repository is to
expose every moving part.
"""

from __future__ import annotations

import hashlib

_BLOCK_SIZE = 64  # SHA-256 block size in bytes
_IPAD = bytes(0x36 for _ in range(_BLOCK_SIZE))
_OPAD = bytes(0x5C for _ in range(_BLOCK_SIZE))


def _xor(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 per RFC 2104."""
    if len(key) > _BLOCK_SIZE:
        key = hashlib.sha256(key).digest()
    key = key.ljust(_BLOCK_SIZE, b"\x00")
    inner = hashlib.sha256(_xor(key, _IPAD) + message).digest()
    return hashlib.sha256(_xor(key, _OPAD) + inner).digest()


def mac(data: bytes, key: bytes) -> bytes:
    """The paper's MAC(data, key) — argument order follows Fig. 4."""
    return hmac_sha256(key, data)


def verify_mac(data: bytes, key: bytes, tag: bytes) -> bool:
    """Constant-time tag comparison."""
    expected = mac(data, key)
    if len(expected) != len(tag):
        return False
    result = 0
    for x, y in zip(expected, tag):
        result |= x ^ y
    return result == 0


def sha256(data: bytes) -> bytes:
    """Plain SHA-256 (the HASH function of the attestation protocol)."""
    return hashlib.sha256(data).digest()
