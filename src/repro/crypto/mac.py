"""HMAC-SHA256 message authentication, built from the raw hash primitive.

The ``MAC(data, key)`` function of the mutual-authentication protocol
(paper Fig. 4).  Implemented from the HMAC construction directly (rather
than ``hmac`` stdlib) because the whole point of this repository is to
expose every moving part.

The construction is the textbook one, but the key-pad handling is tuned
for fleet-scale workloads (hundreds of thousands of MACs per campaign):

* the ``key XOR ipad`` / ``key XOR opad`` block pads are computed with one
  64-byte integer XOR each instead of a byte-wise generator (the byte
  loop was ~40% of round time in fleet profiles);
* the SHA-256 digest states of both padded keys are cached per key and
  ``copy()``-ed per MAC, so repeated MACs under one session key (every
  rolling-CRP session computes several) never re-absorb the key block.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict

_BLOCK_SIZE = 64  # SHA-256 block size in bytes
_IPAD_INT = int.from_bytes(bytes([0x36]) * _BLOCK_SIZE, "big")
_OPAD_INT = int.from_bytes(bytes([0x5C]) * _BLOCK_SIZE, "big")

# key -> (inner digest state, outer digest state), LRU-bounded so a
# long-running verifier rolling through millions of session keys keeps a
# flat memory profile.  Sized for several live keys per device at
# fleet-round scale (256+ devices per round).
_STATE_CACHE_MAX = 4096
_state_cache: "OrderedDict[bytes, tuple]" = OrderedDict()


def _digest_states(key: bytes) -> tuple:
    """SHA-256 states preloaded with ``key XOR ipad`` / ``key XOR opad``."""
    cached = _state_cache.get(key)
    if cached is not None:
        _state_cache.move_to_end(key)
        return cached
    block = hashlib.sha256(key).digest() if len(key) > _BLOCK_SIZE else key
    key_int = int.from_bytes(block.ljust(_BLOCK_SIZE, b"\x00"), "big")
    inner = hashlib.sha256((key_int ^ _IPAD_INT).to_bytes(_BLOCK_SIZE, "big"))
    outer = hashlib.sha256((key_int ^ _OPAD_INT).to_bytes(_BLOCK_SIZE, "big"))
    _state_cache[key] = (inner, outer)
    if len(_state_cache) > _STATE_CACHE_MAX:
        _state_cache.popitem(last=False)
    return inner, outer


def hmac_sha256(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA256 per RFC 2104."""
    inner, outer = _digest_states(bytes(key))
    inner = inner.copy()
    inner.update(message)
    outer = outer.copy()
    outer.update(inner.digest())
    return outer.digest()


def mac(data: bytes, key: bytes) -> bytes:
    """The paper's MAC(data, key) — argument order follows Fig. 4."""
    return hmac_sha256(key, data)


def verify_mac(data: bytes, key: bytes, tag: bytes) -> bool:
    """Constant-time tag comparison."""
    expected = mac(data, key)
    if len(expected) != len(tag):
        return False
    result = 0
    for x, y in zip(expected, tag):
        result |= x ^ y
    return result == 0


def mac_batch(messages, keys) -> list:
    """MAC a whole round of ``(data, key)`` pairs in one call.

    The fleet verifier's framing stage computes/checks one MAC per
    device per round; this batch entry point walks the round in one
    tight loop over the cached per-key digest states (see
    :func:`_digest_states`), so the pipelined scheduler has a single
    call to overlap with the next shard's plane pass.  Element ``i`` is
    ``mac(messages[i], keys[i])``.
    """
    if len(messages) != len(keys):
        raise ValueError(
            f"got {len(messages)} messages for {len(keys)} keys"
        )
    tags = []
    for data, key in zip(messages, keys):
        inner, outer = _digest_states(bytes(key))
        inner = inner.copy()
        inner.update(data)
        outer = outer.copy()
        outer.update(inner.digest())
        tags.append(outer.digest())
    return tags


def verify_mac_batch(messages, keys, tags) -> list:
    """Constant-time verification of a whole round of MACs.

    Returns one bool per ``(data, key, tag)`` triple; each comparison is
    the same constant-time scan :func:`verify_mac` performs.
    """
    if not len(messages) == len(keys) == len(tags):
        raise ValueError(
            f"got {len(messages)} messages, {len(keys)} keys, "
            f"{len(tags)} tags"
        )
    results = []
    for expected, tag in zip(mac_batch(messages, keys), tags):
        if len(expected) != len(tag):
            results.append(False)
            continue
        result = 0
        for x, y in zip(expected, bytes(tag)):
            result |= x ^ y
        results.append(result == 0)
    return results


def sha256(data: bytes) -> bytes:
    """Plain SHA-256 (the HASH function of the attestation protocol)."""
    return hashlib.sha256(data).digest()
