"""HMAC-DRBG (NIST SP 800-90A) deterministic random bit generator.

The ``RNG`` function of the protocols: mutual authentication derives the
next challenge as ``c_{i+1} = RNG(r_i)`` (Fig. 4), and attestation derives
the memory walk as ``m_1..m_n = RNG(r_1 + t)`` (Sec. III-B).  Both sides
must reproduce the stream exactly, hence a standardised DRBG.
"""

from __future__ import annotations

from repro.crypto.mac import hmac_sha256


class HmacDrbg:
    """HMAC-SHA256 DRBG, instantiated from a seed byte string."""

    def __init__(self, seed: bytes, personalization: bytes = b""):
        self._key = b"\x00" * 32
        self._value = b"\x01" * 32
        self._update(seed + personalization)

    def _update(self, provided: bytes = b"") -> None:
        self._key = hmac_sha256(self._key, self._value + b"\x00" + provided)
        self._value = hmac_sha256(self._key, self._value)
        if provided:
            self._key = hmac_sha256(self._key, self._value + b"\x01" + provided)
            self._value = hmac_sha256(self._key, self._value)

    def generate(self, n_bytes: int) -> bytes:
        """Next ``n_bytes`` of the stream."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        output = b""
        while len(output) < n_bytes:
            self._value = hmac_sha256(self._key, self._value)
            output += self._value
        self._update()
        return output[:n_bytes]

    def reseed(self, entropy: bytes) -> None:
        """Mix fresh entropy into the state."""
        self._update(entropy)

    def randint_below(self, bound: int) -> int:
        """Uniform integer in [0, bound) via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        n_bytes = (bound.bit_length() + 7) // 8
        limit = (1 << (8 * n_bytes)) // bound * bound
        while True:
            candidate = int.from_bytes(self.generate(n_bytes), "big")
            if candidate < limit:
                return candidate % bound
