"""Fuzzy extractor: stable cryptographic keys from noisy PUF responses.

Code-offset construction (Dodis et al.):

* **Gen(w)** — draw a random codeword c, publish helper data
  ``h = w XOR c``, output key ``K = Hash(w)``;
* **Rep(w', h)** — compute ``c' = w' XOR h``, decode to the nearest
  codeword c, recover ``w = c XOR h``, output ``K = Hash(w)``.

As long as the PUF re-measurement ``w'`` differs from the enrollment
response ``w`` in at most the code's correction capability, Rep returns
the exact enrollment key.  The helper data leaks at most the code's
redundancy, so the extracted key keeps ``k`` bits of entropy.

The default code is a concatenation: inner repetition (crushes the raw
bit-error rate) and outer BCH (cleans up the residual errors) — the
classic PUF key-derivation chain the paper's Fig. 1 labels
"Post-processing (ECC, Fuzzy Extraction, etc.)".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.bch import BCHCode, BCHDecodingError
from repro.crypto.kdf import hkdf
from repro.crypto.repetition import RepetitionCode
from repro.utils.bits import BitArray, bytes_from_bits
from repro.utils.rng import derive_rng


class KeyRecoveryError(Exception):
    """Raised when the noisy response is too far from the enrollment."""


@dataclass(frozen=True)
class HelperData:
    """Public helper data produced at enrollment (not secret)."""

    offset: BitArray
    key_bits: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "offset", np.asarray(self.offset, dtype=np.uint8))


@dataclass(frozen=True)
class ExtractionResult:
    key: bytes
    helper: HelperData


class ConcatenatedCode:
    """Outer BCH + inner repetition, the fuzzy extractor's workhorse."""

    def __init__(self, bch_m: int = 7, bch_t: int = 10, repetition: int = 3):
        self.outer = BCHCode(bch_m, bch_t)
        self.inner = RepetitionCode(repetition)
        self.k = self.outer.k
        self.n = self.outer.n * self.inner.n

    def encode(self, message) -> BitArray:
        return self.inner.encode(self.outer.encode(message))

    def decode(self, received) -> BitArray:
        return self.outer.decode(self.inner.decode(received))


class FuzzyExtractor:
    """Code-offset fuzzy extractor over a pluggable ECC.

    Parameters
    ----------
    code:
        Any object with ``encode(k bits) -> n bits``, ``decode(n bits) ->
        k bits`` and attributes ``k``/``n``; defaults to BCH(127,64,t=10)
        + 3x repetition (n = 381 response bits -> 64-bit secret).
    key_length:
        Output key length in bytes (via HKDF over the recovered secret).
    """

    def __init__(self, code=None, key_length: int = 16, seed: int = 0):
        self.code = code or ConcatenatedCode()
        self.key_length = key_length
        self.seed = seed

    @property
    def response_bits(self) -> int:
        """Number of PUF response bits consumed."""
        return self.code.n

    def generate(self, response, enrollment_id: int = 0) -> ExtractionResult:
        """Gen: enroll a response, produce (key, helper data)."""
        response = np.asarray(response, dtype=np.uint8)
        if response.size != self.code.n:
            raise ValueError(
                f"response must have {self.code.n} bits, got {response.size}"
            )
        rng = derive_rng(self.seed, "fuzzy", enrollment_id)
        secret = rng.integers(0, 2, size=self.code.k, dtype=np.uint8)
        codeword = self.code.encode(secret)
        offset = np.bitwise_xor(response, codeword)
        helper = HelperData(offset=offset, key_bits=self.code.k)
        return ExtractionResult(key=self._derive_key(secret), helper=helper)

    def reproduce(self, noisy_response, helper: HelperData) -> bytes:
        """Rep: recover the enrollment key from a noisy re-measurement."""
        noisy_response = np.asarray(noisy_response, dtype=np.uint8)
        if noisy_response.size != self.code.n:
            raise ValueError(
                f"response must have {self.code.n} bits, got {noisy_response.size}"
            )
        received = np.bitwise_xor(noisy_response, helper.offset)
        try:
            secret = self.code.decode(received)
        except BCHDecodingError as exc:
            raise KeyRecoveryError(str(exc)) from exc
        return self._derive_key(secret)

    def _derive_key(self, secret) -> bytes:
        padded = np.asarray(secret, dtype=np.uint8)
        if padded.size % 8:
            padded = np.concatenate(
                [padded, np.zeros(8 - padded.size % 8, dtype=np.uint8)]
            )
        return hkdf(bytes_from_bits(padded), self.key_length,
                    info=b"repro-fuzzy-extractor")
