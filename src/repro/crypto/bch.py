"""Binary BCH error-correcting codes.

Systematic BCH(n = 2^m - 1, k, t) encoder and a Berlekamp-Massey + Chien
search decoder.  Together with the repetition code this is the ECC block
of the paper's post-processing chain (Fig. 1): it turns a noisy weak-PUF
response into a stable key.
"""

from __future__ import annotations

from typing import List, Sequence, Set

import numpy as np

from repro.crypto.gf2 import GF2m, _degree
from repro.utils.bits import BitArray


class BCHDecodingError(Exception):
    """Raised when the received word has more errors than the code corrects."""


def _cyclotomic_coset(i: int, n: int) -> Set[int]:
    """The 2-cyclotomic coset of i modulo n."""
    coset = set()
    value = i % n
    while value not in coset:
        coset.add(value)
        value = (value * 2) % n
    return coset


def _minimal_polynomial(field: GF2m, exponents: Set[int]) -> List[int]:
    """prod_{e in coset} (x - alpha^e), lowest degree first."""
    poly = [1]
    for exponent in exponents:
        poly = field.poly_mul(poly, [field.alpha_pow(exponent), 1])
    return poly


class BCHCode:
    """Systematic binary BCH code over GF(2^m).

    Parameters
    ----------
    m:
        Field degree; block length is n = 2^m - 1.
    t:
        Designed error-correction capability (corrects up to t bit errors).
    """

    def __init__(self, m: int = 7, t: int = 10):
        if t < 1:
            raise ValueError("t must be at least 1")
        self.field = GF2m(m)
        self.n = (1 << m) - 1
        self.t = t
        generator = [1]
        seen: Set[int] = set()
        for i in range(1, 2 * t + 1):
            coset = _cyclotomic_coset(i, self.n)
            if coset & seen:
                continue
            seen |= coset
            generator = self.field.poly_mul(generator,
                                            _minimal_polynomial(self.field, coset))
        # The generator of a binary BCH code has binary coefficients.
        if any(c not in (0, 1) for c in generator):
            raise AssertionError("generator polynomial is not binary")
        self.generator = generator
        self.n_parity = _degree(generator)
        self.k = self.n - self.n_parity
        if self.k <= 0:
            raise ValueError(f"t={t} leaves no message bits for m={m}")
        self._build_tables()

    def _build_tables(self) -> None:
        """Precompute the GF(2) matrices the hot paths multiply against.

        * ``_parity_matrix`` — ``(k, n_parity)`` GF(2) generator-matrix
          parity block: row ``i`` is ``x^{n_parity + i} mod g(x)``, so
          systematic encoding is one XOR-reduction (GF(2) matmul) of the
          rows the message selects instead of a Python long division.
        * ``_syndrome_table`` — ``(2t, n)`` field elements
          ``alpha^{i j}``: because the received word is *binary*,
          ``S_i = r(alpha^i)`` is the XOR of the table columns where
          ``r`` has a one — all ``2t`` syndromes fall out of one fancy
          index + XOR reduction.
        """
        g_low = np.array(self.generator[: self.n_parity], dtype=np.uint8)
        parity_rows = np.empty((self.k, self.n_parity), dtype=np.uint8)
        # x^{n_parity} mod g  =  g(x) - x^{n_parity}  (binary, monic g).
        row = g_low.copy()
        for i in range(self.k):
            parity_rows[i] = row
            carry = row[-1]
            row = np.concatenate(([0], row[:-1]))
            if carry:
                row ^= g_low
        self._parity_matrix = parity_rows
        exp_table = np.asarray(self.field.exp[: self.n], dtype=np.int64)
        powers = (np.arange(1, 2 * self.t + 1)[:, np.newaxis]
                  * np.arange(self.n)[np.newaxis, :]) % self.n
        self._syndrome_table = exp_table[powers]
        self._exp_table = exp_table

    def encode(self, message: Sequence[int]) -> BitArray:
        """Systematic encoding: message followed by parity bits.

        One GF(2) matmul — the XOR of the parity-matrix rows the message
        bits select — replaces the coefficient-list polynomial division;
        codeword-exact against :meth:`encode_reference`.
        """
        message = np.asarray(message, dtype=np.uint8)
        if message.size != self.k:
            raise ValueError(f"message must have {self.k} bits, got {message.size}")
        parity = np.bitwise_xor.reduce(
            self._parity_matrix[message.astype(bool)], axis=0,
        )
        if parity.ndim == 0:  # all-zero message: XOR identity
            parity = np.zeros(self.n_parity, dtype=np.uint8)
        return np.concatenate([message, parity[::-1]]).astype(np.uint8)

    def encode_reference(self, message: Sequence[int]) -> BitArray:
        """Pure-Python polynomial-division encoder (the pinned reference)."""
        message = np.asarray(message, dtype=np.uint8)
        if message.size != self.k:
            raise ValueError(f"message must have {self.k} bits, got {message.size}")
        # Codeword poly: x^{n-k} * m(x) + remainder; coefficient list is
        # lowest-degree first, so the message occupies the top coefficients.
        shifted = [0] * self.n_parity + [int(b) for b in message]
        remainder = self.field.poly_mod(shifted, self.generator)
        parity = [(remainder[i] if i < len(remainder) else 0)
                  for i in range(self.n_parity)]
        return np.array(list(message) + parity[::-1], dtype=np.uint8)[
            np.argsort(self._order())]

    def _order(self) -> np.ndarray:
        # Canonical layout: [message bits (k), parity bits (n-k)].
        # Internally the codeword polynomial stores parity in the low
        # coefficients; this permutation keeps the public layout simple.
        return np.arange(self.n)

    def _codeword_poly(self, codeword: np.ndarray) -> List[int]:
        """Map the public [message | parity] layout to coefficients."""
        message = codeword[: self.k]
        parity = codeword[self.k:]
        coefficients = [0] * self.n
        for i, bit in enumerate(parity[::-1]):
            coefficients[i] = int(bit)
        for i, bit in enumerate(message):
            coefficients[self.n_parity + i] = int(bit)
        return coefficients

    def _poly_to_codeword(self, coefficients: List[int]) -> BitArray:
        parity = [coefficients[i] for i in range(self.n_parity)][::-1]
        message = [coefficients[self.n_parity + i] for i in range(self.k)]
        return np.array(message + parity, dtype=np.uint8)

    def _coefficient_mask(self, codeword: np.ndarray) -> np.ndarray:
        """Boolean coefficient vector of the public [message | parity] word."""
        mask = np.empty(self.n, dtype=bool)
        mask[: self.n_parity] = codeword[self.k:][::-1].astype(bool)
        mask[self.n_parity:] = codeword[: self.k].astype(bool)
        return mask

    def syndromes(self, codeword: Sequence[int]) -> List[int]:
        """S_i = r(alpha^i) for i = 1..2t.

        The received word is binary, so every syndrome is the XOR of the
        precomputed ``alpha^{i j}`` table columns where the word has a
        one — one gather + reduction for all ``2t`` evaluations.
        """
        codeword = np.asarray(codeword, dtype=np.uint8)
        if codeword.size != self.n:
            raise ValueError(f"codeword must have {self.n} bits")
        mask = self._coefficient_mask(codeword)
        gathered = self._syndrome_table[:, mask]
        if gathered.shape[1] == 0:
            return [0] * (2 * self.t)
        return [int(s) for s in np.bitwise_xor.reduce(gathered, axis=1)]

    def syndromes_reference(self, codeword: Sequence[int]) -> List[int]:
        """Horner-rule syndrome evaluation (the pinned reference)."""
        codeword = np.asarray(codeword, dtype=np.uint8)
        if codeword.size != self.n:
            raise ValueError(f"codeword must have {self.n} bits")
        poly = self._codeword_poly(codeword)
        return [
            self.field.poly_eval(poly, self.field.alpha_pow(i))
            for i in range(1, 2 * self.t + 1)
        ]

    def _berlekamp_massey(self, syndromes: List[int]) -> List[int]:
        """Error-locator polynomial sigma(x), lowest degree first."""
        field = self.field
        sigma = [1]
        prev_sigma = [1]
        length = 0
        shift = 1
        prev_discrepancy = 1
        for step, syndrome in enumerate(syndromes):
            discrepancy = syndrome
            for i in range(1, length + 1):
                if i < len(sigma) and sigma[i]:
                    discrepancy ^= field.mul(sigma[i], syndromes[step - i])
            if discrepancy == 0:
                shift += 1
                continue
            scale = field.div(discrepancy, prev_discrepancy)
            correction = [0] * shift + [field.mul(scale, c) for c in prev_sigma]
            new_sigma = [0] * max(len(sigma), len(correction))
            for i, c in enumerate(sigma):
                new_sigma[i] ^= c
            for i, c in enumerate(correction):
                new_sigma[i] ^= c
            if 2 * length <= step:
                prev_sigma, prev_discrepancy = sigma, discrepancy
                length = step + 1 - length
                shift = 1
            else:
                shift += 1
            sigma = new_sigma
        return sigma

    def decode(self, received: Sequence[int]) -> BitArray:
        """Correct up to t errors and return the k message bits."""
        received = np.asarray(received, dtype=np.uint8).copy()
        if received.size != self.n:
            raise ValueError(f"received word must have {self.n} bits")
        syndromes = self.syndromes(received)
        if not any(syndromes):
            return received[: self.k]
        sigma = self._berlekamp_massey(syndromes)
        n_errors = _degree(sigma)
        if n_errors > self.t:
            raise BCHDecodingError("error locator degree exceeds t")
        # Chien search: sigma(alpha^{-j}) == 0 <=> error at coefficient j.
        # sigma(alpha^{-j}) = XOR_i alpha^{log(sigma_i) - i j}; evaluating
        # all n positions is one exponent matrix + table gather + XOR
        # reduction over sigma's nonzero coefficients.
        nonzero = np.flatnonzero(np.asarray(sigma, dtype=np.int64))
        logs = np.array([self.field.log[sigma[i]] for i in nonzero],
                        dtype=np.int64)
        exponents = (logs[np.newaxis, :]
                     - np.arange(self.n)[:, np.newaxis] * nonzero) % self.n
        values = np.bitwise_xor.reduce(self._exp_table[exponents], axis=1)
        error_positions = np.flatnonzero(values == 0)
        if error_positions.size != n_errors:
            raise BCHDecodingError("Chien search found inconsistent error count")
        coefficients = self._codeword_poly(received)
        for position in error_positions:
            coefficients[position] ^= 1
        corrected = self._poly_to_codeword(coefficients)
        if any(self.syndromes(corrected)):
            raise BCHDecodingError("correction did not produce a codeword")
        return corrected[: self.k]
