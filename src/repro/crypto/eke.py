"""Encrypted Key Exchange (EKE) over Diffie-Hellman.

Paper Sec. IV: treat a CRP as a low-entropy shared secret and run the
"well-established and secure EKE protocol to achieve both mutual
authentication and key exchange", giving perfect forward secrecy for the
data-encryption session keys — at a higher computational cost than the
plain HSC-IoT exchange (which the CLM-AKA bench quantifies).

Construction (Bellovin-Merritt, DH variant): each side encrypts its
ephemeral DH public value under a password-derived key; only a holder of
the password can complete the exchange, and the ephemeral exponents give
forward secrecy.  Key confirmation uses HMAC over the transcript.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.crypto.kdf import hkdf
from repro.crypto.mac import hmac_sha256
from repro.crypto.modes import AuthenticatedCipher
from repro.utils.rng import derive_rng

# RFC 3526 group 5: 1536-bit MODP (generous for a behavioral model).
MODP_PRIME = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA237327FFFFFFFFFFFFFFFF",
    16,
)
GENERATOR = 2


class EkeError(Exception):
    """Handshake failure (wrong password, tampering, replay)."""


@dataclass
class HandshakeCost:
    """Cost accounting for protocol comparison benches."""

    modexp_count: int = 0
    bytes_sent: int = 0
    messages: int = 0


def _password_cipher(password: bytes, salt: bytes) -> AuthenticatedCipher:
    return AuthenticatedCipher(hkdf(password, 32, salt=salt, info=b"eke-pw"))


def _encode_public(value: int) -> bytes:
    return value.to_bytes((MODP_PRIME.bit_length() + 7) // 8, "big")


class EkeInitiator:
    """The Verifier side of the EKE handshake."""

    def __init__(self, password: bytes, seed: int = 0, session_id: int = 0):
        self.password = password
        self.cost = HandshakeCost()
        rng = derive_rng(seed, "eke-init", session_id)
        self._exponent = int(rng.integers(2, 2**62)) << 64 \
            | int(rng.integers(0, 2**62))
        self._session_key: Optional[bytes] = None
        self._transcript = b""

    def message_1(self) -> bytes:
        """E_pw(g^a)."""
        public = pow(GENERATOR, self._exponent, MODP_PRIME)
        self.cost.modexp_count += 1
        sealed = _password_cipher(self.password, b"msg1").encrypt(
            _encode_public(public), nonce=b"eke-1\x00"
        )
        self._transcript += sealed
        self.cost.bytes_sent += len(sealed)
        self.cost.messages += 1
        return sealed

    def process_message_2(self, sealed: bytes) -> bytes:
        """Open E_pw(g^b) + confirmation; reply with own confirmation."""
        from repro.crypto.modes import AuthenticationError
        from repro.utils.serialization import decode_fields

        try:
            body, confirmation = decode_fields(sealed)
            peer_public = int.from_bytes(
                _password_cipher(self.password, b"msg2").decrypt(body), "big"
            )
        except (AuthenticationError, ValueError) as exc:
            raise EkeError(f"message 2 rejected: {exc}") from exc
        if not 2 <= peer_public <= MODP_PRIME - 2:
            raise EkeError("peer public value out of range")
        shared = pow(peer_public, self._exponent, MODP_PRIME)
        self.cost.modexp_count += 1
        self._transcript += body
        master = hkdf(_encode_public(shared), 32,
                      salt=hmac_sha256(b"transcript", self._transcript),
                      info=b"eke-master")
        expected = hmac_sha256(master, b"responder-confirm")
        if confirmation != expected:
            raise EkeError("responder confirmation failed")
        self._session_key = hkdf(master, 32, info=b"eke-session")
        reply = hmac_sha256(master, b"initiator-confirm")
        self.cost.bytes_sent += len(reply)
        self.cost.messages += 1
        return reply

    @property
    def session_key(self) -> bytes:
        if self._session_key is None:
            raise EkeError("handshake not complete")
        return self._session_key


class EkeResponder:
    """The Device side of the EKE handshake."""

    def __init__(self, password: bytes, seed: int = 0, session_id: int = 0):
        self.password = password
        self.cost = HandshakeCost()
        rng = derive_rng(seed, "eke-resp", session_id)
        self._exponent = int(rng.integers(2, 2**62)) << 64 \
            | int(rng.integers(0, 2**62))
        self._session_key: Optional[bytes] = None
        self._master: Optional[bytes] = None

    def process_message_1(self, sealed: bytes) -> bytes:
        """Open E_pw(g^a); reply E_pw(g^b) + confirmation."""
        from repro.crypto.modes import AuthenticationError
        from repro.utils.serialization import encode_fields

        try:
            peer_public = int.from_bytes(
                _password_cipher(self.password, b"msg1").decrypt(sealed), "big"
            )
        except AuthenticationError as exc:
            raise EkeError(f"message 1 rejected: {exc}") from exc
        if not 2 <= peer_public <= MODP_PRIME - 2:
            raise EkeError("peer public value out of range")
        public = pow(GENERATOR, self._exponent, MODP_PRIME)
        shared = pow(peer_public, self._exponent, MODP_PRIME)
        self.cost.modexp_count += 2
        body = _password_cipher(self.password, b"msg2").encrypt(
            _encode_public(public), nonce=b"eke-2\x00"
        )
        transcript = sealed + body
        master = hkdf(_encode_public(shared), 32,
                      salt=hmac_sha256(b"transcript", transcript),
                      info=b"eke-master")
        self._master = master
        confirmation = hmac_sha256(master, b"responder-confirm")
        reply = encode_fields([body, confirmation])
        self.cost.bytes_sent += len(reply)
        self.cost.messages += 1
        return reply

    def process_message_3(self, confirmation: bytes) -> None:
        """Verify the initiator's confirmation; session established."""
        if self._master is None:
            raise EkeError("message 1 not processed yet")
        expected = hmac_sha256(self._master, b"initiator-confirm")
        if confirmation != expected:
            raise EkeError("initiator confirmation failed")
        self._session_key = hkdf(self._master, 32, info=b"eke-session")

    @property
    def session_key(self) -> bytes:
        if self._session_key is None:
            raise EkeError("handshake not complete")
        return self._session_key


def run_handshake(password_initiator: bytes, password_responder: bytes,
                  seed: int = 0, session_id: int = 0) -> tuple:
    """Convenience: run the full 3-message exchange in process.

    Returns (initiator, responder); raises :class:`EkeError` when the
    passwords disagree or a message is tampered with.
    """
    initiator = EkeInitiator(password_initiator, seed, session_id)
    responder = EkeResponder(password_responder, seed, session_id)
    msg1 = initiator.message_1()
    msg2 = responder.process_message_1(msg1)
    msg3 = initiator.process_message_2(msg2)
    responder.process_message_3(msg3)
    return initiator, responder
