"""Cryptographic substrate: ECC, fuzzy extraction, ciphers, MAC, DRBG, EKE."""

from repro.crypto.bch import BCHCode, BCHDecodingError
from repro.crypto.drbg import HmacDrbg
from repro.crypto.eke import (
    EkeError,
    EkeInitiator,
    EkeResponder,
    HandshakeCost,
    run_handshake,
)
from repro.crypto.feistel import FeistelPermutation
from repro.crypto.fuzzy_extractor import (
    ConcatenatedCode,
    ExtractionResult,
    FuzzyExtractor,
    HelperData,
    KeyRecoveryError,
)
from repro.crypto.gf2 import GF2m
from repro.crypto.kdf import hkdf, hkdf_expand, hkdf_extract
from repro.crypto.mac import hmac_sha256, mac, sha256, verify_mac
from repro.crypto.modes import (
    AuthenticatedCipher,
    AuthenticationError,
    ctr_decrypt,
    ctr_encrypt,
    ctr_keystream,
)
from repro.crypto.present import Present80
from repro.crypto.repetition import Hamming74, RepetitionCode
from repro.crypto.speck import Speck64_128

__all__ = [
    "BCHCode",
    "BCHDecodingError",
    "HmacDrbg",
    "EkeError",
    "EkeInitiator",
    "EkeResponder",
    "HandshakeCost",
    "run_handshake",
    "FeistelPermutation",
    "ConcatenatedCode",
    "ExtractionResult",
    "FuzzyExtractor",
    "HelperData",
    "KeyRecoveryError",
    "GF2m",
    "hkdf",
    "hkdf_expand",
    "hkdf_extract",
    "hmac_sha256",
    "mac",
    "sha256",
    "verify_mac",
    "AuthenticatedCipher",
    "AuthenticationError",
    "ctr_decrypt",
    "ctr_encrypt",
    "ctr_keystream",
    "Present80",
    "Hamming74",
    "RepetitionCode",
    "Speck64_128",
]
