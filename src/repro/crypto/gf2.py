"""Galois field GF(2^m) arithmetic.

Log/antilog-table implementation over a primitive polynomial; the
foundation of the BCH error-correcting codes used by the fuzzy extractor
(paper Fig. 1: "Post-processing (ECC, Fuzzy Extraction, etc.)").
"""

from __future__ import annotations

from typing import List

# Primitive polynomials for GF(2^m), m = 2..12, in integer form
# (x^4 + x + 1 -> 0b10011 = 19, etc.).
PRIMITIVE_POLYNOMIALS = {
    2: 0b111,
    3: 0b1011,
    4: 0b10011,
    5: 0b100101,
    6: 0b1000011,
    7: 0b10001001,
    8: 0b100011101,
    9: 0b1000010001,
    10: 0b10000001001,
    11: 0b100000000101,
    12: 0b1000001010011,
}


class GF2m:
    """The finite field GF(2^m) with exp/log tables.

    Elements are integers in [0, 2^m); addition is XOR; multiplication
    uses the discrete-log tables built from a primitive element alpha.
    """

    def __init__(self, m: int):
        if m not in PRIMITIVE_POLYNOMIALS:
            raise ValueError(f"unsupported field degree m={m}")
        self.m = m
        self.size = 1 << m
        self.poly = PRIMITIVE_POLYNOMIALS[m]
        self.exp: List[int] = [0] * (2 * self.size)
        self.log: List[int] = [0] * self.size
        value = 1
        for power in range(self.size - 1):
            self.exp[power] = value
            self.log[value] = power
            value <<= 1
            if value & self.size:
                value ^= self.poly
        # Duplicate the table so exp lookups never need a modulo.
        for power in range(self.size - 1, 2 * self.size):
            self.exp[power] = self.exp[power - (self.size - 1)]

    def _check(self, *elements: int) -> None:
        for e in elements:
            if not 0 <= e < self.size:
                raise ValueError(f"{e} is not an element of GF(2^{self.m})")

    def add(self, a: int, b: int) -> int:
        """Field addition (= subtraction) is XOR."""
        self._check(a, b)
        return a ^ b

    def mul(self, a: int, b: int) -> int:
        """Field multiplication via log tables."""
        self._check(a, b)
        if a == 0 or b == 0:
            return 0
        return self.exp[self.log[a] + self.log[b]]

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises on zero."""
        self._check(a)
        if a == 0:
            raise ZeroDivisionError("zero has no inverse")
        return self.exp[self.size - 1 - self.log[a]]

    def div(self, a: int, b: int) -> int:
        """a / b."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, exponent: int) -> int:
        """a ** exponent (exponent may be negative for nonzero a)."""
        self._check(a)
        if a == 0:
            if exponent <= 0:
                raise ZeroDivisionError("0 ** non-positive power")
            return 0
        log_a = self.log[a]
        return self.exp[(log_a * exponent) % (self.size - 1)]

    def alpha_pow(self, exponent: int) -> int:
        """alpha ** exponent for the primitive element alpha."""
        return self.exp[exponent % (self.size - 1)]

    # -- polynomial helpers (coefficient lists, lowest degree first) ------

    def poly_eval(self, coefficients: List[int], x: int) -> int:
        """Evaluate a polynomial at x (Horner's rule)."""
        result = 0
        for coefficient in reversed(coefficients):
            result = self.mul(result, x) ^ coefficient
        return result

    def poly_mul(self, a: List[int], b: List[int]) -> List[int]:
        """Multiply two polynomials over the field."""
        result = [0] * (len(a) + len(b) - 1)
        for i, ai in enumerate(a):
            if ai == 0:
                continue
            for j, bj in enumerate(b):
                result[i + j] ^= self.mul(ai, bj)
        return result

    def poly_mod(self, a: List[int], b: List[int]) -> List[int]:
        """Remainder of polynomial division a mod b."""
        b_deg = _degree(b)
        if b_deg < 0:
            raise ZeroDivisionError("polynomial modulo zero")
        remainder = list(a)
        lead_inv = self.inv(b[b_deg])
        for shift in range(_degree(remainder) - b_deg, -1, -1):
            coefficient = remainder[shift + b_deg]
            if coefficient == 0:
                continue
            factor = self.mul(coefficient, lead_inv)
            for i, bi in enumerate(b[: b_deg + 1]):
                remainder[shift + i] ^= self.mul(factor, bi)
        return remainder[:b_deg] if b_deg else [0]


def _degree(poly: List[int]) -> int:
    """Degree of a coefficient list (-1 for the zero polynomial)."""
    for i in range(len(poly) - 1, -1, -1):
        if poly[i]:
            return i
    return -1
