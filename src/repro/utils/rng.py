"""Deterministic, independent random-number streams.

Simulating a population of PUF devices requires many *independent* but
*reproducible* randomness sources: one for each die's process variation,
one for each noisy evaluation, one for each protocol nonce.  Deriving all
of them from a single root seed through a hash keeps experiments exactly
repeatable while guaranteeing streams do not collide.
"""

from __future__ import annotations

import hashlib

import numpy as np


def _context_hasher(root_seed: int, *context: object):
    """The canonical hash state of a ``(root_seed, context)`` path.

    Single source of truth for the derivation-tree encoding: both the
    scalar :func:`derive_seed` and the batched
    :func:`derive_standard_normals` fast path (which ``copy()``-branches
    this state per suffix) hash identically by construction.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode())
    for item in context:
        hasher.update(b"\x00")
        hasher.update(repr(item).encode())
    return hasher


def derive_seed(root_seed: int, *context: object) -> int:
    """Derive a 64-bit child seed from a root seed and a context path.

    The context is an arbitrary tuple of hashable-as-string labels, e.g.
    ``derive_seed(42, "device", 3, "noise")``.  Distinct contexts give
    independent seeds; identical contexts always give the same seed.
    """
    return int.from_bytes(
        _context_hasher(root_seed, *context).digest()[:8], "big"
    )


def derive_rng(root_seed: int, *context: object) -> np.random.Generator:
    """A ``numpy`` Generator seeded from :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(root_seed, *context))


# -- batched stream derivation ------------------------------------------
#
# Fleet-stacked compilation derives one short random draw per
# (die, component) — tens of thousands of independent streams per fleet.
# Spinning up a full ``default_rng`` per draw costs ~12us each, almost
# all of it in ``SeedSequence`` construction and generator allocation.
# The helpers below reproduce ``default_rng(seed)`` bit for bit while
# amortising that cost:
#
# * the SeedSequence entropy-mixing loops are evaluated as vectorized
#   uint32 numpy ops over the whole seed array;
# * the PCG64 state each seed would be initialised with is computed
#   directly (the documented setseq_128 seeding) and injected into one
#   reused bit generator via the public ``.state`` API.
#
# Equivalence with numpy is asserted at first use over random seeds; if
# a future numpy changed either algorithm (both are frozen by numpy's
# stream-compatibility policy), the helpers fall back to per-seed
# ``default_rng`` automatically.

_SS_INIT_A = 0x43b0d7e5
_SS_MULT_A = 0x931e8875
_SS_INIT_B = 0x8b51f9dd
_SS_MULT_B = 0x58f38ded
_SS_MIX_L = 0xca01f9dd
_SS_MIX_R = 0x4973f715
_SS_XSHIFT = 16
_U32 = 0xffffffff
_PCG_MULT = 0x2360ed051fc65da44385df649fccf645
_MASK128 = (1 << 128) - 1


def _ss_hash(value: "np.ndarray", hash_const: int) -> tuple:
    """One SeedSequence hashmix step over a vector of lanes."""
    value = value ^ np.uint32(hash_const)
    hash_const = (hash_const * _SS_MULT_A) & _U32
    value = value * np.uint32(hash_const)
    value = value ^ (value >> np.uint32(_SS_XSHIFT))
    return value, hash_const


def _ss_mix(x: "np.ndarray", y: "np.ndarray") -> "np.ndarray":
    result = np.uint32(_SS_MIX_L) * x - np.uint32(_SS_MIX_R) * y
    return result ^ (result >> np.uint32(_SS_XSHIFT))


def _seed_sequence_words(entropy_words) -> "np.ndarray":
    """Vectorized ``SeedSequence(seed).generate_state(4, uint64)``.

    ``entropy_words`` is a list of uint32 arrays (the lanes' assembled
    entropy, identical word count per lane — callers partition by word
    count).  Returns ``(lanes, 4)`` uint64.
    """
    lanes = entropy_words[0].shape[0]
    pool = []
    hash_const = _SS_INIT_A
    for i in range(4):
        source = (entropy_words[i] if i < len(entropy_words)
                  else np.zeros(lanes, dtype=np.uint32))
        hashed, hash_const = _ss_hash(source, hash_const)
        pool.append(hashed)
    for i_src in range(4):
        for i_dst in range(4):
            if i_src != i_dst:
                hashed, hash_const = _ss_hash(pool[i_src], hash_const)
                pool[i_dst] = _ss_mix(pool[i_dst], hashed)
    for i_src in range(4, len(entropy_words)):
        for i_dst in range(4):
            hashed, hash_const = _ss_hash(entropy_words[i_src], hash_const)
            pool[i_dst] = _ss_mix(pool[i_dst], hashed)
    hash_const = _SS_INIT_B
    out = np.empty((lanes, 8), dtype=np.uint32)
    for i_dst in range(8):
        data = pool[i_dst % 4] ^ np.uint32(hash_const)
        hash_const = (hash_const * _SS_MULT_B) & _U32
        data = data * np.uint32(hash_const)
        data = data ^ (data >> np.uint32(_SS_XSHIFT))
        out[:, i_dst] = data
    words = out.astype(np.uint64)
    return words[:, 0::2] | (words[:, 1::2] << np.uint64(32))


def _pcg64_states(seeds) -> list:
    """The PCG64 ``.state`` dict each seed would be initialised with."""
    seeds = [int(seed) for seed in seeds]
    lanes_lo = np.array([seed & _U32 for seed in seeds], dtype=np.uint32)
    lanes_hi = np.array([(seed >> 32) & _U32 for seed in seeds],
                        dtype=np.uint32)
    words = np.empty((len(seeds), 4), dtype=np.uint64)
    # SeedSequence assembles one uint32 word for seeds < 2**32 and two
    # words otherwise; partition lanes accordingly.
    wide = lanes_hi != 0
    if np.any(wide):
        words[wide] = _seed_sequence_words([lanes_lo[wide], lanes_hi[wide]])
    narrow = ~wide
    if np.any(narrow):
        words[narrow] = _seed_sequence_words([lanes_lo[narrow]])
    states = []
    for row in words:
        initstate = (int(row[0]) << 64) | int(row[1])
        initseq = (int(row[2]) << 64) | int(row[3])
        inc = ((initseq << 1) | 1) & _MASK128
        state = (inc + initstate) & _MASK128          # srandom step + add
        state = (state * _PCG_MULT + inc) & _MASK128  # srandom step
        states.append({
            "bit_generator": "PCG64",
            "state": {"state": state, "inc": inc},
            "has_uint32": 0,
            "uinteger": 0,
        })
    return states


_batched_normals_ok = None


def _batched_normals_self_check() -> bool:
    probe = [0, 1, 3, 2**31, 2**32 - 1, 2**32, 2**63 + 12345, 2**64 - 1,
             derive_seed(7, "self-check")]
    generator = np.random.Generator(np.random.PCG64(0))
    for seed, state in zip(probe, _pcg64_states(probe)):
        generator.bit_generator.state = state
        if generator.standard_normal() != np.random.default_rng(
                seed).standard_normal():
            return False
    return True


def derive_standard_normals(root_seed: int, prefix: tuple,
                            suffixes) -> "np.ndarray":
    """First standard-normal draw of many derived streams at once.

    Element ``i`` equals
    ``derive_rng(root_seed, *prefix, suffixes[i]).standard_normal()``
    exactly — same derived seed, same PCG64 stream, same ziggurat draw —
    with the per-stream setup amortised across the batch.  This is the
    variation-sampling fast path of the fleet-stacked compiler.
    """
    global _batched_normals_ok
    suffixes = list(suffixes)
    if _batched_normals_ok is None:
        _batched_normals_ok = _batched_normals_self_check()
    if not _batched_normals_ok:  # pragma: no cover - numpy changed
        return np.array([
            derive_rng(root_seed, *prefix, suffix).standard_normal()
            for suffix in suffixes
        ])
    hasher = _context_hasher(root_seed, *prefix)
    seeds = []
    for suffix in suffixes:
        branch = hasher.copy()
        branch.update(b"\x00")
        branch.update(repr(suffix).encode())
        seeds.append(int.from_bytes(branch.digest()[:8], "big"))
    generator = np.random.Generator(np.random.PCG64(0))
    out = np.empty(len(suffixes))
    for lane, state in enumerate(_pcg64_states(seeds)):
        generator.bit_generator.state = state
        out[lane] = generator.standard_normal()
    return out


def derived_generators(seeds):
    """Yield one ``Generator`` per seed, bit-exact with ``default_rng``.

    The per-die round path draws one noise matrix per device per round —
    thousands of short-lived generators whose ``SeedSequence``
    construction dominates the draw itself.  This amortises it the same
    way :func:`derive_standard_normals` does: the PCG64 states of all
    seeds are computed vectorized up front and injected one at a time
    into a single reused bit generator, so stream ``i`` is bit-for-bit
    ``np.random.default_rng(seeds[i])``.  The yielded generator object
    is *reused* — callers must finish drawing from it before advancing.
    Falls back to per-seed ``default_rng`` if the self-check ever fails.
    """
    global _batched_normals_ok
    seeds = [int(seed) for seed in seeds]
    if _batched_normals_ok is None:
        _batched_normals_ok = _batched_normals_self_check()
    if not _batched_normals_ok:  # pragma: no cover - numpy changed
        for seed in seeds:
            yield np.random.default_rng(seed)
        return
    if not seeds:
        return
    generator = np.random.Generator(np.random.PCG64(0))
    for state in _pcg64_states(seeds):
        generator.bit_generator.state = state
        yield generator


def derive_bytes(n_bytes: int, root_seed: int, *context: object) -> bytes:
    """Derive up to 32 context-bound bytes from the same hash tree.

    The cheap path for protocol nonces and similar short tokens: one
    SHA-256 over the identical ``(root_seed, context)`` encoding
    :func:`derive_seed` uses, without spinning up a full generator.
    Distinct contexts give independent bytes; identical contexts always
    give the same bytes.
    """
    if not 0 <= n_bytes <= 32:
        raise ValueError("derive_bytes serves at most one digest (32 bytes)")
    hasher = hashlib.sha256(b"bytes:")
    hasher.update(str(int(root_seed)).encode())
    for item in context:
        hasher.update(b"\x00")
        hasher.update(repr(item).encode())
    return hasher.digest()[:n_bytes]
