"""Deterministic, independent random-number streams.

Simulating a population of PUF devices requires many *independent* but
*reproducible* randomness sources: one for each die's process variation,
one for each noisy evaluation, one for each protocol nonce.  Deriving all
of them from a single root seed through a hash keeps experiments exactly
repeatable while guaranteeing streams do not collide.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(root_seed: int, *context: object) -> int:
    """Derive a 64-bit child seed from a root seed and a context path.

    The context is an arbitrary tuple of hashable-as-string labels, e.g.
    ``derive_seed(42, "device", 3, "noise")``.  Distinct contexts give
    independent seeds; identical contexts always give the same seed.
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(root_seed)).encode())
    for item in context:
        hasher.update(b"\x00")
        hasher.update(repr(item).encode())
    return int.from_bytes(hasher.digest()[:8], "big")


def derive_rng(root_seed: int, *context: object) -> np.random.Generator:
    """A ``numpy`` Generator seeded from :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(root_seed, *context))
