"""Shared utilities: bit manipulation, deterministic RNG streams, serialization."""

from repro.utils.bits import (
    bits_from_bytes,
    bits_from_int,
    bits_to_string,
    bytes_from_bits,
    flip_bits,
    fractional_hamming_distance,
    hamming_distance,
    hamming_weight,
    int_from_bits,
    majority_vote,
    random_bits,
)
from repro.utils.rng import derive_rng, derive_seed
from repro.utils.serialization import (
    decode_fields,
    encode_fields,
    from_hex,
    to_hex,
)

__all__ = [
    "bits_from_bytes",
    "bits_from_int",
    "bits_to_string",
    "bytes_from_bits",
    "flip_bits",
    "fractional_hamming_distance",
    "hamming_distance",
    "hamming_weight",
    "int_from_bits",
    "majority_vote",
    "random_bits",
    "derive_rng",
    "derive_seed",
    "encode_fields",
    "decode_fields",
    "to_hex",
    "from_hex",
]
