"""Canonical message serialization for the security protocols.

Protocol messages are sequences of byte-string fields.  We encode them with
a 4-byte big-endian length prefix per field so that encoding is injective:
no two distinct field sequences produce the same wire bytes, which matters
when the encoded message is MACed.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

_LENGTH = struct.Struct(">I")


def encode_fields(fields: Sequence[bytes]) -> bytes:
    """Length-prefix and concatenate a sequence of byte fields."""
    parts = []
    for field in fields:
        if not isinstance(field, (bytes, bytearray)):
            raise TypeError(f"fields must be bytes, got {type(field).__name__}")
        parts.append(_LENGTH.pack(len(field)))
        parts.append(bytes(field))
    return b"".join(parts)


def decode_fields(data: bytes) -> List[bytes]:
    """Inverse of :func:`encode_fields`; raises ``ValueError`` on malformed input."""
    fields = []
    offset = 0
    view = memoryview(data)
    while offset < len(view):
        if offset + _LENGTH.size > len(view):
            raise ValueError("truncated length prefix")
        (length,) = _LENGTH.unpack_from(view, offset)
        offset += _LENGTH.size
        if offset + length > len(view):
            raise ValueError("truncated field body")
        fields.append(bytes(view[offset:offset + length]))
        offset += length
    return fields


def to_hex(data: bytes) -> str:
    """Hex-encode bytes for logging."""
    return data.hex()


def from_hex(text: str) -> bytes:
    """Decode a hex string produced by :func:`to_hex`."""
    return bytes.fromhex(text)
