"""Canonical message serialization for the security protocols.

Protocol messages are sequences of byte-string fields.  We encode them with
a 4-byte big-endian length prefix per field so that encoding is injective:
no two distinct field sequences produce the same wire bytes, which matters
when the encoded message is MACed.

The module also provides the on-disk state format used by the fleet
registry (:meth:`repro.fleet.registry.FleetRegistry.save`): a single
``.npz`` archive holding the numpy arrays plus a JSON manifest for the
scalar/string state, written by :func:`save_state` and read back by
:func:`load_state`.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, List, Mapping, Sequence, Tuple

import numpy as np

_LENGTH = struct.Struct(">I")

#: Reserved array key carrying the JSON manifest inside a state archive.
MANIFEST_KEY = "manifest_json"

#: Reserved manifest key carrying the archive schema version.
SCHEMA_VERSION_KEY = "schema_version"

#: On-disk state schema version stamped into every manifest by
#: :func:`save_state`.  Bump the *major* when an archive written by the
#: new code can no longer be read by the old rules (``load_state``
#: rejects foreign majors outright); bump the *minor* for additive
#: changes.
#:
#: Minor 1: registry states may be *pointer* manifests — a
#: ``version: 2`` fleet-registry manifest whose ``storage`` entry
#: references an out-of-core shard directory instead of carrying the
#: fleet's arrays inline (see
#: :class:`repro.fleet.storage.sharded.ShardedFileBackend`).  The
#: archive layout itself is unchanged (the arrays dict is simply
#: empty), so the major stays 1; old readers reject the unknown
#: registry-manifest version cleanly.
STATE_SCHEMA_MAJOR = 1
STATE_SCHEMA_MINOR = 1


def encode_fields(fields: Sequence[bytes]) -> bytes:
    """Length-prefix and concatenate a sequence of byte fields."""
    parts = []
    for field in fields:
        if not isinstance(field, (bytes, bytearray)):
            raise TypeError(f"fields must be bytes, got {type(field).__name__}")
        parts.append(_LENGTH.pack(len(field)))
        parts.append(bytes(field))
    return b"".join(parts)


def decode_fields(data: bytes) -> List[bytes]:
    """Inverse of :func:`encode_fields`; raises ``ValueError`` on malformed input."""
    fields = []
    offset = 0
    view = memoryview(data)
    while offset < len(view):
        if offset + _LENGTH.size > len(view):
            raise ValueError("truncated length prefix")
        (length,) = _LENGTH.unpack_from(view, offset)
        offset += _LENGTH.size
        if offset + length > len(view):
            raise ValueError("truncated field body")
        fields.append(bytes(view[offset:offset + length]))
        offset += length
    return fields


def save_state(path: str, manifest: dict,
               arrays: Mapping[str, np.ndarray]) -> str:
    """Write a JSON manifest plus named numpy arrays as one ``.npz`` file.

    ``manifest`` must be JSON-serializable; array keys must be valid
    Python identifiers (``np.savez`` keyword constraint) and must not
    collide with :data:`MANIFEST_KEY`.  The manifest is stamped with
    the current archive schema version under the reserved
    :data:`SCHEMA_VERSION_KEY` (stripped again by :func:`load_state`).
    Returns the path actually written (``np.savez`` appends the
    ``.npz`` suffix when missing).
    """
    if MANIFEST_KEY in arrays:
        raise ValueError(f"array key {MANIFEST_KEY!r} is reserved")
    if SCHEMA_VERSION_KEY in manifest:
        raise ValueError(f"manifest key {SCHEMA_VERSION_KEY!r} is reserved")
    stamped = dict(manifest)
    stamped[SCHEMA_VERSION_KEY] = \
        f"{STATE_SCHEMA_MAJOR}.{STATE_SCHEMA_MINOR}"
    payload: Dict[str, np.ndarray] = {
        MANIFEST_KEY: np.frombuffer(
            json.dumps(stamped, sort_keys=True).encode(), dtype=np.uint8
        ),
    }
    for key, value in arrays.items():
        payload[key] = np.asarray(value)
    np.savez_compressed(path, **payload)
    path = str(path)
    return path if path.endswith(".npz") else path + ".npz"


def _check_schema_version(manifest: dict, path: str) -> None:
    """Strip and validate the archive's schema version stamp.

    Archives written before versioning carry no stamp and are accepted
    as legacy (their layout predates every incompatible change by
    construction).  A stamped archive from an unknown *major* is
    rejected outright — silently best-effort reads of a foreign layout
    corrupt registries — while newer minors within the known major are
    accepted (minor bumps are additive).
    """
    version = manifest.pop(SCHEMA_VERSION_KEY, None)
    if version is None:
        return
    try:
        major = int(str(version).split(".", 1)[0])
    except ValueError:
        raise ValueError(
            f"{path!r} carries unparsable schema version {version!r}"
        ) from None
    if major != STATE_SCHEMA_MAJOR:
        raise ValueError(
            f"{path!r} was written with state schema version {version}; "
            f"this build reads major version {STATE_SCHEMA_MAJOR} only — "
            "migrate the archive or upgrade the reader"
        )


def load_state(path: str) -> Tuple[dict, Dict[str, np.ndarray]]:
    """Inverse of :func:`save_state`: ``(manifest, arrays)``.

    Rejects archives stamped with an unknown schema *major* version
    (see :func:`_check_schema_version`); the version stamp itself is
    stripped from the returned manifest.
    """
    with np.load(path) as archive:
        try:
            manifest = json.loads(bytes(archive[MANIFEST_KEY]).decode())
        except KeyError:
            raise ValueError(
                f"{path!r} is not a state archive (no {MANIFEST_KEY!r} entry)"
            ) from None
        _check_schema_version(manifest, str(path))
        arrays = {key: archive[key] for key in archive.files
                  if key != MANIFEST_KEY}
    return manifest, arrays


def to_hex(data: bytes) -> str:
    """Hex-encode bytes for logging."""
    return data.hex()


def from_hex(text: str) -> bytes:
    """Decode a hex string produced by :func:`to_hex`."""
    return bytes.fromhex(text)
