"""Bit-array helpers.

Throughout the library, bit strings are represented as one-dimensional
``numpy`` arrays of dtype ``uint8`` holding values 0 or 1.  This module
provides the conversions and distance measures every other subpackage
builds on.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

BitArray = np.ndarray


def _as_bits(bits: Iterable[int]) -> BitArray:
    """Coerce an iterable of 0/1 values into a canonical bit array."""
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size and arr.max(initial=0) > 1:
        raise ValueError("bit arrays may only contain 0 and 1")
    return arr


def bits_from_int(value: int, width: int) -> BitArray:
    """Convert a non-negative integer to its ``width``-bit big-endian form.

    >>> bits_from_int(5, 4).tolist()
    [0, 1, 0, 1]
    """
    if value < 0:
        raise ValueError("value must be non-negative")
    if width < 0:
        raise ValueError("width must be non-negative")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8)


def int_from_bits(bits: Iterable[int]) -> int:
    """Interpret a big-endian bit array as a non-negative integer."""
    result = 0
    for bit in _as_bits(bits):
        result = (result << 1) | int(bit)
    return result


def bits_from_bytes(data: bytes) -> BitArray:
    """Expand a byte string into its bits, most-significant bit first."""
    if not data:
        return np.zeros(0, dtype=np.uint8)
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8))


def bytes_from_bits(bits: Iterable[int]) -> bytes:
    """Pack a bit array (length multiple of 8) into bytes."""
    arr = _as_bits(bits)
    if arr.size % 8:
        raise ValueError("bit length must be a multiple of 8 to pack into bytes")
    return np.packbits(arr).tobytes()


def bits_to_string(bits: Iterable[int]) -> str:
    """Render a bit array as a compact '0101...' string."""
    return "".join(str(int(b)) for b in _as_bits(bits))


def hamming_weight(bits: Iterable[int]) -> int:
    """Number of set bits."""
    return int(_as_bits(bits).sum())


def hamming_distance(a: Iterable[int], b: Iterable[int]) -> int:
    """Number of positions where the two equal-length bit arrays differ."""
    arr_a, arr_b = _as_bits(a), _as_bits(b)
    if arr_a.shape != arr_b.shape:
        raise ValueError("bit arrays must have equal length")
    return int(np.count_nonzero(arr_a != arr_b))


def fractional_hamming_distance(a: Iterable[int], b: Iterable[int]) -> float:
    """Hamming distance normalised by the bit length (0.0 .. 1.0)."""
    arr_a = _as_bits(a)
    if arr_a.size == 0:
        raise ValueError("cannot compute fractional distance of empty arrays")
    return hamming_distance(arr_a, b) / arr_a.size


def random_bits(rng: np.random.Generator, n: int) -> BitArray:
    """Draw ``n`` i.i.d. uniform bits from ``rng``."""
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def flip_bits(bits: Iterable[int], positions: Iterable[int]) -> BitArray:
    """Return a copy of ``bits`` with the given positions inverted."""
    arr = _as_bits(bits).copy()
    for pos in positions:
        arr[pos] ^= 1
    return arr


def majority_vote(samples: Iterable[Iterable[int]]) -> BitArray:
    """Bitwise majority over an odd number of equal-length bit arrays.

    Ties (possible with an even number of samples) resolve to 1 when the
    column sum is exactly half — callers wanting unbiased behaviour should
    pass an odd number of samples.
    """
    matrix = np.vstack([_as_bits(s) for s in samples])
    return (matrix.sum(axis=0) * 2 >= matrix.shape[0]).astype(np.uint8)


def xor_bits(a: Iterable[int], b: Iterable[int]) -> BitArray:
    """Element-wise XOR of two equal-length bit arrays."""
    arr_a, arr_b = _as_bits(a), _as_bits(b)
    if arr_a.shape != arr_b.shape:
        raise ValueError("bit arrays must have equal length")
    return np.bitwise_xor(arr_a, arr_b)
