"""Core PUF abstractions.

Terminology follows the paper (Sec. II):

* A **weak PUF** has a small, enumerable challenge space (typically cell
  addresses) and is used for key generation after post-processing.
* A **strong PUF** has an exponential challenge space and is used for
  authentication / attestation protocols that consume many CRPs.

Every PUF in the library is deterministic given (device seed, challenge,
environment, measurement index): the measurement index selects the noise
realisation, so repeated measurements model re-evaluating the physical
device, while identical indices reproduce a measurement exactly — which
keeps every experiment in the repository replayable.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.utils.bits import BitArray, bits_from_int, int_from_bits

NOMINAL_TEMPERATURE_C = 25.0
NOMINAL_SUPPLY_V = 1.2


@dataclass(frozen=True)
class PUFEnvironment:
    """Operating conditions during one PUF evaluation.

    Attributes
    ----------
    temperature_c:
        Junction / die temperature.
    supply_v:
        Core supply voltage (electronic PUFs).
    age_hours:
        Cumulative operating age; drives slow parameter drift (aging).
    noise_scale:
        Multiplier on all evaluation noise (1.0 = nominal conditions).
    """

    temperature_c: float = NOMINAL_TEMPERATURE_C
    supply_v: float = NOMINAL_SUPPLY_V
    age_hours: float = 0.0
    noise_scale: float = 1.0

    def with_temperature(self, temperature_c: float) -> "PUFEnvironment":
        return replace(self, temperature_c=temperature_c)

    def with_noise_scale(self, noise_scale: float) -> "PUFEnvironment":
        return replace(self, noise_scale=noise_scale)

    def with_age(self, age_hours: float) -> "PUFEnvironment":
        return replace(self, age_hours=age_hours)


NOMINAL_ENV = PUFEnvironment()


@dataclass(frozen=True)
class CRP:
    """A challenge-response pair."""

    challenge: BitArray
    response: BitArray

    def __post_init__(self) -> None:
        object.__setattr__(self, "challenge", np.asarray(self.challenge, dtype=np.uint8))
        object.__setattr__(self, "response", np.asarray(self.response, dtype=np.uint8))


class PUF(abc.ABC):
    """Abstract physical unclonable function.

    Subclasses must set :attr:`challenge_bits` and :attr:`response_bits`
    and implement :meth:`_evaluate`.
    """

    challenge_bits: int
    response_bits: int

    def __init__(self) -> None:
        self._measurement_counter = 0

    @abc.abstractmethod
    def _evaluate(
        self, challenge: BitArray, env: PUFEnvironment, measurement: int
    ) -> BitArray:
        """Produce the response bits for one challenge under one noise draw."""

    def evaluate(
        self,
        challenge: Sequence[int],
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> BitArray:
        """Evaluate the PUF on a challenge.

        ``measurement`` selects the noise realisation; when omitted, an
        internal counter supplies a fresh realisation per call, which is
        what a caller re-measuring real hardware would observe.
        """
        challenge = np.asarray(challenge, dtype=np.uint8)
        if challenge.size != self.challenge_bits:
            raise ValueError(
                f"challenge must have {self.challenge_bits} bits, got {challenge.size}"
            )
        if measurement is None:
            measurement = self._measurement_counter
            self._measurement_counter += 1
        response = self._evaluate(challenge, env, measurement)
        if response.size != self.response_bits:
            raise AssertionError(
                f"internal error: response has {response.size} bits, "
                f"expected {self.response_bits}"
            )
        return response

    def evaluate_batch(
        self,
        challenges: np.ndarray,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> np.ndarray:
        """(batch, response_bits) responses for a matrix of challenges.

        Baseline implementation: one :meth:`_evaluate` per row under a
        single noise realisation (``measurement`` pins it; ``None``
        draws one fresh realisation for the whole batch, advancing the
        counter once — batch harvesting is one logical measurement).
        Engine-backed PUFs (the photonic strong PUF) override this with
        a vectorized pass; callers can rely on the method existing on
        *every* PUF, so dataset harvesting never falls back to
        per-challenge ``evaluate`` loops.
        """
        challenges = np.atleast_2d(np.asarray(challenges, dtype=np.uint8))
        if challenges.shape[1] != self.challenge_bits:
            raise ValueError(
                f"challenges must have {self.challenge_bits} bits, "
                f"got {challenges.shape[1]}"
            )
        if measurement is None:
            measurement = self._measurement_counter
            self._measurement_counter += 1
        return np.vstack([
            np.asarray(self._evaluate(challenge, env, measurement),
                       dtype=np.uint8)
            for challenge in challenges
        ])

    def crp(
        self,
        challenge: Sequence[int],
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> CRP:
        """Convenience: evaluate and wrap into a :class:`CRP`."""
        challenge = np.asarray(challenge, dtype=np.uint8)
        return CRP(challenge, self.evaluate(challenge, env, measurement))

    def random_challenge(self, rng: np.random.Generator) -> BitArray:
        """Draw a uniform challenge."""
        return rng.integers(0, 2, size=self.challenge_bits, dtype=np.uint8)


class WeakPUF(PUF):
    """PUF with an enumerable challenge space (addresses).

    Challenges are binary-encoded addresses; :meth:`read_all` returns the
    device's full fingerprint bitmap, which is what key-generation flows
    consume.
    """

    @property
    @abc.abstractmethod
    def n_addresses(self) -> int:
        """Number of enumerable challenges."""

    def address_challenge(self, address: int) -> BitArray:
        """Encode an address as a challenge bit vector."""
        if not 0 <= address < self.n_addresses:
            raise ValueError(f"address {address} out of range [0, {self.n_addresses})")
        return bits_from_int(address, self.challenge_bits)

    def address_from_challenge(self, challenge: Sequence[int]) -> int:
        address = int_from_bits(challenge)
        if address >= self.n_addresses:
            raise ValueError(f"challenge encodes invalid address {address}")
        return address

    def read_all(
        self,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> BitArray:
        """Concatenated responses over every address (the fingerprint)."""
        words = [
            self.evaluate(self.address_challenge(addr), env, measurement)
            for addr in range(self.n_addresses)
        ]
        return np.concatenate(words)


class StrongPUF(PUF):
    """PUF with an exponential challenge space."""

    def challenge_space_size(self) -> int:
        return 1 << self.challenge_bits


class AnalogMarginPUF(PUF):
    """Mixin interface for PUFs exposing an analog decision margin.

    The margin is the signed analog quantity whose sign is the response
    bit (RO counter difference, photocurrent difference...).  The
    threshold-filtering technique of [13] (paper Sec. II-B) operates on
    this value.
    """

    @abc.abstractmethod
    def margin(
        self,
        challenge: Sequence[int],
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> float:
        """Signed analog margin; the response bit is ``margin > 0``."""


class PUFFamily:
    """A population of identically designed devices (one per die).

    ``factory(die_index)`` must return a PUF instance for that die.
    Families are how uniqueness/bit-aliasing statistics are measured.
    """

    def __init__(self, factory, n_devices: int):
        if n_devices < 1:
            raise ValueError("a family needs at least one device")
        self._factory = factory
        self.n_devices = n_devices
        self._instances: Optional[List[PUF]] = None
        self._plane = None
        self._plane_built = False

    def device(self, index: int) -> PUF:
        if not 0 <= index < self.n_devices:
            raise ValueError(f"device index {index} out of range [0, {self.n_devices})")
        return self._factory(index)

    def devices(self) -> Iterator[PUF]:
        for index in range(self.n_devices):
            yield self.device(index)

    def instances(self) -> List[PUF]:
        """Every die of the family, instantiated once and cached.

        Unlike :meth:`devices` (a fresh instance per iteration), the
        cached list preserves per-device state such as measurement
        counters — which is what fleet provisioning and the stacked
        execution plane operate on.
        """
        if self._instances is None:
            self._instances = [self.device(i) for i in range(self.n_devices)]
        return self._instances

    def stack(self, backend: str = "numpy"):
        """The family's stacked execution plane, or ``None``.

        Devices advertising a ``try_stack`` classmethod (the photonic
        strong PUF returns a
        :class:`~repro.puf.photonic_strong.PhotonicFleet`) are stacked
        into fleet-wide tensors compiled in one pass; families without a
        stacked plane return ``None`` and callers use the per-die path.

        ``backend`` names the compute backend the stacked plane should
        run on (:mod:`repro.photonics.backend`); a memoized plane built
        for a different backend is rebuilt.
        """
        rebuild = (self._plane is not None
                   and getattr(self._plane, "backend", "numpy") != backend)
        if not self._plane_built or rebuild:
            devices = self.instances()
            stacker = getattr(type(devices[0]), "try_stack", None)
            # Memoized: the plane carries the compiled-fleet cache, so
            # repeated stacked calls reuse one compilation.
            if stacker is None:
                self._plane = None
            else:
                try:
                    self._plane = stacker(devices, backend=backend)
                except TypeError:
                    # Stackers predating the backend knob.
                    self._plane = stacker(devices)
            self._plane_built = True
        return self._plane

    def response_matrix(
        self,
        challenges: Sequence[Sequence[int]],
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = 0,
        batched: bool = True,
        stacked: bool = True,
    ) -> np.ndarray:
        """(n_devices, n_challenges * response_bits) response matrix.

        With ``stacked`` (default), families whose devices stack into a
        fleet plane answer every (die, challenge) pair in one fleet-wide
        tensor pass.  Devices exposing ``evaluate_batch`` (the photonic
        strong PUF routes it through the compiled engine) otherwise answer
        all challenges in one vectorized pass per die; others fall back to
        per-challenge evaluation.  Pass ``batched=False`` to force the
        legacy path, whose noise realisation is shared across challenges
        of one device.
        """
        challenge_matrix = np.vstack([
            np.asarray(c, dtype=np.uint8) for c in challenges
        ])
        if batched and stacked:
            plane = self.stack()
            if plane is not None:
                tiled = np.broadcast_to(
                    challenge_matrix,
                    (self.n_devices, *challenge_matrix.shape),
                )
                responses = plane.evaluate(tiled, env, measurements=measurement)
                return np.asarray(responses, dtype=np.uint8).reshape(
                    self.n_devices, -1
                )
        rows: List[np.ndarray] = []
        for device in self.devices():
            if batched and hasattr(device, "evaluate_batch"):
                responses = device.evaluate_batch(challenge_matrix, env, measurement)
                rows.append(np.asarray(responses, dtype=np.uint8).reshape(-1))
            else:
                rows.append(np.concatenate([
                    device.evaluate(c, env, measurement) for c in challenge_matrix
                ]))
        return np.vstack(rows)
