"""Photonic weak PUF: symmetric microring-resonator array.

Models the architecture of Jimenez et al. [12] (paper Sec. II-A): an array
of nominally identical add-drop microrings is probed at fixed wavelengths;
fabrication variation detunes each ring's resonance by a fraction of its
linewidth, so the drop-port photocurrents of a *symmetric pair* of rings
differ by a device-unique signed amount.  The sign is the response bit and
the photocurrent difference is the analog margin used by the
photocurrent-threshold filter the paper proposes (Sec. II-B).

The differential readout also gives first-order common-mode rejection of
temperature drift: both rings of a pair shift together with temperature,
and only the (device-unique) differential detuning decides the bit.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.photonics.components import MicroringAddDrop
from repro.photonics.constants import DEFAULT_N_EFF
from repro.photonics.receiver import ReceiverChain
from repro.photonics.variation import OpticalEnvironment, VariationModel
from repro.puf.base import (
    NOMINAL_ENV,
    AnalogMarginPUF,
    PUFEnvironment,
    PUFFamily,
    WeakPUF,
)
from repro.utils.bits import BitArray
from repro.utils.rng import derive_rng


def _optical_environment(env: PUFEnvironment) -> OpticalEnvironment:
    """Translate the generic PUF environment into the photonic one."""
    return OpticalEnvironment(
        temperature_c=env.temperature_c,
        detection_noise_scale=env.noise_scale,
    )


class PhotonicWeakPUF(WeakPUF, AnalogMarginPUF):
    """Microring-array weak PUF with differential pair readout.

    Parameters
    ----------
    n_rings:
        Number of rings; pairs are (0,1), (2,3), ... so ``n_rings/2``
        response bits per probe wavelength.
    n_wavelengths:
        Number of probe wavelengths spread across one resonance linewidth;
        each (pair, wavelength) combination is one addressable challenge.
    variation_model:
        Fabrication spread; the default is calibrated so the differential
        detuning is a fraction of the ring linewidth (maximum entropy
        without saturating).
    laser_power_mw:
        Probe power; raising it improves the SNR of every margin.
    """

    def __init__(
        self,
        n_rings: int = 32,
        n_wavelengths: int = 4,
        seed: int = 0,
        die_index: int = 0,
        variation_model: Optional[VariationModel] = None,
        laser_power_mw: float = 1.0,
        ring_radius: float = 10e-6,
        kappa: float = 0.1,
        receiver: Optional[ReceiverChain] = None,
        thermal_tracking: bool = True,
        tracking_slope_mismatch: float = 0.01,
        sigma_systematic_neff: float = 1e-4,
    ):
        super().__init__()
        if n_rings < 2 or n_rings % 2:
            raise ValueError("n_rings must be an even number >= 2")
        if n_wavelengths < 1:
            raise ValueError("need at least one probe wavelength")
        self.n_rings = n_rings
        self.n_wavelengths = n_wavelengths
        self.seed = seed
        self.die_index = die_index
        self.laser_power_mw = laser_power_mw
        self.receiver = receiver or ReceiverChain()
        self.variation_model = variation_model or VariationModel(
            # Local linewidth-scale detuning dominates the fingerprint.
            sigma_neff_global=1e-4, sigma_neff_local=3e-4
        )
        # Thermal tracking: the probe laser is locked to an on-chip
        # reference ring (the "photonic sensor for temperature
        # measurement" of Sec. II-B), cancelling the common-mode
        # resonance drift.  What remains is the per-ring thermo-optic
        # *slope* mismatch, a small fraction of the nominal dn/dT.
        self.thermal_tracking = thermal_tracking
        self.tracking_slope_mismatch = tracking_slope_mismatch
        self._die = self.variation_model.sample_die(seed, die_index)
        slope_rng = derive_rng(seed, "pwpuf", die_index, "toslope")
        self._slope_mismatch = slope_rng.normal(
            0.0, tracking_slope_mismatch, size=n_rings
        )
        # Layout-induced systematic detuning: identical on every die (no
        # die_index in the derivation context).  Rings with a large
        # systematic offset give the same bit on most devices — the
        # aliasing the photocurrent-threshold filter must avoid
        # (Sec. II-B, photonic analogue of Fig. 3).
        design_rng = derive_rng(seed, "pwpuf", "systematic")
        systematic = design_rng.normal(0.0, sigma_systematic_neff, size=n_rings)
        self._rings = [
            MicroringAddDrop(
                radius=ring_radius,
                kappa_in=kappa,
                kappa_drop=kappa,
                label=f"pwpuf.ring{i}",
                neff0=DEFAULT_N_EFF + float(systematic[i]),
                variation=self._die,
            )
            for i in range(n_rings)
        ]
        self._pairs: List[Tuple[int, int]] = [
            (2 * i, 2 * i + 1) for i in range(n_rings // 2)
        ]
        # Probe wavelengths: the *design* resonance comb, offset by
        # fractions of a linewidth so different probes sample different
        # parts of the resonance flank.
        nominal = MicroringAddDrop(radius=ring_radius, kappa_in=kappa, kappa_drop=kappa)
        resonance = nominal.resonance_wavelengths()[0]
        linewidth = self._nominal_linewidth(nominal)
        offsets = np.linspace(-0.5, 0.5, n_wavelengths) * linewidth
        self._probe_wavelengths = [resonance + float(o) for o in offsets]
        n_challenges = len(self._pairs) * n_wavelengths
        self.challenge_bits = max(1, math.ceil(math.log2(n_challenges)))
        self.response_bits = 1

    @staticmethod
    def _nominal_linewidth(ring: MicroringAddDrop) -> float:
        """FWHM of the nominal ring resonance."""
        k1, k2 = ring.kappa_in, ring.kappa_drop
        r = math.sqrt((1 - k1) * (1 - k2)) * ring.single_pass_amplitude()
        finesse = math.pi * math.sqrt(r) / (1.0 - r)
        return ring.free_spectral_range() / finesse

    @property
    def n_addresses(self) -> int:
        return len(self._pairs) * self.n_wavelengths

    @property
    def probe_wavelengths(self) -> List[float]:
        return list(self._probe_wavelengths)

    def _decode_address(self, address: int) -> Tuple[Tuple[int, int], float]:
        pair = self._pairs[address % len(self._pairs)]
        wavelength = self._probe_wavelengths[address // len(self._pairs)]
        return pair, wavelength

    def photocurrent_difference(
        self,
        address: int,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> float:
        """Differential drop-port voltage of the addressed pair (volts).

        This is the analog margin: the response bit is its sign, and the
        photocurrent-threshold filter (paper Sec. II-B) selects challenges
        by its magnitude.
        """
        if not 0 <= address < self.n_addresses:
            raise ValueError(f"address {address} out of range")
        if measurement is None:
            measurement = self._measurement_counter
            self._measurement_counter += 1
        (ring_a, ring_b), wavelength = self._decode_address(address)
        if self.thermal_tracking:
            # The tracked probe cancels the common dn/dT shift; each ring
            # keeps only its slope-mismatch residual, modelled as an
            # equivalent probe detuning.
            delta_t = env.temperature_c - 25.0
            from repro.photonics.constants import DEFAULT_N_GROUP, SILICON_DN_DT

            base = OpticalEnvironment(
                temperature_c=25.0, detection_noise_scale=env.noise_scale
            )
            detune = (wavelength * SILICON_DN_DT * delta_t / DEFAULT_N_GROUP)
            power_a = self._rings[ring_a].drop_power(
                wavelength + detune * self._slope_mismatch[ring_a], base)
            power_b = self._rings[ring_b].drop_power(
                wavelength + detune * self._slope_mismatch[ring_b], base)
        else:
            optical = _optical_environment(env)
            power_a = self._rings[ring_a].drop_power(wavelength, optical)
            power_b = self._rings[ring_b].drop_power(wavelength, optical)
        field_a = math.sqrt(self.laser_power_mw * power_a)
        field_b = math.sqrt(self.laser_power_mw * power_b)
        rng = derive_rng(self.seed, "pwpuf", self.die_index, "noise",
                         measurement, address)
        fields = np.array([field_a, field_b], dtype=np.complex128)
        voltages = self.receiver.analog_voltage(fields, rng, env.noise_scale)
        return float(voltages[0] - voltages[1])

    def margin(
        self,
        challenge: Sequence[int],
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> float:
        address = self.address_from_challenge(np.asarray(challenge, dtype=np.uint8))
        return self.photocurrent_difference(address, env, measurement)

    def _evaluate(
        self, challenge: BitArray, env: PUFEnvironment, measurement: int
    ) -> BitArray:
        address = self.address_from_challenge(challenge)
        diff = self.photocurrent_difference(address, env, measurement)
        return np.array([1 if diff > 0 else 0], dtype=np.uint8)

    def all_margins(
        self,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> np.ndarray:
        """Margin of every address (one measurement sweep)."""
        if measurement is None:
            measurement = self._measurement_counter
            self._measurement_counter += 1
        return np.array([
            self.photocurrent_difference(a, env, measurement)
            for a in range(self.n_addresses)
        ])

    def read_all(
        self,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> BitArray:
        return (self.all_margins(env, measurement) > 0).astype(np.uint8)


def photonic_weak_family(
    n_devices: int,
    seed: int = 0,
    **kwargs,
) -> PUFFamily:
    """A family of :class:`PhotonicWeakPUF` devices sharing one design."""
    return PUFFamily(
        lambda die: PhotonicWeakPUF(seed=seed, die_index=die, **kwargs),
        n_devices,
    )
