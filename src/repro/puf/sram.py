"""SRAM PUF model.

Each 6T SRAM cell has a frozen threshold-voltage mismatch between its two
cross-coupled inverters; at power-up the cell settles to the side favoured
by the mismatch, perturbed by thermal noise.  The paper uses an ASIC SRAM
PUF to bind the driving ASIC to the photonic die (Fig. 1) and cites the
remanence-decay side channel as an SRAM-specific weakness (Sec. IV [27]),
both of which this model supports.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.puf.base import NOMINAL_ENV, NOMINAL_SUPPLY_V, PUFEnvironment, WeakPUF
from repro.utils.bits import BitArray
from repro.utils.rng import derive_rng


class SRAMPUF(WeakPUF):
    """Power-up SRAM PUF over ``n_cells`` cells.

    Parameters
    ----------
    n_cells:
        Number of cells; must be a power of two so addresses pack densely.
    seed, die_index:
        Select the fabricated device (frozen mismatch pattern).
    sigma_mismatch_mv:
        Std. dev. of the inverter threshold mismatch.
    sigma_noise_mv:
        Std. dev. of power-up noise at nominal conditions.
    temp_noise_mv_per_k:
        Extra noise per kelvin away from nominal (thermal agitation).
    aging_mv_per_decade:
        NBTI-style drift magnitude per decade of operating hours.
    """

    def __init__(
        self,
        n_cells: int = 1024,
        seed: int = 0,
        die_index: int = 0,
        sigma_mismatch_mv: float = 30.0,
        sigma_noise_mv: float = 3.0,
        temp_noise_mv_per_k: float = 0.06,
        aging_mv_per_decade: float = 2.0,
    ):
        super().__init__()
        if n_cells < 2 or n_cells & (n_cells - 1):
            raise ValueError("n_cells must be a power of two >= 2")
        self.n_cells = n_cells
        self.seed = seed
        self.die_index = die_index
        self.challenge_bits = int(math.log2(n_cells))
        self.response_bits = 1
        self.sigma_noise_mv = sigma_noise_mv
        self.temp_noise_mv_per_k = temp_noise_mv_per_k
        self.aging_mv_per_decade = aging_mv_per_decade
        rng = derive_rng(seed, "sram", die_index, "mismatch")
        self._mismatch_mv = rng.normal(0.0, sigma_mismatch_mv, size=n_cells)
        # Aging drift direction is frozen per cell (stress is data dependent
        # in reality; a frozen random direction captures the reliability
        # impact without simulating workloads).
        age_rng = derive_rng(seed, "sram", die_index, "aging")
        self._aging_direction = age_rng.choice([-1.0, 1.0], size=n_cells)

    @property
    def n_addresses(self) -> int:
        return self.n_cells

    def _effective_mismatch(self, env: PUFEnvironment) -> np.ndarray:
        """Mismatch including aging drift (mV)."""
        drift = 0.0
        if env.age_hours > 0:
            drift = self.aging_mv_per_decade * math.log10(1.0 + env.age_hours)
        supply_derate = 1.0 + 0.05 * (env.supply_v - NOMINAL_SUPPLY_V)
        return (self._mismatch_mv + drift * self._aging_direction) * supply_derate

    def _noise_sigma(self, env: PUFEnvironment) -> float:
        thermal = self.temp_noise_mv_per_k * abs(env.temperature_c - 25.0)
        return (self.sigma_noise_mv + thermal) * env.noise_scale

    def power_up(
        self, env: PUFEnvironment = NOMINAL_ENV, measurement: Optional[int] = None
    ) -> BitArray:
        """Power-up value of every cell (one noise draw for the array)."""
        if measurement is None:
            measurement = self._measurement_counter
            self._measurement_counter += 1
        rng = derive_rng(self.seed, "sram", self.die_index, "noise", measurement)
        noise = rng.normal(0.0, 1.0, size=self.n_cells) * self._noise_sigma(env)
        return (self._effective_mismatch(env) + noise > 0).astype(np.uint8)

    def _evaluate(
        self, challenge: BitArray, env: PUFEnvironment, measurement: int
    ) -> BitArray:
        address = self.address_from_challenge(challenge)
        rng = derive_rng(self.seed, "sram", self.die_index, "noise", measurement)
        noise = rng.normal(0.0, 1.0, size=self.n_cells) * self._noise_sigma(env)
        value = self._effective_mismatch(env)[address] + noise[address] > 0
        return np.array([1 if value else 0], dtype=np.uint8)

    def read_all(
        self,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> BitArray:
        # One power-up event reads every cell at once; this override avoids
        # n_cells separate noise draws (and is ~1000x faster).
        return self.power_up(env, measurement)

    def remanence_read(
        self,
        previous: BitArray,
        power_off_seconds: float,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
        retention_half_life_s: float = 0.15,
    ) -> BitArray:
        """Power-up value after a *short* power-off period.

        Cells that have not yet decayed keep their previous content instead
        of settling by mismatch — the remanence-decay side channel of [27].
        ``retention_half_life_s`` controls how quickly stored data fades;
        after many half-lives this converges to :meth:`power_up`.
        """
        previous = np.asarray(previous, dtype=np.uint8)
        if previous.size != self.n_cells:
            raise ValueError("previous content must cover every cell")
        if measurement is None:
            measurement = self._measurement_counter
            self._measurement_counter += 1
        fresh = self.power_up(env, measurement)
        decay_rng = derive_rng(self.seed, "sram", self.die_index, "remanence", measurement)
        decay_probability = 1.0 - 0.5 ** (power_off_seconds / retention_half_life_s)
        decayed = decay_rng.random(self.n_cells) < decay_probability
        return np.where(decayed, fresh, previous).astype(np.uint8)
