"""Photonic true random number generator (TRNG).

The same receive chain that digitises PUF responses (Fig. 2: PD -> TIA ->
ADC) doubles as an entropy source: the photocurrent's shot noise is
fundamentally random, so the least-significant ADC bits of a constant
optical level form a raw entropy stream.  Conditioned through the
HMAC-DRBG, this supplies the nonces and session randomness the paper's
services consume — the "related services" of the title beyond PUF key
material.

Architecture (standard NIST SP 800-90B decomposition):

* **noise source** — shot-noise-limited photodetection of a CW level;
* **health tests** — repetition-count and adaptive-proportion tests run
  continuously on the raw bits;
* **conditioner** — HMAC-DRBG keyed by raw blocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.crypto.drbg import HmacDrbg
from repro.photonics.receiver import ReceiverChain
from repro.photonics.sources import Laser
from repro.utils.bits import BitArray, bytes_from_bits
from repro.utils.rng import derive_rng


class EntropyFailure(Exception):
    """A continuous health test tripped: the source must be disabled."""


@dataclass
class HealthTestState:
    """SP 800-90B continuous health tests over a binary raw stream.

    * Repetition count test: fail when one value repeats ``rct_cutoff``
      times in a row (a stuck source).
    * Adaptive proportion test: fail when one value occupies more than
      ``apt_cutoff`` of a ``window`` -bit window (a heavily biased source).

    Cutoffs follow the SP 800-90B formulas for a claimed min-entropy of
    ~0.5 bits/bit at a 2^-20 false-positive rate.
    """

    rct_cutoff: int = 41
    window: int = 512
    apt_cutoff: int = 410
    _last: Optional[int] = None
    _run: int = 0
    _window_count: int = 0
    _window_ones: int = 0
    failures: int = 0

    def update(self, bits: BitArray) -> None:
        """Feed raw bits; raises :class:`EntropyFailure` on a trip."""
        for bit in np.asarray(bits, dtype=np.uint8):
            value = int(bit)
            # Repetition count.
            if value == self._last:
                self._run += 1
                if self._run >= self.rct_cutoff:
                    self.failures += 1
                    raise EntropyFailure(
                        f"repetition count {self._run} >= {self.rct_cutoff}"
                    )
            else:
                self._last = value
                self._run = 1
            # Adaptive proportion.
            self._window_ones += value
            self._window_count += 1
            if self._window_count == self.window:
                majority = max(self._window_ones,
                               self.window - self._window_ones)
                if majority > self.apt_cutoff:
                    self.failures += 1
                    self._window_count = 0
                    self._window_ones = 0
                    raise EntropyFailure(
                        f"adaptive proportion {majority} > {self.apt_cutoff}"
                    )
                self._window_count = 0
                self._window_ones = 0


class PhotonicTRNG:
    """Shot-noise TRNG on the PUF receive chain.

    Parameters
    ----------
    seed, stream_id:
        Identify the physical noise realisation (deterministic per pair,
        independent across pairs — the usual reproducibility contract).
    raw_block_bits:
        Raw bits gathered per conditioning call.
    """

    def __init__(
        self,
        seed: int = 0,
        stream_id: int = 0,
        laser: Optional[Laser] = None,
        receiver: Optional[ReceiverChain] = None,
        raw_block_bits: int = 1024,
        health: Optional[HealthTestState] = None,
    ):
        self.laser = laser or Laser(power_mw=0.5)
        self.receiver = receiver or ReceiverChain()
        self.raw_block_bits = raw_block_bits
        self.health = health or HealthTestState()
        self.seed = seed
        self.stream_id = stream_id
        self._draws = 0
        self._conditioner: Optional[HmacDrbg] = None

    def raw_bits(self, n_bits: int) -> BitArray:
        """Raw entropy bits: LSBs of the digitised shot noise."""
        rng = derive_rng(self.seed, "trng", self.stream_id, self._draws)
        self._draws += 1
        field = np.full(n_bits, self.laser.field_amplitude(),
                        dtype=np.complex128)
        codes = self.receiver.digitize(field, rng)
        return (codes & 1).astype(np.uint8)

    def _reseed_conditioner(self) -> None:
        raw = self.raw_bits(self.raw_block_bits)
        self.health.update(raw)
        block = bytes_from_bits(raw[: (raw.size // 8) * 8])
        if self._conditioner is None:
            self._conditioner = HmacDrbg(block, personalization=b"photonic-trng")
        else:
            self._conditioner.reseed(block)

    def random_bytes(self, n_bytes: int) -> bytes:
        """Conditioned output bytes (reseeds from raw noise per call)."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        self._reseed_conditioner()
        assert self._conditioner is not None
        return self._conditioner.generate(n_bytes)

    def random_bits(self, n_bits: int) -> BitArray:
        """Conditioned output bits."""
        data = self.random_bytes((n_bits + 7) // 8)
        from repro.utils.bits import bits_from_bytes

        return bits_from_bytes(data)[:n_bits]


class StuckSource(PhotonicTRNG):
    """Failure-injection variant: the photodiode output is stuck.

    Used by the tests to prove the health battery actually catches a
    broken source instead of silently emitting conditioned zeros.
    """

    def raw_bits(self, n_bits: int) -> BitArray:
        return np.zeros(n_bits, dtype=np.uint8)


class BiasedSource(PhotonicTRNG):
    """Failure-injection variant: heavily biased raw bits."""

    def __init__(self, bias: float = 0.95, **kwargs):
        super().__init__(**kwargs)
        self.bias = bias

    def raw_bits(self, n_bits: int) -> BitArray:
        rng = derive_rng(self.seed, "biased-trng", self._draws)
        self._draws += 1
        return (rng.random(n_bits) < self.bias).astype(np.uint8)
