"""Ring-oscillator (RO) PUF model.

A challenge selects a pair of nominally identical ring oscillators; the
response bit states which one is faster, measured by comparing counter
values accumulated over a gate time.  The *counter difference* is the
analog margin on which the threshold-filtering technique of Vinagrero et
al. [13] operates (paper Fig. 3): pairs with tiny differences are
unreliable, pairs with extreme differences are biased across devices
(aliased), and the shaded band in between is the good trade-off.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.puf.base import (
    NOMINAL_ENV,
    NOMINAL_SUPPLY_V,
    AnalogMarginPUF,
    PUFEnvironment,
    WeakPUF,
)
from repro.utils.bits import BitArray, bits_from_int, int_from_bits
from repro.utils.rng import derive_rng


class ROPUF(WeakPUF, AnalogMarginPUF):
    """RO-pair comparison PUF.

    Challenges address a fixed list of RO pairs.  By default the pair list
    is the ``n_ros/2`` disjoint neighbour pairs, the arrangement that keeps
    responses independent; :meth:`counter_difference` exposes the margin.

    Parameters
    ----------
    n_ros:
        Number of ring oscillators (power of two).
    f0_hz:
        Nominal oscillation frequency.
    sigma_process:
        Relative frequency spread from process variation (die-internal).
    sigma_noise:
        Relative jitter-induced frequency noise per measurement.
    temp_coeff_per_k / supply_coeff_per_v:
        Linear environmental coefficients (common mode, but with per-RO
        slope mismatch ``sigma_temp_slope`` so temperature *can* flip bits).
    gate_time_s:
        Counting window; counter values are ``f * gate_time``.
    """

    def __init__(
        self,
        n_ros: int = 512,
        seed: int = 0,
        die_index: int = 0,
        f0_hz: float = 100e6,
        sigma_process: float = 0.01,
        sigma_noise: float = 2e-4,
        temp_coeff_per_k: float = -2e-3,
        sigma_temp_slope: float = 4e-5,
        supply_coeff_per_v: float = 0.15,
        gate_time_s: float = 100e-6,
        sigma_systematic: float = 0.004,
    ):
        super().__init__()
        if n_ros < 4 or n_ros & (n_ros - 1):
            raise ValueError("n_ros must be a power of two >= 4")
        self.n_ros = n_ros
        self.seed = seed
        self.die_index = die_index
        self.f0_hz = f0_hz
        self.sigma_noise = sigma_noise
        self.temp_coeff_per_k = temp_coeff_per_k
        self.supply_coeff_per_v = supply_coeff_per_v
        self.gate_time_s = gate_time_s
        self._pairs: List[Tuple[int, int]] = [
            (2 * i, 2 * i + 1) for i in range(n_ros // 2)
        ]
        self.challenge_bits = int(math.log2(len(self._pairs)))
        self.response_bits = 1
        rng = derive_rng(seed, "ro", die_index, "process")
        self._process = rng.normal(0.0, sigma_process, size=n_ros)
        slope_rng = derive_rng(seed, "ro", die_index, "tslope")
        self._temp_slope = slope_rng.normal(0.0, sigma_temp_slope, size=n_ros)
        # Layout-induced systematic frequency offsets: identical on every
        # die (no die_index in the derivation context).  They are why
        # extreme counter differences alias across devices — the effect
        # behind the entropy roll-off in the paper's Fig. 3 ([13]).
        systematic_rng = derive_rng(seed, "ro", "systematic")
        self._systematic = systematic_rng.normal(0.0, sigma_systematic, size=n_ros)

    @property
    def n_addresses(self) -> int:
        return len(self._pairs)

    @property
    def pairs(self) -> List[Tuple[int, int]]:
        return list(self._pairs)

    def frequencies(
        self,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> np.ndarray:
        """Instantaneous frequency of every RO under one noise draw (Hz)."""
        if measurement is None:
            measurement = self._measurement_counter
            self._measurement_counter += 1
        delta_t = env.temperature_c - 25.0
        delta_v = env.supply_v - NOMINAL_SUPPLY_V
        common = (1.0
                  + self.temp_coeff_per_k * delta_t
                  + self.supply_coeff_per_v * delta_v)
        aging = 1.0
        if env.age_hours > 0:
            # ROs slow down with age (NBTI); ~0.5 % per decade of hours.
            aging = 1.0 - 0.005 * math.log10(1.0 + env.age_hours)
        rng = derive_rng(self.seed, "ro", self.die_index, "noise", measurement)
        noise = rng.normal(0.0, self.sigma_noise * env.noise_scale, size=self.n_ros)
        relative = (1.0 + self._systematic + self._process
                    + self._temp_slope * delta_t + noise)
        return self.f0_hz * common * aging * relative

    def counter_difference(
        self,
        pair_index: int,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> float:
        """Counter difference c_i - c_j for the addressed pair."""
        i, j = self._pairs[pair_index]
        freqs = self.frequencies(env, measurement)
        return float((freqs[i] - freqs[j]) * self.gate_time_s)

    def margin(
        self,
        challenge: Sequence[int],
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> float:
        return self.counter_difference(
            self.address_from_challenge(np.asarray(challenge, dtype=np.uint8)),
            env,
            measurement,
        )

    def _evaluate(
        self, challenge: BitArray, env: PUFEnvironment, measurement: int
    ) -> BitArray:
        diff = self.counter_difference(
            self.address_from_challenge(challenge), env, measurement
        )
        return np.array([1 if diff > 0 else 0], dtype=np.uint8)

    def read_all(
        self,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> BitArray:
        """All pair comparisons from a single frequency measurement."""
        freqs = self.frequencies(env, measurement)
        bits = [1 if freqs[i] > freqs[j] else 0 for i, j in self._pairs]
        return np.array(bits, dtype=np.uint8)

    def all_margins(
        self,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> np.ndarray:
        """Counter difference of every pair from a single measurement."""
        freqs = self.frequencies(env, measurement)
        return np.array(
            [(freqs[i] - freqs[j]) * self.gate_time_s for i, j in self._pairs]
        )
