"""Photonic strong PUF: time-domain interrogation of the passive scrambler.

Implements the Fig. 2 operation end to end: the challenge bit string
drives the Mach-Zehnder modulator at 25 Gbit/s, the modulated field enters
the passive scrambling architecture (mixing layers + ring memory, per-die
process variation), and the photodiode array detects the per-channel,
per-bit-slot energies.  Response bits come from comparing the energies of
adjacent photodiodes in selected bit slots — a differential readout that
needs no absolute reference.

Because of the ring memory, the energy in slot ``n`` depends on challenge
bits ``.. n-2, n-1, n`` (reservoir-like temporal mixing), which is what
breaks the additive linear structure that makes electronic arbiter PUFs
learnable (paper Sec. IV).

Two execution planes serve interrogations:

* per device, :class:`~repro.photonics.engine.CompiledMesh` via an
  environment-keyed compilation cache (``slot_energies_batch``);
* per fleet, :class:`PhotonicFleet` stacks every die of a family into one
  :class:`~repro.photonics.fleet_engine.CompiledFleet` so a whole fleet's
  interrogations run as a single tensor pass — the engine behind
  ``repro.fleet``'s batch authentication.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.photonics.engine import CompiledMesh, environment_cache_key
from repro.photonics.fleet_engine import CompiledFleet
from repro.photonics.mesh import PassiveScrambler
from repro.photonics.receiver import Photodiode
from repro.photonics.sources import Laser, MachZehnderModulator
from repro.photonics.variation import OpticalEnvironment, VariationModel
from repro.puf.base import NOMINAL_ENV, PUFEnvironment, PUFFamily, StrongPUF
from repro.utils.bits import BitArray
from repro.utils.rng import derive_rng, derive_seed, derived_generators


class PhotonicStrongPUF(StrongPUF):
    """Time-domain scrambling strong PUF.

    Parameters
    ----------
    challenge_bits:
        Length of the modulated challenge word.
    n_channels / n_stages:
        Geometry of the passive scrambler (output photodiode count and
        mixing depth).
    response_bits:
        Number of response bits extracted per interrogation; they are the
        adjacent-channel energy comparisons of the ring-down *guard slots*
        that follow the challenge (after the reservoir has mixed the whole
        word), falling back to the latest challenge slots if more bits are
        requested than the guard region provides.
    guard_slots:
        Dark slots appended after the challenge.  During ring-down the
        detected energy is an interferometric mixture of the trailing
        challenge bits with no dominant single-bit term — the property
        that defeats linear modeling attacks (Sec. IV).
    with_memory:
        Ablation hook: disable the ring memory (DESIGN.md ablation 4).
    """

    def __init__(
        self,
        challenge_bits: int = 64,
        n_channels: int = 8,
        n_stages: int = 12,
        response_bits: int = 32,
        seed: int = 0,
        die_index: int = 0,
        variation_model: Optional[VariationModel] = None,
        laser: Optional[Laser] = None,
        modulator: Optional[MachZehnderModulator] = None,
        with_memory: bool = True,
        noise_mw: float = 5e-4,
        thermal_stabilization: float = 0.995,
        guard_slots: int = 4,
        use_engine: bool = True,
    ):
        super().__init__()
        if challenge_bits < 8:
            raise ValueError("challenge must be at least 8 bits")
        if guard_slots < 0:
            raise ValueError("guard_slots must be non-negative")
        max_bits = (n_channels - 1) * (challenge_bits + guard_slots)
        if not 1 <= response_bits <= max_bits:
            raise ValueError(f"response_bits must be in [1, {max_bits}]")
        self.guard_slots = guard_slots
        self.challenge_bits = challenge_bits
        self.response_bits = response_bits
        self.n_channels = n_channels
        self.seed = seed
        self.die_index = die_index
        self.noise_mw = noise_mw
        self.with_memory = with_memory
        # Fraction of the ambient excursion removed by the on-chip
        # temperature controller the paper plans for interferometric
        # stability (Sec. II-B: "hardware approaches based on the
        # temperature controller").  1.0 = perfect stabilisation.
        if not 0.0 <= thermal_stabilization <= 1.0:
            raise ValueError("thermal_stabilization must lie in [0, 1]")
        self.thermal_stabilization = thermal_stabilization
        self.variation_model = variation_model or VariationModel()
        self._die = self.variation_model.sample_die(seed, die_index)
        self.laser = laser or Laser(power_mw=1.0)
        self.modulator = modulator or MachZehnderModulator(
            bit_rate=25e9, samples_per_bit=4
        )
        self.scrambler = PassiveScrambler(
            n_channels=n_channels,
            n_stages=n_stages,
            design_seed=seed,
            variation=self._die,
            with_memory=with_memory,
        )
        self.photodiode = Photodiode()
        # Compiled-engine routing: each (wavelength, environment) operating
        # point is compiled once into dense operators and reused, so
        # repeated nominal-condition interrogations pay compilation once.
        self.use_engine = use_engine
        self._engine_cache: Dict[Tuple, CompiledMesh] = {}
        # Response bit (slot, adjacent-channel pair) assignments: latest
        # slots first (guard/ring-down region, then trailing challenge
        # slots) so every bit sees a fully mixed reservoir state.
        pairs_per_slot = n_channels - 1
        assignments = []
        slot = challenge_bits + guard_slots - 1
        while len(assignments) < response_bits:
            for pair in range(pairs_per_slot):
                assignments.append((slot, pair))
                if len(assignments) == response_bits:
                    break
            slot -= 1
        self._assignments = assignments
        self._assignment_slots = np.array([s for (s, __) in assignments])
        self._assignment_pairs = np.array([p for (__, p) in assignments])

    @property
    def total_slots(self) -> int:
        """Modulated challenge slots plus dark guard slots."""
        return self.challenge_bits + self.guard_slots

    @property
    def launch_channel(self) -> int:
        """Input channel of the modulated light.

        Launching on the middle channel halves the mixing depth needed to
        reach the outermost photodiodes.
        """
        return self.n_channels // 2

    def _optical_env(self, env: PUFEnvironment) -> OpticalEnvironment:
        residual = (env.temperature_c - 25.0) * (1.0 - self.thermal_stabilization)
        return OpticalEnvironment(
            temperature_c=25.0 + residual,
            laser_power_mw=self.laser.power_mw,
            detection_noise_scale=env.noise_scale,
        )

    def compiled_mesh(self, env: PUFEnvironment = NOMINAL_ENV) -> CompiledMesh:
        """The compiled engine for ``env``, compiling on first use.

        The cache key ignores detection noise (added after propagation), so
        noise-scale sweeps at one temperature reuse a single compilation.
        """
        optical = self._optical_env(env)
        key = environment_cache_key(self.laser.wavelength, optical)
        engine = self._engine_cache.get(key)
        if engine is None:
            engine = CompiledMesh.compile(self.scrambler, self.laser.wavelength,
                                          optical)
            self._engine_cache[key] = engine
        return engine

    def engine_cache_size(self) -> int:
        """Number of operating points currently compiled."""
        return len(self._engine_cache)

    def _next_measurement(self) -> int:
        measurement = self._measurement_counter
        self._measurement_counter += 1
        return measurement

    def _noise_rng(self, measurement: int) -> np.random.Generator:
        return derive_rng(self.seed, "pspuf", self.die_index, "noise",
                          measurement)

    def slot_energies(
        self,
        challenge: Sequence[int],
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
        compiled: Optional[bool] = None,
    ) -> np.ndarray:
        """(n_channels, total_slots) per-slot detected energies (mW)."""
        return self.slot_energies_batch(
            np.asarray(challenge, dtype=np.uint8)[np.newaxis, :], env, measurement,
            compiled=compiled,
        )[0]

    def slot_energies_batch(
        self,
        challenges: np.ndarray,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
        compiled: Optional[bool] = None,
    ) -> np.ndarray:
        """(batch, n_channels, total_slots) energies for many challenges.

        ``compiled`` overrides the instance-level :attr:`use_engine` routing:
        ``True`` forces the compiled vectorized engine, ``False`` forces the
        per-call loop path of :meth:`PassiveScrambler.propagate` (the
        reference the equivalence tests and speedup benchmarks pin against).
        """
        challenges = np.atleast_2d(np.asarray(challenges, dtype=np.uint8))
        if challenges.shape[1] != self.challenge_bits:
            raise ValueError(
                f"challenges must have {self.challenge_bits} bits, "
                f"got {challenges.shape[1]}"
            )
        if compiled is None:
            compiled = self.use_engine
        if measurement is None:
            measurement = self._next_measurement()
        spb = self.modulator.samples_per_bit
        n_samples = self.modulator.n_samples(self.total_slots)
        optical = self._optical_env(env)
        rng = self._noise_rng(measurement)

        carrier = np.full(n_samples, self.laser.field_amplitude(),
                          dtype=np.complex128)
        batch = challenges.shape[0]
        guard = np.zeros((batch, self.guard_slots), dtype=np.uint8)
        words = np.hstack([challenges, guard])
        launch = self.launch_channel
        fields = np.zeros((batch, self.n_channels, n_samples), dtype=np.complex128)
        if compiled:
            fields[:, launch, :] = self.modulator.modulate_batch(carrier, words)
            out = self.compiled_mesh(env).propagate(fields)
        else:
            for b in range(batch):
                fields[b, launch] = self.modulator.modulate(carrier, words[b])
            out = self.scrambler.propagate(fields, self.laser.wavelength, optical)
        power = np.abs(out) ** 2  # mW per sample
        # Integrate per bit slot.
        energies = power.reshape(batch, self.n_channels,
                                 self.total_slots, spb).mean(axis=3)
        # Detection noise: shot + thermal lumped into one equivalent term.
        noise = rng.normal(0.0, self.noise_mw * env.noise_scale, size=energies.shape)
        return energies + noise

    def responses_from_energies(self, energies: np.ndarray) -> np.ndarray:
        """Differential readout: ``(..., n, slots)`` energies to bits.

        One vectorized adjacent-channel comparison over all assignments —
        shared by the per-device and fleet-stacked planes.
        """
        upper = energies[..., self._assignment_pairs, self._assignment_slots]
        lower = energies[..., self._assignment_pairs + 1, self._assignment_slots]
        return (upper > lower).astype(np.uint8)

    def _evaluate(
        self, challenge: BitArray, env: PUFEnvironment, measurement: int
    ) -> BitArray:
        energies = self.slot_energies(challenge, env, measurement)
        return self.responses_from_energies(energies)

    def evaluate_batch(
        self,
        challenges: np.ndarray,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
        compiled: Optional[bool] = None,
    ) -> np.ndarray:
        """(batch, response_bits) responses for a matrix of challenges."""
        energies = self.slot_energies_batch(challenges, env, measurement,
                                            compiled=compiled)
        return self.responses_from_energies(energies)

    @classmethod
    def try_stack(cls, pufs: Sequence["PhotonicStrongPUF"],
                  backend: str = "numpy"):
        """A :class:`PhotonicFleet` over ``pufs``, or ``None`` if they
        cannot stack (heterogeneous geometry, design, or readout chain).

        ``backend`` selects the compute backend of the stacked plane
        (see :mod:`repro.photonics.backend`).
        """
        try:
            return PhotonicFleet(pufs, backend=backend)
        except (ValueError, TypeError):
            return None

    def interrogation_time_s(self) -> float:
        """Wall-clock duration of one interrogation (incl. guard slots)."""
        return self.total_slots * self.modulator.bit_period

    def response_lifetime_s(self) -> float:
        """Time until the recirculating optical response has decayed.

        The paper claims the response exists only during interrogation and
        for < 100 ns afterwards (Sec. IV); here it is the ring memory decay
        time after the last challenge bit.
        """
        ring = self.scrambler._ring(0, 0)
        samples = ring.memory_decay_samples(threshold=1e-4)
        return samples / self.modulator.sample_rate

    def throughput_bits_per_s(self) -> float:
        """Challenge consumption rate of the interrogation chain."""
        return self.modulator.bit_rate


class PhotonicFleet:
    """Stacked execution plane over a homogeneous family of photonic PUFs.

    Validates at construction that every device shares one interrogation
    chain (challenge/response geometry, modulator, laser, noise model,
    thermal stabilisation) and one scrambler design, then serves whole-
    fleet interrogations through a single
    :class:`~repro.photonics.fleet_engine.CompiledFleet`:

    * :meth:`slot_energies` — full ``(fleet, batch, channels, slots)``
      energy maps via the batched spectral-convolution path;
    * :meth:`evaluate` — response bits only, touching just the bit-slot
      samples the differential readout compares (two real GEMMs for the
      whole fleet).

    Per-device noise streams and measurement counters advance exactly as
    they would under per-device interrogation, so a fleet pass is
    bit-compatible with running each die alone.
    """

    def __init__(self, pufs: Sequence[PhotonicStrongPUF],
                 backend: str = "numpy"):
        pufs = list(pufs)
        if not pufs:
            raise ValueError("cannot stack an empty fleet")
        self._executor = None
        self.backend = backend
        base = pufs[0]
        for puf in pufs[1:]:
            if (puf.challenge_bits != base.challenge_bits
                    or puf.response_bits != base.response_bits
                    or puf.n_channels != base.n_channels
                    or puf.guard_slots != base.guard_slots
                    or puf.seed != base.seed
                    or puf.noise_mw != base.noise_mw
                    or puf.thermal_stabilization != base.thermal_stabilization
                    or puf.modulator != base.modulator
                    or puf.laser != base.laser
                    or puf.with_memory != base.with_memory
                    or puf.scrambler.n_stages != base.scrambler.n_stages
                    or puf.scrambler.ring_delay_samples
                    != base.scrambler.ring_delay_samples):
                raise ValueError(
                    "fleet stacking requires devices sharing one "
                    "interrogation chain and design"
                )
        self.pufs = pufs
        self._fleet_cache: Dict[Tuple, CompiledFleet] = {}

    def __len__(self) -> int:
        return len(self.pufs)

    @property
    def base(self) -> PhotonicStrongPUF:
        return self.pufs[0]

    # -- compilation -------------------------------------------------------

    def _env_list(self, env) -> List[PUFEnvironment]:
        if isinstance(env, PUFEnvironment):
            return [env] * len(self.pufs)
        env = list(env)
        if len(env) != len(self.pufs):
            raise ValueError(
                f"got {len(env)} environments for {len(self.pufs)} dies"
            )
        return env

    def compiled_fleet(self, env=NOMINAL_ENV) -> CompiledFleet:
        """The stacked engine for ``env`` (one or per-die), cached.

        Like the per-die cache, the key ignores detection noise: receiver
        noise is added after propagation.
        """
        env_list = self._env_list(env)
        wavelength = self.base.laser.wavelength
        opticals = [puf._optical_env(e)
                    for puf, e in zip(self.pufs, env_list)]
        key = tuple(environment_cache_key(wavelength, optical)
                    for optical in opticals)
        fleet = self._fleet_cache.get(key)
        if fleet is None:
            fleet = CompiledFleet.compile(
                [puf.scrambler for puf in self.pufs], wavelength, opticals,
                backend=self.backend,
            )
            self._fleet_cache[key] = fleet
        return fleet

    def fleet_cache_size(self) -> int:
        return len(self._fleet_cache)

    # -- sharded execution -------------------------------------------------

    def shard(self, n_workers=None, env=NOMINAL_ENV, start_method=None):
        """Attach a sharded multi-core executor over the compiled plane.

        Compiles (or reuses) the stacked engine for ``env``, wraps it in
        a :class:`~repro.photonics.shard.ShardedFleetExecutor` whose
        worker pool maps the operators out of shared memory, and routes
        every subsequent fleet interrogation *at that operating point*
        through it.  Other operating points, and an executor that could
        not start its workers, fall back to the single-process plane —
        callers never see a second code path, only different wall clock.
        """
        from repro.photonics.shard import ShardedFleetExecutor

        self.close_executor()
        fleet = self.compiled_fleet(env)
        self._executor = ShardedFleetExecutor(fleet, n_workers=n_workers,
                                              start_method=start_method)
        return self._executor

    @property
    def executor(self):
        """The attached sharded executor, or ``None``."""
        return self._executor

    def detach_executor(self) -> None:
        """Stop routing through the executor (does not stop its workers)."""
        self._executor = None

    def close_executor(self) -> None:
        """Shut down the attached executor's workers and shared memory."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def _plane_for(self, fleet: CompiledFleet):
        """The execution plane serving ``fleet``: sharded when attached."""
        executor = self._executor
        if executor is not None and executor.fleet is fleet:
            return executor
        return fleet

    def memory_footprint_bytes(self) -> int:
        """Stacked operators + response kernels across cached environments."""
        return sum(fleet.memory_footprint_bytes()
                   for fleet in self._fleet_cache.values())

    # -- interrogation -----------------------------------------------------

    def _select(self, dies) -> List[int]:
        if dies is None:
            return list(range(len(self.pufs)))
        return [int(d) for d in dies]

    def _measurement_list(self, measurements, rows: List[int]) -> List[int]:
        if measurements is None:
            return [self.pufs[row]._next_measurement() for row in rows]
        if np.isscalar(measurements):
            return [int(measurements)] * len(rows)
        measurements = [int(m) for m in measurements]
        if len(measurements) != len(rows):
            raise ValueError(
                f"got {len(measurements)} measurement indices for "
                f"{len(rows)} dies"
            )
        return measurements

    def _drive_waves(self, challenges: np.ndarray) -> np.ndarray:
        """(fleet_sel, batch, n_samples) real drive waveforms."""
        base = self.base
        sel, batch, bits = challenges.shape
        if bits != base.challenge_bits:
            raise ValueError(
                f"challenges must have {base.challenge_bits} bits, got {bits}"
            )
        guard = np.zeros((sel * batch, base.guard_slots), dtype=np.uint8)
        words = np.hstack([
            challenges.reshape(sel * batch, bits).astype(np.uint8), guard
        ])
        waves = base.modulator.drive_waveform_batch(words)
        waves *= base.laser.field_amplitude()
        n_samples = base.modulator.n_samples(base.total_slots)
        return waves.reshape(sel, batch, n_samples)

    def _noise(self, rows, measurements, env_list, shape) -> np.ndarray:
        """Per-die detection noise, identical to the per-device streams.

        Seeds are derived per die exactly as
        :meth:`PhotonicStrongPUF._noise_rng` would, but the generator
        states are computed vectorized and injected into one reused bit
        generator (:func:`repro.utils.rng.derived_generators`), so a
        1024-die round does not pay 1024 ``SeedSequence`` constructions.
        """
        base = self.base
        noise = np.empty(shape)
        seeds = [
            derive_seed(self.pufs[row].seed, "pspuf",
                        self.pufs[row].die_index, "noise",
                        measurements[position])
            for position, row in enumerate(rows)
        ]
        for position, rng in enumerate(derived_generators(seeds)):
            noise[position] = rng.normal(
                0.0,
                base.noise_mw * env_list[rows[position]].noise_scale,
                size=shape[1:],
            )
        return noise

    def slot_energies(
        self,
        challenges: np.ndarray,
        env=NOMINAL_ENV,
        measurements=None,
        dies=None,
    ) -> np.ndarray:
        """(fleet_sel, batch, n_channels, total_slots) energies (mW).

        ``challenges`` is ``(fleet_sel, batch, challenge_bits)``;
        ``measurements`` follows the per-device convention — ``None``
        draws a fresh noise realisation per die (advancing each device's
        counter), a scalar pins one realisation for all, a sequence pins
        one per die.  ``dies`` selects a subset of stacked devices.
        """
        base = self.base
        challenges = np.asarray(challenges, dtype=np.uint8)
        if challenges.ndim != 3:
            raise ValueError(
                "fleet challenges must be (fleet, batch, challenge_bits)"
            )
        rows = self._select(dies)
        if challenges.shape[0] != len(rows):
            raise ValueError(
                f"challenges stack {challenges.shape[0]} dies, "
                f"selection names {len(rows)}"
            )
        env_list = self._env_list(env)
        measurements = self._measurement_list(measurements, rows)
        fleet = self.compiled_fleet(env_list)
        waves = self._drive_waves(challenges)
        out = self._plane_for(fleet).modulated_response(
            waves, base.launch_channel, dies=rows
        )
        power = out.real ** 2 + out.imag ** 2
        spb = base.modulator.samples_per_bit
        energies = power.reshape(
            len(rows), challenges.shape[1], base.n_channels,
            base.total_slots, spb,
        ).mean(axis=4)
        energies += self._noise(rows, measurements, env_list, energies.shape)
        return energies

    def _staged_readout(self, power: np.ndarray, sel_rows, sel_measurements,
                        env_list, batch: int, slots: np.ndarray,
                        spb: int) -> np.ndarray:
        """Differential readout + per-die noise for one shard chunk.

        ``power`` is the ``(chunk, batch, n_channels, slots * spb)``
        bit-slot power of the dies in ``sel_rows``; the result is the
        ``(chunk, batch, response_bits)`` bits.  Every step operates on
        per-die rows only, so a chunked round produces bit for bit what
        one whole-fleet pass produces.
        """
        base = self.base
        energies = power.reshape(
            len(sel_rows), batch, base.n_channels, slots.size, spb
        ).mean(axis=4)
        # The noise stream is drawn at full (n, total_slots) resolution —
        # per-device equivalence requires consuming the identical draw —
        # then subset to the compared slots.
        noise = self._noise(
            sel_rows, sel_measurements, env_list,
            (len(sel_rows), batch, base.n_channels, base.total_slots),
        )
        energies += noise[..., slots]
        slot_position = np.searchsorted(slots, base._assignment_slots)
        upper = energies[..., base._assignment_pairs, slot_position]
        lower = energies[..., base._assignment_pairs + 1, slot_position]
        return (upper > lower).astype(np.uint8)

    def evaluate_staged(
        self,
        challenges: np.ndarray,
        env=NOMINAL_ENV,
        measurements=None,
        dies=None,
    ):
        """Yield ``(positions, bits)`` response chunks, one per shard.

        The staged twin of :meth:`evaluate`: with a sharded executor
        attached, each chunk covers one shard's dies and is yielded as
        soon as that worker finishes, so callers (the pipelined round
        scheduler in :mod:`repro.fleet.verifier`) can frame/verify one
        shard's messages while the next shard is still propagating.
        ``positions`` indexes the selection; concatenating the chunks
        reproduces :meth:`evaluate` bit for bit.  Without an executor a
        single chunk covering the whole selection is yielded.

        Setup — including dispatching the plane pass to the worker pool —
        happens *eagerly* in this call; only the chunk harvest is lazy.
        Callers can therefore start the pass, do unrelated work, and
        iterate later.
        """
        base = self.base
        challenges = np.asarray(challenges, dtype=np.uint8)
        if challenges.ndim != 3:
            raise ValueError(
                "fleet challenges must be (fleet, batch, challenge_bits)"
            )
        rows = self._select(dies)
        if challenges.shape[0] != len(rows):
            raise ValueError(
                f"challenges stack {challenges.shape[0]} dies, "
                f"selection names {len(rows)}"
            )
        env_list = self._env_list(env)
        measurements = self._measurement_list(measurements, rows)
        fleet = self.compiled_fleet(env_list)
        waves = self._drive_waves(challenges)
        spb = base.modulator.samples_per_bit
        slots = np.unique(base._assignment_slots)
        samples = (slots[:, np.newaxis] * spb + np.arange(spb)).reshape(-1)
        batch = challenges.shape[1]
        plane = self._plane_for(fleet)
        if hasattr(plane, "submit_response_power"):
            # Dispatch now (workers start propagating immediately) and
            # hand back a lazy harvest over the in-flight submission.
            submission = plane.submit_response_power(
                waves, samples, base.launch_channel, dies=rows
            )

            def _harvest():
                for positions, power in submission:
                    yield positions, self._staged_readout(
                        power,
                        [rows[p] for p in positions],
                        [measurements[p] for p in positions],
                        env_list, batch, slots, spb,
                    )

            return _harvest()

        def _single_chunk():
            power = fleet.response_power_at(
                waves, samples, base.launch_channel, dies=rows
            )
            yield np.arange(len(rows)), self._staged_readout(
                power, rows, measurements, env_list, batch, slots, spb,
            )

        return _single_chunk()

    def evaluate(
        self,
        challenges: np.ndarray,
        env=NOMINAL_ENV,
        measurements=None,
        dies=None,
    ) -> np.ndarray:
        """(fleet_sel, batch, response_bits) responses, bit-slot-trimmed.

        The differential readout only compares energies in the assignment
        slots, so this path evaluates exactly those output samples
        (:meth:`CompiledFleet.response_power_at`) instead of the full
        stream.  Noise streams still consume the full per-die draw, so
        results match :meth:`slot_energies` + readout bit for bit.  With
        a sharded executor attached the chunks of
        :meth:`evaluate_staged` are gathered (bit-identical results,
        many cores).
        """
        challenges = np.asarray(challenges, dtype=np.uint8)
        out = None
        for positions, bits in self.evaluate_staged(challenges, env,
                                                    measurements, dies):
            if out is None:
                out = np.empty((challenges.shape[0], *bits.shape[1:]),
                               dtype=np.uint8)
            out[positions] = bits
        if out is None:  # empty selection: no shard owned any die
            out = np.empty(
                (challenges.shape[0], challenges.shape[1],
                 self.base.response_bits), dtype=np.uint8,
            )
        return out


def photonic_strong_family(
    n_devices: int,
    seed: int = 0,
    **kwargs,
) -> PUFFamily:
    """A family of :class:`PhotonicStrongPUF` devices sharing one design."""
    return PUFFamily(
        lambda die: PhotonicStrongPUF(seed=seed, die_index=die, **kwargs),
        n_devices,
    )
