"""Photonic strong PUF: time-domain interrogation of the passive scrambler.

Implements the Fig. 2 operation end to end: the challenge bit string
drives the Mach-Zehnder modulator at 25 Gbit/s, the modulated field enters
the passive scrambling architecture (mixing layers + ring memory, per-die
process variation), and the photodiode array detects the per-channel,
per-bit-slot energies.  Response bits come from comparing the energies of
adjacent photodiodes in selected bit slots — a differential readout that
needs no absolute reference.

Because of the ring memory, the energy in slot ``n`` depends on challenge
bits ``.. n-2, n-1, n`` (reservoir-like temporal mixing), which is what
breaks the additive linear structure that makes electronic arbiter PUFs
learnable (paper Sec. IV).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.photonics.engine import CompiledMesh, environment_cache_key
from repro.photonics.mesh import PassiveScrambler
from repro.photonics.receiver import Photodiode
from repro.photonics.sources import Laser, MachZehnderModulator
from repro.photonics.variation import OpticalEnvironment, VariationModel
from repro.puf.base import NOMINAL_ENV, PUFEnvironment, PUFFamily, StrongPUF
from repro.utils.bits import BitArray
from repro.utils.rng import derive_rng


class PhotonicStrongPUF(StrongPUF):
    """Time-domain scrambling strong PUF.

    Parameters
    ----------
    challenge_bits:
        Length of the modulated challenge word.
    n_channels / n_stages:
        Geometry of the passive scrambler (output photodiode count and
        mixing depth).
    response_bits:
        Number of response bits extracted per interrogation; they are the
        adjacent-channel energy comparisons of the ring-down *guard slots*
        that follow the challenge (after the reservoir has mixed the whole
        word), falling back to the latest challenge slots if more bits are
        requested than the guard region provides.
    guard_slots:
        Dark slots appended after the challenge.  During ring-down the
        detected energy is an interferometric mixture of the trailing
        challenge bits with no dominant single-bit term — the property
        that defeats linear modeling attacks (Sec. IV).
    with_memory:
        Ablation hook: disable the ring memory (DESIGN.md ablation 4).
    """

    def __init__(
        self,
        challenge_bits: int = 64,
        n_channels: int = 8,
        n_stages: int = 12,
        response_bits: int = 32,
        seed: int = 0,
        die_index: int = 0,
        variation_model: Optional[VariationModel] = None,
        laser: Optional[Laser] = None,
        modulator: Optional[MachZehnderModulator] = None,
        with_memory: bool = True,
        noise_mw: float = 5e-4,
        thermal_stabilization: float = 0.995,
        guard_slots: int = 4,
        use_engine: bool = True,
    ):
        super().__init__()
        if challenge_bits < 8:
            raise ValueError("challenge must be at least 8 bits")
        if guard_slots < 0:
            raise ValueError("guard_slots must be non-negative")
        max_bits = (n_channels - 1) * (challenge_bits + guard_slots)
        if not 1 <= response_bits <= max_bits:
            raise ValueError(f"response_bits must be in [1, {max_bits}]")
        self.guard_slots = guard_slots
        self.challenge_bits = challenge_bits
        self.response_bits = response_bits
        self.n_channels = n_channels
        self.seed = seed
        self.die_index = die_index
        self.noise_mw = noise_mw
        # Fraction of the ambient excursion removed by the on-chip
        # temperature controller the paper plans for interferometric
        # stability (Sec. II-B: "hardware approaches based on the
        # temperature controller").  1.0 = perfect stabilisation.
        if not 0.0 <= thermal_stabilization <= 1.0:
            raise ValueError("thermal_stabilization must lie in [0, 1]")
        self.thermal_stabilization = thermal_stabilization
        self.variation_model = variation_model or VariationModel()
        self._die = self.variation_model.sample_die(seed, die_index)
        self.laser = laser or Laser(power_mw=1.0)
        self.modulator = modulator or MachZehnderModulator(
            bit_rate=25e9, samples_per_bit=4
        )
        self.scrambler = PassiveScrambler(
            n_channels=n_channels,
            n_stages=n_stages,
            design_seed=seed,
            variation=self._die,
            with_memory=with_memory,
        )
        self.photodiode = Photodiode()
        # Compiled-engine routing: each (wavelength, environment) operating
        # point is compiled once into dense operators and reused, so
        # repeated nominal-condition interrogations pay compilation once.
        self.use_engine = use_engine
        self._engine_cache: Dict[Tuple, CompiledMesh] = {}
        # Response bit (slot, adjacent-channel pair) assignments: latest
        # slots first (guard/ring-down region, then trailing challenge
        # slots) so every bit sees a fully mixed reservoir state.
        pairs_per_slot = n_channels - 1
        assignments = []
        slot = challenge_bits + guard_slots - 1
        while len(assignments) < response_bits:
            for pair in range(pairs_per_slot):
                assignments.append((slot, pair))
                if len(assignments) == response_bits:
                    break
            slot -= 1
        self._assignments = assignments

    @property
    def total_slots(self) -> int:
        """Modulated challenge slots plus dark guard slots."""
        return self.challenge_bits + self.guard_slots

    def _optical_env(self, env: PUFEnvironment) -> OpticalEnvironment:
        residual = (env.temperature_c - 25.0) * (1.0 - self.thermal_stabilization)
        return OpticalEnvironment(
            temperature_c=25.0 + residual,
            laser_power_mw=self.laser.power_mw,
            detection_noise_scale=env.noise_scale,
        )

    def compiled_mesh(self, env: PUFEnvironment = NOMINAL_ENV) -> CompiledMesh:
        """The compiled engine for ``env``, compiling on first use.

        The cache key ignores detection noise (added after propagation), so
        noise-scale sweeps at one temperature reuse a single compilation.
        """
        optical = self._optical_env(env)
        key = environment_cache_key(self.laser.wavelength, optical)
        engine = self._engine_cache.get(key)
        if engine is None:
            engine = CompiledMesh.compile(self.scrambler, self.laser.wavelength,
                                          optical)
            self._engine_cache[key] = engine
        return engine

    def engine_cache_size(self) -> int:
        """Number of operating points currently compiled."""
        return len(self._engine_cache)

    def slot_energies(
        self,
        challenge: Sequence[int],
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
        compiled: Optional[bool] = None,
    ) -> np.ndarray:
        """(n_channels, total_slots) per-slot detected energies (mW)."""
        return self.slot_energies_batch(
            np.asarray(challenge, dtype=np.uint8)[np.newaxis, :], env, measurement,
            compiled=compiled,
        )[0]

    def slot_energies_batch(
        self,
        challenges: np.ndarray,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
        compiled: Optional[bool] = None,
    ) -> np.ndarray:
        """(batch, n_channels, total_slots) energies for many challenges.

        ``compiled`` overrides the instance-level :attr:`use_engine` routing:
        ``True`` forces the compiled vectorized engine, ``False`` forces the
        per-call loop path of :meth:`PassiveScrambler.propagate` (the
        reference the equivalence tests and speedup benchmarks pin against).
        """
        challenges = np.atleast_2d(np.asarray(challenges, dtype=np.uint8))
        if challenges.shape[1] != self.challenge_bits:
            raise ValueError(
                f"challenges must have {self.challenge_bits} bits, "
                f"got {challenges.shape[1]}"
            )
        if compiled is None:
            compiled = self.use_engine
        if measurement is None:
            measurement = self._measurement_counter
            self._measurement_counter += 1
        spb = self.modulator.samples_per_bit
        n_samples = self.modulator.n_samples(self.total_slots)
        optical = self._optical_env(env)
        rng = derive_rng(self.seed, "pspuf", self.die_index, "noise", measurement)

        carrier = np.full(n_samples, self.laser.field_amplitude(),
                          dtype=np.complex128)
        batch = challenges.shape[0]
        guard = np.zeros((batch, self.guard_slots), dtype=np.uint8)
        words = np.hstack([challenges, guard])
        # Launching on the middle channel halves the mixing depth needed to
        # reach the outermost photodiodes.
        launch = self.n_channels // 2
        fields = np.zeros((batch, self.n_channels, n_samples), dtype=np.complex128)
        if compiled:
            fields[:, launch, :] = self.modulator.modulate_batch(carrier, words)
            out = self.compiled_mesh(env).propagate(fields)
        else:
            for b in range(batch):
                fields[b, launch] = self.modulator.modulate(carrier, words[b])
            out = self.scrambler.propagate(fields, self.laser.wavelength, optical)
        power = np.abs(out) ** 2  # mW per sample
        # Integrate per bit slot.
        energies = power.reshape(batch, self.n_channels,
                                 self.total_slots, spb).mean(axis=3)
        # Detection noise: shot + thermal lumped into one equivalent term.
        noise = rng.normal(0.0, self.noise_mw * env.noise_scale, size=energies.shape)
        return energies + noise

    def _evaluate(
        self, challenge: BitArray, env: PUFEnvironment, measurement: int
    ) -> BitArray:
        energies = self.slot_energies(challenge, env, measurement)
        bits = [
            1 if energies[pair, slot] > energies[pair + 1, slot] else 0
            for (slot, pair) in self._assignments
        ]
        return np.array(bits, dtype=np.uint8)

    def evaluate_batch(
        self,
        challenges: np.ndarray,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
        compiled: Optional[bool] = None,
    ) -> np.ndarray:
        """(batch, response_bits) responses for a matrix of challenges."""
        energies = self.slot_energies_batch(challenges, env, measurement,
                                            compiled=compiled)
        columns = []
        for (slot, pair) in self._assignments:
            columns.append(
                (energies[:, pair, slot] > energies[:, pair + 1, slot]).astype(np.uint8)
            )
        return np.stack(columns, axis=1)

    def interrogation_time_s(self) -> float:
        """Wall-clock duration of one interrogation (incl. guard slots)."""
        return self.total_slots * self.modulator.bit_period

    def response_lifetime_s(self) -> float:
        """Time until the recirculating optical response has decayed.

        The paper claims the response exists only during interrogation and
        for < 100 ns afterwards (Sec. IV); here it is the ring memory decay
        time after the last challenge bit.
        """
        ring = self.scrambler._ring(0, 0)
        samples = ring.memory_decay_samples(threshold=1e-4)
        return samples / self.modulator.sample_rate

    def throughput_bits_per_s(self) -> float:
        """Challenge consumption rate of the interrogation chain."""
        return self.modulator.bit_rate


def photonic_strong_family(
    n_devices: int,
    seed: int = 0,
    **kwargs,
) -> PUFFamily:
    """A family of :class:`PhotonicStrongPUF` devices sharing one design."""
    return PUFFamily(
        lambda die: PhotonicStrongPUF(seed=seed, die_index=die, **kwargs),
        n_devices,
    )
