"""PUF primitives: photonic and electronic, weak and strong.

The photonic devices (:class:`PhotonicWeakPUF`, :class:`PhotonicStrongPUF`)
are the paper's contribution; the electronic devices (:class:`SRAMPUF`,
:class:`ROPUF`, :class:`ArbiterPUF`, :class:`XORArbiterPUF`) are the
baselines it compares against and the ASIC-side binding primitive.
"""

from repro.puf.arbiter import ArbiterPUF, XORArbiterPUF, parity_features
from repro.puf.base import (
    CRP,
    NOMINAL_ENV,
    AnalogMarginPUF,
    PUF,
    PUFEnvironment,
    PUFFamily,
    StrongPUF,
    WeakPUF,
)
from repro.puf.composite import CompositePUF
from repro.puf.encrypted import ChallengeEncryptedPUF
from repro.puf.photonic_strong import (
    PhotonicFleet,
    PhotonicStrongPUF,
    photonic_strong_family,
)
from repro.puf.photonic_weak import PhotonicWeakPUF, photonic_weak_family
from repro.puf.ro import ROPUF
from repro.puf.sram import SRAMPUF
from repro.puf.trng import EntropyFailure, HealthTestState, PhotonicTRNG

__all__ = [
    "ArbiterPUF",
    "XORArbiterPUF",
    "parity_features",
    "CRP",
    "NOMINAL_ENV",
    "AnalogMarginPUF",
    "PUF",
    "PUFEnvironment",
    "PUFFamily",
    "StrongPUF",
    "WeakPUF",
    "CompositePUF",
    "ChallengeEncryptedPUF",
    "PhotonicFleet",
    "PhotonicStrongPUF",
    "photonic_strong_family",
    "PhotonicWeakPUF",
    "photonic_weak_family",
    "ROPUF",
    "SRAMPUF",
    "EntropyFailure",
    "HealthTestState",
    "PhotonicTRNG",
]
