"""Arbiter PUF and XOR-Arbiter PUF models.

The arbiter PUF is the canonical delay-based strong PUF: a rising edge
races through ``n`` switch stages configured by the challenge bits and an
arbiter latch at the end decides which path won.  Its additive linear
delay model is also its weakness — the response is ``sign(w . phi(c))``
for a parity feature vector ``phi``, which logistic regression learns from
a few thousand CRPs (paper Sec. IV, [28]).  The XOR variant hardens it by
XOR-ing ``k`` independent arbiter chains.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.puf.base import (
    NOMINAL_ENV,
    NOMINAL_SUPPLY_V,
    AnalogMarginPUF,
    PUFEnvironment,
    StrongPUF,
)
from repro.utils.bits import BitArray
from repro.utils.rng import derive_rng


def parity_features(challenges: np.ndarray) -> np.ndarray:
    """Map challenges to the arbiter-PUF parity feature vectors.

    phi_i(c) = prod_{j >= i} (1 - 2 c_j), plus a constant 1 component for
    the arbiter offset; shape (..., n + 1).  This is the transform under
    which the arbiter PUF is exactly linear.
    """
    challenges = np.atleast_2d(np.asarray(challenges, dtype=np.int64))
    signs = 1 - 2 * challenges  # 0/1 -> +1/-1
    # Cumulative product from the right: phi_i = prod_{j>=i} signs_j.
    phi = np.cumprod(signs[:, ::-1], axis=1)[:, ::-1]
    ones = np.ones((challenges.shape[0], 1), dtype=np.int64)
    return np.hstack([phi, ones]).astype(np.float64)


class ArbiterPUF(StrongPUF, AnalogMarginPUF):
    """Linear additive-delay arbiter PUF.

    Parameters
    ----------
    n_stages:
        Number of switch stages (= challenge bits).
    sigma_noise:
        Std. dev. of the arbiter decision noise relative to the stage delay
        spread (sets the nominal intra-device error rate).
    """

    def __init__(
        self,
        n_stages: int = 64,
        seed: int = 0,
        die_index: int = 0,
        sigma_noise: float = 0.03,
        temp_noise_per_k: float = 0.002,
    ):
        super().__init__()
        if n_stages < 2:
            raise ValueError("an arbiter PUF needs at least two stages")
        self.n_stages = n_stages
        self.seed = seed
        self.die_index = die_index
        self.challenge_bits = n_stages
        self.response_bits = 1
        self.sigma_noise = sigma_noise
        self.temp_noise_per_k = temp_noise_per_k
        rng = derive_rng(seed, "arbiter", die_index, "delays")
        self._weights = rng.normal(0.0, 1.0, size=n_stages + 1)

    @property
    def weights(self) -> np.ndarray:
        """Frozen delay-difference weights (exposed for white-box studies)."""
        return self._weights.copy()

    def _noise_sigma(self, env: PUFEnvironment) -> float:
        thermal = self.temp_noise_per_k * abs(env.temperature_c - 25.0)
        supply = 0.01 * abs(env.supply_v - NOMINAL_SUPPLY_V) / 0.1
        return (self.sigma_noise + thermal + supply) * env.noise_scale

    def raw_delay(
        self,
        challenge: Sequence[int],
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> float:
        """Noisy delay difference at the arbiter input."""
        challenge = np.asarray(challenge, dtype=np.uint8)
        if measurement is None:
            measurement = self._measurement_counter
            self._measurement_counter += 1
        phi = parity_features(challenge)[0]
        rng = derive_rng(self.seed, "arbiter", self.die_index, "noise",
                         measurement, challenge.tobytes())
        noise = float(rng.normal(0.0, self._noise_sigma(env)))
        return float(phi @ self._weights) + noise

    def margin(
        self,
        challenge: Sequence[int],
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> float:
        return self.raw_delay(challenge, env, measurement)

    def _evaluate(
        self, challenge: BitArray, env: PUFEnvironment, measurement: int
    ) -> BitArray:
        delay = self.raw_delay(challenge, env, measurement)
        return np.array([1 if delay > 0 else 0], dtype=np.uint8)

    def evaluate_batch(
        self,
        challenges: np.ndarray,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: int = 0,
    ) -> np.ndarray:
        """Vectorised evaluation of a (n, n_stages) challenge matrix."""
        challenges = np.asarray(challenges, dtype=np.uint8)
        phi = parity_features(challenges)
        rng = derive_rng(self.seed, "arbiter", self.die_index, "batchnoise", measurement)
        noise = rng.normal(0.0, self._noise_sigma(env), size=challenges.shape[0])
        return ((phi @ self._weights + noise) > 0).astype(np.uint8)


class XORArbiterPUF(StrongPUF):
    """XOR of ``k`` independent arbiter chains sharing the challenge."""

    def __init__(
        self,
        n_stages: int = 64,
        k: int = 4,
        seed: int = 0,
        die_index: int = 0,
        sigma_noise: float = 0.03,
    ):
        super().__init__()
        if k < 1:
            raise ValueError("k must be at least 1")
        self.n_stages = n_stages
        self.k = k
        self.challenge_bits = n_stages
        self.response_bits = 1
        self._chains = [
            ArbiterPUF(n_stages, seed, die_index * 1000 + chain, sigma_noise)
            for chain in range(k)
        ]

    def _evaluate(
        self, challenge: BitArray, env: PUFEnvironment, measurement: int
    ) -> BitArray:
        acc = 0
        for chain in self._chains:
            acc ^= int(chain.evaluate(challenge, env, measurement)[0])
        return np.array([acc], dtype=np.uint8)

    def evaluate_batch(
        self,
        challenges: np.ndarray,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: int = 0,
    ) -> np.ndarray:
        """Vectorised XOR of the per-chain batch evaluations."""
        acc = np.zeros(np.asarray(challenges).shape[0], dtype=np.uint8)
        for chain in self._chains:
            acc ^= chain.evaluate_batch(challenges, env, measurement)
        return acc
