"""Challenge-encrypted PUF: weak-PUF-keyed permutation in front of a strong PUF.

Paper Sec. IV, citing [30]: "architectural solutions that rely on the
combination of a strong and a weak PUF to encrypt the challenges before
entering the photonic PUF".  The weak PUF's stable key parameterises a
bijective Feistel permutation on the challenge; an ML attacker who
observes (c, r) pairs actually sees r = PUF(P_k(c)) and can no longer
exploit the challenge's algebraic relationship to the response.

The ABL-ENC bench measures the modeling-attack accuracy with and without
this wrapper.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.crypto.feistel import FeistelPermutation
from repro.puf.base import NOMINAL_ENV, PUFEnvironment, StrongPUF
from repro.utils.bits import BitArray


class ChallengeEncryptedPUF(StrongPUF):
    """Wrapper applying a keyed challenge permutation before the inner PUF.

    Parameters
    ----------
    inner:
        The strong PUF being protected.
    key:
        Stable key bytes, normally derived from the weak PUF through the
        fuzzy extractor (see :mod:`repro.crypto.fuzzy_extractor`).
    n_rounds:
        Feistel rounds of the permutation.
    """

    def __init__(self, inner: StrongPUF, key: bytes, n_rounds: int = 6):
        super().__init__()
        self.inner = inner
        self.challenge_bits = inner.challenge_bits
        self.response_bits = inner.response_bits
        self._permutation = FeistelPermutation(key, inner.challenge_bits, n_rounds)

    def _evaluate(
        self, challenge: BitArray, env: PUFEnvironment, measurement: int
    ) -> BitArray:
        permuted = self._permutation.forward(challenge)
        return self.inner.evaluate(permuted, env, measurement)

    def evaluate_batch(
        self,
        challenges: np.ndarray,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> np.ndarray:
        """Batch evaluation when the inner PUF supports it."""
        challenges = np.atleast_2d(np.asarray(challenges, dtype=np.uint8))
        permuted = np.vstack([self._permutation.forward(c) for c in challenges])
        if hasattr(self.inner, "evaluate_batch"):
            return self.inner.evaluate_batch(permuted, env, measurement)
        return np.vstack([
            self.inner.evaluate(c, env, measurement) for c in permuted
        ])
