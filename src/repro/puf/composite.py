"""Composite PIC + ASIC binding PUF.

Paper Sec. IV: the photonic die (PIC) and its driving ASIC are bound by
generating a *composite* response from the two chips — the ASIC's receive
path (TIA gains, ADC offsets, packaging parasitics) deterministically
modifies the photonic response, and the ASIC's own SRAM PUF contributes a
chip-unique component.  Replacing either chip with a counterfeit changes
the composite response, which is how tampering is detected.

We model the ASIC contribution as a keyed bit mask derived from the ASIC's
SRAM fingerprint and the challenge: a behavioral stand-in for the analog
response-shaping that preserves the security-relevant property (the
composite response is a function of *both* dies).
"""

from __future__ import annotations

import hashlib
from typing import Optional, Sequence

import numpy as np

from repro.puf.base import NOMINAL_ENV, PUFEnvironment, StrongPUF
from repro.puf.photonic_strong import PhotonicStrongPUF
from repro.puf.sram import SRAMPUF
from repro.utils.bits import BitArray, bits_from_bytes, bytes_from_bits


def _asic_mask(fingerprint: BitArray, challenge: BitArray, n_bits: int) -> BitArray:
    """Deterministic ASIC response-shaping mask.

    Hash of (SRAM fingerprint, challenge) expanded to ``n_bits``.  The
    fingerprint is majority-stabilised by the caller, so the mask is a
    frozen property of the ASIC die.
    """
    hasher = hashlib.sha256()
    hasher.update(np.asarray(fingerprint, dtype=np.uint8).tobytes())
    hasher.update(b"|")
    hasher.update(np.asarray(challenge, dtype=np.uint8).tobytes())
    stream = b""
    counter = 0
    while len(stream) * 8 < n_bits:
        stream += hashlib.sha256(hasher.digest() + counter.to_bytes(4, "big")).digest()
        counter += 1
    return bits_from_bytes(stream)[:n_bits]


class CompositePUF(StrongPUF):
    """Strong PUF binding a photonic die to its driving ASIC.

    Parameters
    ----------
    pic:
        The photonic strong PUF on the PIC.
    asic:
        The SRAM PUF on the ASIC; its (noise-averaged) fingerprint shapes
        every composite response.
    mask_measurements:
        Number of SRAM power-ups majority-voted to freeze the fingerprint
        (the analog shaping of a real ASIC has no read noise, so the model
        must suppress SRAM noise here).
    """

    def __init__(
        self,
        pic: PhotonicStrongPUF,
        asic: SRAMPUF,
        mask_measurements: int = 5,
    ):
        super().__init__()
        self.pic = pic
        self.asic = asic
        self.challenge_bits = pic.challenge_bits
        self.response_bits = pic.response_bits
        votes = np.vstack([
            asic.power_up(measurement=1000 + m) for m in range(mask_measurements)
        ])
        self._fingerprint = (votes.sum(axis=0) * 2 >= mask_measurements).astype(np.uint8)

    def _evaluate(
        self, challenge: BitArray, env: PUFEnvironment, measurement: int
    ) -> BitArray:
        photonic = self.pic.evaluate(challenge, env, measurement)
        mask = _asic_mask(self._fingerprint, challenge, self.response_bits)
        return np.bitwise_xor(photonic, mask)

    def evaluate_batch(
        self,
        challenges: np.ndarray,
        env: PUFEnvironment = NOMINAL_ENV,
        measurement: Optional[int] = None,
    ) -> np.ndarray:
        """(batch, response_bits) composite responses."""
        challenges = np.atleast_2d(np.asarray(challenges, dtype=np.uint8))
        photonic = self.pic.evaluate_batch(challenges, env, measurement)
        masks = np.vstack([
            _asic_mask(self._fingerprint, c, self.response_bits) for c in challenges
        ])
        return np.bitwise_xor(photonic, masks)
