"""Sharded shared-memory execution layer for the fleet plane.

PR 3's :class:`~repro.photonics.fleet_engine.CompiledFleet` made a whole
authentication round one tensor pass — but one pass on one core: round
latency grows linearly with fleet size while every other core idles.
This module partitions the fleet plane into per-core *shards*:

* :class:`ShardLayout` slices the die axis into balanced contiguous
  shards (ragged sizes allowed — 1024 dies over 3 workers is 342/341/341);
* the fleet's frozen operators (stage matrices, ring coefficient banks,
  static matrix) and its response kernels are copied **once** into
  :mod:`multiprocessing.shared_memory` blocks; a persistent pool of
  worker processes maps them at startup and never receives an operator
  byte over a pipe again;
* :class:`ShardedFleetExecutor` serves the three ``CompiledFleet`` hot
  calls — :meth:`propagate`, :meth:`modulated_response`,
  :meth:`response_power_at` — by writing the round's drive tensor into a
  shared scratch block, commanding each worker to compute its shard's
  rows, and reading the per-shard outputs back out of a shared output
  block.  Every per-die operation in the engine is independent of how
  the die axis is tiled, so sharded results are **bit-identical** to the
  single-process pass (pinned by ``tests/photonics/test_shard.py``).

The executor degrades gracefully: when worker processes cannot be
started (restricted environments), or a worker dies mid-round, the
affected shards are computed inline in the parent — same arrays, same
math, same bits — and the pool is retired so subsequent calls run the
plain single-process path.

Asynchronous use (the pipelined round scheduler in
:mod:`repro.fleet.verifier`) goes through :meth:`submit_response_power`
/ :meth:`submit_modulated` / :meth:`submit_propagate`: the returned
:class:`ShardSubmission` yields per-shard result chunks as workers
finish, so the parent can run the next protocol stage (MAC framing,
verification) for shard *i - 1* while shard *i* is still propagating.
"""

from __future__ import annotations

import os
import traceback
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.photonics.fleet_engine import CompiledFleet

try:  # pragma: no cover - platform probe
    import multiprocessing
    from multiprocessing import shared_memory as _shm
    _MP_AVAILABLE = True
except ImportError:  # pragma: no cover
    multiprocessing = None
    _shm = None
    _MP_AVAILABLE = False


def usable_cores() -> int:
    """CPU cores this process may schedule on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _attach_shared(name: str):
    """Attach an existing shared-memory block owned by the parent.

    Workers share the parent's resource-tracker process (the tracker fd
    is inherited by both fork and spawn children), and its registry is a
    set — the duplicate registration an attach performs is idempotent,
    and the single unregister the parent's unlink sends retires the name
    exactly once.
    """
    return _shm.SharedMemory(name=name)


@dataclass(frozen=True)
class ShardLayout:
    """A contiguous, balanced partition of the die axis.

    ``bounds`` holds ``n_shards + 1`` offsets: shard ``s`` owns dies
    ``bounds[s]:bounds[s + 1]``.  Balanced means sizes differ by at most
    one die (the first ``n_dies % n_shards`` shards take the extra die).
    """

    n_dies: int
    bounds: Tuple[int, ...]

    @classmethod
    def balanced(cls, n_dies: int, n_shards: int) -> "ShardLayout":
        if n_dies < 1:
            raise ValueError("a layout needs at least one die")
        n_shards = max(1, min(int(n_shards), n_dies))
        base, extra = divmod(n_dies, n_shards)
        bounds = [0]
        for shard in range(n_shards):
            bounds.append(bounds[-1] + base + (1 if shard < extra else 0))
        return cls(n_dies=n_dies, bounds=tuple(bounds))

    @property
    def n_shards(self) -> int:
        return len(self.bounds) - 1

    def slices(self) -> List[Tuple[int, int]]:
        return [(self.bounds[s], self.bounds[s + 1])
                for s in range(self.n_shards)]

    def owner(self, die: int) -> int:
        """Shard index owning ``die``."""
        if not 0 <= die < self.n_dies:
            raise ValueError(f"die {die} outside [0, {self.n_dies})")
        return int(np.searchsorted(self.bounds, die, side="right") - 1)

    def split_selection(self, dies: np.ndarray) -> List[tuple]:
        """Group a die selection by owning shard.

        Returns ``(shard, positions, local_rows)`` triples: ``positions``
        indexes into the selection (= the stacked input/output rows) and
        ``local_rows`` are the shard-local die indices.  Only shards that
        own at least one selected die appear.
        """
        dies = np.asarray(dies, dtype=np.intp)
        owners = np.searchsorted(self.bounds, dies, side="right") - 1
        groups = []
        for shard in range(self.n_shards):
            positions = np.flatnonzero(owners == shard)
            if positions.size == 0:
                continue
            local = dies[positions] - self.bounds[shard]
            groups.append((shard, positions, local))
        return groups


class _SharedArray:
    """One numpy array living in one shared-memory block (parent side)."""

    def __init__(self, array: np.ndarray):
        array = np.ascontiguousarray(array)
        self.shape = array.shape
        self.dtype = array.dtype
        self.block = _shm.SharedMemory(create=True, size=max(1, array.nbytes))
        self.array = np.ndarray(self.shape, dtype=self.dtype,
                                buffer=self.block.buf)
        self.array[...] = array

    def spec(self) -> tuple:
        return (self.block.name, self.shape, self.dtype.str)

    def destroy(self) -> None:
        self.array = None
        try:
            self.block.close()
            self.block.unlink()
        except (FileNotFoundError, OSError):  # pragma: no cover
            pass


class _Scratch:
    """A reusable, growable shared block for per-call tensors."""

    def __init__(self):
        self._block = None

    def view(self, shape: tuple, dtype) -> tuple:
        """An ndarray of ``shape``/``dtype`` over the block, plus its spec."""
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(shape)) * dtype.itemsize
        if self._block is None or self._block.size < nbytes:
            capacity = max(1, nbytes)
            if self._block is not None:
                capacity = max(capacity, 2 * self._block.size)
                try:
                    self._block.close()
                    self._block.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
            self._block = _shm.SharedMemory(create=True, size=capacity)
        array = np.ndarray(shape, dtype=dtype, buffer=self._block.buf)
        return array, (self._block.name, tuple(shape), dtype.str)

    def destroy(self) -> None:
        if self._block is not None:
            try:
                self._block.close()
                self._block.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
            self._block = None


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

class _WorkerState:
    """Everything a worker holds: its shard fleet + attached blocks."""

    _CACHE_MAX = 8  # scratch blocks kept attached (old names after growth)

    def __init__(self, spec: dict):
        from collections import OrderedDict

        self._attached: "OrderedDict[str, object]" = OrderedDict()
        self._pinned: Dict[str, object] = {}
        start, stop = spec["rows"]
        operators = {
            key: self._pin(*block_spec)
            for key, block_spec in spec["operators"].items()
        }
        full = CompiledFleet(
            n_dies=spec["n_dies"],
            n_channels=spec["n_channels"],
            n_stages=spec["n_stages"],
            delay_samples=spec["delay_samples"],
            with_memory=spec["with_memory"],
            stage_matrices=operators["stage_matrices"],
            ring_b=operators["ring_b"],
            ring_a=operators["ring_a"],
            static_matrix=operators["static_matrix"],
            # Backends travel by *name*: each worker process resolves
            # (and self-checks) its own instance lazily at first use,
            # with the same fall-back-to-numpy semantics as the parent.
            backend_name=spec.get("backend", "numpy"),
        )
        self.fleet = full.shard_view(start, stop)
        self.start = start
        self.stop = stop

    def _pin(self, name: str, shape, dtype) -> np.ndarray:
        """Attach a long-lived block (operators, kernels); never evicted."""
        block = self._pinned.get(name)
        if block is None:
            block = _attach_shared(name)
            self._pinned[name] = block
        return np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                          buffer=block.buf)

    def views(self, specs) -> List[np.ndarray]:
        """Attach (LRU-cached) scratch blocks and view them with shapes.

        All of a command's blocks are resolved in one call: each name is
        attached or refreshed to most-recently-used *before* eviction
        runs, so growing scratch blocks can age stale names out without
        ever closing a block the current command still views (a closed
        block under a live ndarray is a segfault, not an exception).
        """
        arrays = []
        needed = {spec[0] for spec in specs}
        for name, shape, dtype in specs:
            block = self._attached.get(name)
            if block is None:
                block = _attach_shared(name)
                self._attached[name] = block
            else:
                self._attached.move_to_end(name)
            arrays.append(np.ndarray(tuple(shape), dtype=np.dtype(dtype),
                                     buffer=block.buf))
        while len(self._attached) > self._CACHE_MAX:
            stale_name = next(iter(self._attached))
            if stale_name in needed:  # only current blocks left: keep all
                break
            self._attached.pop(stale_name).close()
        return arrays

    def adopt_kernel(self, cmd: dict) -> None:
        h_real = self._pin(*cmd["h_real"])
        h_imag = self._pin(*cmd["h_imag"])
        spectra = self._pin(*cmd["spectra"])
        self.fleet.adopt_kernel(
            cmd["launch"], cmd["n_samples"],
            h_real[self.start:self.stop],
            h_imag[self.start:self.stop],
            spectra[self.start:self.stop],
            cmd["fft_length"],
        )


def _shard_worker_main(conn, spec: dict) -> None:
    """Persistent worker loop: map shared blocks once, serve commands."""
    try:
        state = _WorkerState(spec)
    except Exception:  # pragma: no cover - setup failure path
        try:
            conn.send(("error", traceback.format_exc()))
        finally:
            conn.close()
        return
    conn.send(("ready", None))
    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):  # parent died
            break
        op = cmd.get("op")
        if op == "stop":
            conn.send(("ok", "stop"))
            break
        try:
            if op == "kernel":
                state.adopt_kernel(cmd)
                conn.send(("ok", "kernel"))
                continue
            source, out = state.views([cmd["in"], cmd["out"]])
            positions = np.asarray(cmd["positions"], dtype=np.intp)
            rows = np.asarray(cmd["rows"], dtype=np.intp)
            chunk = source[positions]
            if op == "power":
                result = state.fleet.response_power_at(
                    chunk, np.asarray(cmd["samples"], dtype=np.intp),
                    cmd["launch"], dies=rows,
                )
            elif op == "modulated":
                result = state.fleet.modulated_response(
                    chunk, cmd["launch"], dies=rows,
                )
            elif op == "propagate":
                result = state.fleet.propagate(chunk, dies=rows)
            else:
                raise ValueError(f"unknown op {op!r}")
            out[positions] = result
            conn.send(("ok", op))
        except Exception:
            conn.send(("error", traceback.format_exc()))
    conn.close()


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

class ShardSubmission:
    """An in-flight sharded plane pass.

    Iterating yields ``(positions, chunk)`` pairs in shard order as each
    worker acknowledges — ``positions`` indexes the selection (= rows of
    the stacked output) and ``chunk`` is that shard's slice of the
    result, copied out of the shared output block.  :meth:`result`
    drains the iterator into the full stacked array.

    A shard whose worker died is transparently recomputed inline by the
    parent (bit-identical — same arrays, same per-die math) and the
    executor degrades to single-process mode for subsequent rounds.
    """

    def __init__(self, executor: "ShardedFleetExecutor", op: str,
                 out_view: np.ndarray, out_shape: tuple,
                 groups: List[list], inline_fallback):
        self._executor = executor
        self._op = op
        self._out_view = out_view
        self.shape = out_shape
        self._groups = groups          # [shard, positions, sent_ok, collected]
        self._inline = inline_fallback  # positions -> chunk (parent compute)
        self._consumed = False

    def __iter__(self) -> Iterator[tuple]:
        if self._consumed:
            raise RuntimeError("a ShardSubmission can only be consumed once")
        self._consumed = True
        for group in self._groups:
            shard, positions, sent, __ = group
            chunk = None
            if sent:
                reply = self._executor._collect(shard)
                group[3] = True
                if reply is not None and reply[0] == "ok":
                    chunk = self._out_view[positions].copy()
                elif reply is not None and reply[0] == "error":
                    raise RuntimeError(
                        f"shard worker {shard} failed:\n{reply[1]}"
                    )
            if chunk is None:  # send failed or worker died: inline redo
                self._executor._retire(f"worker {shard} unavailable")
                chunk = self._inline(positions)
            yield positions, chunk

    def _drain(self) -> None:
        """Collect leftover worker acks so the pipes stay in lockstep."""
        for group in self._groups:
            shard, __, sent, collected = group
            if sent and not collected:
                self._executor._collect(shard)
                group[3] = True
        self._consumed = True

    def result(self) -> np.ndarray:
        """The full stacked result (drains the shard iterator)."""
        out = np.empty(self.shape, dtype=self._out_view.dtype)
        for positions, chunk in self:
            out[positions] = chunk
        return out


class _InlineSubmission:
    """Submission facade for the single-process path (no workers)."""

    def __init__(self, n_sel: int, compute):
        self._positions = np.arange(n_sel)
        self._compute = compute

    def __iter__(self):
        yield self._positions, self._compute()

    def result(self) -> np.ndarray:
        return self._compute()


class ShardedFleetExecutor:
    """Multi-core front-end of one :class:`CompiledFleet`.

    Parameters
    ----------
    fleet:
        The compiled plane to shard.  Its operator tensors are copied
        into shared memory once at construction.
    n_workers:
        Worker process count (defaults to ``min(usable_cores(), n_dies)``).
        ``1`` still runs the full shared-memory path with a single
        worker — the configuration CI exercises.
    start_method:
        ``multiprocessing`` start method; defaults to ``fork`` where
        available (cheap startup, operators already warm) and ``spawn``
        elsewhere.

    The executor mirrors the ``CompiledFleet`` call surface
    (:meth:`propagate` / :meth:`modulated_response` /
    :meth:`response_power_at`) plus asynchronous ``submit_*`` variants
    whose :class:`ShardSubmission` yields per-shard chunks for the
    pipelined round scheduler.  When no worker pool could be started —
    or after a worker death retired it — every call computes inline on
    the wrapped fleet, so callers never need a second code path.
    """

    def __init__(self, fleet: CompiledFleet, n_workers: Optional[int] = None,
                 start_method: Optional[str] = None):
        self.fleet = fleet
        if n_workers is None:
            n_workers = usable_cores()
        self.layout = ShardLayout.balanced(fleet.n_dies, n_workers)
        self._workers: List = []
        self._conns: List = []
        self._blocks: List[_SharedArray] = []
        self._kernel_keys: set = set()
        self._scratch_in = _Scratch()
        self._scratch_out = _Scratch()
        self._current: Optional[ShardSubmission] = None
        self._degraded_reason: Optional[str] = None
        if not _MP_AVAILABLE:
            self._degraded_reason = "multiprocessing unavailable"
            return
        try:
            self._start_pool(start_method)
        except Exception as exc:  # workers unavailable: inline fallback
            self._teardown_pool()
            self._degraded_reason = f"worker pool unavailable: {exc}"

    # -- pool lifecycle ----------------------------------------------------

    def _start_pool(self, start_method: Optional[str]) -> None:
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = multiprocessing.get_context(start_method)
        operators = {}
        for key in ("stage_matrices", "ring_b", "ring_a", "static_matrix"):
            shared = _SharedArray(getattr(self.fleet, key))
            self._blocks.append(shared)
            operators[key] = shared.spec()
        for shard, (start, stop) in enumerate(self.layout.slices()):
            spec = {
                "rows": (start, stop),
                "operators": operators,
                "n_dies": self.fleet.n_dies,
                "n_channels": self.fleet.n_channels,
                "n_stages": self.fleet.n_stages,
                "delay_samples": self.fleet.delay_samples,
                "with_memory": self.fleet.with_memory,
                "backend": self.fleet.backend_name,
            }
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_shard_worker_main, args=(child_conn, spec),
                daemon=True, name=f"fleet-shard-{shard}",
            )
            process.start()
            child_conn.close()
            self._workers.append(process)
            self._conns.append(parent_conn)
        for shard in range(len(self._conns)):
            reply = self._conns[shard].recv()
            if reply[0] != "ready":
                raise RuntimeError(f"shard worker {shard} failed to start")

    def _teardown_pool(self) -> None:
        try:
            self._settle()
        except Exception:  # pragma: no cover - teardown is best effort
            pass
        for conn in self._conns:
            try:
                conn.send({"op": "stop"})
            except (OSError, ValueError):
                pass
        for conn in self._conns:
            try:
                if conn.poll(1.0):
                    conn.recv()
            except (EOFError, OSError):
                pass
            conn.close()
        for process in self._workers:
            process.join(timeout=2.0)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=1.0)
        self._workers = []
        self._conns = []

    def close(self) -> None:
        """Stop workers and release every shared-memory block."""
        self._teardown_pool()
        for shared in self._blocks:
            shared.destroy()
        self._blocks = []
        self._scratch_in.destroy()
        self._scratch_out.destroy()

    def __enter__(self) -> "ShardedFleetExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    # -- state -------------------------------------------------------------

    @property
    def active(self) -> bool:
        """True while the worker pool serves calls (not degraded)."""
        return bool(self._workers) and self._degraded_reason is None

    @property
    def n_workers(self) -> int:
        return self.layout.n_shards

    @property
    def degraded_reason(self) -> Optional[str]:
        """Why the executor fell back to single-process, if it did."""
        return self._degraded_reason

    def memory_footprint_bytes(self) -> int:
        """Bytes of shared memory holding operators + kernels."""
        return sum(shared.block.size for shared in self._blocks)

    def _retire(self, reason: str) -> None:
        """Degrade to inline mode (worker death / send failure)."""
        if self._degraded_reason is None:
            self._degraded_reason = reason

    def _collect(self, shard: int):
        """Receive one worker's acknowledgement, or None if it died."""
        try:
            return self._conns[shard].recv()
        except (EOFError, OSError):
            return None

    def _send(self, shard: int, cmd: dict) -> bool:
        try:
            self._conns[shard].send(cmd)
            return True
        except (OSError, ValueError, BrokenPipeError):
            return False

    # -- kernels -----------------------------------------------------------

    def _ensure_kernel(self, launch: int, n_samples: int) -> None:
        """Build + broadcast one response kernel into shared memory.

        The parent computes the kernel once (exactly as the
        single-process path would), copies it into shared blocks, and
        every worker adopts its shard's row slice — workers never burn
        cycles rebuilding fleet-wide kernels.
        """
        key = (int(launch), int(n_samples))
        if key in self._kernel_keys or not self.active:
            return
        self._settle()
        h_real, h_imag, spectra, length = self.fleet.response_kernel(
            launch, n_samples
        )
        blocks = [_SharedArray(h_real), _SharedArray(h_imag),
                  _SharedArray(spectra)]
        self._blocks.extend(blocks)
        cmd = {
            "op": "kernel",
            "launch": int(launch),
            "n_samples": int(n_samples),
            "fft_length": int(length),
            "h_real": blocks[0].spec(),
            "h_imag": blocks[1].spec(),
            "spectra": blocks[2].spec(),
        }
        for shard in range(self.n_workers):
            if not self._send(shard, cmd):
                self._retire(f"worker {shard} unavailable")
                return
        for shard in range(self.n_workers):
            reply = self._collect(shard)
            if reply is None:
                self._retire(f"worker {shard} unavailable")
                return
            if reply[0] != "ok":
                raise RuntimeError(
                    f"shard worker {shard} failed to adopt kernel:\n{reply[1]}"
                )
        self._kernel_keys.add(key)

    # -- submission core ---------------------------------------------------

    def _die_indices(self, dies) -> np.ndarray:
        if dies is None:
            return np.arange(self.fleet.n_dies)
        return np.asarray(dies, dtype=np.intp)

    def _settle(self) -> None:
        """Drain any unconsumed prior submission (pipes stay in lockstep)."""
        if self._current is not None:
            self._current._drain()
            self._current = None

    def _submit(self, op: str, source: np.ndarray, out_shape: tuple,
                out_dtype, dies: np.ndarray, extra: dict, inline_full,
                inline_chunk):
        if not self.active:
            return _InlineSubmission(out_shape[0], inline_full)
        self._settle()
        in_view, in_spec = self._scratch_in.view(source.shape, source.dtype)
        in_view[...] = source
        out_view, out_spec = self._scratch_out.view(out_shape, out_dtype)
        groups = []
        for shard, positions, local_rows in self.layout.split_selection(dies):
            cmd = {
                "op": op,
                "in": in_spec,
                "out": out_spec,
                "positions": positions,
                "rows": local_rows,
                **extra,
            }
            sent = self._send(shard, cmd)
            groups.append([shard, positions, sent, False])
        submission = ShardSubmission(self, op, out_view, out_shape, groups,
                                     inline_chunk)
        self._current = submission
        return submission

    # -- CompiledFleet call surface ---------------------------------------

    def submit_response_power(self, waves: np.ndarray, samples: np.ndarray,
                              launch: int, dies=None) -> "ShardSubmission":
        """Asynchronous :meth:`CompiledFleet.response_power_at`."""
        waves = np.asarray(waves, dtype=np.float64)
        samples = np.asarray(samples, dtype=np.intp)
        indices = self._die_indices(dies)
        n_sel, batch, n_samples = waves.shape
        self._ensure_kernel(launch, n_samples)
        out_shape = (n_sel, batch, self.fleet.n_channels, samples.size)
        return self._submit(
            "power", waves, out_shape, np.float64, indices,
            {"samples": samples, "launch": int(launch)},
            inline_full=lambda: self.fleet.response_power_at(
                waves, samples, launch, dies=indices),
            inline_chunk=lambda positions: self.fleet.response_power_at(
                waves[positions], samples, launch, dies=indices[positions]),
        )

    def response_power_at(self, waves, samples, launch, dies=None):
        return self.submit_response_power(waves, samples, launch,
                                          dies=dies).result()

    def submit_modulated(self, waves: np.ndarray, launch: int,
                         dies=None) -> "ShardSubmission":
        """Asynchronous :meth:`CompiledFleet.modulated_response`."""
        waves = np.asarray(waves)
        indices = self._die_indices(dies)
        n_sel, batch, n_samples = waves.shape
        self._ensure_kernel(launch, n_samples)
        out_shape = (n_sel, batch, self.fleet.n_channels, n_samples)
        return self._submit(
            "modulated", waves, out_shape, np.complex128, indices,
            {"launch": int(launch)},
            inline_full=lambda: self.fleet.modulated_response(
                waves, launch, dies=indices),
            inline_chunk=lambda positions: self.fleet.modulated_response(
                waves[positions], launch, dies=indices[positions]),
        )

    def modulated_response(self, waves, launch, dies=None):
        return self.submit_modulated(waves, launch, dies=dies).result()

    def submit_propagate(self, fields: np.ndarray,
                         dies=None) -> "ShardSubmission":
        """Asynchronous :meth:`CompiledFleet.propagate` (4-D input)."""
        fields = np.asarray(fields, dtype=np.complex128)
        if fields.ndim != 4:
            raise ValueError(
                "sharded propagate expects (fleet, batch, channels, samples)"
            )
        indices = self._die_indices(dies)
        return self._submit(
            "propagate", fields, fields.shape, np.complex128, indices, {},
            inline_full=lambda: self.fleet.propagate(fields, dies=indices),
            inline_chunk=lambda positions: self.fleet.propagate(
                fields[positions], dies=indices[positions]),
        )

    def propagate(self, fields, dies=None):
        fields = np.asarray(fields, dtype=np.complex128)
        squeeze = fields.ndim == 3
        if squeeze:
            fields = fields[:, np.newaxis]
        out = self.submit_propagate(fields, dies=dies).result()
        return out[:, 0] if squeeze else out


def shard_fleet(fleet: CompiledFleet, n_workers: Optional[int] = None,
                start_method: Optional[str] = None) -> ShardedFleetExecutor:
    """Convenience constructor mirroring :meth:`CompiledFleet.compile`."""
    return ShardedFleetExecutor(fleet, n_workers=n_workers,
                                start_method=start_method)
