"""Fleet-stacked execution plane: every die of a family as one operator.

PR 1's :class:`~repro.photonics.engine.CompiledMesh` made a single die's
CRP batches fast, but fleet authentication still paid the engine once per
device: each ``FleetDevice.respond`` ran a batch-1 propagation, and
provisioning compiled dies one at a time.  :class:`CompiledFleet` lifts
the whole family into ``(fleet, ...)`` tensors at provision time:

* **one compile for the family** — the design draws (mixing angles,
  coupling ratios, ring phases/couplings) depend only on the shared
  design seed and are derived once, while the per-die variation draws are
  gathered into ``(fleet,)`` arrays and the stage matrices assembled with
  fleet-batched 2x2 block updates instead of one Python pass per die;
* **one tensor pass per round** — :meth:`propagate` advances
  ``(fleet, batch, n_channels, n_samples)`` field tensors with one
  batched ``matmul`` per mixing stage and one
  :func:`~repro.photonics.engine.stacked_ring_scan` per ring bank (the
  rings axis is the whole ``fleet x channels`` plane), cache-blocked over
  ``fleet x batch`` tiles;
* **response kernels** — because the scrambler is linear and every
  interrogation launches on one channel, the first ``S`` output samples
  depend only on the first ``S`` taps of the die's impulse response.
  :meth:`modulated_response` therefore evaluates a whole round as one
  batched FFT convolution against precomputed ``(fleet, channels, N)``
  spectra (*exact* for outputs below ``S`` — no truncation error), and
  :meth:`response_power_at` evaluates only the bit-slot samples the
  protocol compares, as two fleet-batched real GEMMs.

Per-die environments are supported (a "ragged" fleet operating at
different temperatures stacks per-die operators compiled at each die's
own operating point).  Heterogeneous *geometry* (channel counts, stage
counts, ring delays) cannot stack — :meth:`CompiledFleet.compile` raises
``ValueError`` and callers fall back to the per-die path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.photonics.backend import ArrayBackend, resolve_backend
from repro.photonics.constants import DEFAULT_WAVELENGTH, SILICON_DN_DT
from repro.photonics.engine import (
    _TILE_TARGET_BYTES,
    CompiledMesh,
)
from repro.photonics.variation import OpticalEnvironment
from repro.utils.rng import derive_rng

_NOMINAL_ENV = OpticalEnvironment()


def _as_env_list(envs, n_dies: int) -> List[OpticalEnvironment]:
    """Normalise a single environment or per-die sequence to a list."""
    if isinstance(envs, OpticalEnvironment):
        return [envs] * n_dies
    envs = list(envs)
    if len(envs) != n_dies:
        raise ValueError(
            f"got {len(envs)} environments for {n_dies} dies"
        )
    return envs


def _check_homogeneous(scramblers) -> None:
    """Stacking requires one shared design and geometry across dies."""
    base = scramblers[0]
    for scrambler in scramblers[1:]:
        if (scrambler.n_channels != base.n_channels
                or scrambler.n_stages != base.n_stages
                or scrambler.design_seed != base.design_seed
                or scrambler.ring_delay_samples != base.ring_delay_samples
                or scrambler.with_memory != base.with_memory):
            raise ValueError(
                "fleet stacking requires dies sharing one design "
                "(n_channels, n_stages, design_seed, ring_delay_samples, "
                "with_memory)"
            )


class _VariationTable:
    """Every per-die variation draw a fleet compile needs, gathered.

    The draws are identical to what :meth:`MixingLayer.matrix` and
    :meth:`PassiveScrambler._ring` pull one component at a time (same
    derived streams, via the batched
    :meth:`~repro.photonics.variation.DieVariation.neff_offsets` /
    :meth:`coupling_factors` fast path); here each die makes exactly two
    gathered calls and the compile indexes columns.
    """

    def __init__(self, scramblers):
        base = scramblers[0]
        self.neff_labels: List[str] = []
        self.coupling_labels: List[str] = []
        self._ps_col: Dict[tuple, int] = {}
        self._dc_col: Dict[tuple, int] = {}
        self._res_col: Dict[tuple, int] = {}
        self._ring_col: Dict[tuple, int] = {}
        for layer in base.layers:
            for (i, __) in layer._pairs():
                element = f"{layer.label}.{layer.layer_index}.{i}"
                self._dc_col[(layer.layer_index, i)] = len(self.coupling_labels)
                self.coupling_labels.append(f"{element}.dc")
                self._ps_col[(layer.layer_index, i)] = len(self.neff_labels)
                self.neff_labels.append(f"{element}.ps")
            for channel in range(base.n_channels):
                self._res_col[(layer.layer_index, channel)] = \
                    len(self.neff_labels)
                self.neff_labels.append(
                    f"{layer.label}.{layer.layer_index}.res{channel}"
                )
        for stage in range(base.n_stages):
            for channel in range(base.n_channels):
                self._ring_col[(stage, channel)] = len(self.neff_labels)
                self.neff_labels.append(f"scr.ring.{stage}.{channel}")
        self.offsets = np.stack([
            scrambler.variation.neff_offsets(self.neff_labels)
            if scrambler.variation else np.zeros(len(self.neff_labels))
            for scrambler in scramblers
        ])
        self.couplings = np.stack([
            scrambler.variation.coupling_factors(self.coupling_labels)
            if scrambler.variation else np.ones(len(self.coupling_labels))
            for scrambler in scramblers
        ])

    def ps_offset(self, layer_index: int, i: int) -> np.ndarray:
        return self.offsets[:, self._ps_col[(layer_index, i)]]

    def dc_coupling(self, layer_index: int, i: int) -> np.ndarray:
        return self.couplings[:, self._dc_col[(layer_index, i)]]

    def residual_offsets(self, layer_index: int, n: int) -> np.ndarray:
        cols = [self._res_col[(layer_index, ch)] for ch in range(n)]
        return self.offsets[:, cols]

    def ring_offset(self, stage: int, channel: int) -> np.ndarray:
        return self.offsets[:, self._ring_col[(stage, channel)]]


def _stacked_stage_matrices(
    scramblers, wavelength: float, envs: List[OpticalEnvironment],
    table: _VariationTable,
) -> np.ndarray:
    """All dies' mixing-stage matrices in one fleet-batched assembly.

    Mirrors :meth:`MixingLayer.matrix` operation for operation — the same
    design-RNG draws (made once, not once per die), the same per-component
    variation draws, the same 2x2 block application order — but with every
    per-die scalar lifted to a ``(fleet,)`` array, so the Python work per
    stage is per *pair of channels*, not per ``die x pair``.
    """
    base = scramblers[0]
    n = base.n_channels
    n_dies = len(scramblers)
    drift = np.array([SILICON_DN_DT * env.delta_t for env in envs])
    out = np.empty((n_dies, base.n_stages, n, n), dtype=np.complex128)
    for stage, layer in enumerate(base.layers):
        design_rng = derive_rng(layer.design_seed, layer.label,
                                layer.layer_index, "design")
        matrix = np.broadcast_to(
            np.eye(n, dtype=np.complex128), (n_dies, n, n)
        ).copy()
        for (i, j) in layer._pairs():
            theta = float(design_rng.uniform(0.0, 2.0 * math.pi))
            kappa = float(design_rng.uniform(0.2, 0.8))
            kappa_eff = np.clip(
                kappa * table.dc_coupling(layer.layer_index, i),
                1e-6, 1.0 - 1e-6,
            )
            through = np.sqrt(1.0 - kappa_eff)
            cross = np.sqrt(kappa_eff)
            phi = theta + (
                2.0 * math.pi
                * (table.ps_offset(layer.layer_index, i) + drift)
                * layer.scramble_path_length / wavelength
            )
            factor = np.cos(phi) - 1j * np.sin(phi)
            block = np.empty((n_dies, 2, 2), dtype=np.complex128)
            block[:, 0, 0] = through * factor
            block[:, 0, 1] = -1j * cross * factor
            block[:, 1, 0] = -1j * cross
            block[:, 1, 1] = through
            matrix[:, (i, j), :] = np.matmul(block, matrix[:, (i, j), :])
        residual = table.residual_offsets(layer.layer_index, n)
        phi = (2.0 * math.pi * (residual + drift[:, np.newaxis])
               * layer.scramble_path_length / wavelength)
        matrix *= (np.cos(phi) - 1j * np.sin(phi))[:, :, np.newaxis]
        loss = 10.0 ** (-layer.insertion_loss_db / 20.0)
        out[:, stage] = loss * matrix
    return out


def _stacked_ring_coefficients(
    scramblers, table: _VariationTable
) -> Tuple[np.ndarray, np.ndarray]:
    """All dies' ring banks, with the design draws made once per ring.

    Mirrors :meth:`PassiveScrambler._ring` +
    :meth:`DiscreteTimeRing.coefficients`: per (stage, channel) the design
    RNG yields the nominal phase then the coupling, and each die adds its
    own geometry-driven phase spread.  Ring operators are independent of
    wavelength and environment, exactly like the per-die compile path.
    """
    base = scramblers[0]
    n, stages = base.n_channels, base.n_stages
    delay = base.ring_delay_samples
    n_dies = len(scramblers)
    ring_b = np.zeros((n_dies, stages, n, delay + 1), dtype=np.complex128)
    ring_a = np.zeros((n_dies, stages, n, delay + 1), dtype=np.complex128)
    two_pi = 2.0 * math.pi
    for stage in range(stages):
        for channel in range(n):
            design_rng = derive_rng(base.design_seed, "ring", stage, channel)
            phase = float(design_rng.uniform(0.0, two_pi))
            tau = float(design_rng.uniform(0.84, 0.92))
            phases = (phase + two_pi * 50.0
                      * table.ring_offset(stage, channel)) % two_pi
            rot = 0.99 * np.exp(-1j * phases)
            ring_b[:, stage, channel, 0] = tau
            ring_b[:, stage, channel, -1] = -rot
            ring_a[:, stage, channel, 0] = 1.0
            ring_a[:, stage, channel, -1] = -tau * rot
    return ring_b, ring_a


def _fft_length(n_samples: int) -> int:
    """FFT size for an exact first-``S``-samples circular convolution."""
    from scipy.fft import next_fast_len

    return int(next_fast_len(2 * n_samples - 1, real=False))


@dataclass(frozen=True)
class CompiledFleet:
    """Dense, environment-frozen form of a whole die family.

    Attributes
    ----------
    stage_matrices:
        ``(fleet, n_stages, n, n)`` complex transfer matrices.
    ring_b / ring_a:
        ``(fleet, n_stages, n, delay + 1)`` stacked IIR coefficients.
    static_matrix:
        ``(fleet, n, n)`` product of each die's mixing stages.
    backend_name:
        Compute backend for the hot primitives (ring scans, bit-slot
        GEMMs, spectral convolutions) — see
        :mod:`repro.photonics.backend`.  Resolved lazily at first use;
        unavailable or failing backends degrade to numpy with the
        reason recorded in :attr:`backend_degraded_reason`.
    """

    n_dies: int
    n_channels: int
    n_stages: int
    delay_samples: int
    with_memory: bool
    stage_matrices: np.ndarray
    ring_b: np.ndarray
    ring_a: np.ndarray
    static_matrix: np.ndarray
    backend_name: str = "numpy"
    # (launch, n_samples) -> time-domain / spectral response kernels,
    # built lazily; mutating the cache dicts is compatible with frozen.
    _kernel_cache: dict = field(default_factory=dict, repr=False, compare=False)
    # Lazily-resolved backend instance + degraded_reason (a dict so the
    # frozen dataclass can fill it in at first use).
    _backend_state: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    # -- compute backend ----------------------------------------------------

    def compute_backend(self) -> ArrayBackend:
        """The resolved :class:`ArrayBackend`, falling back to numpy.

        Resolution (availability probe + first-use self-check) happens
        once per fleet; a degraded backend records why in
        :attr:`backend_degraded_reason`.
        """
        state = self._backend_state
        if "backend" not in state:
            backend, reason = resolve_backend(self.backend_name)
            state["backend"] = backend
            state["degraded_reason"] = reason
        return state["backend"]

    @property
    def backend_degraded_reason(self):
        """Why the requested backend degraded to numpy (``None`` if not)."""
        self.compute_backend()
        return self._backend_state["degraded_reason"]

    # -- compilation -------------------------------------------------------

    @classmethod
    def compile(
        cls,
        scramblers: Sequence,
        wavelength: float = DEFAULT_WAVELENGTH,
        envs=_NOMINAL_ENV,
        backend: str = "numpy",
    ) -> "CompiledFleet":
        """Freeze a family of scramblers into stacked dense operators.

        ``envs`` is one :class:`OpticalEnvironment` for the whole fleet or
        a per-die sequence (ragged operating points).  All dies must share
        one design; raises ``ValueError`` otherwise.
        """
        scramblers = list(scramblers)
        if not scramblers:
            raise ValueError("cannot compile an empty fleet")
        _check_homogeneous(scramblers)
        base = scramblers[0]
        env_list = _as_env_list(envs, len(scramblers))
        table = _VariationTable(scramblers)
        matrices = _stacked_stage_matrices(scramblers, wavelength, env_list,
                                           table)
        ring_b, ring_a = _stacked_ring_coefficients(scramblers, table)
        static = np.broadcast_to(
            np.eye(base.n_channels, dtype=np.complex128),
            (len(scramblers), base.n_channels, base.n_channels),
        ).copy()
        for stage in range(base.n_stages):
            static = np.matmul(matrices[:, stage], static)
        return cls(
            n_dies=len(scramblers),
            n_channels=base.n_channels,
            n_stages=base.n_stages,
            delay_samples=base.ring_delay_samples,
            with_memory=base.with_memory,
            stage_matrices=matrices,
            ring_b=ring_b,
            ring_a=ring_a,
            static_matrix=static,
            backend_name=backend,
        )

    @classmethod
    def from_meshes(
        cls, meshes: Sequence[CompiledMesh], backend: str = "numpy"
    ) -> "CompiledFleet":
        """Stack per-die compiled meshes (the reference / fallback path)."""
        meshes = list(meshes)
        if not meshes:
            raise ValueError("cannot stack an empty fleet")
        base = meshes[0]
        for mesh in meshes[1:]:
            if (mesh.n_channels != base.n_channels
                    or mesh.n_stages != base.n_stages
                    or mesh.delay_samples != base.delay_samples
                    or mesh.with_memory != base.with_memory):
                raise ValueError("meshes must share one geometry to stack")
        return cls(
            n_dies=len(meshes),
            n_channels=base.n_channels,
            n_stages=base.n_stages,
            delay_samples=base.delay_samples,
            with_memory=base.with_memory,
            stage_matrices=np.stack([m.stage_matrices for m in meshes]),
            ring_b=np.stack([m.ring_b for m in meshes]),
            ring_a=np.stack([m.ring_a for m in meshes]),
            static_matrix=np.stack([m.static_matrix for m in meshes]),
            backend_name=backend,
        )

    def mesh(self, die: int) -> CompiledMesh:
        """A per-die :class:`CompiledMesh` view sharing this fleet's arrays."""
        return CompiledMesh(
            n_channels=self.n_channels,
            n_stages=self.n_stages,
            delay_samples=self.delay_samples,
            with_memory=self.with_memory,
            stage_matrices=self.stage_matrices[die],
            ring_b=self.ring_b[die],
            ring_a=self.ring_a[die],
            static_matrix=self.static_matrix[die],
            backend_name=self.backend_name,
        )

    # -- stacked propagation ----------------------------------------------

    def _die_indices(self, dies) -> np.ndarray:
        if dies is None:
            return np.arange(self.n_dies)
        return np.asarray(dies, dtype=np.intp)

    def propagate(self, fields: np.ndarray, dies=None) -> np.ndarray:
        """Propagate ``(fleet, batch, n_channels, n_samples)`` tensors.

        A 3-D ``(fleet, n_channels, n_samples)`` input is treated as batch
        one and squeezed back.  ``dies`` selects a subset of stacked dies
        (rows of ``fields`` then correspond to those dies in order), which
        is how partial rounds — retries, spot checks of a sample — run
        without re-stacking.  Work is tiled over ``fleet x batch`` so each
        tile's working set stays cache-resident.
        """
        fields = np.asarray(fields, dtype=np.complex128)
        squeeze = fields.ndim == 3
        if squeeze:
            fields = fields[:, np.newaxis]
        indices = self._die_indices(dies)
        n_sel, batch, n, n_samples = fields.shape
        if n_sel != indices.size:
            raise ValueError(
                f"fields stack {n_sel} dies, selection names {indices.size}"
            )
        if n != self.n_channels:
            raise ValueError(
                f"expected {self.n_channels} channels, got {n}"
            )
        matrices = self.stage_matrices[indices]
        if not self.with_memory:
            out = np.matmul(self.static_matrix[indices][:, np.newaxis], fields)
            return out[:, 0] if squeeze else out
        backend = self.compute_backend()
        tau = self.ring_b[indices][..., 0]          # (fleet, stages, n)
        rho = -self.ring_b[indices][..., -1]
        feedback = -self.ring_a[indices][..., -1]
        out = np.empty_like(fields)
        # Cache blocking over fleet x batch: whole-batch slabs of as many
        # dies as fit the budget; if even one die's batch is too large,
        # the batch axis is tiled too.
        per_die = batch * n * n_samples * 16
        die_tile = max(1, _TILE_TARGET_BYTES // max(1, per_die))
        batch_tile = max(1, _TILE_TARGET_BYTES // max(1, n * n_samples * 16))
        for f0 in range(0, n_sel, die_tile):
            f1 = min(f0 + die_tile, n_sel)
            for b0 in range(0, batch, batch_tile):
                b1 = min(b0 + batch_tile, batch)
                current = fields[f0:f1, b0:b1]
                for stage in range(self.n_stages):
                    current = np.matmul(
                        matrices[f0:f1, stage][:, np.newaxis], current
                    )
                    current = backend.ring_scan(
                        current,
                        tau[f0:f1, stage][:, np.newaxis, :, np.newaxis],
                        rho[f0:f1, stage][:, np.newaxis, :, np.newaxis],
                        feedback[f0:f1, stage][:, np.newaxis, :, np.newaxis],
                        self.delay_samples,
                    )
                out[f0:f1, b0:b1] = current
        return out[:, 0] if squeeze else out

    # -- response kernels --------------------------------------------------

    def response_kernel(self, launch: int, n_samples: int) -> tuple:
        """Per-die response kernels for single-channel launches.

        Returns ``(h, spectra, fft_length)`` where ``h`` is the
        ``(fleet, n_channels, n_samples)`` time-domain impulse response of
        each die to a unit sample on channel ``launch``, and ``spectra``
        its ``(fleet, n_channels, fft_length)`` DFT.  Output sample ``t``
        of a length-``n_samples`` interrogation depends only on taps
        ``0..t`` of ``h``, so convolving against these truncated kernels
        is *exact* for every sample the interrogation observes.

        Built lazily with one stacked :meth:`propagate` pass and cached
        per ``(launch, n_samples)``; this cache is the memory price of a
        stacked fleet (see ``memory_footprint_bytes``).
        """
        key = (int(launch), int(n_samples))
        cached = self._kernel_cache.get(key)
        if cached is None:
            impulse = np.zeros(
                (self.n_dies, 1, self.n_channels, n_samples),
                dtype=np.complex128,
            )
            impulse[:, 0, launch, 0] = 1.0
            h = self.propagate(impulse)[:, 0]
            length = _fft_length(n_samples)
            spectra = np.fft.fft(h, n=length, axis=-1)
            cached = (
                np.ascontiguousarray(h.real),
                np.ascontiguousarray(h.imag),
                spectra,
                length,
            )
            self._kernel_cache[key] = cached
        return cached

    def adopt_kernel(self, launch: int, n_samples: int, h_real: np.ndarray,
                     h_imag: np.ndarray, spectra: np.ndarray,
                     fft_length: int) -> None:
        """Install a pre-built response kernel (shared-memory adoption).

        The sharded execution layer (:mod:`repro.photonics.shard`)
        computes each kernel once in the parent and hands every worker a
        zero-copy view of its shard's rows; adopting it here means the
        worker never rebuilds fleet-wide kernels.  The arrays must be
        laid out exactly as :meth:`response_kernel` caches them.
        """
        key = (int(launch), int(n_samples))
        self._kernel_cache[key] = (h_real, h_imag, spectra, int(fft_length))

    def shard_view(self, start: int, stop: int) -> "CompiledFleet":
        """A zero-copy :class:`CompiledFleet` over dies ``start:stop``.

        Operator tensors are sliced views (no copy); the kernel cache
        starts empty — use :meth:`adopt_kernel` to share kernels too.
        """
        if not 0 <= start < stop <= self.n_dies:
            raise ValueError(
                f"shard [{start}, {stop}) outside fleet of {self.n_dies}"
            )
        return CompiledFleet(
            n_dies=stop - start,
            n_channels=self.n_channels,
            n_stages=self.n_stages,
            delay_samples=self.delay_samples,
            with_memory=self.with_memory,
            stage_matrices=self.stage_matrices[start:stop],
            ring_b=self.ring_b[start:stop],
            ring_a=self.ring_a[start:stop],
            static_matrix=self.static_matrix[start:stop],
            backend_name=self.backend_name,
        )

    def modulated_response(
        self, waves: np.ndarray, launch: int, dies=None
    ) -> np.ndarray:
        """Full output fields for modulated single-channel launches.

        ``waves`` is ``(fleet_sel, batch, n_samples)`` real drive
        waveforms (carrier amplitude folded in); returns the complex
        ``(fleet_sel, batch, n_channels, n_samples)`` output — identical
        (to FFT round-off) to building the sparse field tensor and calling
        :meth:`propagate`, evaluated as one batched spectral convolution.
        """
        waves = np.asarray(waves)
        indices = self._die_indices(dies)
        n_sel, batch, n_samples = waves.shape
        if n_sel != indices.size:
            raise ValueError(
                f"waves stack {n_sel} dies, selection names {indices.size}"
            )
        __, __, spectra, length = self.response_kernel(launch, n_samples)
        spectra = spectra[indices]
        backend = self.compute_backend()
        out = np.empty(
            (n_sel, batch, self.n_channels, n_samples), dtype=np.complex128
        )
        per_row = self.n_channels * length * 16
        rows = max(1, (4 * _TILE_TARGET_BYTES) // per_row)
        die_tile = max(1, rows // max(1, batch))
        for f0 in range(0, n_sel, die_tile):
            f1 = min(f0 + die_tile, n_sel)
            out[f0:f1] = backend.batched_fft_convolve(
                spectra[f0:f1], waves[f0:f1], length, n_samples
            )
        return out

    def response_power_at(
        self,
        waves: np.ndarray,
        samples: np.ndarray,
        launch: int,
        dies=None,
    ) -> np.ndarray:
        """Detected power at selected output samples only.

        The protocol compares photodiode energies in a handful of bit
        slots, so the hot paths never need the full output stream.  For
        real drive waveforms this evaluates
        ``|sum_k h[k] w[t - k]|^2`` at the requested sample positions
        ``t`` as two fleet-batched real GEMMs (real and imaginary kernel
        parts) — returns ``(fleet_sel, batch, n_channels, len(samples))``
        float64 power, tiled over ``fleet x batch``.
        """
        waves = np.asarray(waves, dtype=np.float64)
        samples = np.asarray(samples, dtype=np.intp)
        indices = self._die_indices(dies)
        n_sel, batch, n_samples = waves.shape
        if n_sel != indices.size:
            raise ValueError(
                f"waves stack {n_sel} dies, selection names {indices.size}"
            )
        h_real, h_imag, __, __ = self.response_kernel(launch, n_samples)
        h_real = h_real[indices]
        h_imag = h_imag[indices]
        backend = self.compute_backend()
        n_sel_samples = samples.size
        # Left-pad the waveforms so every lag index is in range, then one
        # advanced-index gather builds each die's lag matrix directly in
        # GEMM layout: column (b, j) of a die's ``(S, batch*T)`` matrix is
        # drive waveform b reversed around selected sample t_j.
        lag_index = (samples[np.newaxis, :] + (n_samples - 1)
                     - np.arange(n_samples)[:, np.newaxis])       # (S, T)
        batch_index = np.repeat(np.arange(batch), n_sel_samples)  # (batch*T,)
        sample_index = np.tile(lag_index, (1, batch))             # (S, batch*T)
        out = np.empty(
            (n_sel, batch, self.n_channels, n_sel_samples), dtype=np.float64
        )
        per_die = batch * n_samples * n_sel_samples * 8
        die_tile = max(1, (4 * _TILE_TARGET_BYTES) // max(1, per_die))
        for f0 in range(0, n_sel, die_tile):
            f1 = min(f0 + die_tile, n_sel)
            padded = np.concatenate(
                [np.zeros((f1 - f0, batch, n_samples - 1)), waves[f0:f1]],
                axis=-1,
            )
            lag = padded[:, batch_index, sample_index]
            power = backend.kernel_gemm(h_real[f0:f1], h_imag[f0:f1], lag)
            out[f0:f1] = power.reshape(
                f1 - f0, self.n_channels, batch, n_sel_samples
            ).transpose(0, 2, 1, 3)
        return out

    # -- accounting --------------------------------------------------------

    def memory_footprint_bytes(self) -> int:
        """Frozen operators plus cached response kernels."""
        total = (self.stage_matrices.nbytes + self.ring_b.nbytes
                 + self.ring_a.nbytes + self.static_matrix.nbytes)
        for entry in self._kernel_cache.values():
            total += sum(array.nbytes for array in entry[:3])
        return total

    def per_die_bytes(self) -> int:
        """Memory cost of one enrolled die in the stacked plane."""
        return self.memory_footprint_bytes() // max(1, self.n_dies)
