"""Pluggable compute backends for the photonic execution plane.

Authentication rounds are dominated by two numerical primitives: the
block-major first-order recurrence of the stacked ring scan
(:func:`~repro.photonics.engine.stacked_ring_scan`) and the
fleet-batched response-kernel GEMMs of
:meth:`~repro.photonics.fleet_engine.CompiledFleet.response_power_at`.
This module puts both — plus the batched spectral convolution of
``modulated_response`` — behind one small :class:`ArrayBackend`
interface so a single config flag (``EngineConfig(backend=...)``) moves
the whole execution plane to a JIT-compiled or GPU path:

* :class:`NumpyBackend` — the reference.  Its operations are the exact
  whole-tensor passes the engine has always run, so selecting it (the
  default) changes nothing, bit for bit.
* :class:`NumbaBackend` — JIT-compiles the ring-scan recurrence (drive
  term and block recurrence fused into one pass per ring, parallel over
  the stacked ``fleet x channels`` plane) and the bit-slot GEMM path.
  Registers always; reports :meth:`available` only when ``numba``
  imports.
* :class:`CupyBackend` / :class:`TorchBackend` — best-effort GPU paths
  that register always and report availability only when their import
  succeeds (and, for torch, when an accelerator actually helps — it
  still runs on CPU, which is useful for the contract suite).

Correctness story
-----------------
numpy stays the bit-exactness reference.  Every alternate backend must
agree with it at rtol 1e-9 on the raw float primitives *and* — because
responses are quantized to bits before any MAC is computed — produce
**bit-identical round transcripts** end to end: float reassociation in
a JIT/GPU kernel must never flip a differential-readout comparison.
:meth:`ArrayBackend.self_check` asserts both properties on
representative inputs at first use; :func:`resolve_backend` falls back
to numpy with a recorded ``degraded_reason`` when a backend is
unavailable or fails that check, so callers never need a second code
path (mirroring the sharded executor's degraded mode).

Alternate backends accept and return host (numpy) arrays — device
residency is internal to the backend, with :meth:`to_device` /
:meth:`from_device` exposed for callers that want to stage data
explicitly.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendUnavailable",
    "CupyBackend",
    "NumbaBackend",
    "NumpyBackend",
    "TorchBackend",
    "available_backend_names",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
]


class BackendUnavailable(RuntimeError):
    """Raised when a compute backend cannot serve (missing dep, bad check)."""


# ---------------------------------------------------------------------------
# JIT kernel bodies (plain Python, compiled by NumbaBackend at first use)
# ---------------------------------------------------------------------------

# Swapped for ``numba.prange`` when the JIT compiles the kernels below;
# as plain Python both behave like ``range``, so the kernel logic is
# testable without the JIT toolchain (tests/photonics/test_backends.py
# runs these bodies interpreted and pins them against NumpyBackend).
prange = range


def _ring_scan_rows(x, tau, rho, feedback, delay, out):
    """All-pass ring recurrence, one contiguous row per ring.

    ``x``/``out`` are ``(rings, n_samples)`` complex128 and ``tau`` /
    ``rho`` / ``feedback`` are ``(rings,)`` per-ring coefficients.  Per
    sample the bank is ``y[j] = tau x[j] - rho x[j - delay]
    + feedback y[j - delay]`` — exactly the block recurrence of the
    numpy reference unrolled per element, with the drive term fused
    into the same pass (no padded copy, no block temporaries).  Each
    row streams its samples once, so the working set per ring is a few
    registers: the cache blocking the numpy path gets from
    ``_TILE_TARGET_BYTES`` tiling falls out of the row-major layout.
    """
    rows, n_samples = x.shape
    head = delay if delay < n_samples else n_samples
    for row in prange(rows):
        t = tau[row]
        r = rho[row]
        f = feedback[row]
        for j in range(head):
            out[row, j] = t * x[row, j]
        for j in range(head, n_samples):
            out[row, j] = (t * x[row, j] - r * x[row, j - delay]) \
                + f * out[row, j - delay]


def _kernel_power_rows(h_real, h_imag, lag, out):
    """Bit-slot response power, one die per parallel iteration.

    ``h_real``/``h_imag`` are ``(fleet, channels, samples)`` kernel
    parts, ``lag`` is the ``(fleet, samples, columns)`` lag matrix and
    ``out`` receives ``|h * w|^2`` as ``(fleet, channels, columns)`` —
    the two real GEMMs of the numpy path with the power fused in.
    """
    fleet = h_real.shape[0]
    for die in prange(fleet):
        y_real = np.dot(h_real[die], lag[die])
        y_imag = np.dot(h_imag[die], lag[die])
        out[die] = y_real * y_real + y_imag * y_imag


# ---------------------------------------------------------------------------
# Backend interface + registry
# ---------------------------------------------------------------------------

class ArrayBackend:
    """One execution backend for the photonic plane's hot primitives.

    Subclasses implement the three primitives (:meth:`ring_scan`,
    :meth:`kernel_gemm`, :meth:`batched_fft_convolve`) over host
    arrays, plus :meth:`to_device`/:meth:`from_device` staging and the
    :meth:`available` probe.  :meth:`ensure_ready` runs
    :meth:`self_check` exactly once per process and caches the verdict;
    :func:`resolve_backend` uses it to gate first use.
    """

    #: Registry key; also what ``EngineConfig.backend`` validates against.
    name: str = "abstract"

    def __init__(self) -> None:
        self._checked: Optional[BaseException] = None
        self._check_ran = False

    # -- availability ------------------------------------------------------

    @classmethod
    def available(cls) -> bool:
        """Whether the backend's toolchain imports in this process."""
        return cls.unavailable_reason() is None

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        """Why :meth:`available` is False (``None`` when available)."""
        return None

    # -- array namespace / staging ----------------------------------------

    @property
    def xp(self):
        """The backend's array namespace (numpy-compatible module)."""
        return np

    def to_device(self, array: np.ndarray):
        """Stage a host array onto the backend's device (no-op on CPU)."""
        return array

    def from_device(self, array) -> np.ndarray:
        """Bring a device array back to host memory (no-op on CPU)."""
        return np.asarray(array)

    # -- primitives --------------------------------------------------------

    def ring_scan(self, fields: np.ndarray, tau: np.ndarray,
                  rho: np.ndarray, feedback: np.ndarray,
                  delay: int) -> np.ndarray:
        """Apply a whole bank of all-pass rings in one stacked pass.

        Same contract as
        :func:`repro.photonics.engine.stacked_ring_scan`: ``fields`` is
        ``(..., n_samples)`` with the rings axis among the leading
        dimensions, the coefficients broadcast against ``fields`` with
        a trailing length-1 sample axis.
        """
        raise NotImplementedError

    def kernel_gemm(self, h_real: np.ndarray, h_imag: np.ndarray,
                    lag: np.ndarray) -> np.ndarray:
        """Response power ``|h * w|^2`` as two fleet-batched real GEMMs.

        ``h_real``/``h_imag`` are ``(fleet, channels, samples)``,
        ``lag`` is ``(fleet, samples, columns)``; returns the
        ``(fleet, channels, columns)`` float64 power.
        """
        raise NotImplementedError

    def batched_fft_convolve(self, spectra: np.ndarray, waves: np.ndarray,
                             length: int, n_samples: int) -> np.ndarray:
        """Convolve drive waveforms against per-die response spectra.

        ``spectra`` is ``(fleet, channels, length)``, ``waves`` is
        ``(fleet, batch, n_samples)`` real; returns the complex
        ``(fleet, batch, channels, n_samples)`` output fields.
        """
        raise NotImplementedError

    # -- self-check gate ---------------------------------------------------

    def self_check(self) -> None:
        """Assert agreement with the numpy reference on small inputs.

        Checks every primitive at rtol 1e-9 *and* asserts that the
        adjacent-channel power comparisons the differential readout
        quantizes are identical — the bit-level half of the contract.
        Raises :class:`BackendUnavailable` on any mismatch.
        """
        reference = get_backend("numpy")
        if reference is self:
            return
        rng = np.random.default_rng(0x5EED)
        delay = 4
        shape = (3, 2, 5, 29)          # (fleet, batch, rings, samples)
        fields = (rng.standard_normal(shape)
                  + 1j * rng.standard_normal(shape))
        tau = rng.uniform(0.84, 0.92, (3, 1, 5, 1)).astype(np.complex128)
        rho = 0.99 * np.exp(-1j * rng.uniform(0, 2 * np.pi, (3, 1, 5, 1)))
        feedback = tau * rho
        mine = self.ring_scan(fields, tau, rho, feedback, delay)
        theirs = reference.ring_scan(fields, tau, rho, feedback, delay)
        if not np.allclose(mine, theirs, rtol=1e-9, atol=1e-12):
            raise BackendUnavailable(
                f"backend {self.name!r} ring_scan disagrees with numpy"
            )
        h_real = rng.standard_normal((4, 6, 16))
        h_imag = rng.standard_normal((4, 6, 16))
        lag = rng.standard_normal((4, 16, 10))
        power = self.kernel_gemm(h_real, h_imag, lag)
        power_ref = reference.kernel_gemm(h_real, h_imag, lag)
        if not np.allclose(power, power_ref, rtol=1e-9, atol=1e-12):
            raise BackendUnavailable(
                f"backend {self.name!r} kernel_gemm disagrees with numpy"
            )
        # The differential readout compares adjacent channels and
        # quantizes: the comparison outcome must be identical, or round
        # transcripts would diverge bit-wise.
        if not np.array_equal(power[:, :-1] > power[:, 1:],
                              power_ref[:, :-1] > power_ref[:, 1:]):
            raise BackendUnavailable(
                f"backend {self.name!r} flips differential-readout "
                "comparisons against the numpy reference"
            )
        waves = rng.standard_normal((3, 2, 24))
        spectra = np.fft.fft(
            rng.standard_normal((3, 5, 24))
            + 1j * rng.standard_normal((3, 5, 24)), n=64, axis=-1,
        )
        conv = self.batched_fft_convolve(spectra, waves, 64, 24)
        conv_ref = reference.batched_fft_convolve(spectra, waves, 64, 24)
        if not np.allclose(conv, conv_ref, rtol=1e-9, atol=1e-12):
            raise BackendUnavailable(
                f"backend {self.name!r} batched_fft_convolve disagrees "
                "with numpy"
            )

    def ensure_ready(self) -> None:
        """Run :meth:`self_check` once; re-raise its cached verdict."""
        if not self._check_ran:
            self._check_ran = True
            try:
                self.self_check()
            except BaseException as exc:
                self._checked = exc
        if self._checked is not None:
            raise self._checked


_REGISTRY: Dict[str, Type[ArrayBackend]] = {}
_INSTANCES: Dict[str, ArrayBackend] = {}


def register_backend(cls: Type[ArrayBackend]) -> Type[ArrayBackend]:
    """Register a backend class under its ``name`` (decorator-friendly).

    Registration is by *name*, not availability: unavailable backends
    stay listed so config validation can tell "unknown backend" (a
    typo — always an error) from "known but unavailable" (a degraded
    fallback at first use).
    """
    if not cls.name or cls.name == "abstract":
        raise ValueError("backend classes must set a concrete name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"backend name {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def backend_names() -> Tuple[str, ...]:
    """Every registered backend name (available or not), sorted."""
    return tuple(sorted(_REGISTRY))


def available_backend_names() -> Tuple[str, ...]:
    """Registered backends whose toolchain imports, numpy first."""
    names = [name for name in sorted(_REGISTRY)
             if _REGISTRY[name].available()]
    names.sort(key=lambda name: name != "numpy")
    return tuple(names)


def get_backend(name: str) -> ArrayBackend:
    """The singleton instance of a registered backend.

    Raises ``ValueError`` for unknown names and
    :class:`BackendUnavailable` when the backend's toolchain is
    missing.  Most callers want :func:`resolve_backend`, which falls
    back instead of raising.
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown compute backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}"
        ) from None
    if not cls.available():
        raise BackendUnavailable(
            f"compute backend {name!r} is unavailable: "
            f"{cls.unavailable_reason()}"
        )
    instance = _INSTANCES.get(name)
    if instance is None:
        instance = cls()
        _INSTANCES[name] = instance
    return instance


def resolve_backend(name: str) -> Tuple[ArrayBackend, Optional[str]]:
    """Resolve a backend by name with numpy fallback.

    Returns ``(backend, degraded_reason)``: the requested backend and
    ``None`` when it is available and passes its first-use self-check,
    otherwise the numpy reference and a human-readable reason — the
    same graceful-degradation contract as the sharded executor.
    Unknown names still raise ``ValueError`` (a typo is a config error,
    not a runtime condition).
    """
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown compute backend {name!r}; registered backends: "
            f"{', '.join(backend_names())}"
        )
    if name == "numpy":
        return get_backend("numpy"), None
    cls = _REGISTRY[name]
    if not cls.available():
        return get_backend("numpy"), (
            f"compute backend {name!r} unavailable: "
            f"{cls.unavailable_reason()}"
        )
    backend = get_backend(name)
    try:
        backend.ensure_ready()
    except BaseException as exc:
        return get_backend("numpy"), (
            f"compute backend {name!r} failed its self-check: {exc}"
        )
    return backend, None


# ---------------------------------------------------------------------------
# numpy — the reference
# ---------------------------------------------------------------------------

@register_backend
class NumpyBackend(ArrayBackend):
    """The bit-exactness reference: plain numpy whole-tensor passes."""

    name = "numpy"

    def ring_scan(self, fields: np.ndarray, tau: np.ndarray,
                  rho: np.ndarray, feedback: np.ndarray,
                  delay: int) -> np.ndarray:
        # Every ring couples samples only at distance ``delay``, so with
        # samples grouped into consecutive length-``delay`` blocks the
        # bank is the first-order recurrence
        #
        #     y_k = u_k + A y_{k-1},  u_k = tau x_k - rho x_{k-1},
        #     A = tau rho
        #
        # over blocks.  The drive term is written directly into the
        # block-padded buffer (no zero-pad + concatenate copy: the
        # drive's own tail is pure padding because the last block's
        # lagged samples all fall inside the real stream), then the
        # recurrence runs block-major so each step is one contiguous
        # multiply-add over the entire stacked rings plane.
        lead = fields.shape[:-1]
        n_samples = fields.shape[-1]
        blocks = -(-n_samples // delay)
        padding = blocks * delay - n_samples
        total = blocks * delay
        u = np.empty((*lead, total),
                     dtype=np.result_type(tau.dtype, fields.dtype))
        np.multiply(tau, fields, out=u[..., :n_samples])
        if padding:
            u[..., n_samples:] = 0.0
        # total - delay = (blocks - 1) * delay < n_samples, so the
        # lagged slice never reaches into the padding.
        u[..., delay:] -= rho * fields[..., :total - delay]
        # Block-major layout: step k touches one contiguous slab.
        w = np.ascontiguousarray(
            np.moveaxis(u.reshape(*lead, blocks, delay), -2, 0)
        )
        for k in range(1, blocks):
            w[k] += feedback * w[k - 1]
        out = np.moveaxis(w, 0, -2).reshape(*lead, total)
        return out[..., :n_samples] if padding else out

    def kernel_gemm(self, h_real: np.ndarray, h_imag: np.ndarray,
                    lag: np.ndarray) -> np.ndarray:
        y_real = np.matmul(h_real, lag)
        y_imag = np.matmul(h_imag, lag)
        return y_real * y_real + y_imag * y_imag

    def batched_fft_convolve(self, spectra: np.ndarray, waves: np.ndarray,
                             length: int, n_samples: int) -> np.ndarray:
        wave_spectra = np.fft.fft(waves, n=length, axis=-1)
        product = spectra[:, np.newaxis] * wave_spectra[:, :, np.newaxis]
        return np.fft.ifft(product, axis=-1)[..., :n_samples]


# ---------------------------------------------------------------------------
# numba — JIT-compiled CPU kernels
# ---------------------------------------------------------------------------

@register_backend
class NumbaBackend(NumpyBackend):
    """JIT-compiled ring scan + bit-slot GEMMs (numpy FFT path).

    The two round-dominating primitives are compiled at first use:
    :func:`_ring_scan_rows` fuses the drive term into the recurrence
    and runs one contiguous streaming pass per ring, parallel over the
    stacked ``fleet x channels`` plane; :func:`_kernel_power_rows`
    parallelizes the per-die response GEMMs with the power fused in.
    The spectral-convolution path stays on numpy's FFT (numba has
    none) — it is not round-critical.
    """

    name = "numba"
    _jitted = None

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        try:
            import numba  # noqa: F401
        except Exception as exc:  # pragma: no cover - depends on env
            return f"numba import failed ({exc})"
        return None

    @classmethod
    def _kernels(cls):
        """Compile (once per process) and return the jitted kernels."""
        if cls._jitted is None:
            import numba

            # The kernel bodies reference the module-global ``prange``;
            # numba resolves it at compile time, so swapping it in here
            # parallelizes the row loops (``numba.prange`` degrades to
            # plain ``range`` for interpreted calls).
            globals()["prange"] = numba.prange
            jit = numba.njit(parallel=True, fastmath=False, cache=False)
            cls._jitted = (jit(_ring_scan_rows), jit(_kernel_power_rows))
        return cls._jitted

    def ring_scan(self, fields: np.ndarray, tau: np.ndarray,
                  rho: np.ndarray, feedback: np.ndarray,
                  delay: int) -> np.ndarray:
        scan_rows, __ = self._kernels()
        lead = fields.shape[:-1]
        n_samples = fields.shape[-1]
        x = np.ascontiguousarray(fields, dtype=np.complex128)
        x = x.reshape(-1, n_samples)
        coeffs = [
            np.ascontiguousarray(
                np.broadcast_to(c[..., 0], lead), dtype=np.complex128
            ).reshape(-1)
            for c in (tau, rho, feedback)
        ]
        out = np.empty_like(x)
        scan_rows(x, coeffs[0], coeffs[1], coeffs[2], int(delay), out)
        return out.reshape(*lead, n_samples)

    def kernel_gemm(self, h_real: np.ndarray, h_imag: np.ndarray,
                    lag: np.ndarray) -> np.ndarray:
        __, power_rows = self._kernels()
        h_real = np.ascontiguousarray(h_real, dtype=np.float64)
        h_imag = np.ascontiguousarray(h_imag, dtype=np.float64)
        lag = np.ascontiguousarray(lag, dtype=np.float64)
        out = np.empty((h_real.shape[0], h_real.shape[1], lag.shape[2]))
        power_rows(h_real, h_imag, lag, out)
        return out

    def self_check(self) -> None:
        try:
            self._kernels()
        except Exception as exc:
            raise BackendUnavailable(
                f"numba JIT compilation failed: {exc}"
            ) from exc
        super().self_check()


# ---------------------------------------------------------------------------
# cupy / torch — best-effort GPU paths
# ---------------------------------------------------------------------------

@register_backend
class CupyBackend(ArrayBackend):
    """CUDA path via CuPy; registers always, serves only when it imports.

    The ring scan runs the same block-major recurrence as the numpy
    reference, on device; GEMMs and FFTs map straight onto cuBLAS /
    cuFFT.  Inputs and outputs stay host arrays (transfers are internal),
    so the engine needs no second code path.
    """

    name = "cupy"

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        try:
            import cupy
            cupy.zeros(1)  # fails when no CUDA device is usable
        except Exception as exc:
            return f"cupy unusable ({exc})"
        return None

    @property
    def xp(self):
        import cupy

        return cupy

    def to_device(self, array: np.ndarray):
        return self.xp.asarray(array)

    def from_device(self, array) -> np.ndarray:
        return self.xp.asnumpy(array)

    def ring_scan(self, fields, tau, rho, feedback, delay):
        cp = self.xp
        x = cp.asarray(fields)
        tau_d, rho_d, feedback_d = (cp.asarray(c)
                                    for c in (tau, rho, feedback))
        lead = x.shape[:-1]
        n_samples = x.shape[-1]
        blocks = -(-n_samples // delay)
        total = blocks * delay
        padding = total - n_samples
        u = cp.empty((*lead, total), dtype=cp.complex128)
        u[..., :n_samples] = tau_d * x
        if padding:
            u[..., n_samples:] = 0.0
        u[..., delay:] -= rho_d * x[..., :total - delay]
        w = cp.ascontiguousarray(
            cp.moveaxis(u.reshape(*lead, blocks, delay), -2, 0)
        )
        for k in range(1, blocks):
            w[k] += feedback_d * w[k - 1]
        out = cp.moveaxis(w, 0, -2).reshape(*lead, total)
        return self.from_device(out[..., :n_samples] if padding else out)

    def kernel_gemm(self, h_real, h_imag, lag):
        cp = self.xp
        y_real = cp.matmul(cp.asarray(h_real), cp.asarray(lag))
        y_imag = cp.matmul(cp.asarray(h_imag), cp.asarray(lag))
        return self.from_device(y_real * y_real + y_imag * y_imag)

    def batched_fft_convolve(self, spectra, waves, length, n_samples):
        cp = self.xp
        wave_spectra = cp.fft.fft(cp.asarray(waves), n=length, axis=-1)
        product = (cp.asarray(spectra)[:, cp.newaxis]
                   * wave_spectra[:, :, cp.newaxis])
        return self.from_device(cp.fft.ifft(product, axis=-1)[..., :n_samples])


@register_backend
class TorchBackend(ArrayBackend):
    """Torch path (CUDA/MPS when present, CPU otherwise).

    Double precision throughout — the rtol-1e-9 equivalence contract
    rules out float32 — with the same host-in/host-out convention as
    :class:`CupyBackend`.
    """

    name = "torch"

    @classmethod
    def unavailable_reason(cls) -> Optional[str]:
        try:
            import torch  # noqa: F401
        except Exception as exc:
            return f"torch import failed ({exc})"
        return None

    @property
    def xp(self):
        import torch

        return torch

    def _device(self):
        torch = self.xp
        if torch.cuda.is_available():
            return torch.device("cuda")
        return torch.device("cpu")

    def to_device(self, array: np.ndarray):
        torch = self.xp
        return torch.from_numpy(np.ascontiguousarray(array)).to(self._device())

    def from_device(self, array) -> np.ndarray:
        return array.cpu().numpy()

    def ring_scan(self, fields, tau, rho, feedback, delay):
        torch = self.xp
        x = self.to_device(np.asarray(fields, dtype=np.complex128))
        tau_d, rho_d, feedback_d = (
            self.to_device(np.asarray(c, dtype=np.complex128))
            for c in (tau, rho, feedback)
        )
        lead = tuple(x.shape[:-1])
        n_samples = x.shape[-1]
        blocks = -(-n_samples // delay)
        total = blocks * delay
        padding = total - n_samples
        u = torch.empty((*lead, total), dtype=torch.complex128,
                        device=x.device)
        u[..., :n_samples] = tau_d * x
        if padding:
            u[..., n_samples:] = 0.0
        u[..., delay:] -= rho_d * x[..., :total - delay]
        w = u.reshape(*lead, blocks, delay).movedim(-2, 0).contiguous()
        for k in range(1, blocks):
            w[k] += feedback_d * w[k - 1]
        out = w.movedim(0, -2).reshape(*lead, total)
        return self.from_device(out[..., :n_samples] if padding else out)

    def kernel_gemm(self, h_real, h_imag, lag):
        torch = self.xp
        lag_d = self.to_device(np.asarray(lag, dtype=np.float64))
        y_real = torch.matmul(
            self.to_device(np.asarray(h_real, dtype=np.float64)), lag_d
        )
        y_imag = torch.matmul(
            self.to_device(np.asarray(h_imag, dtype=np.float64)), lag_d
        )
        return self.from_device(y_real * y_real + y_imag * y_imag)

    def batched_fft_convolve(self, spectra, waves, length, n_samples):
        torch = self.xp
        wave_spectra = torch.fft.fft(
            self.to_device(np.asarray(waves, dtype=np.float64)), n=length,
            dim=-1,
        )
        product = (self.to_device(np.asarray(spectra))[:, None]
                   * wave_spectra[:, :, None])
        out = torch.fft.ifft(product, dim=-1)[..., :n_samples]
        return self.from_device(out)
