"""Passive multi-port scrambling architectures.

Paper Fig. 2 describes the PUF core as a *passive architecture* that splits
the modulated light over many paths, scrambles amplitude and phase, and —
through resonant (memory) devices — mixes past bits with present ones,
"similarly to what happens in reservoir computing".

We model it as alternating stages of:

* an instantaneous N x N unitary-like mixing layer built from 2x2 MZI
  couplers in the Clements arrangement (amplitude + phase scrambling), and
* a bank of per-channel ring resonators acting as discrete-time IIR
  all-pass filters (temporal memory).

Process variation perturbs every MZI phase, coupler ratio and ring
round-trip phase per die, which is where the device fingerprint comes from.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.photonics.components import DirectionalCoupler, PhaseShifter
from repro.photonics.constants import DEFAULT_WAVELENGTH
from repro.photonics.variation import DieVariation, OpticalEnvironment
from repro.utils.rng import derive_rng

_NOMINAL_ENV = OpticalEnvironment()


@dataclass
class MixingLayer:
    """One Clements-style layer of 2x2 MZI mixers over ``n_channels`` waveguides.

    ``offset`` is 0 for even layers (pairs 0-1, 2-3, ...) and 1 for odd
    layers (pairs 1-2, 3-4, ...), so consecutive layers entangle all
    channels.  Nominal mixing angles come from the *design* seed (common to
    all dies); per-die deviations come from the variation handle.
    """

    n_channels: int
    layer_index: int
    design_seed: int
    label: str = "mix"
    variation: Optional[DieVariation] = None
    insertion_loss_db: float = 0.1
    # Physical length of the scrambling paths feeding each mixer; at
    # millimetre scale the accumulated index variation randomises the
    # relative phases by order 2*pi per die.
    scramble_path_length: float = 1.5e-3

    def _pairs(self) -> List[tuple]:
        offset = self.layer_index % 2
        return [(i, i + 1) for i in range(offset, self.n_channels - 1, 2)]

    def matrix(
        self, wavelength: float = DEFAULT_WAVELENGTH, env: OpticalEnvironment = _NOMINAL_ENV
    ) -> np.ndarray:
        """Complex N x N transfer matrix of this layer."""
        design_rng = derive_rng(self.design_seed, self.label, self.layer_index, "design")
        matrix = np.eye(self.n_channels, dtype=np.complex128)
        for (i, j) in self._pairs():
            theta = float(design_rng.uniform(0.0, 2.0 * math.pi))
            kappa = float(design_rng.uniform(0.2, 0.8))
            element = f"{self.label}.{self.layer_index}.{i}"
            coupler = DirectionalCoupler(kappa, f"{element}.dc", self.variation)
            # Millimetre-scale scrambling paths: index variation integrates
            # over the full path, giving order-2*pi per-die phase spread —
            # the origin of the photonic fingerprint.
            shifter = PhaseShifter(theta, f"{element}.ps", self.variation,
                                   length=self.scramble_path_length)
            two_by_two = coupler.matrix()
            two_by_two[0, :] *= shifter.factor(wavelength, env)
            block = np.eye(self.n_channels, dtype=np.complex128)
            block[np.ix_([i, j], [i, j])] = two_by_two
            matrix = block @ matrix
        # Per-channel residual phases from path-length variation.
        for ch in range(self.n_channels):
            residual = PhaseShifter(
                0.0, f"{self.label}.{self.layer_index}.res{ch}", self.variation,
                length=self.scramble_path_length,
            )
            matrix[ch, :] *= residual.factor(wavelength, env)
        loss = 10.0 ** (-self.insertion_loss_db / 20.0)
        return loss * matrix


@dataclass
class DiscreteTimeRing:
    """All-pass ring resonator as a discrete-time IIR filter.

    Transfer function (delay of ``delay_samples`` per round trip):

        H(z) = (tau - a e^{-j phi} z^{-D}) / (1 - tau a e^{-j phi} z^{-D})

    which is the sampled equivalent of the analytic all-pass ring and
    preserves its key property: energy from past samples recirculates and
    interferes with the present input.
    """

    tau: float = 0.85
    round_trip_amplitude: float = 0.96
    round_trip_phase: float = 0.0
    delay_samples: int = 2

    def __post_init__(self) -> None:
        if not 0.0 < self.tau < 1.0:
            raise ValueError("tau must lie strictly between 0 and 1")
        if not 0.0 < self.round_trip_amplitude <= 1.0:
            raise ValueError("round-trip amplitude must lie in (0, 1]")
        if self.delay_samples < 1:
            raise ValueError("delay must be at least one sample")

    def coefficients(self) -> tuple:
        """(b, a) polynomial coefficients of H(z) for ``scipy.signal.lfilter``."""
        rot = self.round_trip_amplitude * cmath.exp(-1j * self.round_trip_phase)
        b = np.zeros(self.delay_samples + 1, dtype=np.complex128)
        a = np.zeros(self.delay_samples + 1, dtype=np.complex128)
        b[0], b[-1] = self.tau, -rot
        a[0], a[-1] = 1.0, -self.tau * rot
        return b, a

    def filter(self, x: np.ndarray) -> np.ndarray:
        """Apply the ring to complex sample stream(s) along the last axis."""
        from scipy.signal import lfilter

        x = np.asarray(x, dtype=np.complex128)
        b, a = self.coefficients()
        return lfilter(b, a, x, axis=-1)

    def impulse_response(self, n_samples: int = 64) -> np.ndarray:
        """First ``n_samples`` of the impulse response (for memory analysis)."""
        impulse = np.zeros(n_samples, dtype=np.complex128)
        impulse[0] = 1.0
        return self.filter(impulse)

    def memory_decay_samples(self, threshold: float = 1e-3) -> int:
        """Samples until the recirculating energy falls below ``threshold``.

        Quantifies the "response disappears after interrogation" property
        the paper claims makes remanence attacks impossible (Sec. IV).
        """
        level = 1.0
        per_trip = self.tau * self.round_trip_amplitude
        trips = 0
        while level > threshold and trips < 10_000:
            level *= per_trip
            trips += 1
        return trips * self.delay_samples


@dataclass
class PassiveScrambler:
    """The full passive PUF architecture: mixing layers + ring memory banks.

    Parameters
    ----------
    n_channels:
        Number of parallel waveguides (one photodiode each at the output).
    n_stages:
        Number of (mixing layer, ring bank) stages.
    design_seed:
        Seed of the *layout* (identical for every die of the family).
    variation:
        Frozen per-die variation; ``None`` gives the nominal design.
    with_memory:
        Disable to ablate the reservoir-like temporal mixing (DESIGN.md
        ablation 4).
    """

    n_channels: int = 8
    n_stages: int = 4
    design_seed: int = 0
    variation: Optional[DieVariation] = None
    with_memory: bool = True
    ring_delay_samples: int = 4
    layers: List[MixingLayer] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_channels < 2:
            raise ValueError("a scrambler needs at least two channels")
        if self.n_stages < 1:
            raise ValueError("a scrambler needs at least one stage")
        self.layers = [
            MixingLayer(self.n_channels, idx, self.design_seed,
                        label="scr", variation=self.variation)
            for idx in range(self.n_stages)
        ]

    def _ring(self, stage: int, channel: int) -> DiscreteTimeRing:
        design_rng = derive_rng(self.design_seed, "ring", stage, channel)
        phase = float(design_rng.uniform(0.0, 2.0 * math.pi))
        if self.variation:
            label = f"scr.ring.{stage}.{channel}"
            # Ring phase is extremely sensitive to geometry: a full 2*pi of
            # die-to-die spread is realistic for micrometre-scale rings.
            phase += 2.0 * math.pi * 50.0 * self.variation.neff_offset(label)
        # Ring coupling balances two security properties: low tau gives a
        # strong (die-unique) echo but short memory; high tau extends the
        # memory but weakens the echo.  tau ~ 0.88 with a ~ 0.99 keeps
        # several bit slots of history alive while the echo still carries
        # the die fingerprint.
        tau = float(design_rng.uniform(0.84, 0.92))
        return DiscreteTimeRing(
            tau=tau,
            round_trip_amplitude=0.99,
            round_trip_phase=phase % (2.0 * math.pi),
            delay_samples=self.ring_delay_samples,
        )

    def propagate(
        self,
        fields: np.ndarray,
        wavelength: float = DEFAULT_WAVELENGTH,
        env: OpticalEnvironment = _NOMINAL_ENV,
    ) -> np.ndarray:
        """Propagate field matrices through the PUF.

        ``fields`` is either ``(n_channels, n_samples)`` for a single
        interrogation or ``(batch, n_channels, n_samples)`` for a batch
        sharing the same wavelength/environment.  The input light usually
        enters on channel 0 only; use :meth:`launch` to build the input.
        """
        fields = np.asarray(fields, dtype=np.complex128)
        squeeze = fields.ndim == 2
        if squeeze:
            fields = fields[np.newaxis]
        if fields.shape[1] != self.n_channels:
            raise ValueError(
                f"expected {self.n_channels} channels, got {fields.shape[1]}"
            )
        current = fields
        for stage, layer in enumerate(self.layers):
            matrix = layer.matrix(wavelength, env)
            current = np.einsum("ij,bjn->bin", matrix, current)
            if self.with_memory:
                filtered = np.empty_like(current)
                for ch in range(self.n_channels):
                    filtered[:, ch, :] = self._ring(stage, ch).filter(current[:, ch, :])
                current = filtered
        return current[0] if squeeze else current

    def launch(self, stream: np.ndarray) -> np.ndarray:
        """Place a single complex sample stream on input channel 0."""
        stream = np.asarray(stream, dtype=np.complex128)
        fields = np.zeros((self.n_channels, stream.size), dtype=np.complex128)
        fields[0] = stream
        return fields

    def static_matrix(
        self, wavelength: float = DEFAULT_WAVELENGTH, env: OpticalEnvironment = _NOMINAL_ENV
    ) -> np.ndarray:
        """Product of the mixing layers only (no memory): the CW response."""
        matrix = np.eye(self.n_channels, dtype=np.complex128)
        for layer in self.layers:
            matrix = layer.matrix(wavelength, env) @ matrix
        return matrix

    def compile(
        self, wavelength: float = DEFAULT_WAVELENGTH, env: OpticalEnvironment = _NOMINAL_ENV
    ):
        """Freeze this scrambler at one operating point into dense operators.

        Returns a :class:`~repro.photonics.engine.CompiledMesh` whose
        ``propagate`` agrees with :meth:`propagate` to round-off but runs
        with no Python loops over channels or batch.
        """
        from repro.photonics.engine import CompiledMesh

        return CompiledMesh.compile(self, wavelength, env)


# The paper-facing name for the passive scrambling architecture; kept as an
# alias so call sites can use either vocabulary.
ScramblingMesh = PassiveScrambler
