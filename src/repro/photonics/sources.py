"""Optical sources and modulators.

The NEUROPULS interrogation chain (paper Fig. 2) is: telecom laser ->
Mach-Zehnder optical modulator driven by the ASIC -> passive PUF
architecture -> photodiodes.  This module models the laser (power, relative
intensity noise) and the modulator (bit stream -> optical field samples at
a configurable bit rate and oversampling factor).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.photonics.constants import DEFAULT_WAVELENGTH


@dataclass(frozen=True)
class Laser:
    """Continuous-wave telecom laser.

    Attributes
    ----------
    power_mw:
        Emitted optical power in milliwatts.
    wavelength:
        Emission wavelength in metres.
    rin_db_per_hz:
        Relative intensity noise spectral density; -150 dB/Hz is a typical
        DFB value.  Converted to per-sample amplitude noise given the
        simulation bandwidth.
    """

    power_mw: float = 1.0
    wavelength: float = DEFAULT_WAVELENGTH
    rin_db_per_hz: float = -150.0

    def field_amplitude(self) -> float:
        """CW field amplitude in sqrt(mW) units (|E|^2 = power)."""
        return math.sqrt(self.power_mw)

    def rin_sigma(self, bandwidth_hz: float) -> float:
        """RMS relative power fluctuation over the given bandwidth."""
        rin_linear = 10.0 ** (self.rin_db_per_hz / 10.0)
        return math.sqrt(rin_linear * bandwidth_hz)

    def emit(self, n_samples: int, bandwidth_hz: float, rng: np.random.Generator) -> np.ndarray:
        """Complex field samples including intensity noise."""
        relative = 1.0 + self.rin_sigma(bandwidth_hz) * rng.standard_normal(n_samples)
        power = np.clip(self.power_mw * relative, 0.0, None)
        return np.sqrt(power).astype(np.complex128)


@dataclass(frozen=True)
class MachZehnderModulator:
    """Intensity modulator encoding a bit stream onto the optical carrier.

    Attributes
    ----------
    bit_rate:
        Modulation rate in bit/s.  The paper's demonstrated architecture
        ran at 25 Gbit/s (Sec. II-A).
    extinction_ratio_db:
        Power ratio between the '1' and '0' levels.
    samples_per_bit:
        Time-domain oversampling factor used by downstream filters.
    rise_samples:
        10-90 % edge duration expressed in samples; implemented as a
        single-pole smoothing of the drive waveform.
    """

    bit_rate: float = 25e9
    extinction_ratio_db: float = 20.0
    samples_per_bit: int = 8
    rise_samples: float = 1.5

    @property
    def sample_rate(self) -> float:
        """Simulation sample rate in Hz."""
        return self.bit_rate * self.samples_per_bit

    @property
    def bit_period(self) -> float:
        return 1.0 / self.bit_rate

    def drive_waveform(self, bits: np.ndarray) -> np.ndarray:
        """Normalised drive amplitude per sample in [floor, 1]."""
        floor = 10.0 ** (-self.extinction_ratio_db / 20.0)
        levels = np.where(np.asarray(bits, dtype=np.uint8) > 0, 1.0, floor)
        wave = np.repeat(levels, self.samples_per_bit).astype(np.float64)
        if self.rise_samples > 0:
            # Single-pole low-pass to give finite rise/fall times.
            alpha = 1.0 - math.exp(-1.0 / self.rise_samples)
            state = wave[0]
            for i in range(wave.size):
                state += alpha * (wave[i] - state)
                wave[i] = state
        return wave

    def modulate(self, carrier: np.ndarray, bits: np.ndarray) -> np.ndarray:
        """Apply the bit stream to CW carrier field samples."""
        wave = self.drive_waveform(bits)
        if carrier.shape[0] != wave.shape[0]:
            raise ValueError(
                f"carrier has {carrier.shape[0]} samples, drive needs {wave.shape[0]}"
            )
        return carrier * wave

    def drive_waveform_batch(self, bits: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`drive_waveform` over a ``(batch, n_bits)`` matrix.

        The per-sample single-pole smoother is the recurrence
        ``y[i] = (1 - alpha) * y[i - 1] + alpha * w[i]`` seeded with
        ``y[-1] = w[0]``; ``scipy.signal.lfilter`` evaluates it for every
        row at once, with the seed supplied as a per-row initial state.
        """
        floor = 10.0 ** (-self.extinction_ratio_db / 20.0)
        bits = np.atleast_2d(np.asarray(bits, dtype=np.uint8))
        levels = np.where(bits > 0, 1.0, floor)
        wave = np.repeat(levels, self.samples_per_bit, axis=1).astype(np.float64)
        if self.rise_samples > 0:
            from scipy.signal import lfilter

            alpha = 1.0 - math.exp(-1.0 / self.rise_samples)
            initial = (1.0 - alpha) * wave[:, :1]
            wave, __ = lfilter([alpha], [1.0, -(1.0 - alpha)], wave,
                               axis=-1, zi=initial)
        return wave

    def modulate_batch(self, carrier: np.ndarray, bits: np.ndarray) -> np.ndarray:
        """Apply many bit streams to one CW carrier: ``(batch, n_samples)``."""
        wave = self.drive_waveform_batch(bits)
        if carrier.shape[0] != wave.shape[1]:
            raise ValueError(
                f"carrier has {carrier.shape[0]} samples, drive needs {wave.shape[1]}"
            )
        return carrier[np.newaxis, :] * wave

    def n_samples(self, n_bits: int) -> int:
        """Number of field samples needed to carry ``n_bits``."""
        return n_bits * self.samples_per_bit
