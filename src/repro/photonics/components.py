"""Passive photonic component models.

Each component exposes its action on the complex optical field at a given
wavelength and temperature.  Two-port devices return scalar complex
transmission factors; four-port devices (couplers, MZIs, add-drop rings)
return 2x2 complex transfer matrices acting on the (port-a, port-b) field
vector.

The models are the standard analytic transfer functions used in photonic
circuit simulation; process variation enters through a
:class:`~repro.photonics.variation.DieVariation` handle so that each
fabricated die has its own frozen parameter set.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.photonics.constants import (
    DEFAULT_LOSS_DB_PER_CM,
    DEFAULT_N_EFF,
    DEFAULT_N_GROUP,
    DEFAULT_WAVELENGTH,
    SILICON_DN_DT,
    loss_db_per_cm_to_alpha,
)
from repro.photonics.variation import DieVariation, OpticalEnvironment

_NOMINAL_ENV = OpticalEnvironment()


def effective_index(
    wavelength: float,
    neff0: float = DEFAULT_N_EFF,
    ng: float = DEFAULT_N_GROUP,
    neff_offset: float = 0.0,
    delta_t: float = 0.0,
) -> float:
    """First-order dispersive, thermo-optic effective index.

    n_eff(lambda, T) = n_eff0 - (n_g - n_eff0) * (lambda - lambda0)/lambda0
                       + dn/dT * (T - T_ref) + offset
    """
    dispersion = -(ng - neff0) * (wavelength - DEFAULT_WAVELENGTH) / DEFAULT_WAVELENGTH
    return neff0 + dispersion + SILICON_DN_DT * delta_t + neff_offset


@dataclass
class Waveguide:
    """A straight or bent waveguide section of given physical length."""

    length: float
    label: str = "wg"
    loss_db_per_cm: float = DEFAULT_LOSS_DB_PER_CM
    neff0: float = DEFAULT_N_EFF
    ng: float = DEFAULT_N_GROUP
    variation: Optional[DieVariation] = None

    def _neff(self, wavelength: float, env: OpticalEnvironment) -> float:
        offset = self.variation.neff_offset(self.label) if self.variation else 0.0
        return effective_index(wavelength, self.neff0, self.ng, offset, env.delta_t)

    def _alpha(self) -> float:
        loss = self.loss_db_per_cm
        if self.variation:
            loss *= self.variation.loss_factor(self.label)
        return loss_db_per_cm_to_alpha(loss)

    def transmission(
        self, wavelength: float = DEFAULT_WAVELENGTH, env: OpticalEnvironment = _NOMINAL_ENV
    ) -> complex:
        """Complex field transmission exp(-alpha L / 2) * exp(-j beta L)."""
        beta = 2.0 * math.pi * self._neff(wavelength, env) / wavelength
        amplitude = math.exp(-self._alpha() * self.length / 2.0)
        return amplitude * complex(math.cos(beta * self.length), -math.sin(beta * self.length))

    def group_delay(self) -> float:
        """Propagation delay of the section in seconds (n_g * L / c)."""
        from repro.photonics.constants import SPEED_OF_LIGHT

        return self.ng * self.length / SPEED_OF_LIGHT


@dataclass
class DirectionalCoupler:
    """Lossless 2x2 directional coupler with power-coupling ratio ``kappa``."""

    kappa: float = 0.5
    label: str = "dc"
    variation: Optional[DieVariation] = None

    def coupling(self) -> float:
        """Effective power-coupling ratio after process variation (clipped to (0,1))."""
        kappa = self.kappa
        if self.variation:
            kappa *= self.variation.coupling_factor(self.label)
        return min(max(kappa, 1e-6), 1.0 - 1e-6)

    def matrix(self) -> np.ndarray:
        """Unitary transfer matrix [[t, -j k], [-j k, t]]."""
        kappa = self.coupling()
        t = math.sqrt(1.0 - kappa)
        k = math.sqrt(kappa)
        return np.array([[t, -1j * k], [-1j * k, t]], dtype=np.complex128)


@dataclass
class PhaseShifter:
    """Static phase element (used as an MZI arm bias)."""

    phase: float = 0.0
    label: str = "ps"
    variation: Optional[DieVariation] = None
    # Conversion from effective-index variation to phase variation assumes a
    # fixed interaction length; 100 um is typical for a thermo-optic heater.
    length: float = 100e-6

    def shift(self, wavelength: float = DEFAULT_WAVELENGTH, env: OpticalEnvironment = _NOMINAL_ENV) -> float:
        """Total phase including process and thermal contributions."""
        offset = self.variation.neff_offset(self.label) if self.variation else 0.0
        drift = SILICON_DN_DT * env.delta_t
        return self.phase + 2.0 * math.pi * (offset + drift) * self.length / wavelength

    def factor(self, wavelength: float = DEFAULT_WAVELENGTH, env: OpticalEnvironment = _NOMINAL_ENV) -> complex:
        """Complex field factor exp(-j phi)."""
        phi = self.shift(wavelength, env)
        return complex(math.cos(phi), -math.sin(phi))


@dataclass
class MachZehnderInterferometer:
    """2x2 MZI: coupler, differential arm (theta + variation), coupler."""

    theta: float = 0.0
    label: str = "mzi"
    variation: Optional[DieVariation] = None
    arm_length: float = 200e-6

    def matrix(
        self, wavelength: float = DEFAULT_WAVELENGTH, env: OpticalEnvironment = _NOMINAL_ENV
    ) -> np.ndarray:
        """Transfer matrix of the full interferometer."""
        coupler_in = DirectionalCoupler(0.5, f"{self.label}.dc_in", self.variation)
        coupler_out = DirectionalCoupler(0.5, f"{self.label}.dc_out", self.variation)
        upper = PhaseShifter(self.theta, f"{self.label}.arm_u", self.variation, self.arm_length)
        lower = PhaseShifter(0.0, f"{self.label}.arm_l", self.variation, self.arm_length)
        arm = np.array(
            [[upper.factor(wavelength, env), 0.0], [0.0, lower.factor(wavelength, env)]],
            dtype=np.complex128,
        )
        return coupler_out.matrix() @ arm @ coupler_in.matrix()


@dataclass
class MicroringAllPass:
    """All-pass microring resonator side-coupled to a bus waveguide.

    Through-port field transmission (standard all-pass formula):

        t(phi) = (tau - a * e^{-j phi}) / (1 - tau * a * e^{-j phi})

    with tau the through-coupling amplitude, a the single-pass amplitude
    transmission, and phi the round-trip phase.
    """

    radius: float = 10e-6
    kappa: float = 0.1
    label: str = "ring"
    loss_db_per_cm: float = DEFAULT_LOSS_DB_PER_CM
    neff0: float = DEFAULT_N_EFF
    ng: float = DEFAULT_N_GROUP
    variation: Optional[DieVariation] = None

    @property
    def circumference(self) -> float:
        return 2.0 * math.pi * self.radius

    def round_trip_phase(self, wavelength: float, env: OpticalEnvironment = _NOMINAL_ENV) -> float:
        offset = self.variation.neff_offset(self.label) if self.variation else 0.0
        neff = effective_index(wavelength, self.neff0, self.ng, offset, env.delta_t)
        return 2.0 * math.pi * neff * self.circumference / wavelength

    def single_pass_amplitude(self) -> float:
        loss = self.loss_db_per_cm
        if self.variation:
            loss *= self.variation.loss_factor(self.label)
        return math.exp(-loss_db_per_cm_to_alpha(loss) * self.circumference / 2.0)

    def _tau(self) -> float:
        kappa = self.kappa
        if self.variation:
            kappa *= self.variation.coupling_factor(f"{self.label}.kappa")
        kappa = min(max(kappa, 1e-6), 1.0 - 1e-6)
        return math.sqrt(1.0 - kappa)

    def through_transmission(
        self, wavelength: float = DEFAULT_WAVELENGTH, env: OpticalEnvironment = _NOMINAL_ENV
    ) -> complex:
        """Complex through-port transmission at the given wavelength."""
        tau = self._tau()
        a = self.single_pass_amplitude()
        phase = complex(math.cos(self.round_trip_phase(wavelength, env)),
                        -math.sin(self.round_trip_phase(wavelength, env)))
        return (tau - a * phase) / (1.0 - tau * a * phase)

    def free_spectral_range(self, wavelength: float = DEFAULT_WAVELENGTH) -> float:
        """FSR in metres of wavelength: lambda^2 / (n_g * L)."""
        return wavelength ** 2 / (self.ng * self.circumference)


@dataclass
class MicroringAddDrop:
    """Add-drop microring with two bus waveguides (through + drop ports).

    Through:  t(phi) = (tau1 - tau2 a e^{-j phi}) / (1 - tau1 tau2 a e^{-j phi})
    Drop:     d(phi) = -sqrt(k1 k2 a) e^{-j phi/2} / (1 - tau1 tau2 a e^{-j phi})
    """

    radius: float = 10e-6
    kappa_in: float = 0.1
    kappa_drop: float = 0.1
    label: str = "adring"
    loss_db_per_cm: float = DEFAULT_LOSS_DB_PER_CM
    neff0: float = DEFAULT_N_EFF
    ng: float = DEFAULT_N_GROUP
    variation: Optional[DieVariation] = None

    @property
    def circumference(self) -> float:
        return 2.0 * math.pi * self.radius

    def round_trip_phase(self, wavelength: float, env: OpticalEnvironment = _NOMINAL_ENV) -> float:
        offset = self.variation.neff_offset(self.label) if self.variation else 0.0
        neff = effective_index(wavelength, self.neff0, self.ng, offset, env.delta_t)
        return 2.0 * math.pi * neff * self.circumference / wavelength

    def single_pass_amplitude(self) -> float:
        loss = self.loss_db_per_cm
        if self.variation:
            loss *= self.variation.loss_factor(self.label)
        return math.exp(-loss_db_per_cm_to_alpha(loss) * self.circumference / 2.0)

    def _couplings(self) -> tuple:
        k1, k2 = self.kappa_in, self.kappa_drop
        if self.variation:
            k1 *= self.variation.coupling_factor(f"{self.label}.k1")
            k2 *= self.variation.coupling_factor(f"{self.label}.k2")
        clip = lambda k: min(max(k, 1e-6), 1.0 - 1e-6)  # noqa: E731
        return clip(k1), clip(k2)

    def responses(
        self, wavelength: float = DEFAULT_WAVELENGTH, env: OpticalEnvironment = _NOMINAL_ENV
    ) -> tuple:
        """(through, drop) complex field responses at the given wavelength."""
        k1, k2 = self._couplings()
        tau1, tau2 = math.sqrt(1.0 - k1), math.sqrt(1.0 - k2)
        a = self.single_pass_amplitude()
        phi = self.round_trip_phase(wavelength, env)
        ephi = complex(math.cos(phi), -math.sin(phi))
        ehalf = complex(math.cos(phi / 2.0), -math.sin(phi / 2.0))
        denom = 1.0 - tau1 * tau2 * a * ephi
        through = (tau1 - tau2 * a * ephi) / denom
        drop = -math.sqrt(k1 * k2 * a) * ehalf / denom
        return through, drop

    def drop_power(
        self, wavelength: float = DEFAULT_WAVELENGTH, env: OpticalEnvironment = _NOMINAL_ENV
    ) -> float:
        """Normalised drop-port power |d|^2 in [0, 1]."""
        __, drop = self.responses(wavelength, env)
        return float(abs(drop) ** 2)

    def free_spectral_range(self, wavelength: float = DEFAULT_WAVELENGTH) -> float:
        """FSR in metres of wavelength: lambda^2 / (n_g * L)."""
        return wavelength ** 2 / (self.ng * self.circumference)

    def resonance_wavelengths(self, span: tuple = (1.545e-6, 1.555e-6), order_hint: int = 0) -> list:
        """Approximate resonance wavelengths within ``span``.

        Solves n_eff(lambda) * L = m * lambda for integer m, using the
        first-order dispersion model.  Nominal environment, including the
        die's process variation.
        """
        lo, hi = span
        results = []
        env = _NOMINAL_ENV
        offset = self.variation.neff_offset(self.label) if self.variation else 0.0
        length = self.circumference
        # Bracket the mode orders covering the span.
        m_hi = int(effective_index(lo, self.neff0, self.ng, offset, 0.0) * length / lo)
        m_lo = int(effective_index(hi, self.neff0, self.ng, offset, 0.0) * length / hi)
        for m in range(m_lo, m_hi + 2):
            # Solve lambda = n_eff(lambda) * L / m by fixed-point iteration.
            lam = (lo + hi) / 2.0
            for __ in range(60):
                neff = effective_index(lam, self.neff0, self.ng, offset, env.delta_t)
                new_lam = neff * length / m
                if abs(new_lam - lam) < 1e-16:
                    lam = new_lam
                    break
                lam = new_lam
            if lo <= lam <= hi:
                results.append(lam)
        return sorted(results)
