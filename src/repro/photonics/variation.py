"""Process-variation and environment models for photonic components.

Fabrication variability is the entropy source of every PUF in this library.
For photonic devices the dominant contributions are waveguide width and
thickness deviations, which shift the effective index, and coupler gap
deviations, which shift power-coupling ratios.  We model each as the sum of
a die-to-die (global) Gaussian term and a within-die (local, per-component)
Gaussian term, the standard decomposition used in variation-aware design.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.photonics.constants import REFERENCE_TEMPERATURE_C
from repro.utils.rng import derive_rng, derive_standard_normals


@dataclass(frozen=True)
class VariationModel:
    """Statistical magnitudes of fabrication variability.

    Attributes
    ----------
    sigma_neff_global:
        Die-to-die standard deviation of the effective-index offset.
    sigma_neff_local:
        Within-die (per component) standard deviation of the
        effective-index offset.  For SOI, ~1e-4..1e-3 absolute.
    sigma_coupling:
        Standard deviation of the *relative* deviation of power-coupling
        coefficients (dimensionless fraction).
    sigma_loss:
        Standard deviation of the relative deviation of propagation loss.
    """

    sigma_neff_global: float = 2e-4
    sigma_neff_local: float = 4e-4
    sigma_coupling: float = 0.03
    sigma_loss: float = 0.08

    def sample_die(self, root_seed: int, die_index: int) -> "DieVariation":
        """Draw the frozen variation state of one fabricated die."""
        rng = derive_rng(root_seed, "die", die_index)
        return DieVariation(
            model=self,
            neff_global=float(rng.normal(0.0, self.sigma_neff_global)),
            rng_seed=root_seed,
            die_index=die_index,
        )

    def sample_dies(self, root_seed: int, die_indices) -> list:
        """Draw a whole wafer's worth of dies in one call.

        The batched entry point of the fleet-stacked compilation path:
        each die's state is identical to :meth:`sample_die` (same derived
        streams), just gathered for stacking.
        """
        return [self.sample_die(root_seed, int(die)) for die in die_indices]


@dataclass(frozen=True)
class DieVariation:
    """Frozen per-die variation state.

    Local (per-component) deviations are derived deterministically from the
    component's label so that re-instantiating the same die always yields
    the identical physical device — this is what makes a simulated PUF
    instance stable across evaluations.
    """

    model: VariationModel
    neff_global: float
    rng_seed: int
    die_index: int

    def neff_offset(self, component_label: str) -> float:
        """Total effective-index offset for a named component."""
        rng = derive_rng(self.rng_seed, "die", self.die_index, "neff", component_label)
        return self.neff_global + float(rng.normal(0.0, self.model.sigma_neff_local))

    def neff_offsets(self, component_labels) -> "np.ndarray":
        """Gathered :meth:`neff_offset` over many components.

        The stacked-compile fast path: identical values (same derived
        streams, via :func:`repro.utils.rng.derive_standard_normals`)
        with the per-component generator setup amortised over the batch.
        """
        draws = derive_standard_normals(
            self.rng_seed, ("die", self.die_index, "neff"), component_labels
        )
        return self.neff_global + self.model.sigma_neff_local * draws

    def coupling_factors(self, component_labels) -> "np.ndarray":
        """Gathered :meth:`coupling_factor` over many components."""
        draws = derive_standard_normals(
            self.rng_seed, ("die", self.die_index, "coupling"),
            component_labels,
        )
        return np.maximum(1e-3, 1.0 + self.model.sigma_coupling * draws)

    def coupling_factor(self, component_label: str) -> float:
        """Multiplicative deviation of a power-coupling coefficient (clipped > 0)."""
        rng = derive_rng(self.rng_seed, "die", self.die_index, "coupling", component_label)
        return max(1e-3, 1.0 + float(rng.normal(0.0, self.model.sigma_coupling)))

    def loss_factor(self, component_label: str) -> float:
        """Multiplicative deviation of a propagation-loss coefficient (clipped > 0)."""
        rng = derive_rng(self.rng_seed, "die", self.die_index, "loss", component_label)
        return max(1e-3, 1.0 + float(rng.normal(0.0, self.model.sigma_loss)))


@dataclass(frozen=True)
class OpticalEnvironment:
    """Operating conditions of a photonic die during one evaluation.

    Attributes
    ----------
    temperature_c:
        Die temperature.  Shifts every effective index through the
        thermo-optic coefficient; the dominant reliability threat for
        resonant devices (Sec. II-B of the paper).
    laser_power_mw:
        Optical power injected by the laser source.
    detection_noise_scale:
        Multiplier on receiver noise (1.0 = nominal); lets experiments
        sweep SNR without re-deriving physical noise budgets.
    """

    temperature_c: float = REFERENCE_TEMPERATURE_C
    laser_power_mw: float = 1.0
    detection_noise_scale: float = 1.0

    @property
    def delta_t(self) -> float:
        """Temperature excursion from the calibration point, in kelvin."""
        return self.temperature_c - REFERENCE_TEMPERATURE_C


def environment_sweep(temperatures_c: "np.ndarray | list") -> list:
    """Convenience: one :class:`OpticalEnvironment` per temperature."""
    return [OpticalEnvironment(temperature_c=float(t)) for t in np.asarray(temperatures_c)]
