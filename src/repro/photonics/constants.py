"""Physical constants and silicon-photonics platform defaults.

The defaults correspond to a standard 220 nm Silicon-On-Insulator (SOI)
platform at telecom wavelengths, the platform named in the paper
(Sec. II-A).  All lengths are in metres, wavelengths in metres,
temperatures in degrees Celsius unless stated otherwise.
"""

SPEED_OF_LIGHT = 299_792_458.0  # m/s
PLANCK = 6.626_070_15e-34  # J*s
ELEMENTARY_CHARGE = 1.602_176_634e-19  # C
BOLTZMANN = 1.380_649e-23  # J/K

# Telecom C-band centre used by the NEUROPULS laser source.
DEFAULT_WAVELENGTH = 1.55e-6  # m

# Typical SOI strip-waveguide values (220 x 450 nm cross-section).
DEFAULT_N_EFF = 2.35  # effective index at 1550 nm
DEFAULT_N_GROUP = 4.2  # group index
DEFAULT_LOSS_DB_PER_CM = 2.0  # propagation loss

# Thermo-optic coefficient of silicon: dn_eff/dT.
SILICON_DN_DT = 1.86e-4  # 1/K

REFERENCE_TEMPERATURE_C = 25.0


def db_to_linear(db: float) -> float:
    """Convert a dB power ratio to a linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(linear: float) -> float:
    """Convert a linear power ratio to dB."""
    import math

    if linear <= 0:
        raise ValueError("linear power ratio must be positive")
    return 10.0 * math.log10(linear)


def loss_db_per_cm_to_alpha(loss_db_per_cm: float) -> float:
    """Convert propagation loss in dB/cm to a field attenuation coefficient.

    Returns alpha such that the *power* decays as exp(-alpha * L) with L in
    metres; the field amplitude decays as exp(-alpha * L / 2).
    """
    import math

    return loss_db_per_cm * 100.0 * math.log(10.0) / 10.0
