"""Behavioral silicon-photonics substrate.

Implements the optical components the NEUROPULS PIC is built from:
waveguides, couplers, Mach-Zehnder interferometers, microring resonators,
the laser/modulator source chain, the photodiode/TIA/ADC receive chain,
and the passive multi-port scrambling architecture of Fig. 2 — all with
per-die process variation and thermo-optic drift.
"""

from repro.photonics.backend import (
    ArrayBackend,
    BackendUnavailable,
    CupyBackend,
    NumbaBackend,
    NumpyBackend,
    TorchBackend,
    available_backend_names,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.photonics.components import (
    DirectionalCoupler,
    MachZehnderInterferometer,
    MicroringAddDrop,
    MicroringAllPass,
    PhaseShifter,
    Waveguide,
    effective_index,
)
from repro.photonics.constants import (
    DEFAULT_N_EFF,
    DEFAULT_N_GROUP,
    DEFAULT_WAVELENGTH,
    REFERENCE_TEMPERATURE_C,
    SILICON_DN_DT,
)
from repro.photonics.engine import (
    CompiledMesh,
    environment_cache_key,
    stacked_ring_scan,
)
from repro.photonics.fleet_engine import CompiledFleet
from repro.photonics.shard import (
    ShardedFleetExecutor,
    ShardLayout,
    shard_fleet,
    usable_cores,
)
from repro.photonics.mesh import (
    DiscreteTimeRing,
    MixingLayer,
    PassiveScrambler,
    ScramblingMesh,
)
from repro.photonics.receiver import (
    AnalogToDigitalConverter,
    Photodiode,
    ReceiverChain,
    TransimpedanceAmplifier,
)
from repro.photonics.sources import Laser, MachZehnderModulator
from repro.photonics.variation import (
    DieVariation,
    OpticalEnvironment,
    VariationModel,
    environment_sweep,
)

__all__ = [
    "ArrayBackend",
    "BackendUnavailable",
    "CupyBackend",
    "NumbaBackend",
    "NumpyBackend",
    "TorchBackend",
    "available_backend_names",
    "backend_names",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "DirectionalCoupler",
    "MachZehnderInterferometer",
    "MicroringAddDrop",
    "MicroringAllPass",
    "PhaseShifter",
    "Waveguide",
    "effective_index",
    "DEFAULT_N_EFF",
    "DEFAULT_N_GROUP",
    "DEFAULT_WAVELENGTH",
    "REFERENCE_TEMPERATURE_C",
    "SILICON_DN_DT",
    "CompiledFleet",
    "CompiledMesh",
    "ShardLayout",
    "ShardedFleetExecutor",
    "shard_fleet",
    "usable_cores",
    "environment_cache_key",
    "stacked_ring_scan",
    "DiscreteTimeRing",
    "MixingLayer",
    "PassiveScrambler",
    "ScramblingMesh",
    "AnalogToDigitalConverter",
    "Photodiode",
    "ReceiverChain",
    "TransimpedanceAmplifier",
    "Laser",
    "MachZehnderModulator",
    "DieVariation",
    "OpticalEnvironment",
    "VariationModel",
    "environment_sweep",
]
