"""Opto-electronic receive chain: photodiode, TIA, ADC.

The photodiode is the non-linear element the paper leans on (Sec. II-A):
it detects |E|^2, so both amplitude *and* phase of the interfering field
components shape the photocurrent.  The TIA and ADC close the loop back
into the digital ASIC domain and contribute thermal noise and quantization,
the main reliability limiters of the digitized responses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.photonics.constants import BOLTZMANN, ELEMENTARY_CHARGE


@dataclass(frozen=True)
class Photodiode:
    """Square-law detector converting optical power to photocurrent.

    Field samples are in sqrt(mW); photocurrent is in milliamperes.
    """

    responsivity_a_per_w: float = 0.9
    dark_current_na: float = 10.0
    bandwidth_hz: float = 20e9

    def detect(
        self,
        field: np.ndarray,
        rng: np.random.Generator,
        noise_scale: float = 1.0,
    ) -> np.ndarray:
        """Photocurrent samples (mA) with shot noise and dark current."""
        power_mw = np.abs(np.asarray(field, dtype=np.complex128)) ** 2
        current_ma = self.responsivity_a_per_w * power_mw  # A/W * mW = mA
        current_ma = current_ma + self.dark_current_na * 1e-6
        # Shot noise: sigma_i = sqrt(2 q I B), converted to mA.
        sigma_a = np.sqrt(2.0 * ELEMENTARY_CHARGE * np.clip(current_ma, 0, None) * 1e-3
                          * self.bandwidth_hz)
        noise = sigma_a * 1e3 * rng.standard_normal(current_ma.shape)
        return current_ma + noise_scale * noise


@dataclass(frozen=True)
class TransimpedanceAmplifier:
    """TIA converting photocurrent (mA) to voltage (V) with thermal noise."""

    gain_ohm: float = 1_000.0
    temperature_k: float = 300.0
    noise_bandwidth_hz: float = 20e9

    def input_referred_noise_ma(self) -> float:
        """RMS input-referred current noise in mA (Johnson noise of R_f)."""
        sigma_a = math.sqrt(4.0 * BOLTZMANN * self.temperature_k
                            * self.noise_bandwidth_hz / self.gain_ohm)
        return sigma_a * 1e3

    def amplify(
        self,
        current_ma: np.ndarray,
        rng: np.random.Generator,
        noise_scale: float = 1.0,
    ) -> np.ndarray:
        """Output voltage samples in volts."""
        noisy = current_ma + noise_scale * self.input_referred_noise_ma() \
            * rng.standard_normal(np.shape(current_ma))
        return noisy * 1e-3 * self.gain_ohm


@dataclass(frozen=True)
class AnalogToDigitalConverter:
    """Uniform quantizer with configurable resolution and full scale."""

    n_bits: int = 8
    full_scale_v: float = 1.0

    @property
    def n_levels(self) -> int:
        return 1 << self.n_bits

    @property
    def lsb(self) -> float:
        return self.full_scale_v / self.n_levels

    def quantize(self, voltage: np.ndarray) -> np.ndarray:
        """Integer codes in [0, 2^n - 1], clipping out-of-range inputs."""
        codes = np.floor(np.asarray(voltage, dtype=np.float64) / self.lsb)
        return np.clip(codes, 0, self.n_levels - 1).astype(np.int64)

    def to_voltage(self, codes: np.ndarray) -> np.ndarray:
        """Mid-rise reconstruction of quantized codes."""
        return (np.asarray(codes, dtype=np.float64) + 0.5) * self.lsb


@dataclass(frozen=True)
class ReceiverChain:
    """Convenience composition photodiode -> TIA -> ADC."""

    photodiode: Photodiode = Photodiode()
    tia: TransimpedanceAmplifier = TransimpedanceAmplifier()
    adc: AnalogToDigitalConverter = AnalogToDigitalConverter()

    def digitize(
        self,
        field: np.ndarray,
        rng: np.random.Generator,
        noise_scale: float = 1.0,
    ) -> np.ndarray:
        """Full chain: field samples -> ADC codes."""
        current = self.photodiode.detect(field, rng, noise_scale)
        voltage = self.tia.amplify(current, rng, noise_scale)
        return self.adc.quantize(voltage)

    def analog_voltage(
        self,
        field: np.ndarray,
        rng: np.random.Generator,
        noise_scale: float = 1.0,
    ) -> np.ndarray:
        """Chain without quantization (for threshold-margin studies)."""
        current = self.photodiode.detect(field, rng, noise_scale)
        return self.tia.amplify(current, rng, noise_scale)
