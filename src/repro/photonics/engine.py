"""Compiled vectorized propagation engine for the passive scrambler.

:class:`~repro.photonics.mesh.PassiveScrambler.propagate` rebuilds every
mixing-layer matrix and every ring filter from the die-variation RNG on
*each* call, and runs a Python loop over channels for the ring banks.
That is fine for one interrogation but dominates the cost of fleet-scale
workloads (millions of challenge-response pairs).

:class:`CompiledMesh` performs that work exactly once per (die,
wavelength, environment):

* each mixing stage becomes one dense complex ``(n_channels, n_channels)``
  transfer matrix, stacked into a ``(n_stages, n, n)`` tensor;
* each ring bank becomes stacked IIR coefficient arrays
  ``(n_stages, n_channels, delay + 1)`` — the same ``(b, a)`` polynomials
  :meth:`DiscreteTimeRing.coefficients` produces, just laid out so a whole
  bank is applied in one vectorized recurrence.

Propagation then evaluates ``(batch, n_channels, n_samples)`` field
tensors with ``einsum`` for the mixing stages and one stacked scan per
ring bank (:func:`stacked_ring_scan`) — no Python loops over channels or
batch.  The same scan serves the fleet-stacked engine
(:mod:`repro.photonics.fleet_engine`), where the rings axis is the whole
``fleet x channels`` plane and a single call replaces what used to be one
``_ring_bank`` invocation per device per stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.photonics import backend as _backend_mod
from repro.photonics.backend import ArrayBackend, resolve_backend
from repro.photonics.constants import DEFAULT_WAVELENGTH
from repro.photonics.variation import OpticalEnvironment

_NOMINAL_ENV = OpticalEnvironment()

# Per-tile field-tensor budget for cache blocking in propagate(): a tile
# (plus the scan's temporaries) should fit the last-level cache.
_TILE_TARGET_BYTES = 2_500_000

# Cap on cached (stage, blocks) scan-coefficient entries per mesh: varied
# sample lengths would otherwise grow the cache without bound.  Generous
# enough that a fixed protocol (one blocks value per stage) never evicts.
_SCAN_CACHE_LIMIT = 64


def environment_cache_key(
    wavelength: float, env: OpticalEnvironment
) -> tuple:
    """Hashable identity of the operating point a compilation is valid for.

    ``detection_noise_scale`` is deliberately excluded: receiver noise is
    added after propagation, so SNR sweeps share one compilation.
    """
    return (float(wavelength), float(env.temperature_c), float(env.laser_power_mw))


def stacked_ring_scan(
    fields: np.ndarray,
    tau: np.ndarray,
    rho: np.ndarray,
    feedback: np.ndarray,
    delay: int,
) -> np.ndarray:
    """Apply a whole bank of all-pass rings in one stacked pass.

    ``fields`` is ``(..., n_samples)`` with any leading layout — the rings
    axis (channels, or ``fleet x channels`` for the stacked fleet engine)
    lives among the leading dimensions.  ``tau`` / ``rho`` / ``feedback``
    are the per-ring coefficients, broadcastable against ``fields`` with a
    trailing sample axis of length 1 (e.g. ``(n, 1)`` for a mesh bank,
    ``(fleet, 1, n, 1)`` for a fleet bank).

    Every ring couples samples only at distance ``delay``, so with samples
    grouped into consecutive length-``delay`` blocks the bank is the
    first-order recurrence

        y_k = u_k + A y_{k-1},   u_k = tau x_k - rho x_{k-1},   A = tau rho

    over blocks.  The drive term is written straight into a pre-sized
    block-padded buffer (no zero-pad + ``concatenate`` copy), then the
    recurrence runs block-major: the block axis is moved to the front so
    each step is one contiguous multiply-add over the entire stacked
    rings plane — one scan per bank regardless of how many devices are
    stacked, instead of one Python-level filter per ring.  Agrees with
    the ``scipy.signal.lfilter`` reference to round-off.

    This is the numpy reference implementation, hosted by
    :class:`repro.photonics.backend.NumpyBackend`; alternate compute
    backends (numba JIT, GPU) provide the same contract and are
    selected per-mesh/per-fleet via ``backend_name``.
    """
    return _backend_mod.get_backend("numpy").ring_scan(
        fields, tau, rho, feedback, delay
    )


@dataclass(frozen=True)
class CompiledMesh:
    """Dense, environment-frozen form of a :class:`PassiveScrambler`.

    Attributes
    ----------
    stage_matrices:
        ``(n_stages, n_channels, n_channels)`` complex transfer matrices.
    ring_b / ring_a:
        ``(n_stages, n_channels, delay_samples + 1)`` stacked numerator /
        denominator IIR coefficients of each ring bank.
    static_matrix:
        Product of all mixing stages — the CW (memory-ablated) response,
        used as a single-``einsum`` fast path when ``with_memory`` is off.
    backend_name:
        Compute backend for the ring banks (see
        :mod:`repro.photonics.backend`).  ``"numpy"`` keeps the rescaled
        prefix-sum path below; alternates resolve lazily at first
        propagation and fall back to numpy (recording
        :attr:`backend_degraded_reason`) when unavailable.
    """

    n_channels: int
    n_stages: int
    delay_samples: int
    with_memory: bool
    stage_matrices: np.ndarray
    ring_b: np.ndarray
    ring_a: np.ndarray
    static_matrix: np.ndarray
    backend_name: str = "numpy"
    # Per-(stage, blocks) scan coefficients, built lazily on first
    # propagation; mutating the cache dict is compatible with frozen.
    # Bounded to _SCAN_CACHE_LIMIT entries, evicting least-recently-used.
    _scan_cache: dict = field(default_factory=dict, repr=False, compare=False)
    # Lazily-resolved backend instance + degraded_reason, keyed "backend"
    # / "degraded_reason"; a dict so the frozen dataclass can fill it in.
    _backend_state: dict = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def compile(
        cls,
        scrambler,
        wavelength: float = DEFAULT_WAVELENGTH,
        env: OpticalEnvironment = _NOMINAL_ENV,
        backend: str = "numpy",
    ) -> "CompiledMesh":
        """Freeze ``scrambler`` at one operating point into dense operators."""
        n = scrambler.n_channels
        stages = scrambler.n_stages
        delay = scrambler.ring_delay_samples
        matrices = np.stack(
            [layer.matrix(wavelength, env) for layer in scrambler.layers]
        )
        ring_b = np.zeros((stages, n, delay + 1), dtype=np.complex128)
        ring_a = np.zeros((stages, n, delay + 1), dtype=np.complex128)
        for stage in range(stages):
            for channel in range(n):
                b, a = scrambler._ring(stage, channel).coefficients()
                ring_b[stage, channel] = b
                ring_a[stage, channel] = a
        static = np.eye(n, dtype=np.complex128)
        for stage in range(stages):
            static = matrices[stage] @ static
        return cls(
            n_channels=n,
            n_stages=stages,
            delay_samples=delay,
            with_memory=scrambler.with_memory,
            stage_matrices=matrices,
            ring_b=ring_b,
            ring_a=ring_a,
            static_matrix=static,
            backend_name=backend,
        )

    # -- compute backend ----------------------------------------------------

    def compute_backend(self) -> ArrayBackend:
        """The resolved :class:`ArrayBackend`, falling back to numpy.

        Resolution (availability probe + first-use self-check) happens
        once per mesh; an unavailable or failing backend degrades to the
        numpy reference with the reason recorded in
        :attr:`backend_degraded_reason`.
        """
        state = self._backend_state
        if "backend" not in state:
            backend, reason = resolve_backend(self.backend_name)
            state["backend"] = backend
            state["degraded_reason"] = reason
        return state["backend"]

    @property
    def backend_degraded_reason(self) -> Optional[str]:
        """Why the requested backend degraded to numpy (``None`` if not)."""
        self.compute_backend()
        return self._backend_state["degraded_reason"]

    # -- vectorized ring bank ---------------------------------------------

    def _ring_bank(self, stage: int, fields: np.ndarray) -> np.ndarray:
        """Apply one bank of per-channel rings to ``(batch, n, S)`` fields.

        Uses the rescaled prefix-sum form of the block recurrence (see
        :func:`stacked_ring_scan` for the recurrence itself): with the
        drive pre-scaled by ``A^{-k}``, ``y_k = A^k cumsum(A^{-j} u_j)``
        evaluates the whole bank in a handful of whole-tensor passes with
        cached per-sample coefficient tensors.  For the small per-block
        slabs of a single die this beats the block-major loop (whose
        per-step Python overhead would dominate at ``n_channels x delay``
        elements per block); the fleet engine stacks thousands of rings
        per slab and uses the loop form instead.
        """
        delay = self.delay_samples
        batch, n, n_samples = fields.shape
        blocks = -(-n_samples // delay)
        padding = blocks * delay - n_samples
        if padding:
            fields = np.concatenate(
                [fields, np.zeros((batch, n, padding), dtype=fields.dtype)],
                axis=-1,
            )
        x = fields
        y = np.empty_like(x)
        feedback = -self.ring_a[stage, :, -1][:, np.newaxis]  # (n, 1): tau*rho
        carry = None
        for start, powers, scaled_tau, scaled_rho in self._scan_coefficients(
            stage, blocks
        ):
            stop = start + powers.shape[1]
            # Drive term of the block recurrence, pre-scaled by A^{-k}:
            # A^{-k} u_k = (tau A^{-k}) x_k - (rho A^{-k}) x_{k-1}, laid out
            # at full sample resolution so every pass runs contiguous.
            term = scaled_tau * x[:, :, start:stop]
            if start == 0:
                term[:, :, delay:] -= scaled_rho[:, delay:] * x[:, :, :stop - delay]
            else:
                term -= scaled_rho * x[:, :, start - delay:stop - delay]
                term[:, :, :delay] += feedback * carry
            # z_k = z_{k-1} + A^{-k} u_k is a plain prefix sum over blocks;
            # y_k = A^k z_k.  The rescaling never amplifies error (each
            # term re-multiplies by A^{k-j} <= 1), but |A|^{-k} itself
            # grows, so chunks are bounded and the state carried across.
            blocked = term.reshape(batch, n, -1, delay)
            np.cumsum(blocked, axis=2, out=blocked)
            np.multiply(powers, term, out=y[:, :, start:stop])
            carry = y[:, :, stop - delay:stop]
        return y[:, :, :n_samples] if padding else y

    # Chunk length in blocks of the rescaled prefix-sum scan: |A|^-k stays
    # far from float overflow for the slowest rings (|A| ~ 0.84 * 0.99).
    _SCAN_CHUNK = 512

    def _scan_coefficients(self, stage: int, blocks: int) -> list:
        """Per-chunk ``(start_sample, A^k, tau A^-k, rho A^-k)``, cached.

        Coefficient tensors are ``(n_channels, chunk_samples)`` — the
        per-block exponent repeated over the ``delay`` samples of each
        block — so the scan's elementwise passes broadcast with contiguous
        inner loops over whole sample streams.  Exponents reset at each
        chunk start.
        """
        key = (stage, blocks)
        cached = self._scan_cache.get(key)
        if cached is not None:
            # Refresh recency: dicts iterate in insertion order, so
            # re-inserting moves the entry to the MRU end.
            del self._scan_cache[key]
            self._scan_cache[key] = cached
        else:
            delay = self.delay_samples
            tau = self.ring_b[stage, :, 0][:, np.newaxis]
            rho = -self.ring_b[stage, :, -1][:, np.newaxis]   # a e^{-j phi}
            feedback = -self.ring_a[stage, :, -1][:, np.newaxis]
            cached = []
            for start in range(0, blocks, self._SCAN_CHUNK):
                length = min(self._SCAN_CHUNK, blocks - start)
                exponents = np.repeat(np.arange(length), delay)[np.newaxis, :]
                powers = feedback ** exponents           # (n, length * delay)
                inverse = (1.0 / feedback) ** exponents
                cached.append((
                    start * delay,
                    powers,
                    tau * inverse,
                    rho * inverse,
                ))
            self._scan_cache[key] = cached
            while len(self._scan_cache) > _SCAN_CACHE_LIMIT:
                self._scan_cache.pop(next(iter(self._scan_cache)))
        return cached

    # -- propagation -------------------------------------------------------

    def propagate(self, fields: np.ndarray) -> np.ndarray:
        """Propagate ``(batch, n_channels, n_samples)`` field tensors.

        A 2-D ``(n_channels, n_samples)`` input is treated as a batch of
        one and squeezed back, matching ``PassiveScrambler.propagate``.
        """
        fields = np.asarray(fields, dtype=np.complex128)
        squeeze = fields.ndim == 2
        if squeeze:
            fields = fields[np.newaxis]
        if fields.shape[1] != self.n_channels:
            raise ValueError(
                f"expected {self.n_channels} channels, got {fields.shape[1]}"
            )
        if not self.with_memory:
            out = np.matmul(self.static_matrix, fields)
            return out[0] if squeeze else out
        batch, n, n_samples = fields.shape
        # Cache blocking: the stage pipeline is memory-bandwidth bound, so
        # large batches run as tiles whose working set stays in LLC.  (This
        # iterates over *tiles*, not batch elements — a handful of passes.)
        tile = max(8, _TILE_TARGET_BYTES // max(1, n * n_samples * 16))
        if batch > tile:
            out = np.empty_like(fields)
            for start in range(0, batch, tile):
                out[start:start + tile] = self._propagate_tile(
                    fields[start:start + tile]
                )
        else:
            out = self._propagate_tile(fields)
        return out[0] if squeeze else out

    def _propagate_tile(self, fields: np.ndarray) -> np.ndarray:
        backend = self.compute_backend()
        use_backend_scan = backend.name != "numpy"
        current = fields
        for stage in range(self.n_stages):
            current = np.matmul(self.stage_matrices[stage], current)
            if use_backend_scan:
                current = backend.ring_scan(
                    current,
                    self.ring_b[stage, :, 0][:, np.newaxis],
                    -self.ring_b[stage, :, -1][:, np.newaxis],
                    -self.ring_a[stage, :, -1][:, np.newaxis],
                    self.delay_samples,
                )
            else:
                # The rescaled prefix-sum form beats the generic scan at
                # single-die batch sizes; keep it as the numpy fast path.
                current = self._ring_bank(stage, current)
        return current

    def memory_footprint_bytes(self) -> int:
        """Size of the frozen operators (enrollment-registry accounting)."""
        return (
            self.stage_matrices.nbytes + self.ring_b.nbytes + self.ring_a.nbytes
            + self.static_matrix.nbytes
        )
