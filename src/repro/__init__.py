"""repro — behavioral reproduction of the NEUROPULS security layers (DATE 2024).

Subpackages
-----------
- :mod:`repro.utils` — bit arrays, deterministic RNG streams, serialization
- :mod:`repro.photonics` — silicon-photonics component/circuit models
- :mod:`repro.puf` — photonic + electronic PUF primitives
- :mod:`repro.metrics` — PUF quality metrics and NIST-style statistical tests
- :mod:`repro.quality` — response filtering and compensation
- :mod:`repro.crypto` — ECC, fuzzy extraction, lightweight ciphers, MAC, DRBG
- :mod:`repro.attacks` — modeling, side-channel, remanence, protocol attacks
- :mod:`repro.accelerator` — neuromorphic photonic accelerator model
- :mod:`repro.system` — discrete-event system/SoC model
- :mod:`repro.protocols` — mutual authentication, attestation, NN service, AKA
- :mod:`repro.fleet` — fleet-scale enrollment registry + batch authentication
- :mod:`repro.service` — the supported service boundary: ``AuthService``
  facade, declarative ``FleetConfig``, policies, versioned wire codec
- :mod:`repro.obs` — observability plane: metrics registry, round
  tracing, Prometheus/JSON export, wire-scrapeable via the 1.2
  ``metrics``/``trace`` admin verbs

Quickstart
----------
>>> from repro import AuthService, FleetConfig
>>> service = AuthService.provision(FleetConfig(n_devices=8, seed=42))
>>> service.authenticate_batch().n_accepted
8

(The single-device SoC path is ``provision`` / ``run_session``;
``provision_fleet`` remains as a deprecated shim over the service.)
"""

from repro.fleet import (
    BatchVerifier,
    FaultModel,
    FleetDevice,
    FleetRegistry,
    FleetSimulator,
    provision_fleet,
)
from repro.protocols import provision, run_session
from repro.service import AuthService, EngineConfig, FleetConfig
from repro.puf import (
    ArbiterPUF,
    PhotonicStrongPUF,
    PhotonicWeakPUF,
    PUFEnvironment,
    ROPUF,
    SRAMPUF,
)
from repro.system import DeviceSoC, SoCConfig

__version__ = "0.8.0"

__all__ = [
    "provision",
    "run_session",
    "AuthService",
    "EngineConfig",
    "FleetConfig",
    "BatchVerifier",
    "FaultModel",
    "FleetDevice",
    "FleetRegistry",
    "FleetSimulator",
    "provision_fleet",
    "ArbiterPUF",
    "PhotonicStrongPUF",
    "PhotonicWeakPUF",
    "PUFEnvironment",
    "ROPUF",
    "SRAMPUF",
    "DeviceSoC",
    "SoCConfig",
    "__version__",
]
