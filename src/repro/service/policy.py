"""Pluggable service policies: rate limiting, audit logging, retries.

:class:`repro.service.AuthService` threads every lifecycle event through
its configured policies.  A policy may *observe* (audit logging) or
*veto* (rate limiting) — a veto is expressed by raising
:class:`~repro.protocols.mutual_auth.AuthenticationFailure`, so policy
denials land in round reports under the same
:class:`~repro.protocols.mutual_auth.FailureKind` taxonomy as protocol
rejections.  :class:`RetryPolicy` is a plain decision object consumed by
:meth:`~repro.service.AuthService.authenticate` for transient failures.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, FrozenSet, List, Optional

from repro.fleet.verifier import BatchAuthReport
from repro.protocols.mutual_auth import AuthenticationFailure, FailureKind
from repro.utils.rng import derive_rng


class ServicePolicy:
    """Base policy: every hook is a no-op.  Subclass what you need.

    Hooks run in the order policies were handed to the service;
    ``before_authenticate`` raises to deny a device's request.
    """

    name = "policy"

    def on_enroll(self, device_id: str) -> None:
        """A device was enrolled."""

    def on_revoke(self, device_id: str) -> None:
        """A device was revoked."""

    def before_authenticate(self, device_id: str) -> None:
        """About to admit ``device_id`` into a round; raise to deny."""

    def after_round(self, report: BatchAuthReport) -> None:
        """A round settled; the report includes policy denials."""


class RateLimitPolicy(ServicePolicy):
    """Sliding-window per-device rate limiting.

    A device may enter at most ``max_requests`` rounds per ``window_s``
    seconds; excess requests are denied with
    ``FailureKind.RATE_LIMITED`` before they reach the verifier (no
    nonce is burned, no plane pass runs).  ``clock`` is injectable so
    tests drive a fake clock.
    """

    name = "rate-limit"

    def __init__(self, max_requests: int, window_s: float,
                 clock: Callable[[], float] = time.monotonic):
        if max_requests < 1:
            raise ValueError(f"max_requests must be >= 1, got {max_requests}")
        if window_s <= 0.0:
            raise ValueError(f"window_s must be positive, got {window_s}")
        self.max_requests = int(max_requests)
        self.window_s = float(window_s)
        self._clock = clock
        self._arrivals: Dict[str, Deque[float]] = {}

    def before_authenticate(self, device_id: str) -> None:
        now = self._clock()
        window = self._arrivals.setdefault(device_id, deque())
        while window and window[0] <= now - self.window_s:
            window.popleft()
        if len(window) >= self.max_requests:
            raise AuthenticationFailure(
                f"device {device_id!r} exceeded {self.max_requests} "
                f"requests per {self.window_s} s",
                FailureKind.RATE_LIMITED,
            )
        window.append(now)

    def on_revoke(self, device_id: str) -> None:
        self._arrivals.pop(device_id, None)


class AuditLogPolicy(ServicePolicy):
    """Structured audit trail of service lifecycle events.

    Events are dicts (``{"event": ..., ...}``) appended to a bounded
    in-memory ring (:attr:`events`) and optionally forwarded to a
    ``sink`` callable (a logger, a queue producer).  The ring is bounded
    so a long-lived service never grows without limit.

    Every entry carries ``ts`` (the injectable monotonic ``clock`` —
    entries used to be timeless, which made them impossible to join
    against round traces) and ``incarnation`` (the serving replica's
    start count, plus a ``replica`` index once
    :meth:`bind_incarnation` names one).  A
    :class:`~repro.service.ha.ReplicaGroup` rebinds both on every
    start and promotion, so an audit line always says *which boot* of
    *which replica* observed the event — the same join keys
    :class:`repro.obs.TraceSpan` carries.
    """

    name = "audit"

    def __init__(self, sink: Optional[Callable[[dict], None]] = None,
                 capacity: int = 10_000,
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.events: Deque[dict] = deque(maxlen=int(capacity))
        self._sink = sink
        self._clock = clock
        self._incarnation = 0
        self._replica: Optional[int] = None

    def bind_incarnation(self, incarnation: int,
                         replica: Optional[int] = None) -> None:
        """Stamp subsequent entries with the serving boot's identity."""
        self._incarnation = int(incarnation)
        self._replica = None if replica is None else int(replica)

    def record(self, event: str, **payload) -> None:
        entry = {"event": event, "ts": float(self._clock()),
                 "incarnation": self._incarnation, **payload}
        if self._replica is not None:
            entry["replica"] = self._replica
        self.events.append(entry)
        if self._sink is not None:
            self._sink(entry)

    def on_enroll(self, device_id: str) -> None:
        self.record("enroll", device_id=device_id)

    def on_revoke(self, device_id: str) -> None:
        self.record("revoke", device_id=device_id)

    def after_round(self, report: BatchAuthReport) -> None:
        self.record(
            "round",
            accepted=report.n_accepted,
            rejected=report.n_rejected,
            failure_kinds=dict(report.failure_kinds),
        )


#: Failure kinds a plain retry can plausibly clear: interference from a
#: colliding or injected message, not a broken device or stale secret.
TRANSIENT_KINDS: FrozenSet[str] = frozenset({
    FailureKind.DUPLICATE_DEVICE.value,
    FailureKind.REPLAY.value,
    FailureKind.NO_NONCE.value,
})

#: The wider transient set for *networked* clients: everything in
#: :data:`TRANSIENT_KINDS` plus the transport-level kinds a failover to
#: another replica (or simply waiting out a promotion) can clear.
NETWORK_TRANSIENT_KINDS: FrozenSet[str] = TRANSIENT_KINDS | frozenset({
    FailureKind.REPLICA_UNAVAILABLE.value,
    FailureKind.LEASE_EXPIRED.value,
    FailureKind.CONNECTION_LOST.value,
    FailureKind.TIMEOUT.value,
})


class RetryPolicy:
    """Retry decision for :meth:`repro.service.AuthService.authenticate`
    and the networked clients (:class:`repro.service.net.AuthClient`,
    :class:`repro.service.ha.HAAuthClient`).

    ``max_retries`` bounds the extra attempts; ``retryable`` names the
    :class:`~repro.protocols.mutual_auth.FailureKind` values (by string)
    worth retrying.  Deterministic failures (bad MAC, clock anomaly,
    revocation) are never retried by default — the outcome would not
    change.

    The backoff knobs only matter to networked callers: attempt ``n``
    (first retry is ``n=1``) sleeps
    ``min(backoff_max_s, backoff_base_s * backoff_factor**(n-1))``
    plus up to ``jitter`` fraction of that, drawn from a deterministic
    per-policy stream seeded by ``seed`` — two clients with different
    seeds desynchronize their retry storms, but a given seed replays the
    exact same schedule.  The in-process facade keeps the legacy
    no-sleep behaviour via the ``backoff_base_s=0`` default.
    """

    def __init__(self, max_retries: int = 2,
                 retryable: FrozenSet[str] = TRANSIENT_KINDS,
                 backoff_base_s: float = 0.0,
                 backoff_factor: float = 2.0,
                 backoff_max_s: float = 1.0,
                 jitter: float = 0.1,
                 seed: int = 0):
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if backoff_base_s < 0.0 or backoff_max_s < 0.0:
            raise ValueError("backoff bounds must be non-negative")
        if backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        self.max_retries = int(max_retries)
        self.retryable = frozenset(retryable)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_factor = float(backoff_factor)
        self.backoff_max_s = float(backoff_max_s)
        self.jitter = float(jitter)
        self.seed = int(seed)
        self._jitter_rng = derive_rng(self.seed, "retry-jitter")

    @classmethod
    def network(cls, max_retries: int = 8, backoff_base_s: float = 0.02,
                backoff_max_s: float = 0.5, seed: int = 0,
                **kwargs) -> "RetryPolicy":
        """The failover-client default: transport kinds, real backoff."""
        return cls(max_retries=max_retries,
                   retryable=NETWORK_TRANSIENT_KINDS,
                   backoff_base_s=backoff_base_s,
                   backoff_max_s=backoff_max_s, seed=seed, **kwargs)

    def should_retry(self, failure_kind: Optional[str],
                     attempt: int) -> bool:
        """``attempt`` counts completed tries (first call passes 1)."""
        return (attempt <= self.max_retries
                and failure_kind in self.retryable)

    def delay(self, attempt: int) -> float:
        """Seconds to back off before retry ``attempt`` (first is 1)."""
        if self.backoff_base_s == 0.0:
            return 0.0
        base = min(self.backoff_max_s,
                   self.backoff_base_s * self.backoff_factor ** (attempt - 1))
        return base * (1.0 + self.jitter * float(self._jitter_rng.random()))


def run_hooks(policies: List[ServicePolicy], hook: str, *args) -> None:
    """Invoke one observing hook on every policy, in order."""
    for policy in policies:
        getattr(policy, hook)(*args)


def deny_reason(policies: List[ServicePolicy],
                device_id: str) -> Optional[AuthenticationFailure]:
    """First policy veto for ``device_id``, or ``None`` when admitted."""
    for policy in policies:
        try:
            policy.before_authenticate(device_id)
        except AuthenticationFailure as failure:
            return failure
    return None
