"""Declarative fleet and engine configuration for :mod:`repro.service`.

Every provisioning/execution knob that used to sprawl across
``provision_fleet(stacked=..., shard_workers=...)``, ``RoundCoalescer``
constructor arguments, and ``FleetSimulator`` keyword arguments lives in
two frozen dataclasses:

* :class:`EngineConfig` — *how* measurements execute: the fleet-stacked
  plane and the sharded multi-core executor;
* :class:`FleetConfig` — *what* the fleet is and how the service runs
  it: fleet size, seeds, spot pools, PUF design knobs, coalescer
  budgets, the optional fault model for lifecycle simulation, and the
  persistence path.

Both validate on construction and round-trip through
``to_state``/``from_state`` (plain JSON-serializable dicts), so a
service snapshot carries its own configuration.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, Mapping, Optional

from repro.fleet.lifecycle import FaultModel
from repro.fleet.storage import BACKEND_NAMES, RegistryBackend, make_backend
from repro.photonics.backend import backend_names as compute_backend_names

CONFIG_FORMAT = "service-fleet-config"
CONFIG_VERSION = 1


def _reject_unknown_keys(state: Mapping[str, Any], allowed, what: str) -> None:
    """Unknown config keys are an error, not silence.

    A silently-ignored key is a misconfiguration that looks healthy
    (``sharded_workers: 8`` runs single-core forever); naming the
    unknown and the allowed set makes the failure immediate and clear.
    """
    unknown = sorted(set(state) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown {what} field(s) {', '.join(map(repr, unknown))}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )


@dataclass(frozen=True)
class EngineConfig:
    """Execution-engine knobs: how photonic measurements run.

    ``stacked`` compiles the whole die family into one fleet-stacked
    execution plane (one tensor pass per round); ``shard_workers``
    additionally attaches a sharded multi-core executor to that plane.
    ``stacked=False`` forces the per-die batch-1 path (the provisioning
    baseline the throughput benchmarks pin against).

    ``backend`` names the compute backend the stacked plane runs its
    hot primitives on (see :mod:`repro.photonics.backend`): ``"numpy"``
    (default, the bit-exactness reference), ``"numba"`` for JIT-compiled
    CPU kernels, ``"cupy"``/``"torch"`` for GPU paths.  The name must be
    registered; a registered-but-unavailable backend degrades to numpy
    at first use with a recorded ``degraded_reason``.
    """

    stacked: bool = True
    shard_workers: Optional[int] = None
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.shard_workers is not None:
            if int(self.shard_workers) < 1:
                raise ValueError(
                    f"shard_workers must be >= 1, got {self.shard_workers}"
                )
            if not self.stacked:
                raise ValueError(
                    "shard_workers requires stacked=True (the sharded "
                    "executor runs on the fleet-stacked plane)"
                )
        names = compute_backend_names()
        if self.backend not in names:
            raise ValueError(
                f"unknown compute backend {self.backend!r}; registered "
                f"backends: {', '.join(names)}"
            )
        if self.backend != "numpy" and not self.stacked:
            raise ValueError(
                "backend selection requires stacked=True (alternate "
                "backends run on the fleet-stacked plane)"
            )

    def to_state(self) -> Dict[str, Any]:
        return {"stacked": bool(self.stacked),
                "shard_workers": (None if self.shard_workers is None
                                  else int(self.shard_workers)),
                "backend": str(self.backend)}

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "EngineConfig":
        _reject_unknown_keys(
            state, ("stacked", "shard_workers", "backend"), "engine config"
        )
        return cls(stacked=bool(state.get("stacked", True)),
                   shard_workers=state.get("shard_workers"),
                   backend=str(state.get("backend", "numpy")))


@dataclass(frozen=True)
class HAConfig:
    """High-availability knobs for a replicated verifier plane.

    Consumed by :class:`repro.service.ha.ReplicaGroup`: ``n_replicas``
    sizes the group (each replica gets its own residue class of the
    nonce-epoch partition), the lease pair governs failover latency —
    a primary that misses heartbeats for ``lease_timeout_s`` loses the
    lease and the lowest-index live standby is promoted.  ``handoff``
    selects how a promoted replica acquires registry state: ``"shared"``
    serves all replicas from one durable registry object (the in-process
    model of a shared store), ``"attach"`` re-attaches the sharded
    on-disk registry root on promotion (requires
    ``registry_backend='sharded'``; exercises the real crash path —
    checkpoint plus write-ahead journal replay).
    """

    n_replicas: int = 1
    lease_timeout_s: float = 0.5
    heartbeat_interval_s: float = 0.1
    handoff: str = "shared"

    def __post_init__(self) -> None:
        if int(self.n_replicas) < 1:
            raise ValueError(
                f"n_replicas must be >= 1, got {self.n_replicas}"
            )
        if float(self.lease_timeout_s) <= 0.0:
            raise ValueError("lease_timeout_s must be positive")
        if float(self.heartbeat_interval_s) <= 0.0:
            raise ValueError("heartbeat_interval_s must be positive")
        if float(self.heartbeat_interval_s) >= float(self.lease_timeout_s):
            raise ValueError(
                "heartbeat_interval_s must be shorter than lease_timeout_s "
                "(a healthy primary must renew before the lease runs out)"
            )
        if self.handoff not in ("shared", "attach"):
            raise ValueError(
                f"handoff must be 'shared' or 'attach', got {self.handoff!r}"
            )

    def to_state(self) -> Dict[str, Any]:
        return {"n_replicas": int(self.n_replicas),
                "lease_timeout_s": float(self.lease_timeout_s),
                "heartbeat_interval_s": float(self.heartbeat_interval_s),
                "handoff": str(self.handoff)}

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "HAConfig":
        _reject_unknown_keys(
            state,
            ("n_replicas", "lease_timeout_s", "heartbeat_interval_s",
             "handoff"),
            "ha config",
        )
        return cls(
            n_replicas=int(state.get("n_replicas", 1)),
            lease_timeout_s=float(state.get("lease_timeout_s", 0.5)),
            heartbeat_interval_s=float(
                state.get("heartbeat_interval_s", 0.1)),
            handoff=str(state.get("handoff", "shared")),
        )


@dataclass(frozen=True)
class FleetConfig:
    """One declarative description of a provisioned, running fleet.

    ``puf`` holds the photonic design knobs forwarded to
    :func:`repro.puf.photonic_strong.photonic_strong_family`
    (``challenge_bits``, ``n_stages``, ``response_bits``, ...); it is
    copied at construction so a config never aliases caller state.
    ``latency_budget_s``/``max_batch`` parameterize the service's
    request coalescer; ``fault_model`` seeds lifecycle simulation
    (:meth:`repro.service.AuthService.simulator`); ``snapshot_path`` is
    the default target of :meth:`repro.service.AuthService.save`.

    ``registry_backend`` selects the enrollment registry's storage
    (see :mod:`repro.fleet.storage`): ``"memory"`` (default) keeps the
    fleet in-process, ``"sharded"`` pages it from append-only shard
    files so registry size is disk-bound, with ``storage_root`` naming
    the shard directory (a scratch directory when None) and
    ``resident_records`` capping the materialized-record LRU.
    """

    n_devices: int
    seed: int = 0
    n_spot_crps: int = 0
    clock_tolerance: float = 0.05
    engine: EngineConfig = EngineConfig()
    latency_budget_s: float = 0.005
    max_batch: int = 256
    fault_model: Optional[FaultModel] = None
    snapshot_path: Optional[str] = None
    registry_backend: str = "memory"
    storage_root: Optional[str] = None
    resident_records: Optional[int] = None
    ha: Optional[HAConfig] = None
    puf: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if int(self.n_devices) < 1:
            raise ValueError(f"n_devices must be >= 1, got {self.n_devices}")
        if int(self.n_spot_crps) < 0:
            raise ValueError(
                f"n_spot_crps must be >= 0, got {self.n_spot_crps}"
            )
        if not 0.0 <= float(self.clock_tolerance) < 1.0:
            raise ValueError(
                f"clock_tolerance must lie in [0, 1), got "
                f"{self.clock_tolerance}"
            )
        if float(self.latency_budget_s) < 0.0:
            raise ValueError("latency_budget_s must be non-negative")
        if int(self.max_batch) < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if not isinstance(self.engine, EngineConfig):
            raise TypeError("engine must be an EngineConfig")
        if self.fault_model is not None and not isinstance(self.fault_model,
                                                           FaultModel):
            raise TypeError("fault_model must be a FaultModel or None")
        if self.registry_backend not in BACKEND_NAMES:
            raise ValueError(
                f"registry_backend must be one of {BACKEND_NAMES}, got "
                f"{self.registry_backend!r}"
            )
        if self.registry_backend == "memory":
            if self.storage_root is not None:
                raise ValueError(
                    "storage_root requires registry_backend='sharded'"
                )
            if self.resident_records is not None:
                raise ValueError(
                    "resident_records requires registry_backend='sharded'"
                )
        if self.resident_records is not None \
                and int(self.resident_records) < 1:
            raise ValueError(
                f"resident_records must be >= 1, got {self.resident_records}"
            )
        if self.ha is not None:
            if not isinstance(self.ha, HAConfig):
                raise TypeError("ha must be an HAConfig or None")
            if self.ha.handoff == "attach" \
                    and self.registry_backend != "sharded":
                raise ValueError(
                    "ha handoff='attach' requires registry_backend="
                    "'sharded' (promotion re-attaches the on-disk root)"
                )
        if not all(isinstance(key, str) for key in self.puf):
            raise TypeError("puf design knobs must be keyed by name")
        # Freeze a private copy: the config must not alias a caller dict
        # that later mutates under it.
        object.__setattr__(self, "puf", dict(self.puf))

    def with_engine(self, **changes: Any) -> "FleetConfig":
        """A copy with engine knobs replaced (config stays frozen)."""
        return replace(self, engine=replace(self.engine, **changes))

    def make_registry_backend(self) -> RegistryBackend:
        """Build the registry storage backend this config describes."""
        return make_backend(
            self.registry_backend,
            root=self.storage_root,
            resident_records=self.resident_records,
        )

    def to_state(self) -> Dict[str, Any]:
        """JSON-serializable capture; inverse of :meth:`from_state`."""
        return {
            "format": CONFIG_FORMAT,
            "version": CONFIG_VERSION,
            "n_devices": int(self.n_devices),
            "seed": int(self.seed),
            "n_spot_crps": int(self.n_spot_crps),
            "clock_tolerance": float(self.clock_tolerance),
            "engine": self.engine.to_state(),
            "latency_budget_s": float(self.latency_budget_s),
            "max_batch": int(self.max_batch),
            "fault_model": (None if self.fault_model is None
                            else asdict(self.fault_model)),
            "snapshot_path": self.snapshot_path,
            "registry_backend": self.registry_backend,
            "storage_root": self.storage_root,
            "resident_records": (None if self.resident_records is None
                                 else int(self.resident_records)),
            "ha": None if self.ha is None else self.ha.to_state(),
            "puf": dict(self.puf),
        }

    @classmethod
    def from_state(cls, state: Mapping[str, Any]) -> "FleetConfig":
        if state.get("format") != CONFIG_FORMAT:
            raise ValueError(
                f"not a fleet-config state: {state.get('format')!r}"
            )
        if state.get("version") != CONFIG_VERSION:
            raise ValueError(
                f"unsupported fleet-config version {state.get('version')!r}"
            )
        _reject_unknown_keys(
            state,
            ("format", "version", "n_devices", "seed", "n_spot_crps",
             "clock_tolerance", "engine", "latency_budget_s", "max_batch",
             "fault_model", "snapshot_path", "registry_backend",
             "storage_root", "resident_records", "ha", "puf"),
            "fleet config",
        )
        fault_state = state.get("fault_model")
        ha_state = state.get("ha")
        return cls(
            n_devices=int(state["n_devices"]),
            seed=int(state.get("seed", 0)),
            n_spot_crps=int(state.get("n_spot_crps", 0)),
            clock_tolerance=float(state.get("clock_tolerance", 0.05)),
            engine=EngineConfig.from_state(state.get("engine", {})),
            latency_budget_s=float(state.get("latency_budget_s", 0.005)),
            max_batch=int(state.get("max_batch", 256)),
            fault_model=(None if fault_state is None
                         else FaultModel(**fault_state)),
            snapshot_path=state.get("snapshot_path"),
            registry_backend=state.get("registry_backend", "memory"),
            storage_root=state.get("storage_root"),
            resident_records=state.get("resident_records"),
            ha=None if ha_state is None else HAConfig.from_state(ha_state),
            puf=dict(state.get("puf", {})),
        )
