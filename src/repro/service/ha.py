"""``repro.service.ha``: a replicated verifier plane you can kill.

One :class:`~repro.service.net.server.AuthServer` is a single point of
failure: crash it mid-round and every in-flight ticket strands until a
manual restore.  This module runs **N replicas over shared durable
state** with lease-based primary election, standby promotion on crash,
and chaos-tested failover:

* :class:`ReplicaGroup` — N servers over one durable registry (the
  ``"shared"`` handoff serves every replica from the same registry
  object, the in-process model of a shared store; ``"attach"`` re-opens
  the PR 7 sharded on-disk root with write-ahead journal replay at
  promotion, the real crash path).  Each replica's verifier partitions
  the nonce-epoch space by residue class
  (``epoch * n_replicas + replica_index``) with a durable per-replica
  epoch floor bumped on every (re)start, so no replica can ever re-issue
  a nonce any other incarnation of any replica put on the wire.
* A shared :class:`~repro.fleet.verifier.CommitLog` closes the
  two-phase-commit crash window: a confirmation delivered whose
  finalize never lands leaves the device one CRP ahead of the registry;
  the parked candidate lets the *promoted* replica prove the roll from
  the device's next MAC and complete it lazily — zero desyncs across
  kills.
* :class:`HAAuthClient` — multi-endpoint failover over
  :class:`~repro.service.net.client.AuthClient`: per-verb timeouts,
  :class:`~repro.service.policy.RetryPolicy` exponential backoff with
  seeded jitter, endpoint rotation on transport-kind failures.  Retried
  ``authenticate`` is idempotent by construction: a device only rolls
  on a verified confirmation, and the registry only rolls on finalize
  or a commit-log proof, so a replay of the whole exchange against the
  promoted replica continues the same CRP chain.
* :func:`run_replicated_campaign` — the campaign harness with
  ``kill_replica``/``restore_replica`` scheduling, a nonce wiretap, and
  a final desync audit, used by the chaos CI lane.

What failover guarantees: no nonce reuse (partitioned epochs), no
device/registry desync (two-phase commit + commit log), at-most-one
roll per accepted ticket.  What it does not: in-flight tickets on the
killed primary fail (clients must retry — that is what
:class:`HAAuthClient` is for), and failover latency is bounded below by
``lease_timeout_s``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fleet.registry import FleetRegistry
from repro.fleet.storage import ShardedFileBackend
from repro.fleet.verifier import BatchVerifier, CommitLog, FleetDevice
from repro.protocols.mutual_auth import AuthenticationFailure, FailureKind
from repro.service.config import FleetConfig, HAConfig
from repro.service.facade import AuthService
from repro.service.net.chaos import ChaosTransport, LegChaos
from repro.service.net.client import AuthClient, RemoteAuthError, RemoteTicket
from repro.service.net.server import AuthServer, NetConfig
from repro.service.policy import RetryPolicy, ServicePolicy

__all__ = [
    "HAAuthClient",
    "HACampaignReport",
    "KillEvent",
    "Lease",
    "ReplicaGroup",
    "run_replicated_campaign",
]


@dataclass
class Lease:
    """Who may serve, until when — on the group's injectable clock."""

    holder: Optional[int] = None
    expires_at: float = float("-inf")

    def held_by(self, index: int, now: float) -> bool:
        return self.holder == index and now < self.expires_at

    def expired(self, now: float) -> bool:
        return self.holder is None or now >= self.expires_at


class _WiretapVerifier(BatchVerifier):
    """A :class:`BatchVerifier` that logs every issued nonce.

    The group's wiretap is the acceptance instrument for the no-reuse
    guarantee: every nonce any replica ever puts on the wire lands in
    one shared list, asserted globally unique at campaign end.
    """

    def __init__(self, *args, wiretap: Optional[List[bytes]] = None,
                 **kwargs):
        super().__init__(*args, **kwargs)
        self._wiretap = wiretap

    def open_round(self, device_ids: Sequence[str]) -> Dict[str, bytes]:
        nonces = super().open_round(device_ids)
        if self._wiretap is not None:
            self._wiretap.extend(nonces.values())
        return nonces


class _Replica:
    """One replica slot: service + server + its stable chaos endpoint."""

    def __init__(self, index: int, service: AuthService):
        self.index = index
        self.service = service
        self.server: Optional[AuthServer] = None
        self.chaos: Optional[ChaosTransport] = None
        self.alive = False
        self.starts = 0


class ReplicaGroup:
    """N :class:`AuthServer` replicas over shared verifier-plane state.

    >>> config = FleetConfig(n_devices=8, ha=HAConfig(n_replicas=3))
    >>> group = await ReplicaGroup.provision(config)
    >>> await group.kill_replica(group.primary)     # chaos strikes
    >>> await group.wait_for_primary()              # a standby promoted

    Every replica fronts through its own :class:`ChaosTransport` proxy
    (fault-free unless leg configs are given), which keeps each
    replica's *endpoint* stable across kill/restore cycles — exactly
    like a load-balancer address — and gives the campaign harness its
    connection-severing kill hook for free.
    """

    def __init__(self, service: AuthService, *,
                 net_config: Optional[NetConfig] = None,
                 uplink: Optional[LegChaos] = None,
                 downlink: Optional[LegChaos] = None,
                 chaos_seed: int = 0):
        self.service = service
        self.config: FleetConfig = service.config
        self.ha: HAConfig = service.config.ha or HAConfig()
        self.net_config = net_config or NetConfig()
        self.uplink = uplink or LegChaos()
        self.downlink = downlink or LegChaos()
        self.chaos_seed = int(chaos_seed)
        self._clock: Callable[[], float] = service.clock
        self.lease = Lease()
        self.commit_log = CommitLog()
        self.issued_nonces: List[bytes] = []
        self.events: List[dict] = []
        self.promotions = 0
        self._obs = None                 # set by instrument_replica_group
        # Durable per-replica epoch floors: bumped at every verifier
        # incarnation (start, restore, attach-promotion), never reused.
        self._epochs = [0] * self.ha.n_replicas
        self._registries: List[FleetRegistry] = [service.registry]
        self._steward_task: Optional[asyncio.Task] = None
        self._closing = False
        self.replicas: List[_Replica] = []
        for index in range(self.ha.n_replicas):
            if index == 0:
                # Replica 0 reuses the provisioned service (it owns the
                # execution plane and the device roster) with its
                # verifier swapped for the partitioned one.
                service.verifier = self._make_verifier(0, service.registry)
                service.coalescer = service._build_coalescer()
                self.replicas.append(_Replica(0, service))
            else:
                standby = AuthService(
                    service.registry, [],
                    self._make_verifier(index, service.registry),
                    config=service.config, policies=service.policies,
                    clock=service.clock)
                self.replicas.append(_Replica(index, standby))

    @classmethod
    async def provision(cls, config: FleetConfig, *,
                        policies: Sequence[ServicePolicy] = (),
                        clock: Callable[[], float] = time.monotonic,
                        net_config: Optional[NetConfig] = None,
                        uplink: Optional[LegChaos] = None,
                        downlink: Optional[LegChaos] = None,
                        chaos_seed: int = 0) -> "ReplicaGroup":
        """Provision a fleet and start the whole replica group."""
        service = AuthService.provision(config, policies=policies,
                                        clock=clock)
        group = cls(service, net_config=net_config, uplink=uplink,
                    downlink=downlink, chaos_seed=chaos_seed)
        await group.start()
        return group

    # -- verifier plumbing -------------------------------------------------

    def _make_verifier(self, index: int,
                       registry: FleetRegistry) -> BatchVerifier:
        epoch = self._epochs[index]
        self._epochs[index] += 1
        return _WiretapVerifier(
            registry, seed=self.config.seed,
            clock_tolerance=self.config.clock_tolerance,
            nonce_epoch=epoch, replica_index=index,
            n_replicas=self.ha.n_replicas, commit_log=self.commit_log,
            wiretap=self.issued_nonces)

    def assert_nonces_unique(self) -> int:
        """Raise unless every wiretapped nonce is globally distinct."""
        if len(self.issued_nonces) != len(set(self.issued_nonces)):
            raise AssertionError(
                f"nonce reuse across replicas: "
                f"{len(self.issued_nonces) - len(set(self.issued_nonces))} "
                "duplicates")
        return len(self.issued_nonces)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "ReplicaGroup":
        now = self._clock()
        for replica in self.replicas:
            await self._start_server(replica)
            replica.chaos = ChaosTransport(
                replica.server.host, replica.server.port,
                uplink=self.uplink, downlink=self.downlink,
                seed=self.chaos_seed + replica.index)
            await replica.chaos.start()
        self._grant_lease(0, now)
        self._steward_task = asyncio.get_running_loop().create_task(
            self._steward_loop())
        return self

    async def _start_server(self, replica: _Replica) -> None:
        replica.server = AuthServer(
            replica.service, self.net_config,
            fence=lambda index=replica.index: self._fence(index))
        await replica.server.start()
        replica.alive = True
        replica.starts += 1
        self._bind_incarnation(replica)
        if replica.chaos is not None:
            # The stable proxy endpoint re-targets the fresh port.
            replica.chaos.target_host = replica.server.host
            replica.chaos.target_port = replica.server.port
        if self._obs is not None:
            self._obs.rebind(self)

    def _bind_incarnation(self, replica: _Replica) -> None:
        """Stamp this replica's boot identity onto every policy that
        joins audit lines with traces (runs instrumented or not)."""
        for policy in replica.service.policies:
            bind = getattr(policy, "bind_incarnation", None)
            if bind is not None:
                bind(replica.starts, replica=replica.index)

    async def aclose(self) -> None:
        if self._closing:
            return
        self._closing = True
        if self._steward_task is not None:
            self._steward_task.cancel()
            try:
                await self._steward_task
            except (asyncio.CancelledError, Exception):
                pass
        for replica in self.replicas:
            if replica.chaos is not None:
                await replica.chaos.aclose()
            if replica.server is not None and replica.alive:
                await replica.server.kill()
        # Close every registry this group ever opened, exactly once; the
        # provisioned service additionally owns the execution plane.
        if self.service._owned_plane is not None:
            self.service._owned_plane.close_executor()
        seen = set()
        for registry in self._registries:
            if id(registry) in seen:
                continue
            seen.add(id(registry))
            registry.close()

    async def __aenter__(self) -> "ReplicaGroup":
        if self._steward_task is None:
            await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- membership / addressing ------------------------------------------

    @property
    def devices(self) -> List[FleetDevice]:
        return self.service.device_list

    @property
    def endpoints(self) -> List[Tuple[str, int]]:
        """Stable per-replica addresses (the chaos proxy fronts)."""
        return [(replica.chaos.host, replica.chaos.port)
                for replica in self.replicas]

    @property
    def primary(self) -> Optional[int]:
        now = self._clock()
        if (self.lease.holder is not None
                and self.replicas[self.lease.holder].alive
                and not self.lease.expired(now)):
            return self.lease.holder
        return None

    @property
    def registry(self) -> FleetRegistry:
        """The authoritative registry (the current primary's, else the
        most recently opened one)."""
        holder = self.lease.holder
        if holder is not None:
            return self.replicas[holder].service.registry
        return self._registries[-1]

    # -- the lease steward -------------------------------------------------

    def _fence(self, index: int) -> Optional[AuthenticationFailure]:
        now = self._clock()
        if self.lease.held_by(index, now):
            return None
        if self.lease.holder == index:
            refusal = AuthenticationFailure(
                f"replica {index} lost its lease", FailureKind.LEASE_EXPIRED)
        else:
            refusal = AuthenticationFailure(
                f"replica {index} is not the primary",
                FailureKind.REPLICA_UNAVAILABLE)
        if self._obs is not None:
            self._obs.on_fenced(refusal.kind.value)
        return refusal

    def lease_tick(self, now: Optional[float] = None) -> None:
        """One steward evaluation: heartbeat or promote.  Exposed so
        tests can drive election on a fake clock without real sleeps."""
        if now is None:
            now = self._clock()
        holder = self.lease.holder
        if holder is not None and self.replicas[holder].alive:
            # A live primary heartbeats; a dead one silently lets the
            # lease run out — that silence *is* the failure detector.
            self.lease.expires_at = now + self.ha.lease_timeout_s
            return
        if self.lease.expired(now):
            candidate = next((replica.index for replica in self.replicas
                              if replica.alive), None)
            if candidate is not None:
                self._promote(candidate, now)

    async def _steward_loop(self) -> None:
        interval = self.ha.heartbeat_interval_s / 2.0
        while True:
            self.lease_tick()
            await asyncio.sleep(interval)

    def _grant_lease(self, index: int, now: float) -> None:
        if self._obs is not None:
            self._obs.on_lease(
                "grant" if self.lease.holder != index else "regrant")
        self.lease.holder = index
        self.lease.expires_at = now + self.ha.lease_timeout_s
        self.events.append({"event": "lease", "replica": index,
                            "at": now})

    def _promote(self, index: int, now: float) -> None:
        replica = self.replicas[index]
        if self.ha.handoff == "attach":
            # The real crash path: re-open the sharded on-disk root.
            # The constructor (not .attach) resumes *with* write-ahead
            # journal replay, so every roll the dead primary finalized
            # after its last checkpoint survives the handoff.
            attach_started = self._clock()
            backend = ShardedFileBackend(
                self.config.storage_root,
                resident_records=int(self.config.resident_records or 65536))
            registry = FleetRegistry(backend)
            if self._obs is not None:
                self._obs.on_wal_replay(self._clock() - attach_started)
            self._registries.append(registry)
            replica.service.registry = registry
            replica.service.verifier = self._make_verifier(index, registry)
            replica.service.coalescer = replica.service._build_coalescer()
        self.promotions += 1
        self.events.append({"event": "promote", "replica": index,
                            "at": now})
        self._bind_incarnation(replica)
        if self._obs is not None:
            self._obs.on_promotion()
            self._obs.rebind(self)
        self._grant_lease(index, now)

    async def wait_for_primary(self, timeout: float = 5.0) -> int:
        """Block until some replica holds an unexpired lease."""
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            primary = self.primary
            if primary is not None:
                return primary
            if asyncio.get_running_loop().time() >= deadline:
                raise asyncio.TimeoutError(
                    "no replica promoted within the timeout")
            await asyncio.sleep(self.ha.heartbeat_interval_s / 2.0)

    # -- chaos hooks -------------------------------------------------------

    async def kill_replica(self, index: int) -> None:
        """Crash one replica abruptly: no drain, connections severed.

        The lease is *not* touched — the steward notices the silence
        when the lease runs out, exactly like a real failure detector.
        """
        replica = self.replicas[index]
        if not replica.alive:
            return
        replica.alive = False
        self.events.append({"event": "kill", "replica": index,
                            "at": self._clock()})
        await replica.server.kill()
        replica.server = None
        if replica.chaos is not None:
            replica.chaos.kill_connections()

    async def restore_replica(self, index: int) -> None:
        """Bring a killed replica back as a standby, on a fresh epoch.

        Transient verifier state (pendings, replay tags) died with the
        process — by design; the commit log and registry are the shared
        durable state it rejoins.  The bumped epoch floor keeps every
        post-restore nonce outside anything the dead incarnation issued.
        """
        replica = self.replicas[index]
        if replica.alive:
            return
        registry = self.registry
        replica.service.registry = registry
        replica.service.verifier = self._make_verifier(index, registry)
        replica.service.coalescer = replica.service._build_coalescer()
        await self._start_server(replica)
        self.events.append({"event": "restore", "replica": index,
                            "at": self._clock()})

    def calm(self) -> None:
        """Turn all chaos off (the reconciliation round runs clean)."""
        for replica in self.replicas:
            if replica.chaos is not None:
                replica.chaos.uplink = LegChaos()
                replica.chaos.downlink = LegChaos()
                replica.chaos.kill_connections()

    # -- audits ------------------------------------------------------------

    def desynchronized(self) -> List[str]:
        """Devices whose CRP disagrees with the authoritative registry."""
        import numpy as np
        registry = self.registry
        drifted = []
        for device in self.devices:
            record = registry.record(device.device_id)
            if not np.array_equal(record.current_response,
                                  device.current_response):
                drifted.append(device.device_id)
        return drifted


#: Transport-level kinds that make the client rotate to the next
#: endpoint (and redial) before retrying.
_ROTATE_KINDS = frozenset({
    FailureKind.CONNECTION_LOST.value,
    FailureKind.TIMEOUT.value,
    FailureKind.REPLICA_UNAVAILABLE.value,
    FailureKind.LEASE_EXPIRED.value,
    FailureKind.RATE_LIMITED.value,       # a draining server says "elsewhere"
})


class HAAuthClient:
    """Multi-endpoint failover client over :class:`AuthClient`.

    Dials endpoints in rotation: a verb that fails with a transport
    kind (connection lost, timeout, replica unavailable, lease expired)
    drops the connection, rotates to the next endpoint, and retries
    under the configured :class:`RetryPolicy`'s backoff-with-jitter
    schedule.  Protocol-level failures (bad MAC, not enrolled, ...)
    surface immediately — failing over cannot change them.

    Safe-resumption guarantees (why retries are idempotent):

    * a retried ``authenticate`` whose earlier attempt died before the
      CONFIRMATION landed finds both sides still on the old CRP (the
      server's connection-death abort is *ambiguous* and rolls nothing);
    * one whose earlier attempt died *after* the device confirmed is
      already settled accepted locally, so no retry happens — and the
      registry side completes from the shared commit log;
    * a retried ``enroll`` that raced a connection loss may find the
      first attempt landed; the duplicate-device refusal on a retried
      attempt is reported as success (the enrollment exists).
    """

    def __init__(self, endpoints: Sequence[Tuple[str, int]], *,
                 retry_policy: Optional[RetryPolicy] = None,
                 peer: str = "repro-ha-client",
                 handshake_timeout_s: float = 2.0,
                 verb_timeout_s: float = 10.0):
        if not endpoints:
            raise ValueError("HAAuthClient needs at least one endpoint")
        self.endpoints = [(host, int(port)) for host, port in endpoints]
        self.retry_policy = retry_policy or RetryPolicy.network()
        self.peer = peer
        self.handshake_timeout_s = float(handshake_timeout_s)
        self.verb_timeout_s = float(verb_timeout_s)
        self.attempts = 0
        self.failovers = 0
        self._active = 0
        self._client: Optional[AuthClient] = None
        self._dial_lock = asyncio.Lock()

    # -- connection management --------------------------------------------

    async def _connection(self) -> AuthClient:
        async with self._dial_lock:
            if self._client is not None and not self._client._closed:
                return self._client
            host, port = self.endpoints[self._active]
            self._client = await AuthClient.connect(
                host, port, peer=self.peer,
                handshake_timeout_s=self.handshake_timeout_s,
                response_timeout_s=self.verb_timeout_s)
            return self._client

    async def _rotate(self, failed: Optional[AuthClient]) -> None:
        """Advance to the next endpoint — once, even under concurrency."""
        async with self._dial_lock:
            if failed is not None and failed is not self._client:
                return                     # somebody already rotated
            if self._client is not None:
                await self._client.aclose()
                self._client = None
            self._active = (self._active + 1) % len(self.endpoints)
            self.failovers += 1

    async def aclose(self) -> None:
        async with self._dial_lock:
            if self._client is not None:
                await self._client.aclose()
                self._client = None

    async def __aenter__(self) -> "HAAuthClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- verbs -------------------------------------------------------------

    async def authenticate(self, device: FleetDevice,
                           flush: bool = False) -> RemoteTicket:
        policy = self.retry_policy
        attempt = 0
        while True:
            attempt += 1
            self.attempts += 1
            client: Optional[AuthClient] = None
            try:
                client = await self._connection()
                ticket = await client.authenticate(device, flush=flush)
            except AuthenticationFailure as failure:
                kind = getattr(failure.kind, "value", None)
                await self._rotate(client)
                if not policy.should_retry(kind, attempt):
                    raise
                await asyncio.sleep(policy.delay(attempt))
                continue
            if ticket.accepted:
                return ticket
            if not policy.should_retry(ticket.failure_kind, attempt):
                return ticket
            if ticket.failure_kind in _ROTATE_KINDS:
                await self._rotate(client)
            await asyncio.sleep(policy.delay(attempt))

    async def enroll(self, device: FleetDevice) -> None:
        await self._call(lambda client: client.enroll(device),
                         ambiguous_ok=frozenset(
                             {FailureKind.DUPLICATE_DEVICE.value}))

    async def revoke(self, device_id: str) -> None:
        await self._call(lambda client: client.revoke(device_id),
                         ambiguous_ok=frozenset(
                             {FailureKind.NOT_ENROLLED.value}))

    async def flush(self) -> None:
        await self._call(lambda client: client.flush())

    async def poll(self) -> bool:
        return await self._call(lambda client: client.poll())

    async def spot_check(self, device: FleetDevice, k: int = 8,
                         threshold: float = 0.25) -> Tuple[float, bool]:
        return await self._call(
            lambda client: client.spot_check(device, k, threshold))

    async def scrape(self, fmt: str = "prometheus",
                     index: Optional[int] = None) -> str:
        """Scrape metrics from a replica (wire 1.2 ``metrics`` verb).

        With ``index=None`` the active connection is used (failing over
        like any other verb); naming an index dials that endpoint
        one-shot — the verb is unfenced, so standbys answer too, and
        under :func:`repro.obs.instrument_replica_group` every replica
        serves the same fleet-wide registry.
        """
        if index is None:
            return await self._call(lambda client: client.metrics(fmt))
        host, port = self.endpoints[index]
        async with AuthClient.connect(
                host, port, peer=self.peer,
                handshake_timeout_s=self.handshake_timeout_s,
                response_timeout_s=self.verb_timeout_s) as client:
            return await client.metrics(fmt)

    async def trace(self, index: Optional[int] = None) -> list:
        """Fetch recent round spans from a replica (wire 1.2)."""
        if index is None:
            return await self._call(lambda client: client.trace())
        host, port = self.endpoints[index]
        async with AuthClient.connect(
                host, port, peer=self.peer,
                handshake_timeout_s=self.handshake_timeout_s,
                response_timeout_s=self.verb_timeout_s) as client:
            return await client.trace()

    async def _call(self, op, ambiguous_ok: frozenset = frozenset()):
        """Run one idempotent-or-ambiguity-tolerant verb with failover.

        ``ambiguous_ok`` names kinds treated as success *after* a
        transport-level retry: once a connection died mid-verb the first
        attempt may have landed, so e.g. ``duplicate-device`` on a
        retried enroll means "already done", not "error".
        """
        policy = self.retry_policy
        attempt = 0
        ambiguous = False
        while True:
            attempt += 1
            self.attempts += 1
            client: Optional[AuthClient] = None
            try:
                client = await self._connection()
                return await op(client)
            except asyncio.TimeoutError:
                failure = RemoteAuthError("verb timed out",
                                          FailureKind.TIMEOUT)
                kind = failure.kind.value
            except AuthenticationFailure as exc:
                failure = exc
                kind = getattr(exc.kind, "value", None)
            if ambiguous and kind in ambiguous_ok:
                return None
            if kind in _ROTATE_KINDS:
                ambiguous = True
                await self._rotate(client)
            if not policy.should_retry(kind, attempt):
                raise failure
            await asyncio.sleep(policy.delay(attempt))


@dataclass
class KillEvent:
    """Kill ``replica_index`` once ``after_settled`` tickets of round
    ``round_index`` settled — a *mid-round* crash by construction."""

    round_index: int
    after_settled: int
    replica_index: int
    restore_after_round: bool = True


@dataclass
class HACampaignReport:
    """Outcome of one :func:`run_replicated_campaign`."""

    n_rounds: int = 0
    n_devices: int = 0
    accepted: int = 0
    attempts: int = 0
    failovers: int = 0
    kills: List[Tuple[int, int]] = field(default_factory=list)
    promotions: int = 0
    failures: Dict[str, str] = field(default_factory=dict)
    desynchronized: List[str] = field(default_factory=list)
    nonces_issued: int = 0
    nonces_unique: bool = True
    commit_log_unresolved: int = 0

    def to_json(self) -> dict:
        return {
            "n_rounds": self.n_rounds,
            "n_devices": self.n_devices,
            "accepted": self.accepted,
            "attempts": self.attempts,
            "failovers": self.failovers,
            "kills": [list(kill) for kill in self.kills],
            "promotions": self.promotions,
            "failures": dict(self.failures),
            "desynchronized": list(self.desynchronized),
            "nonces_issued": self.nonces_issued,
            "nonces_unique": self.nonces_unique,
            "commit_log_unresolved": self.commit_log_unresolved,
        }


async def run_replicated_campaign(
        group: ReplicaGroup, *, n_rounds: int = 3,
        kill_schedule: Sequence[KillEvent] = (),
        retry_policy_factory: Optional[Callable[[int], RetryPolicy]] = None,
        verb_timeout_s: float = 5.0,
        reconcile: bool = True) -> HACampaignReport:
    """Drive every device through ``n_rounds`` of authentication while
    the schedule crashes replicas mid-round.

    Each device runs its own :class:`HAAuthClient` (devices are
    independent network clients), all submitting concurrently so the
    primary coalesces them into micro-rounds.  Killed replicas are
    restored as standbys after their round (``restore_after_round``),
    rebuilding the standby pool for later kills.  With ``reconcile``
    the campaign ends with one fault-free round — every ambiguous
    commit gets the fresh device message that lets the commit-log
    recovery settle it, so the final audit is exact, not racy.
    """
    devices = group.devices
    report = HACampaignReport(n_rounds=n_rounds, n_devices=len(devices))
    clients = []
    for position, device in enumerate(devices):
        policy = (retry_policy_factory(position) if retry_policy_factory
                  else RetryPolicy.network(max_retries=14, seed=position))
        clients.append(HAAuthClient(group.endpoints, retry_policy=policy,
                                    verb_timeout_s=verb_timeout_s))
    state = {"settled": 0}
    pending_kills = list(kill_schedule)

    async def _one(round_index: int, client: HAAuthClient,
                   device: FleetDevice) -> None:
        try:
            ticket = await client.authenticate(device)
        except AuthenticationFailure as failure:
            report.failures[device.device_id] = (
                f"round {round_index}: {failure}")
        else:
            if ticket.accepted:
                report.accepted += 1
            else:
                report.failures[device.device_id] = (
                    f"round {round_index}: {ticket.failure} "
                    f"[{ticket.failure_kind}]")
        state["settled"] += 1
        for event in list(pending_kills):
            if (event.round_index == round_index
                    and state["settled"] >= event.after_settled):
                pending_kills.remove(event)
                report.kills.append((round_index, event.replica_index))
                await group.kill_replica(event.replica_index)

    try:
        for round_index in range(n_rounds):
            state["settled"] = 0
            await asyncio.gather(*[
                _one(round_index, client, device)
                for client, device in zip(clients, devices)])
            for event in list(kill_schedule):
                if (event.round_index == round_index
                        and event.restore_after_round):
                    await group.restore_replica(event.replica_index)
        if reconcile:
            group.calm()
            state["settled"] = 0
            report.n_rounds += 1
            await asyncio.gather(*[
                _one(n_rounds, client, device)
                for client, device in zip(clients, devices)])
    finally:
        for client in clients:
            await client.aclose()
    report.attempts = sum(client.attempts for client in clients)
    report.failovers = sum(client.failovers for client in clients)
    report.promotions = group.promotions
    report.desynchronized = group.desynchronized()
    report.nonces_issued = len(group.issued_nonces)
    report.nonces_unique = (len(group.issued_nonces)
                            == len(set(group.issued_nonces)))
    report.commit_log_unresolved = len(group.commit_log)
    return report
