"""Versioned wire codec for the fleet authentication protocol.

Every protocol message — the verifier's challenge, the device's masked
response, the verifier's confirmation, and the round report — serializes
to a self-describing bytes frame:

.. code-block:: text

    +-------+-------+-------+------+----------------------------+
    | magic | major | minor | type | length-prefixed payload    |
    | 2 B   | 1 B   | 1 B   | 1 B  | (repro.utils.serialization)|
    +-------+-------+-------+------+----------------------------+

The header carries the schema version so transports (sockets, HTTP,
queues) can be layered on later without touching protocol code: a
decoder rejects frames from an unknown *major* version outright
(:data:`~repro.protocols.mutual_auth.FailureKind.UNSUPPORTED_VERSION`)
and accepts any minor version within its major (minor bumps are
additive).  Payload fields reuse the injective length-prefixed encoding
of :func:`repro.utils.serialization.encode_fields`, so encoding is
round-trip exact: ``decode_message(encode_message(m)) == m`` for every
message, bit for bit.

Malformed frames — truncations, bad magic, unknown message types,
wrong field counts — are rejected with :class:`CodecError`, an
:class:`~repro.protocols.mutual_auth.AuthenticationFailure` carrying
the shared :class:`~repro.protocols.mutual_auth.FailureKind` taxonomy,
so transport-level rejections aggregate in round reports exactly like
protocol-level ones.

Wire format history
-------------------
* **1.0** — the four protocol frames: ``CHALLENGE``, ``RESPONSE``,
  ``CONFIRMATION``, ``REPORT``.
* **1.1** — adds the *session layer* spoken by
  :mod:`repro.service.net`: ``HELLO`` / ``WELCOME`` (version
  negotiation), ``REJECT`` (taxonomy-coded transport refusal), and the
  generic ``REQUEST`` / ``RESULT`` verb envelopes.  Purely additive:
  every 1.0 frame encodes and decodes byte-identically under 1.1.
* **1.2** (current) — adds the *admin verbs* ``metrics`` and ``trace``
  (:mod:`repro.obs` scrapes over the existing socket layer).  No new
  frame types: the verbs ride the 1.1 ``REQUEST`` / ``RESULT``
  envelopes, so the bump is only a capability gate — a server refuses
  the verbs on connections whose negotiated minor is below 2
  (``unsupported-version``), and every 1.1 frame still encodes and
  decodes byte-identically under 1.2.

Version negotiation rules (see :func:`negotiate_version`):

1. The first frame on a connection is the client's
   :class:`SessionHello`, advertising the highest wire version the
   client speaks.
2. A server whose *major* differs answers with a
   :class:`SessionReject` of kind ``unsupported-version`` and closes —
   majors are incompatible by contract, so no session exists to
   continue.
3. Otherwise the server answers :class:`SessionWelcome` carrying the
   negotiated version: the shared major and ``min(client minor,
   server minor)``.  Minor bumps are additive, so the lower minor is a
   subset both sides speak; neither peer may send a frame type
   introduced after the negotiated minor.
4. Any frame that fails to decode *before* the handshake completes is
   answered with a :class:`SessionReject` (kind ``malformed``, or
   ``unsupported-version`` when only the major was unreadable) and the
   connection is closed.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from enum import IntEnum
from typing import List, Mapping, Tuple, Union

from repro.fleet.verifier import AuthResponse, BatchAuthReport
from repro.protocols.mutual_auth import AuthenticationFailure, FailureKind
from repro.utils.serialization import decode_fields, encode_fields

MAGIC = b"RW"  # "repro wire"
SCHEMA_MAJOR = 1
SCHEMA_MINOR = 2

_HEADER = struct.Struct(">2sBBB")


class WireType(IntEnum):
    """Message-type discriminator carried in the frame header."""

    CHALLENGE = 1
    RESPONSE = 2
    CONFIRMATION = 3
    REPORT = 4
    # Session layer — added by wire format 1.1.
    HELLO = 5
    WELCOME = 6
    REJECT = 7
    REQUEST = 8
    RESULT = 9


class CodecError(AuthenticationFailure):
    """A wire frame failed to decode (truncated, foreign, or unknown)."""

    def __init__(self, message: str,
                 kind: FailureKind = FailureKind.MALFORMED):
        super().__init__(message, kind)


@dataclass(frozen=True)
class AuthChallenge:
    """The verifier's round-opening request to one device."""

    device_id: str
    nonce: bytes


@dataclass(frozen=True)
class AuthConfirmation:
    """The verifier's ``mac'`` proving knowledge of the new secret."""

    device_id: str
    mac: bytes


@dataclass(frozen=True)
class SessionHello:
    """First frame on a connection: the client's version advertisement.

    ``major``/``minor`` are the *highest* wire version the sender
    speaks; ``peer`` is a free-form self-identification (logged, never
    trusted).
    """

    peer: str
    major: int = SCHEMA_MAJOR
    minor: int = SCHEMA_MINOR


@dataclass(frozen=True)
class SessionWelcome:
    """The server's handshake acceptance, carrying the negotiated
    version — the shared major and the minimum of both minors."""

    peer: str
    major: int = SCHEMA_MAJOR
    minor: int = SCHEMA_MINOR


@dataclass(frozen=True)
class SessionReject:
    """A taxonomy-coded refusal; the sender closes after this frame."""

    kind: str = FailureKind.UNSPECIFIED.value
    reason: str = ""

    def to_failure(self) -> AuthenticationFailure:
        """The refusal as a raisable :class:`AuthenticationFailure`."""
        try:
            kind = FailureKind(self.kind)
        except ValueError:
            kind = FailureKind.UNSPECIFIED
        return AuthenticationFailure(self.reason or self.kind, kind)


@dataclass(frozen=True)
class SessionRequest:
    """A client verb envelope: ``verb`` names a facade operation
    (``enroll``, ``auth``, ``flush``, ``spot`` …), ``params`` carries
    verb-specific bytes-valued arguments."""

    verb: str
    device_id: str = ""
    params: Mapping[str, bytes] = field(default_factory=dict)


@dataclass(frozen=True)
class SessionResult:
    """A server verb reply, correlated by ``(verb, device_id)``."""

    verb: str
    device_id: str = ""
    ok: bool = True
    detail: Mapping[str, bytes] = field(default_factory=dict)


WireMessage = Union[AuthChallenge, AuthResponse, AuthConfirmation,
                    BatchAuthReport, SessionHello, SessionWelcome,
                    SessionReject, SessionRequest, SessionResult]


def negotiate_version(hello: SessionHello) -> Tuple[int, int]:
    """Apply the negotiation rules to a client HELLO (server side).

    Returns the ``(major, minor)`` to answer in the WELCOME; raises
    :class:`CodecError` with ``FailureKind.UNSUPPORTED_VERSION`` when
    the majors differ (the caller turns that into a wire
    :class:`SessionReject` and closes the connection).
    """
    if hello.major != SCHEMA_MAJOR:
        raise CodecError(
            f"peer speaks wire format {hello.major}.{hello.minor}, "
            f"this server speaks {SCHEMA_MAJOR}.x",
            FailureKind.UNSUPPORTED_VERSION,
        )
    return SCHEMA_MAJOR, min(hello.minor, SCHEMA_MINOR)


def _version_byte(value: int, label: str) -> bytes:
    if not 0 <= int(value) <= 255:
        raise TypeError(f"{label} version {value!r} does not fit one byte")
    return bytes([int(value)])


def _frame(wire_type: WireType, fields: List[bytes]) -> bytes:
    header = _HEADER.pack(MAGIC, SCHEMA_MAJOR, SCHEMA_MINOR, int(wire_type))
    return header + encode_fields(fields)


def _flatten(pairs: dict) -> List[bytes]:
    """Deterministic (sorted) flat field list of a string-keyed dict."""
    flat: List[bytes] = []
    for key in sorted(pairs):
        value = pairs[key]
        flat.append(key.encode("utf-8"))
        flat.append(value if isinstance(value, (bytes, bytearray))
                    else str(value).encode("utf-8"))
    return flat


def _unflatten(blob: bytes, *, text_values: bool) -> dict:
    fields = decode_fields(blob)
    if len(fields) % 2:
        raise CodecError(
            f"report section holds {len(fields)} fields, expected pairs"
        )
    out = {}
    for index in range(0, len(fields), 2):
        key = fields[index].decode("utf-8")
        value = fields[index + 1]
        out[key] = value.decode("utf-8") if text_values else bytes(value)
    return out


def encode_message(message: WireMessage) -> bytes:
    """Serialize one protocol message to a self-describing wire frame."""
    if isinstance(message, AuthChallenge):
        return _frame(WireType.CHALLENGE,
                      [message.device_id.encode("utf-8"),
                       bytes(message.nonce)])
    if isinstance(message, AuthResponse):
        return _frame(WireType.RESPONSE,
                      [message.device_id.encode("utf-8"),
                       bytes(message.body), bytes(message.tag)])
    if isinstance(message, AuthConfirmation):
        return _frame(WireType.CONFIRMATION,
                      [message.device_id.encode("utf-8"),
                       bytes(message.mac)])
    if isinstance(message, BatchAuthReport):
        return _frame(WireType.REPORT, [
            encode_fields(_flatten(message.confirmations)),
            encode_fields(_flatten(message.failures)),
            encode_fields(_flatten(message.failure_kinds)),
        ])
    if isinstance(message, SessionHello):
        return _frame(WireType.HELLO,
                      [message.peer.encode("utf-8"),
                       _version_byte(message.major, "major"),
                       _version_byte(message.minor, "minor")])
    if isinstance(message, SessionWelcome):
        return _frame(WireType.WELCOME,
                      [message.peer.encode("utf-8"),
                       _version_byte(message.major, "major"),
                       _version_byte(message.minor, "minor")])
    if isinstance(message, SessionReject):
        return _frame(WireType.REJECT,
                      [message.kind.encode("utf-8"),
                       message.reason.encode("utf-8")])
    if isinstance(message, SessionRequest):
        return _frame(WireType.REQUEST,
                      [message.verb.encode("utf-8"),
                       message.device_id.encode("utf-8"),
                       encode_fields(_flatten(dict(message.params)))])
    if isinstance(message, SessionResult):
        return _frame(WireType.RESULT,
                      [message.verb.encode("utf-8"),
                       message.device_id.encode("utf-8"),
                       b"\x01" if message.ok else b"\x00",
                       encode_fields(_flatten(dict(message.detail)))])
    raise TypeError(
        f"not a wire message: {type(message).__name__}"
    )


def peek_header(data: bytes) -> Tuple[int, int, int]:
    """``(major, minor, type)`` of a frame, validating magic and length."""
    if len(data) < _HEADER.size:
        raise CodecError(
            f"frame is {len(data)} bytes, header needs {_HEADER.size}"
        )
    magic, major, minor, wire_type = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}, expected {MAGIC!r}")
    return major, minor, wire_type


def decode_message(data: bytes) -> WireMessage:
    """Inverse of :func:`encode_message`; raises :class:`CodecError`.

    Unknown *major* versions are rejected (the schema contract may have
    changed incompatibly); any minor version within the known major is
    accepted.  Every other malformation — truncation anywhere in the
    frame, unknown message type, wrong field count, non-UTF-8 device
    ids — raises with ``FailureKind.MALFORMED``.
    """
    major, minor, wire_type = peek_header(data)
    if major != SCHEMA_MAJOR:
        raise CodecError(
            f"unsupported schema major version {major} "
            f"(this codec reads {SCHEMA_MAJOR}.x)",
            FailureKind.UNSUPPORTED_VERSION,
        )
    try:
        wire_type = WireType(wire_type)
    except ValueError:
        raise CodecError(f"unknown message type {wire_type}") from None
    try:
        fields = decode_fields(data[_HEADER.size:])
    except ValueError as exc:
        raise CodecError(f"malformed payload: {exc}") from exc
    try:
        if wire_type is WireType.CHALLENGE:
            device_id, nonce = fields
            return AuthChallenge(device_id.decode("utf-8"), nonce)
        if wire_type is WireType.RESPONSE:
            device_id, body, tag = fields
            return AuthResponse(device_id.decode("utf-8"), body, tag)
        if wire_type is WireType.CONFIRMATION:
            device_id, mac = fields
            return AuthConfirmation(device_id.decode("utf-8"), mac)
        if wire_type in (WireType.HELLO, WireType.WELCOME):
            peer, major, minor = fields
            if len(major) != 1 or len(minor) != 1:
                raise ValueError("version fields must be single bytes")
            cls = SessionHello if wire_type is WireType.HELLO \
                else SessionWelcome
            return cls(peer.decode("utf-8"), major[0], minor[0])
        if wire_type is WireType.REJECT:
            kind, reason = fields
            return SessionReject(kind.decode("utf-8"),
                                 reason.decode("utf-8"))
        if wire_type is WireType.REQUEST:
            verb, device_id, params = fields
            return SessionRequest(verb.decode("utf-8"),
                                  device_id.decode("utf-8"),
                                  _unflatten(params, text_values=False))
        if wire_type is WireType.RESULT:
            verb, device_id, ok, detail = fields
            if ok not in (b"\x00", b"\x01"):
                raise ValueError(f"RESULT ok flag must be 0/1, got {ok!r}")
            return SessionResult(verb.decode("utf-8"),
                                 device_id.decode("utf-8"),
                                 ok == b"\x01",
                                 _unflatten(detail, text_values=False))
        confirmations, failures, kinds = fields
        return BatchAuthReport(
            confirmations=_unflatten(confirmations, text_values=False),
            failures=_unflatten(failures, text_values=True),
            failure_kinds=_unflatten(kinds, text_values=True),
        )
    except CodecError:
        raise
    except ValueError as exc:
        # Wrong field count for the type, or a non-UTF-8 device id.
        raise CodecError(
            f"malformed {wire_type.name} payload: {exc}"
        ) from exc
    except UnicodeDecodeError as exc:
        raise CodecError(
            f"malformed {wire_type.name} payload: {exc}"
        ) from exc
