"""Versioned wire codec for the fleet authentication protocol.

Every protocol message — the verifier's challenge, the device's masked
response, the verifier's confirmation, and the round report — serializes
to a self-describing bytes frame:

.. code-block:: text

    +-------+-------+-------+------+----------------------------+
    | magic | major | minor | type | length-prefixed payload    |
    | 2 B   | 1 B   | 1 B   | 1 B  | (repro.utils.serialization)|
    +-------+-------+-------+------+----------------------------+

The header carries the schema version so transports (sockets, HTTP,
queues) can be layered on later without touching protocol code: a
decoder rejects frames from an unknown *major* version outright
(:data:`~repro.protocols.mutual_auth.FailureKind.UNSUPPORTED_VERSION`)
and accepts any minor version within its major (minor bumps are
additive).  Payload fields reuse the injective length-prefixed encoding
of :func:`repro.utils.serialization.encode_fields`, so encoding is
round-trip exact: ``decode_message(encode_message(m)) == m`` for every
message, bit for bit.

Malformed frames — truncations, bad magic, unknown message types,
wrong field counts — are rejected with :class:`CodecError`, an
:class:`~repro.protocols.mutual_auth.AuthenticationFailure` carrying
the shared :class:`~repro.protocols.mutual_auth.FailureKind` taxonomy,
so transport-level rejections aggregate in round reports exactly like
protocol-level ones.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from enum import IntEnum
from typing import List, Tuple, Union

from repro.fleet.verifier import AuthResponse, BatchAuthReport
from repro.protocols.mutual_auth import AuthenticationFailure, FailureKind
from repro.utils.serialization import decode_fields, encode_fields

MAGIC = b"RW"  # "repro wire"
SCHEMA_MAJOR = 1
SCHEMA_MINOR = 0

_HEADER = struct.Struct(">2sBBB")


class WireType(IntEnum):
    """Message-type discriminator carried in the frame header."""

    CHALLENGE = 1
    RESPONSE = 2
    CONFIRMATION = 3
    REPORT = 4


class CodecError(AuthenticationFailure):
    """A wire frame failed to decode (truncated, foreign, or unknown)."""

    def __init__(self, message: str,
                 kind: FailureKind = FailureKind.MALFORMED):
        super().__init__(message, kind)


@dataclass(frozen=True)
class AuthChallenge:
    """The verifier's round-opening request to one device."""

    device_id: str
    nonce: bytes


@dataclass(frozen=True)
class AuthConfirmation:
    """The verifier's ``mac'`` proving knowledge of the new secret."""

    device_id: str
    mac: bytes


WireMessage = Union[AuthChallenge, AuthResponse, AuthConfirmation,
                    BatchAuthReport]


def _frame(wire_type: WireType, fields: List[bytes]) -> bytes:
    header = _HEADER.pack(MAGIC, SCHEMA_MAJOR, SCHEMA_MINOR, int(wire_type))
    return header + encode_fields(fields)


def _flatten(pairs: dict) -> List[bytes]:
    """Deterministic (sorted) flat field list of a string-keyed dict."""
    flat: List[bytes] = []
    for key in sorted(pairs):
        value = pairs[key]
        flat.append(key.encode("utf-8"))
        flat.append(value if isinstance(value, (bytes, bytearray))
                    else str(value).encode("utf-8"))
    return flat


def _unflatten(blob: bytes, *, text_values: bool) -> dict:
    fields = decode_fields(blob)
    if len(fields) % 2:
        raise CodecError(
            f"report section holds {len(fields)} fields, expected pairs"
        )
    out = {}
    for index in range(0, len(fields), 2):
        key = fields[index].decode("utf-8")
        value = fields[index + 1]
        out[key] = value.decode("utf-8") if text_values else bytes(value)
    return out


def encode_message(message: WireMessage) -> bytes:
    """Serialize one protocol message to a self-describing wire frame."""
    if isinstance(message, AuthChallenge):
        return _frame(WireType.CHALLENGE,
                      [message.device_id.encode("utf-8"),
                       bytes(message.nonce)])
    if isinstance(message, AuthResponse):
        return _frame(WireType.RESPONSE,
                      [message.device_id.encode("utf-8"),
                       bytes(message.body), bytes(message.tag)])
    if isinstance(message, AuthConfirmation):
        return _frame(WireType.CONFIRMATION,
                      [message.device_id.encode("utf-8"),
                       bytes(message.mac)])
    if isinstance(message, BatchAuthReport):
        return _frame(WireType.REPORT, [
            encode_fields(_flatten(message.confirmations)),
            encode_fields(_flatten(message.failures)),
            encode_fields(_flatten(message.failure_kinds)),
        ])
    raise TypeError(
        f"not a wire message: {type(message).__name__}"
    )


def peek_header(data: bytes) -> Tuple[int, int, int]:
    """``(major, minor, type)`` of a frame, validating magic and length."""
    if len(data) < _HEADER.size:
        raise CodecError(
            f"frame is {len(data)} bytes, header needs {_HEADER.size}"
        )
    magic, major, minor, wire_type = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r}, expected {MAGIC!r}")
    return major, minor, wire_type


def decode_message(data: bytes) -> WireMessage:
    """Inverse of :func:`encode_message`; raises :class:`CodecError`.

    Unknown *major* versions are rejected (the schema contract may have
    changed incompatibly); any minor version within the known major is
    accepted.  Every other malformation — truncation anywhere in the
    frame, unknown message type, wrong field count, non-UTF-8 device
    ids — raises with ``FailureKind.MALFORMED``.
    """
    major, minor, wire_type = peek_header(data)
    if major != SCHEMA_MAJOR:
        raise CodecError(
            f"unsupported schema major version {major} "
            f"(this codec reads {SCHEMA_MAJOR}.x)",
            FailureKind.UNSUPPORTED_VERSION,
        )
    try:
        wire_type = WireType(wire_type)
    except ValueError:
        raise CodecError(f"unknown message type {wire_type}") from None
    try:
        fields = decode_fields(data[_HEADER.size:])
    except ValueError as exc:
        raise CodecError(f"malformed payload: {exc}") from exc
    try:
        if wire_type is WireType.CHALLENGE:
            device_id, nonce = fields
            return AuthChallenge(device_id.decode("utf-8"), nonce)
        if wire_type is WireType.RESPONSE:
            device_id, body, tag = fields
            return AuthResponse(device_id.decode("utf-8"), body, tag)
        if wire_type is WireType.CONFIRMATION:
            device_id, mac = fields
            return AuthConfirmation(device_id.decode("utf-8"), mac)
        confirmations, failures, kinds = fields
        return BatchAuthReport(
            confirmations=_unflatten(confirmations, text_values=False),
            failures=_unflatten(failures, text_values=True),
            failure_kinds=_unflatten(kinds, text_values=True),
        )
    except CodecError:
        raise
    except ValueError as exc:
        # Wrong field count for the type, or a non-UTF-8 device id.
        raise CodecError(
            f"malformed {wire_type.name} payload: {exc}"
        ) from exc
    except UnicodeDecodeError as exc:
        raise CodecError(
            f"malformed {wire_type.name} payload: {exc}"
        ) from exc
