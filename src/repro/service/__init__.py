"""The supported service boundary of the fleet authentication stack.

``repro.service`` is the single entry point for production use:

>>> from repro.service import AuthService, FleetConfig
>>> service = AuthService.provision(FleetConfig(n_devices=8, seed=42))
>>> report = service.authenticate_batch()
>>> report.n_accepted
8

* :mod:`repro.service.config` — :class:`FleetConfig` /
  :class:`EngineConfig`, the declarative home of every provisioning and
  execution knob;
* :mod:`repro.service.facade` — :class:`AuthService`, the verb set
  (enroll, authenticate, spot_check, revoke, snapshot/restore) over
  registry + verifier + coalescer + execution plane;
* :mod:`repro.service.policy` — pluggable rate limiting, audit logging,
  and retry policies;
* :mod:`repro.service.codec` — the versioned wire codec every protocol
  message round-trips through, so transports can be layered on without
  touching protocol code;
* :mod:`repro.service.net` — the asyncio TCP transport speaking that
  codec: :class:`~repro.service.net.AuthServer` serves a wrapped
  :class:`AuthService`; :class:`~repro.service.net.AuthClient` mirrors
  the facade verbs on the device side of the socket;
* :mod:`repro.service.ha` — the replicated verifier plane:
  :class:`~repro.service.ha.ReplicaGroup` runs N servers over shared
  durable state with lease-based failover, and
  :class:`~repro.service.ha.HAAuthClient` fails over between their
  endpoints under a retry/backoff policy.

The pre-redesign free functions (``repro.fleet.provision_fleet``,
``respond_fleet``, ``respond_fleet_staged``) are deprecated shims that
delegate here; see the README migration table.
"""

from repro.service.codec import (
    MAGIC,
    SCHEMA_MAJOR,
    SCHEMA_MINOR,
    AuthChallenge,
    AuthConfirmation,
    CodecError,
    SessionHello,
    SessionReject,
    SessionRequest,
    SessionResult,
    SessionWelcome,
    WireType,
    decode_message,
    encode_message,
    negotiate_version,
    peek_header,
)
from repro.service.config import EngineConfig, FleetConfig, HAConfig
from repro.service.facade import AuthOutcome, AuthService
from repro.service.policy import (
    AuditLogPolicy,
    RateLimitPolicy,
    RetryPolicy,
    ServicePolicy,
)

__all__ = [
    "MAGIC",
    "SCHEMA_MAJOR",
    "SCHEMA_MINOR",
    "AuditLogPolicy",
    "AuthChallenge",
    "AuthConfirmation",
    "AuthOutcome",
    "AuthService",
    "CodecError",
    "EngineConfig",
    "FleetConfig",
    "HAConfig",
    "RateLimitPolicy",
    "RetryPolicy",
    "ServicePolicy",
    "SessionHello",
    "SessionReject",
    "SessionRequest",
    "SessionResult",
    "SessionWelcome",
    "WireType",
    "decode_message",
    "encode_message",
    "negotiate_version",
    "peek_header",
]
