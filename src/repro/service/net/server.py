"""``AuthServer``: the fleet verifier served over asyncio TCP.

The server wraps one :class:`~repro.service.facade.AuthService` and
speaks the versioned wire codec (:mod:`repro.service.codec`) over
length-prefixed frames (:mod:`repro.service.net.stream`), following the
gateway/authorizer split of fleet provisioning services: connections
are cheap per-device sessions; all protocol authority stays in the
wrapped service.

Request coalescing
------------------
Individually-arriving ``auth`` requests are *not* verified one by one —
they queue into a server-wide pending micro-round with exactly the
trigger semantics of :class:`repro.fleet.verifier.RoundCoalescer`
(latency budget, ``max_batch``, duplicate-device flush, revoked-while-
pending screening), so stragglers still batch onto the hot stacked
plane.  The flush timer schedules against the *service's* injectable
monotonic clock (:attr:`AuthService.clock`) — the same clock the
in-process coalescer reads — so a latency budget means the same thing
whether requests arrive through a socket or a function call.

A wire micro-round is the protocol's Fig. 4 exchange, scattered:

1. gather — pending ``REQUEST(auth)`` entries, across connections;
2. ``open_round`` on the service, in arrival order (the nonce stream
   is shared with the in-process path, bit for bit);
3. scatter ``CHALLENGE`` frames to each device's connection;
4. gather ``RESPONSE`` frames (bounded by ``response_timeout_s`` — a
   silent device fails *its own* ticket, never the round);
5. one batched ``verify_round_wire``; scatter ``CONFIRMATION`` frames
   (accepted) and ``RESULT`` frames (rejected, with the shared
   ``FailureKind`` taxonomy);
6. each device acks with ``REQUEST(finalize)`` (or ``abort``) to
   commit the two-phase CRP roll; a connection that dies before its
   ack is aborted, keeping both sides on the old CRP.

Isolation and flow control
--------------------------
Hostile sockets never poison a round: malformed frames get a
taxonomy-coded ``REJECT`` and only *that* connection closes; truncated
frames and slow-loris trickles time out per-socket
(:func:`~repro.service.net.stream.read_frame`); a device that never
answers its challenge is settled as failed while the rest of its
micro-round completes.  Per-connection flow control is two-sided:
reads pause above ``pending_high`` queued-but-unflushed requests
(resuming at ``pending_low``), and writes run under bounded transport
buffers (``set_write_buffer_limits``) with drain timeouts, so one slow
or stuck peer cannot pin a round or the server's memory.  Shutdown
drains: pending tickets flush, in-flight rounds finish, and unacked
confirmations are aborted before the loop stops.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.obs.export import render_json, render_prometheus
from repro.obs.instrument import RegistryBackedCounters
from repro.protocols.mutual_auth import AuthenticationFailure, FailureKind
from repro.service.codec import (
    SCHEMA_MINOR,
    CodecError,
    SessionHello,
    SessionReject,
    SessionRequest,
    SessionResult,
    SessionWelcome,
    WireMessage,
    decode_message,
    encode_message,
    negotiate_version,
)
from repro.service.net.stream import MAX_FRAME_BYTES, read_frame, write_frame
from repro.service.policy import run_hooks
from repro.utils.serialization import decode_fields

__all__ = ["AuthServer", "NetConfig", "ServerMetrics"]


@dataclass(frozen=True)
class NetConfig:
    """Transport knobs for :class:`AuthServer` (all times in seconds).

    ``latency_budget_s`` / ``max_batch`` default to the wrapped
    service's :class:`~repro.service.config.FleetConfig` values, so a
    served fleet batches exactly like the in-process coalescer.
    """

    host: str = "127.0.0.1"
    port: int = 0                       # 0 = ephemeral (read server.port)
    peer: str = "repro-auth-server"
    max_frame_bytes: int = MAX_FRAME_BYTES
    handshake_timeout_s: float = 2.0    # HELLO must land this fast
    frame_timeout_s: float = 2.0        # slow-loris: started frames finish
    response_timeout_s: float = 10.0    # round waits this long for devices
    drain_timeout_s: float = 5.0        # shutdown: in-flight round grace
    pending_high: int = 256             # pause reads: queued unflushed auths
    pending_low: int = 64               # resume reads
    read_buffer_bytes: int = 1 << 16    # StreamReader limit per connection
    write_high_bytes: int = 1 << 16     # transport write buffer watermarks
    write_low_bytes: int = 1 << 14
    latency_budget_s: Optional[float] = None
    max_batch: Optional[int] = None

    def __post_init__(self):
        if self.pending_low > self.pending_high:
            raise ValueError("pending_low must not exceed pending_high")
        if self.write_low_bytes > self.write_high_bytes:
            raise ValueError("write_low_bytes must not exceed "
                             "write_high_bytes")
        for name in ("handshake_timeout_s", "frame_timeout_s",
                     "response_timeout_s", "drain_timeout_s"):
            if getattr(self, name) <= 0.0:
                raise ValueError(f"{name} must be positive")


class ServerMetrics(RegistryBackedCounters):
    """Counters a served deployment exports; the attribute API (plain
    ints, ``to_json()``) is unchanged, but the counts now live as
    ``repro_net_server_*`` series on a
    :class:`~repro.obs.MetricsRegistry` — scrapeable over the wire via
    the ``metrics`` verb (wire 1.2).

    .. deprecated:: 0.8.0
        Constructing ``ServerMetrics()`` standalone is deprecated (it
        backs the counters with a private registry); attach a shared
        one with :func:`repro.obs.instrument_server` instead.
    """

    _PREFIX = "repro_net_server_"
    _FIELDS = (
        "connections_opened", "connections_closed", "handshakes_failed",
        "rejected_connections", "requests", "submitted", "micro_rounds",
        "flushed_by_size", "flushed_by_deadline", "flushed_by_duplicate",
        "retransmits_dropped", "auths_accepted", "auths_failed",
        "responses_timed_out", "acks_aborted", "reads_paused",
        "drained_tickets",
    )
    _HELP = {
        "connections_opened": "Sockets accepted",
        "connections_closed": "Sockets torn down",
        "handshakes_failed": "Connections dropped before a valid HELLO",
        "rejected_connections": "Connections closed with a REJECT frame",
        "requests": "REQUEST frames dispatched",
        "submitted": "auth tickets queued into the wire coalescer",
        "micro_rounds": "Wire micro-rounds run",
        "flushed_by_size": "Micro-rounds flushed by max_batch",
        "flushed_by_deadline": "Micro-rounds flushed by latency budget",
        "flushed_by_duplicate": "Micro-rounds flushed by duplicate device",
        "retransmits_dropped": "Idempotent re-submits dropped",
        "auths_accepted": "Confirmations delivered",
        "auths_failed": "Failure RESULT frames sent",
        "responses_timed_out": "Devices silent past response_timeout_s",
        "acks_aborted": "Unacked confirmations aborted (ambiguous)",
        "reads_paused": "Backpressure gate closures",
        "drained_tickets": "Tickets flushed by graceful shutdown",
    }


class _Connection:
    """Per-socket state: routing tables, watermark gate, write lock."""

    def __init__(self, server: "AuthServer", reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.peer = "?"
        self.minor = SCHEMA_MINOR        # negotiated wire minor (handshake)
        self.closed = False
        self.queued = 0                  # auths submitted, round not open yet
        self.gate = asyncio.Event()
        self.gate.set()
        # device_id -> rounds awaiting this connection's RESPONSE/ack,
        # oldest first (same-device pipelining across micro-rounds).
        self.routes: Dict[str, Deque["_WireRound"]] = {}
        self.explicit: Optional["_ExplicitRound"] = None
        self.spot_pending: Dict[str, Tuple[np.ndarray, float]] = {}
        self.ack_pending: Set[str] = set()
        self._write_lock = asyncio.Lock()

    async def send(self, frame: bytes) -> bool:
        """Write one frame; ``False`` (and close) if the peer is gone
        or too slow to drain — a stuck writer must not pin a round."""
        if self.closed:
            return False
        try:
            async with self._write_lock:
                write_frame(self.writer, frame)
                await asyncio.wait_for(self.writer.drain(),
                                       self.server.config.frame_timeout_s)
        except (ConnectionError, asyncio.TimeoutError, RuntimeError):
            self.close()
            return False
        return True

    async def send_message(self, message: WireMessage) -> bool:
        return await self.send(encode_message(message))

    def close(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.gate.set()  # unblock a parked read so the handler exits
        try:
            self.writer.close()
        except RuntimeError:
            pass


class _WireRound:
    """One scattered micro-round: who owes a RESPONSE, what arrived."""

    def __init__(self, entries: List[Tuple[_Connection, str]]):
        self.entries = entries
        self.order = [device_id for __, device_id in entries]
        self.conn_of = {device_id: conn for conn, device_id in entries}
        self.nonces: Dict[str, bytes] = {}
        self.responses: Dict[str, bytes] = {}   # arrival order (dict)
        self.outstanding: Set[str] = set(self.order)
        self.complete = asyncio.Event()

    def deliver(self, device_id: str, frame: bytes) -> None:
        if device_id in self.outstanding:
            self.responses[device_id] = frame
            self.lose(device_id)

    def lose(self, device_id: str) -> None:
        self.outstanding.discard(device_id)
        if not self.outstanding:
            self.complete.set()


class _ExplicitRound:
    """A client-driven ``open-round``/``close-round`` gateway round."""

    def __init__(self, nonces: Dict[str, bytes]):
        self.nonces = nonces
        self.frames: List[bytes] = []    # raw RESPONSE frames, in order
        # A hostile gateway may stuff unboundedly many frames into one
        # round; past this the connection is rejected, not the round.
        self.max_frames = max(64, 4 * len(nonces))


class AuthServer:
    """Serve one :class:`~repro.service.facade.AuthService` over TCP.

    >>> async with AuthServer(service, NetConfig(port=0)) as server:
    ...     client = await AuthClient.connect("127.0.0.1", server.port)

    The server owns no protocol state of its own — every verb lands on
    the wrapped service/verifier, so snapshots, policies, and metrics
    of the in-process path apply unchanged to served fleets.
    """

    #: Verbs a fenced (non-primary / lease-lost) replica refuses.  The
    #: finalize/abort acks stay unfenced: they settle rounds *this*
    #: server already ran, and on a server that never ran one they land
    #: as a harmless NO_SESSION from the verifier.
    FENCED_VERBS = frozenset({"auth", "enroll", "revoke", "spot",
                              "spot-submit", "open-round", "close-round"})

    def __init__(self, service, config: Optional[NetConfig] = None,
                 fence=None):
        self.service = service
        self.config = config or NetConfig()
        # ``fence`` is an optional callable returning None (serve) or an
        # AuthenticationFailure to refuse state-changing verbs with —
        # how a ReplicaGroup keeps standbys and deposed primaries from
        # opening rounds (see repro.service.ha).
        self.fence = fence
        self.metrics = ServerMetrics._for_owner()
        self._obs = None
        self._clock = service.clock
        self._budget = (self.config.latency_budget_s
                        if self.config.latency_budget_s is not None
                        else service.config.latency_budget_s)
        self._max_batch = int(self.config.max_batch
                              or service.config.max_batch)
        self._pending: List[Tuple[_Connection, str]] = []
        self._pending_ids: Set[str] = set()
        self._deadline: Optional[float] = None
        self._deadline_set = asyncio.Event()
        self._conns: Set[_Connection] = set()
        self._handlers: Set[asyncio.Task] = set()
        self._rounds: Set[asyncio.Task] = set()
        self._ack_pending: Set[Tuple[_Connection, str]] = set()
        self._server: Optional[asyncio.base_events.Server] = None
        self._flush_task: Optional[asyncio.Task] = None
        self._closing = False

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> "AuthServer":
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port,
            limit=self.config.read_buffer_bytes,
        )
        self._flush_task = asyncio.get_running_loop().create_task(
            self._flush_timer())
        return self

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self._server.sockets[0].getsockname()[0]

    async def __aenter__(self) -> "AuthServer":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        """Graceful shutdown: drain tickets, finish rounds, abort the
        unacked, then tear the sockets down."""
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drain: pending tickets become one final micro-round.
        if self._pending:
            self.metrics.drained_tickets += len(self._pending)
            self._flush()
        if self._rounds:
            await asyncio.wait(list(self._rounds),
                               timeout=self.config.drain_timeout_s)
        # Give in-flight finalize acks a moment, then abort the rest —
        # two-phase commit keeps those devices on the old CRP.
        loop = asyncio.get_running_loop()
        grace = loop.time() + self.config.drain_timeout_s
        while self._ack_pending and loop.time() < grace:
            await asyncio.sleep(0.005)
        for conn, device_id in list(self._ack_pending):
            self._abort_unacked(conn, device_id)
        if self._flush_task is not None:
            self._flush_task.cancel()
        for conn in list(self._conns):
            conn.close()
        if self._handlers:
            await asyncio.wait(list(self._handlers),
                               timeout=self.config.drain_timeout_s)

    async def kill(self) -> None:
        """Abrupt crash, for chaos testing: no drain, no final flush.

        In-flight rounds are cancelled wherever they stand — between
        CONFIRMATION and finalize included, which is exactly the window
        the CommitLog recovery path exists for.  Connection teardown
        still runs (a dead process's sockets close too), so unacked
        confirmations become *ambiguous* aborts, never clean ones.
        """
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
        if self._flush_task is not None:
            self._flush_task.cancel()
        for task in list(self._rounds):
            task.cancel()
        for conn in list(self._conns):
            conn.close()
        for task in list(self._handlers):
            task.cancel()
        doomed = [task for task in (*self._rounds, *self._handlers,
                                    self._flush_task) if task is not None]
        if doomed:
            await asyncio.gather(*doomed, return_exceptions=True)
        if self._server is not None:
            try:
                await self._server.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- the shared flush timer ------------------------------------------

    async def _flush_timer(self) -> None:
        """Enforce the latency budget on the service's monotonic clock.

        The decision — is the oldest pending ticket past its deadline —
        always re-reads :attr:`AuthService.clock`, mirroring
        :meth:`RoundCoalescer.poll`; ``asyncio.sleep`` merely paces the
        re-reads, so an injected test clock stays authoritative.
        """
        while True:
            if self._deadline is None:
                self._deadline_set.clear()
                await self._deadline_set.wait()
                continue
            delay = max(0.0, self._deadline - self._clock())
            if delay > 0.0:
                await asyncio.sleep(delay)
            if self._deadline is not None and self._clock() >= self._deadline:
                self.metrics.flushed_by_deadline += 1
                self._flush()

    def _poll(self) -> bool:
        """Deadline-flush now if due (the wire ``poll`` verb)."""
        if self._pending and self._clock() >= self._deadline:
            self.metrics.flushed_by_deadline += 1
            self._flush()
            return True
        return False

    # -- coalescing (RoundCoalescer trigger semantics, over the wire) ----

    def _submit_auth(self, conn: _Connection, device_id: str) -> None:
        # Unknown devices are rejected at the door — one stray request
        # must not poison the micro-round it would have joined.
        self.service.registry.record(device_id)
        if device_id in self._pending_ids:
            if any(queued_conn is conn and queued_id == device_id
                   for queued_conn, queued_id in self._pending):
                # A retransmit (a duplicating network, or a client retry
                # racing its own first request): the pending entry will
                # challenge the device; queueing a second would open a
                # ghost round whose failure RESULT races the real
                # round's CONFIRMATION.  Submit is idempotent per
                # (connection, device).
                self.metrics.retransmits_dropped += 1
                return
            self.metrics.flushed_by_duplicate += 1
            self._flush()
        self._pending.append((conn, device_id))
        self._pending_ids.add(device_id)
        self.metrics.submitted += 1
        conn.queued += 1
        self._update_gate(conn)
        if self._deadline is None:
            self._deadline = self._clock() + self._budget
            self._deadline_set.set()
        if len(self._pending) >= self._max_batch:
            self.metrics.flushed_by_size += 1
            self._flush()

    def _flush(self) -> Optional[asyncio.Task]:
        if not self._pending:
            return None
        pending, self._pending = self._pending, []
        self._pending_ids = set()
        self._deadline = None
        task = asyncio.get_running_loop().create_task(
            self._run_round(pending))
        self._rounds.add(task)
        task.add_done_callback(self._rounds.discard)
        return task

    def _update_gate(self, conn: _Connection) -> None:
        if conn.queued >= self.config.pending_high and conn.gate.is_set():
            conn.gate.clear()
            self.metrics.reads_paused += 1
        elif conn.queued <= self.config.pending_low and not conn.gate.is_set():
            conn.gate.set()

    async def _run_round(self, pending: List[Tuple[_Connection, str]]) -> None:
        for conn, __ in pending:
            conn.queued -= 1
            self._update_gate(conn)
        # Screen revoked-while-pending (their own not-enrolled rejection,
        # before the round opens) and dead connections.
        live: List[Tuple[_Connection, str]] = []
        for conn, device_id in pending:
            if conn.closed:
                continue
            if device_id in self.service.registry:
                live.append((conn, device_id))
            else:
                await self._fail_auth(
                    conn, device_id,
                    f"device {device_id!r} was revoked while its request "
                    "was pending", FailureKind.NOT_ENROLLED.value,
                )
        if not live:
            return
        self.metrics.micro_rounds += 1
        ids = [device_id for __, device_id in live]
        try:
            nonces, challenge_frames = self.service.open_round_wire(ids)
        except AuthenticationFailure as failure:
            for conn, device_id in live:
                await self._fail_auth(conn, device_id,
                                      f"micro-round failed: {failure}",
                                      failure.kind.value)
            return
        round_ = _WireRound(live)
        round_.nonces = nonces
        for conn, device_id in live:
            conn.routes.setdefault(device_id, deque()).append(round_)
            if not await conn.send(challenge_frames[device_id]):
                self._drop_route(conn, device_id, round_)
        if round_.outstanding:
            try:
                await asyncio.wait_for(round_.complete.wait(),
                                       self.config.response_timeout_s)
            except asyncio.TimeoutError:
                self.metrics.responses_timed_out += len(round_.outstanding)
        answered = list(round_.responses)           # arrival order
        frames = [round_.responses[d] for d in answered]
        report_frame, confirmation_frames = self.service.verify_round_wire(
            frames, nonces)
        report = decode_message(report_frame)
        for conn, device_id in live:
            self._drop_route(conn, device_id, round_)
            if device_id in report.confirmations:
                # Expose before the frame is written: from here the
                # device may roll, so the parked candidate must survive
                # any later unambiguous abort (see BatchVerifier.abort).
                self.service.verifier.expose(device_id)
                if await conn.send(confirmation_frames[device_id]):
                    conn.ack_pending.add(device_id)
                    self._ack_pending.add((conn, device_id))
                    self.metrics.auths_accepted += 1
                else:
                    self._abort_unacked(conn, device_id)
            elif device_id in report.failures:
                await self._fail_auth(
                    conn, device_id, report.failures[device_id],
                    report.failure_kinds.get(device_id,
                                             FailureKind.UNSPECIFIED.value),
                )
            else:
                await self._fail_auth(
                    conn, device_id,
                    "no response before the round deadline",
                    FailureKind.TIMEOUT.value,
                )

    @staticmethod
    def _drop_route(conn: _Connection, device_id: str,
                    round_: _WireRound) -> None:
        queue = conn.routes.get(device_id)
        if queue is not None:
            try:
                queue.remove(round_)
            except ValueError:
                pass
            if not queue:
                conn.routes.pop(device_id, None)

    async def _fail_auth(self, conn: _Connection, device_id: str,
                         reason: str, kind: str) -> None:
        self.metrics.auths_failed += 1
        await conn.send_message(SessionResult(
            "auth", device_id, ok=False,
            detail={"failure": reason.encode("utf-8"),
                    "kind": kind.encode("utf-8")},
        ))

    def _abort_unacked(self, conn: _Connection, device_id: str) -> None:
        # The confirmation may already have reached the device before the
        # connection died, so this abort is *ambiguous*: when the
        # verifier carries a shared CommitLog the parked candidate
        # survives, and the device's next message settles which side of
        # the commit it landed on (see BatchVerifier._recover_interrupted).
        self.metrics.acks_aborted += 1
        conn.ack_pending.discard(device_id)
        self._ack_pending.discard((conn, device_id))
        self.service.verifier.abort(device_id, ambiguous=True)

    # -- connection handling ---------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        if self._closing:
            writer.close()
            return
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _reject(self, conn: _Connection, kind: FailureKind,
                      reason: str) -> None:
        self.metrics.rejected_connections += 1
        await conn.send_message(SessionReject(kind.value, reason))
        conn.close()

    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        config = self.config
        try:
            writer.transport.set_write_buffer_limits(
                high=config.write_high_bytes, low=config.write_low_bytes)
        except (AttributeError, RuntimeError):
            pass
        conn = _Connection(self, reader, writer)
        self._conns.add(conn)
        self.metrics.connections_opened += 1
        try:
            if await self._handshake(conn):
                await self._verb_loop(conn)
        except (ConnectionError, asyncio.TimeoutError):
            pass
        finally:
            self._teardown(conn)
            conn.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._conns.discard(conn)
            self.metrics.connections_closed += 1

    async def _handshake(self, conn: _Connection) -> bool:
        config = self.config
        started = self._clock()
        try:
            frame = await read_frame(conn.reader,
                                     max_bytes=config.max_frame_bytes,
                                     idle_timeout=config.handshake_timeout_s,
                                     frame_timeout=config.handshake_timeout_s)
        except (CodecError, asyncio.TimeoutError, ConnectionError):
            self.metrics.handshakes_failed += 1
            conn.close()
            return False
        if frame is None:                # mid-handshake disconnect
            self.metrics.handshakes_failed += 1
            conn.close()
            return False
        try:
            hello = decode_message(frame)
        except CodecError as failure:
            self.metrics.handshakes_failed += 1
            await self._reject(conn, failure.kind, str(failure))
            return False
        if not isinstance(hello, SessionHello):
            self.metrics.handshakes_failed += 1
            await self._reject(conn, FailureKind.MALFORMED,
                               "the first frame must be a HELLO")
            return False
        try:
            major, minor = negotiate_version(hello)
        except CodecError as failure:
            self.metrics.handshakes_failed += 1
            await self._reject(conn, failure.kind, str(failure))
            return False
        conn.peer = hello.peer
        conn.minor = minor
        welcomed = await conn.send_message(
            SessionWelcome(config.peer, major, minor))
        if welcomed and self._obs is not None:
            self._obs.on_handshake(self._clock() - started)
        return welcomed

    async def _verb_loop(self, conn: _Connection) -> None:
        # Keeps reading while the server drains (aclose): in-flight
        # rounds still need this connection's RESPONSE and finalize
        # frames; aclose closes the socket once draining is done.
        config = self.config
        while not conn.closed:
            await conn.gate.wait()
            if conn.closed:
                break
            try:
                frame = await read_frame(conn.reader,
                                         max_bytes=config.max_frame_bytes,
                                         idle_timeout=None,
                                         frame_timeout=config.frame_timeout_s)
            except CodecError as failure:
                await self._reject(conn, failure.kind, str(failure))
                break
            except asyncio.TimeoutError:      # slow loris
                await self._reject(conn, FailureKind.MALFORMED,
                                   "frame did not complete in time")
                break
            if frame is None:
                break
            try:
                message = decode_message(frame)
            except CodecError as failure:
                await self._reject(conn, failure.kind, str(failure))
                break
            if not await self._dispatch(conn, message):
                break

    async def _dispatch(self, conn: _Connection,
                        message: WireMessage) -> bool:
        """Handle one decoded frame; ``False`` closes the connection."""
        from repro.fleet.verifier import AuthResponse
        if isinstance(message, AuthResponse):
            try:
                self._route_response(conn, message)
            except CodecError as failure:
                await self._reject(conn, failure.kind, str(failure))
                return False
            return True
        if isinstance(message, SessionRequest):
            self.metrics.requests += 1
            try:
                await self._handle_request(conn, message)
            except AuthenticationFailure as failure:
                await conn.send_message(SessionResult(
                    message.verb, message.device_id, ok=False,
                    detail={"failure": str(failure).encode("utf-8"),
                            "kind": failure.kind.value.encode("utf-8")},
                ))
            return not conn.closed
        # CHALLENGE/CONFIRMATION/REPORT/HELLO/WELCOME from a client are
        # protocol violations — this peer is broken or hostile.
        await self._reject(conn, FailureKind.MALFORMED,
                           f"unexpected {type(message).__name__} frame")
        return False

    def _route_response(self, conn: _Connection, message) -> None:
        if conn.explicit is not None:
            if len(conn.explicit.frames) >= conn.explicit.max_frames:
                raise CodecError("explicit round overflow")
            conn.explicit.frames.append(encode_message(message))
            return
        queue = conn.routes.get(message.device_id)
        if queue:
            queue[0].deliver(message.device_id, encode_message(message))
        # else: unsolicited — drop silently; it must not poison anything.

    async def _handle_request(self, conn: _Connection,
                              request: SessionRequest) -> None:
        verb = request.verb
        device_id = request.device_id
        params = request.params
        if self.fence is not None and verb in self.FENCED_VERBS:
            refusal = self.fence()
            if refusal is not None:
                raise refusal
        if verb == "auth":
            if self._closing:
                raise AuthenticationFailure(
                    "server is draining, retry elsewhere",
                    FailureKind.RATE_LIMITED)
            self._submit_auth(conn, device_id)
            return
        if verb == "flush":
            # Run off-loop: the verb reply must not block this reader —
            # the round it triggers may need frames from this very
            # connection.
            flushed = len(self._pending)
            task = self._flush()

            async def _report_flush():
                if task is not None:
                    await task
                await conn.send_message(SessionResult(
                    "flush", detail={"flushed": str(flushed).encode()}))

            self._track(_report_flush())
            return
        if verb == "poll":
            flushed = self._poll()
            settled = list(self._rounds)   # snapshot BEFORE tracking self

            async def _report_poll():
                for round_task in settled:
                    await asyncio.shield(round_task)
                await conn.send_message(SessionResult(
                    "poll", detail={"flushed": b"1" if flushed else b"0"}))

            self._track(_report_poll())
            return
        if verb == "enroll":
            self._handle_enroll(device_id, params)
            await conn.send_message(SessionResult("enroll", device_id))
            return
        if verb == "revoke":
            self.service.revoke(device_id)
            await conn.send_message(SessionResult("revoke", device_id))
            return
        if verb == "spot":
            k = int(params.get("k", b"8"))
            threshold = float(params.get("threshold", b"0.25"))
            challenges, expected = self.service.verifier.open_spot_check(
                device_id, k)
            conn.spot_pending[device_id] = (expected, threshold)
            await conn.send_message(SessionResult(
                "spot", device_id,
                detail={"challenges": challenges.astype(np.uint8).tobytes(),
                        "rows": str(challenges.shape[0]).encode(),
                        "cols": str(challenges.shape[1]).encode()}))
            return
        if verb == "spot-submit":
            stash = conn.spot_pending.pop(device_id, None)
            if stash is None:
                raise AuthenticationFailure(
                    f"no spot check open for device {device_id!r}",
                    FailureKind.NO_SESSION)
            expected, threshold = stash
            fresh = np.frombuffer(params["responses"],
                                  dtype=np.uint8).reshape(expected.shape[0],
                                                          -1)
            distance, accepted = self.service.verifier.close_spot_check(
                expected, fresh, threshold)
            await conn.send_message(SessionResult(
                "spot-submit", device_id,
                detail={"hd": repr(distance).encode(),
                        "accepted": b"1" if accepted else b"0",
                        "threshold": repr(threshold).encode()}))
            return
        if verb == "open-round":
            if conn.explicit is not None:
                raise AuthenticationFailure(
                    "a gateway round is already open on this connection",
                    FailureKind.SESSION_MISMATCH)
            ids = [raw.decode("utf-8")
                   for raw in decode_fields(params.get("ids", b""))]
            nonces, challenge_frames = self.service.open_round_wire(ids)
            conn.explicit = _ExplicitRound(nonces)
            for round_device in nonces:
                await conn.send(challenge_frames[round_device])
            await conn.send_message(SessionResult(
                "open-round", detail={"count": str(len(nonces)).encode()}))
            return
        if verb == "close-round":
            explicit = conn.explicit
            if explicit is None:
                raise AuthenticationFailure(
                    "no gateway round open on this connection",
                    FailureKind.NO_SESSION)
            conn.explicit = None
            report_frame, confirmation_frames = \
                self.service.verify_round_wire(explicit.frames,
                                               explicit.nonces)
            for accepted_id, frame in confirmation_frames.items():
                self.service.verifier.expose(accepted_id)
                await conn.send(frame)
            await conn.send(report_frame)
            return
        if verb == "finalize":
            # The "round" param (the challenge nonce) fences the ack to
            # the round that earned it: a chaos-delayed or duplicated
            # finalize must not commit a later pending session.
            self.service.verifier.finalize(device_id,
                                           token=params.get("round"))
            conn.ack_pending.discard(device_id)
            self._ack_pending.discard((conn, device_id))
            await conn.send_message(SessionResult("finalize", device_id))
            return
        if verb == "abort":
            self.service.verifier.abort(device_id,
                                        token=params.get("round"))
            conn.ack_pending.discard(device_id)
            self._ack_pending.discard((conn, device_id))
            await conn.send_message(SessionResult("abort", device_id))
            return
        if verb in ("metrics", "trace"):
            # Admin verbs, wire 1.2+.  Deliberately NOT in FENCED_VERBS:
            # standbys and deposed primaries stay scrapeable — that is
            # when an operator most wants to look at them.
            if conn.minor < 2:
                raise AuthenticationFailure(
                    f"the {verb!r} verb requires wire version >= 1.2 "
                    f"(negotiated 1.{conn.minor})",
                    FailureKind.UNSUPPORTED_VERSION)
            if verb == "metrics":
                fmt = params.get("format", b"prometheus").decode("utf-8")
                snapshot = self._metrics_registry().snapshot()
                if fmt == "prometheus":
                    body = render_prometheus(snapshot)
                elif fmt == "json":
                    body = render_json(snapshot)
                else:
                    raise AuthenticationFailure(
                        f"unknown metrics format {fmt!r}",
                        FailureKind.MALFORMED)
                await conn.send_message(SessionResult(
                    "metrics", detail={"body": body.encode("utf-8"),
                                       "format": fmt.encode("utf-8")}))
                return
            obs = getattr(self.service, "_obs", None)
            tracer = getattr(obs, "tracer", None)
            spans = tracer.to_json() if tracer is not None else []
            await conn.send_message(SessionResult(
                "trace", detail={"body": json.dumps(spans).encode("utf-8")}))
            return
        raise AuthenticationFailure(f"unknown verb {verb!r}",
                                    FailureKind.MALFORMED)

    def _metrics_registry(self):
        """The registry the ``metrics`` verb serves: the server's own
        observer's, else the wrapped service's, else the one backing
        the (possibly standalone) ``ServerMetrics`` shim."""
        if self._obs is not None:
            return self._obs.registry
        obs = getattr(self.service, "_obs", None)
        if obs is not None:
            return obs.registry
        return self.metrics._registry

    def _handle_enroll(self, device_id: str, params) -> None:
        try:
            response = np.frombuffer(params["response"], dtype=np.uint8)
            remote = _RemoteDevice(
                device_id=device_id,
                current_response=response,
                challenge_bits=int(params["challenge_bits"]),
                firmware_hash=bytes(params["firmware_hash"]),
                clock_count=int(params["clock_count"]),
            )
        except (KeyError, ValueError) as exc:
            raise AuthenticationFailure(f"malformed enroll request: {exc}",
                                        FailureKind.MALFORMED) from exc
        try:
            # Wire enrollment records the rolling CRP only: the spot pool
            # needs physical hardware access, which a socket is not.
            self.service.registry.enroll(remote, n_spot_crps=0)
        except ValueError as exc:
            raise AuthenticationFailure(str(exc),
                                        FailureKind.DUPLICATE_DEVICE) from exc
        run_hooks(self.service.policies, "on_enroll", device_id)

    def _track(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._rounds.add(task)
        task.add_done_callback(self._rounds.discard)
        return task

    def _teardown(self, conn: _Connection) -> None:
        conn.close()
        for device_id, queue in list(conn.routes.items()):
            for round_ in list(queue):
                round_.lose(device_id)
        conn.routes.clear()
        for device_id in list(conn.ack_pending):
            self._abort_unacked(conn, device_id)
        conn.spot_pending.clear()
        conn.explicit = None


class _RemoteDevice:
    """Registry-shaped stand-in for hardware on the far side of a socket."""

    class _RemoteHardware:
        def __init__(self, challenge_bits: int, response_bits: int):
            self.challenge_bits = int(challenge_bits)
            self.response_bits = int(response_bits)

    def __init__(self, device_id: str, current_response: np.ndarray,
                 challenge_bits: int, firmware_hash: bytes,
                 clock_count: int):
        self.device_id = device_id
        self.current_response = current_response
        self.firmware_hash = firmware_hash
        self.clock_count = int(clock_count)
        self.puf = self._RemoteHardware(challenge_bits,
                                        int(current_response.size))
