"""``repro.service.net`` — the fleet auth service, served over TCP.

An asyncio transport layered on the versioned wire codec
(:mod:`repro.service.codec`): :class:`AuthServer` wraps one
:class:`~repro.service.facade.AuthService` and serves enroll /
authenticate / spot-check / submit-poll-flush to concurrent device
connections; :class:`AuthClient` mirrors the facade verb for verb on
the device side of the socket.  See the module docstrings of
:mod:`~repro.service.net.server`, :mod:`~repro.service.net.client`,
and :mod:`~repro.service.net.stream` for the protocol, coalescing,
backpressure, and isolation contracts.
"""

from repro.service.net.chaos import ChaosMetrics, ChaosTransport, LegChaos
from repro.service.net.client import AuthClient, RemoteAuthError, RemoteTicket
from repro.service.net.server import AuthServer, NetConfig, ServerMetrics
from repro.service.net.stream import MAX_FRAME_BYTES, read_frame, write_frame

__all__ = [
    "AuthClient",
    "AuthServer",
    "ChaosMetrics",
    "ChaosTransport",
    "LegChaos",
    "MAX_FRAME_BYTES",
    "NetConfig",
    "RemoteAuthError",
    "RemoteTicket",
    "ServerMetrics",
    "read_frame",
    "write_frame",
]
