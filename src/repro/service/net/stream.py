"""Frame transport: length-prefixed codec frames over asyncio streams.

The outer transport envelope is deliberately minimal — a 4-byte
big-endian length prefix followed by exactly that many bytes of codec
frame (:mod:`repro.service.codec` owns everything inside).  The reader
enforces the two transport-level failure modes the codec cannot see:

* **oversize** — a length prefix beyond ``max_bytes`` is rejected
  before a single payload byte is buffered, so a hostile peer cannot
  make the server allocate unbounded memory;
* **slow loris** — once the first byte of a frame has arrived, the
  rest must follow within ``frame_timeout``; a peer that trickles one
  byte per epoch times out (:class:`asyncio.TimeoutError`) instead of
  pinning a connection handler forever.

A clean EOF *between* frames returns ``None`` (orderly disconnect); an
EOF *inside* a frame raises :class:`~repro.service.codec.CodecError`
with the shared ``malformed`` taxonomy kind, exactly like a truncated
codec payload.
"""

from __future__ import annotations

import asyncio
import struct
from typing import Optional

from repro.service.codec import CodecError

#: Default per-frame ceiling. Generous for this protocol: the largest
#: legitimate frame is a REPORT for a max_batch round, well under 1 MiB.
MAX_FRAME_BYTES = 1 << 20

_LENGTH = struct.Struct(">I")


async def _within(coro, timeout: Optional[float]):
    if timeout is None:
        return await coro
    return await asyncio.wait_for(coro, timeout)


async def read_frame(reader: asyncio.StreamReader, *,
                     max_bytes: int = MAX_FRAME_BYTES,
                     idle_timeout: Optional[float] = None,
                     frame_timeout: Optional[float] = None,
                     ) -> Optional[bytes]:
    """Read one length-prefixed codec frame; ``None`` on clean EOF.

    ``idle_timeout`` bounds the wait for a frame to *start* (no bytes
    in flight yet); ``frame_timeout`` bounds the arrival of the rest of
    the frame once its first byte landed — the slow-loris guard.  Both
    raise :class:`asyncio.TimeoutError`.  Truncation mid-frame and
    oversized prefixes raise :class:`CodecError` (``malformed``).
    """
    try:
        first = await _within(reader.readexactly(1), idle_timeout)
    except asyncio.IncompleteReadError as exc:
        if exc.partial:
            raise CodecError("connection closed inside a frame "
                             "length prefix") from exc
        return None

    async def _rest() -> bytes:
        try:
            prefix = first + await reader.readexactly(_LENGTH.size - 1)
            (length,) = _LENGTH.unpack(prefix)
            if length > max_bytes:
                raise CodecError(
                    f"frame of {length} bytes exceeds the "
                    f"{max_bytes}-byte transport ceiling"
                )
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise CodecError(
                "connection closed mid-frame "
                f"({len(exc.partial)} of {exc.expected} bytes)"
            ) from exc

    return await _within(_rest(), frame_timeout)


def write_frame(writer: asyncio.StreamWriter, frame: bytes) -> None:
    """Queue one frame on the writer (callers ``await writer.drain()``)."""
    writer.write(_LENGTH.pack(len(frame)) + frame)
