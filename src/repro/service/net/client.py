"""``AuthClient``: the device-side SDK for a served fleet verifier.

The client mirrors the :class:`~repro.service.facade.AuthService`
facade verb for verb — ``enroll`` / ``revoke`` / ``authenticate`` /
``submit`` / ``poll`` / ``flush`` / ``spot_check`` /
``authenticate_batch`` / ``open_round_wire`` / ``verify_round_wire`` —
so code written against the in-process service ports to a socket by
awaiting the same calls:

>>> async with AuthClient.connect("127.0.0.1", server.port) as client:
...     await client.enroll(device)
...     ticket = await client.authenticate(device)
...     assert ticket.accepted

One connection serves one *session*: a HELLO/WELCOME version handshake
(:func:`repro.service.codec.negotiate_version`), then full-duplex codec
frames — a background reader routes server-initiated ``CHALLENGE`` /
``CONFIRMATION`` frames to the device hardware held client-side (the
PUF never crosses the wire; only masked responses do) and correlates
``RESULT`` replies back to awaiting verbs.  The confirm/finalize ack
closes the protocol's two-phase commit from this side: the device rolls
its CRP only after the verifier's confirmation MAC checks out, and the
verifier rolls only after this client's ``finalize`` ack.
"""

from __future__ import annotations

import asyncio
import json
from collections import deque
from typing import Deque, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.fleet.rounds import respond_round
from repro.fleet.verifier import (
    BatchAuthReport,
    FleetDevice,
)
from repro.protocols.mutual_auth import AuthenticationFailure, FailureKind
from repro.service.codec import (
    AuthChallenge,
    AuthConfirmation,
    CodecError,
    SessionHello,
    SessionReject,
    SessionRequest,
    SessionResult,
    SessionWelcome,
    decode_message,
    encode_message,
)
from repro.service.net.stream import MAX_FRAME_BYTES, read_frame, write_frame
from repro.service.policy import RetryPolicy
from repro.utils.serialization import encode_fields

__all__ = ["AuthClient", "RemoteAuthError", "RemoteTicket"]


class RemoteAuthError(AuthenticationFailure):
    """A served verb failed: the server's taxonomy-coded refusal."""

    def __init__(self, message: str,
                 kind: FailureKind = FailureKind.UNSPECIFIED):
        if not isinstance(kind, FailureKind):
            try:
                kind = FailureKind(kind)
            except ValueError:
                kind = FailureKind.UNSPECIFIED
        super().__init__(message, kind)


class RemoteTicket:
    """The pending/settled outcome of one remote coalesced auth —
    the wire twin of :class:`repro.fleet.verifier.CoalescedAuth`."""

    def __init__(self, device: FleetDevice):
        self.device = device
        self.device_id = device.device_id
        self.done = False
        self.accepted = False
        self.failure: Optional[str] = None
        self.failure_kind: Optional[str] = None
        self.nonce: Optional[bytes] = None
        self._settled = asyncio.Event()

    def _settle(self, accepted: bool, failure: Optional[str] = None,
                failure_kind: Optional[str] = None) -> None:
        if self.done:
            return
        self.done = True
        self.accepted = accepted
        self.failure = failure
        self.failure_kind = failure_kind
        self._settled.set()

    async def wait(self, timeout: Optional[float] = None) -> "RemoteTicket":
        """Block until the micro-round settles this request."""
        await asyncio.wait_for(self._settled.wait(), timeout)
        return self


class _ClientRound:
    """State of one explicit gateway round (open-round/close-round)."""

    def __init__(self, device_ids: Sequence[str]):
        self.expected = set(device_ids)
        self.nonces: Dict[str, bytes] = {}
        self.confirmations: Dict[str, bytes] = {}
        self.report: asyncio.Future = \
            asyncio.get_running_loop().create_future()


class _Connector:
    """Makes ``AuthClient.connect(...)`` both awaitable and an async
    context manager (``async with AuthClient.connect(...) as client:``)."""

    def __init__(self, coro):
        self._coro = coro
        self._client: Optional["AuthClient"] = None

    def __await__(self):
        return self._coro.__await__()

    async def __aenter__(self) -> "AuthClient":
        self._client = await self._coro
        return self._client

    async def __aexit__(self, *exc) -> None:
        if self._client is not None:
            await self._client.aclose()


class AuthClient:
    """One authenticated-device session against an :class:`AuthServer`.

    Construct via :meth:`connect`; every facade verb is an ``async``
    method.  Device hardware (:class:`FleetDevice`) stays on this side
    of the socket — the client measures, masks, and MACs locally and
    ships only protocol frames.
    """

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, *, peer: str,
                 server_peer: str, negotiated: Tuple[int, int],
                 response_timeout_s: float, max_frame_bytes: int):
        self._reader = reader
        self._writer = writer
        self.peer = peer
        self.server_peer = server_peer
        self.negotiated_version = negotiated
        self._timeout = response_timeout_s
        self._max_frame_bytes = max_frame_bytes
        self._send_lock = asyncio.Lock()
        self._tickets: Dict[str, RemoteTicket] = {}
        self._waiters: Dict[Tuple[str, str], Deque[asyncio.Future]] = {}
        self._round: Optional[_ClientRound] = None
        self._closed = False
        self._close_error: Optional[AuthenticationFailure] = None
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop())

    # -- connection -------------------------------------------------------

    @classmethod
    def connect(cls, host: str, port: int, *,
                peer: str = "repro-auth-client",
                handshake_timeout_s: float = 5.0,
                response_timeout_s: float = 30.0,
                max_frame_bytes: int = MAX_FRAME_BYTES) -> "_Connector":
        return _Connector(cls._connect(
            host, port, peer=peer,
            handshake_timeout_s=handshake_timeout_s,
            response_timeout_s=response_timeout_s,
            max_frame_bytes=max_frame_bytes,
        ))

    @classmethod
    async def _connect(cls, host: str, port: int, *, peer: str,
                       handshake_timeout_s: float,
                       response_timeout_s: float,
                       max_frame_bytes: int) -> "AuthClient":
        # Every pre-session await is bounded and taxonomy-coded: a
        # black-holed SYN, a server that accepts and goes silent, or one
        # that dies between HELLO and WELCOME must surface as a typed
        # RemoteAuthError within the handshake timeout, never hang.
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port), handshake_timeout_s)
        except asyncio.TimeoutError as exc:
            raise RemoteAuthError(
                f"connect to {host}:{port} timed out",
                FailureKind.TIMEOUT) from exc
        except (ConnectionError, OSError) as exc:
            raise RemoteAuthError(
                f"connect to {host}:{port} failed: {exc}",
                FailureKind.CONNECTION_LOST) from exc
        try:
            write_frame(writer, encode_message(SessionHello(peer)))
            await writer.drain()
            frame = await read_frame(reader, max_bytes=max_frame_bytes,
                                     idle_timeout=handshake_timeout_s,
                                     frame_timeout=handshake_timeout_s)
            if frame is None:
                raise RemoteAuthError(
                    "server closed the connection mid-handshake",
                    FailureKind.CONNECTION_LOST)
            reply = decode_message(frame)
            if isinstance(reply, SessionReject):
                raise RemoteAuthError(reply.reason or reply.kind, reply.kind)
            if not isinstance(reply, SessionWelcome):
                raise RemoteAuthError(
                    f"expected a WELCOME, got {type(reply).__name__}",
                    FailureKind.MALFORMED)
        except asyncio.TimeoutError as exc:
            writer.close()
            raise RemoteAuthError(
                "server did not complete the handshake in time",
                FailureKind.TIMEOUT) from exc
        except (ConnectionError, OSError) as exc:
            writer.close()
            raise RemoteAuthError(
                f"connection lost mid-handshake: {exc}",
                FailureKind.CONNECTION_LOST) from exc
        except BaseException:
            writer.close()
            raise
        return cls(reader, writer, peer=peer, server_peer=reply.peer,
                   negotiated=(reply.major, reply.minor),
                   response_timeout_s=response_timeout_s,
                   max_frame_bytes=max_frame_bytes)

    async def aclose(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._fail_all(RemoteAuthError("connection closed",
                                       FailureKind.CONNECTION_LOST))
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionError, OSError, RuntimeError):
            pass

    async def __aenter__(self) -> "AuthClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    # -- facade verbs -----------------------------------------------------

    async def enroll(self, device: FleetDevice) -> None:
        """Enroll this side's device hardware with the served registry."""
        if device.current_response is None:
            raise AuthenticationFailure(
                f"device {device.device_id!r} is not provisioned",
                FailureKind.NOT_PROVISIONED)
        result = await self._call("enroll", device.device_id, {
            "response": device.current_response.astype(np.uint8).tobytes(),
            "challenge_bits": str(device.puf.challenge_bits).encode(),
            "firmware_hash": bytes(device.firmware_hash),
            "clock_count": str(device.clock_count).encode(),
        })
        self._raise_if_failed(result)

    async def revoke(self, device_id: str) -> None:
        self._raise_if_failed(await self._call("revoke", device_id))

    async def submit(self, device: FleetDevice) -> RemoteTicket:
        """Queue one auth request into the server's micro-round; the
        returned ticket settles when the round flushes."""
        if device.device_id in self._tickets:
            raise RemoteAuthError(
                f"device {device.device_id!r} already has a pending "
                "request on this connection", FailureKind.DUPLICATE_DEVICE)
        if self._round is not None:
            raise RemoteAuthError(
                "cannot mix coalesced auth with an open gateway round",
                FailureKind.SESSION_MISMATCH)
        ticket = RemoteTicket(device)
        self._tickets[device.device_id] = ticket
        await self._send(SessionRequest("auth", device.device_id))
        return ticket

    async def authenticate(self, device: FleetDevice,
                           flush: bool = False,
                           retry_policy: Optional["RetryPolicy"] = None,
                           ) -> RemoteTicket:
        """Submit and wait for settlement (optionally forcing a flush).

        With a :class:`~repro.service.policy.RetryPolicy`, settled
        failures whose kind the policy deems retryable are retried on
        this same connection after the policy's backoff — the identical
        taxonomy the in-process facade uses, now covering the transport
        kinds too (``timeout``, ``replica-unavailable``, ...).  A ticket
        that never settles within the verb timeout is aborted
        server-side (keeping both ends on the old CRP) and settled
        locally as a retryable ``timeout``.
        """
        attempt = 0
        while True:
            attempt += 1
            ticket = await self.submit(device)
            if flush:
                await self.flush()
            try:
                await ticket.wait(self._timeout)
            except asyncio.TimeoutError:
                # The challenge or confirmation is lost in transit.  The
                # two-phase commit makes the abort safe: the device never
                # confirmed, so telling the server to abort leaves both
                # sides on the old CRP and the retry is idempotent.
                self._tickets.pop(device.device_id, None)
                try:
                    # Quote the round nonce (when a challenge arrived) so
                    # the abort can only tear down *this* attempt's round
                    # server-side, never a later one it raced.
                    await self._send(SessionRequest(
                        "abort", device.device_id,
                        {"round": ticket.nonce} if ticket.nonce else {}))
                except AuthenticationFailure:
                    pass
                ticket._settle(False, "no settlement before the verb "
                               "deadline", FailureKind.TIMEOUT.value)
            if ticket.accepted or retry_policy is None:
                return ticket
            if not retry_policy.should_retry(ticket.failure_kind, attempt):
                return ticket
            delay = retry_policy.delay(attempt)
            if delay > 0.0:
                await asyncio.sleep(delay)

    async def flush(self) -> None:
        """Force the server's pending micro-round to run now."""
        self._raise_if_failed(await self._call("flush"))

    async def poll(self) -> bool:
        """Deadline-flush the server's coalescer; ``True`` if it fired."""
        result = await self._call("poll")
        self._raise_if_failed(result)
        return result.detail.get("flushed") == b"1"

    async def spot_check(self, device: FleetDevice, k: int = 8,
                         threshold: float = 0.25) -> Tuple[float, bool]:
        """Burn ``k`` spot CRPs over the wire: ``(fractional_hd, ok)``."""
        opened = await self._call("spot", device.device_id, {
            "k": str(k).encode(), "threshold": repr(threshold).encode()})
        self._raise_if_failed(opened)
        rows = int(opened.detail["rows"])
        cols = int(opened.detail["cols"])
        challenges = np.frombuffer(opened.detail["challenges"],
                                   dtype=np.uint8).reshape(rows, cols)
        fresh = device.spot_responses(challenges)
        scored = await self._call("spot-submit", device.device_id, {
            "responses": np.asarray(fresh, dtype=np.uint8).tobytes()})
        self._raise_if_failed(scored)
        return (float(scored.detail["hd"]),
                scored.detail["accepted"] == b"1")

    async def authenticate_batch(
            self, devices: Sequence[FleetDevice]) -> BatchAuthReport:
        """One explicit wire round for a gateway-held device group.

        Mirrors :meth:`AuthService.authenticate_batch` (and therefore
        :meth:`BatchVerifier.authenticate_fleet`) semantics: respond,
        verify, confirm, finalize/abort — every message crossing the
        socket.
        """
        devices = list(devices)
        ids = [device.device_id for device in devices]
        nonces = await self.open_round_wire(ids)
        messages = respond_round(devices, nonces)
        report, confirmations = await self.verify_round_wire(
            [encode_message(message) for message in messages])
        by_id = {device.device_id: device for device in devices}
        for device_id, mac in list(confirmations.items()):
            device = by_id.get(device_id)
            if device is None:
                continue
            try:
                device.confirm(mac, nonces[device_id])
            except AuthenticationFailure as failure:
                report.record_failure(
                    device_id,
                    AuthenticationFailure(f"confirmation: {failure}",
                                          failure.kind))
                report.confirmations.pop(device_id, None)
                await self.abort(device_id, token=nonces[device_id])
                continue
            await self.finalize(device_id, token=nonces[device_id])
        return report

    # -- transport-level wire-round verbs (gateway mode) ------------------

    async def open_round_wire(
            self, device_ids: Sequence[str]) -> Dict[str, bytes]:
        """Open an explicit round; returns the per-device nonces."""
        if self._round is not None:
            raise RemoteAuthError("a gateway round is already open",
                                  FailureKind.SESSION_MISMATCH)
        if self._tickets:
            raise RemoteAuthError(
                "cannot open a gateway round with coalesced requests "
                "pending", FailureKind.SESSION_MISMATCH)
        round_ = _ClientRound(device_ids)
        self._round = round_
        try:
            result = await self._call("open-round", params={
                "ids": encode_fields([device_id.encode("utf-8")
                                      for device_id in device_ids])})
            self._raise_if_failed(result)
        except BaseException:
            self._round = None
            raise
        # Server FIFO: every CHALLENGE precedes the open-round RESULT.
        return dict(round_.nonces)

    async def verify_round_wire(
            self, frames: Sequence[bytes],
    ) -> Tuple[BatchAuthReport, Dict[str, bytes]]:
        """Ship RESPONSE frames, close the round; returns
        ``(report, {device_id: confirmation mac})``."""
        round_ = self._round
        if round_ is None:
            raise RemoteAuthError("no gateway round open",
                                  FailureKind.NO_SESSION)
        try:
            async with self._send_lock:
                for frame in frames:
                    write_frame(self._writer, frame)
                write_frame(self._writer, encode_message(
                    SessionRequest("close-round")))
                await self._writer.drain()
            report = await asyncio.wait_for(round_.report, self._timeout)
        finally:
            self._round = None
        return report, dict(round_.confirmations)

    async def finalize(self, device_id: str,
                       token: Optional[bytes] = None) -> None:
        """Ack a confirmation: commit the verifier's side of the roll.

        ``token`` is the round's challenge nonce; when given, the server
        only commits the round it names (stale acks are no-ops).
        """
        self._raise_if_failed(await self._call(
            "finalize", device_id, {"round": token} if token else {}))

    async def abort(self, device_id: str,
                    token: Optional[bytes] = None) -> None:
        """Refuse a confirmation: both sides stay on the old CRP."""
        self._raise_if_failed(await self._call(
            "abort", device_id, {"round": token} if token else {}))

    # -- admin verbs (wire 1.2+) ------------------------------------------

    async def metrics(self, fmt: str = "prometheus") -> str:
        """Scrape the server's metrics registry (wire 1.2+).

        ``fmt`` is ``"prometheus"`` (text exposition format) or
        ``"json"``; a 1.1 server refuses with
        ``FailureKind.UNSUPPORTED_VERSION``.
        """
        result = await self._call(
            "metrics", params={"format": fmt.encode("utf-8")})
        self._raise_if_failed(result)
        return result.detail.get("body", b"").decode("utf-8")

    async def trace(self) -> list:
        """Fetch the server's recent round spans as JSON (wire 1.2+)."""
        result = await self._call("trace")
        self._raise_if_failed(result)
        return json.loads(result.detail.get("body", b"[]").decode("utf-8"))

    # -- plumbing ---------------------------------------------------------

    async def _send(self, message) -> None:
        if self._closed:
            raise self._close_error or RemoteAuthError(
                "connection closed", FailureKind.CONNECTION_LOST)
        try:
            async with self._send_lock:
                write_frame(self._writer, encode_message(message))
                await self._writer.drain()
        except ConnectionError as exc:
            raise RemoteAuthError(f"connection lost: {exc}",
                                  FailureKind.CONNECTION_LOST) from exc

    def _expect(self, verb: str, device_id: str = "") -> asyncio.Future:
        future = asyncio.get_running_loop().create_future()
        self._waiters.setdefault((verb, device_id),
                                 deque()).append(future)
        return future

    async def _call(self, verb: str, device_id: str = "",
                    params: Optional[Dict[str, bytes]] = None,
                    ) -> SessionResult:
        future = self._expect(verb, device_id)
        await self._send(SessionRequest(verb, device_id, params or {}))
        return await asyncio.wait_for(future, self._timeout)

    @staticmethod
    def _raise_if_failed(result: SessionResult) -> None:
        if not result.ok:
            reason = result.detail.get("failure", b"").decode(
                "utf-8", "replace") or f"{result.verb} failed"
            kind = result.detail.get("kind", b"").decode("utf-8", "replace")
            raise RemoteAuthError(reason, kind)

    def _fail_all(self, error: AuthenticationFailure) -> None:
        self._close_error = self._close_error or error
        for queue in self._waiters.values():
            for future in queue:
                if not future.done():
                    future.set_exception(error)
        self._waiters.clear()
        for ticket in list(self._tickets.values()):
            ticket._settle(False, str(error),
                           getattr(error.kind, "value", None))
        self._tickets.clear()
        if self._round is not None and not self._round.report.done():
            self._round.report.set_exception(error)
        self._round = None

    # -- the background reader -------------------------------------------

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_frame(self._reader,
                                         max_bytes=self._max_frame_bytes)
                if frame is None:
                    self._fail_all(RemoteAuthError(
                        "server closed the connection",
                        FailureKind.CONNECTION_LOST))
                    return
                await self._handle_frame(decode_message(frame))
        except asyncio.CancelledError:
            raise
        except AuthenticationFailure as failure:
            self._fail_all(RemoteAuthError(str(failure), failure.kind))
        except (ConnectionError, OSError) as exc:
            self._fail_all(RemoteAuthError(f"connection lost: {exc}",
                                           FailureKind.CONNECTION_LOST))

    async def _handle_frame(self, message) -> None:
        if isinstance(message, AuthChallenge):
            await self._on_challenge(message)
        elif isinstance(message, AuthConfirmation):
            await self._on_confirmation(message)
        elif isinstance(message, BatchAuthReport):
            if self._round is not None and not self._round.report.done():
                self._round.report.set_result(message)
        elif isinstance(message, SessionResult):
            self._on_result(message)
        elif isinstance(message, SessionReject):
            raise CodecError(f"server rejected the session: "
                             f"{message.reason}", message.to_failure().kind)
        else:
            raise CodecError(
                f"unexpected {type(message).__name__} frame from server")

    async def _on_challenge(self, challenge: AuthChallenge) -> None:
        if (self._round is not None
                and challenge.device_id in self._round.expected):
            self._round.nonces[challenge.device_id] = challenge.nonce
            return
        ticket = self._tickets.get(challenge.device_id)
        if ticket is None:
            return                        # unsolicited — ignore
        if ticket.nonce is not None:
            # A second CHALLENGE for an attempt already answered — a
            # duplicated REQUEST opened a ghost round server-side.
            # Answering it would overwrite the device's pending mask
            # (and this ticket's nonce) while the first round's
            # CONFIRMATION is in flight; stay bound to the first round
            # and let the ghost time out.
            return
        ticket.nonce = challenge.nonce
        try:
            response = ticket.device.respond(challenge.nonce)
        except AuthenticationFailure as failure:
            self._finish_ticket(ticket, False, str(failure),
                                failure.kind.value)
            return
        await self._send_raw(encode_message(response))

    async def _on_confirmation(self,
                               confirmation: AuthConfirmation) -> None:
        if self._round is not None:
            self._round.confirmations[confirmation.device_id] = \
                confirmation.mac
            return
        ticket = self._tickets.get(confirmation.device_id)
        if ticket is None:
            return
        round_token = {"round": ticket.nonce} if ticket.nonce else {}
        try:
            ticket.device.confirm(confirmation.mac, ticket.nonce)
        except AuthenticationFailure as failure:
            # Two-phase commit: refuse the ack so the verifier stays on
            # the old CRP alongside this device.
            await self._send_raw(encode_message(
                SessionRequest("abort", confirmation.device_id,
                               round_token)))
            self._finish_ticket(ticket, False, f"confirmation: {failure}",
                                failure.kind.value)
            return
        await self._send_raw(encode_message(
            SessionRequest("finalize", confirmation.device_id,
                           round_token)))
        self._finish_ticket(ticket, True)

    def _on_result(self, result: SessionResult) -> None:
        if result.verb == "auth":
            ticket = self._tickets.get(result.device_id)
            if ticket is not None:
                self._finish_ticket(
                    ticket, False,
                    result.detail.get("failure", b"").decode("utf-8",
                                                             "replace"),
                    result.detail.get("kind", b"").decode("utf-8",
                                                          "replace"))
            return
        queue = self._waiters.get((result.verb, result.device_id))
        if queue:
            future = queue.popleft()
            if not queue:
                del self._waiters[(result.verb, result.device_id)]
            if not future.done():
                future.set_result(result)
        # else: an unawaited fire-and-forget ack (finalize/abort).

    def _finish_ticket(self, ticket: RemoteTicket, accepted: bool,
                       failure: Optional[str] = None,
                       failure_kind: Optional[str] = None) -> None:
        self._tickets.pop(ticket.device_id, None)
        ticket._settle(accepted, failure, failure_kind)

    async def _send_raw(self, frame: bytes) -> None:
        try:
            async with self._send_lock:
                write_frame(self._writer, frame)
                await self._writer.drain()
        except (ConnectionError, OSError):
            pass                          # the read loop reports the loss
