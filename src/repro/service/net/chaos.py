"""``ChaosTransport``: a seeded fault-injecting TCP proxy for the wire.

Chaos sits *between* an :class:`~repro.service.net.client.AuthClient`
and an :class:`~repro.service.net.server.AuthServer` as a frame-aware
proxy: it parses only the 4-byte length prefix of the wire framing
(:mod:`repro.service.net.stream`), never the codec payload, and injects
faults per whole frame, per leg:

* **drop** — the frame silently vanishes (a lost datagram);
* **delay** — the frame (and, FIFO, everything behind it on that leg)
  waits a uniform draw from ``delay_range_s`` before forwarding;
* **duplicate** — the frame arrives twice (a retransmit gone wrong);
* **truncate** — half the frame arrives, then the connection dies
  mid-frame (the receiver sees a ``CodecError``-grade torn read);
* **black-hole** — the leg goes permanently silent while the socket
  stays open (a half-dead link: writes still "succeed", nothing ever
  arrives).

Fault decisions come from a deterministic per-connection, per-leg
stream (:func:`repro.utils.rng.derive_rng` over
``(seed, "chaos", connection_index, leg)``), so a campaign replays the
same fault pattern for the same frame sequence.  Zero-probability
faults draw nothing — enabling one fault never perturbs another's
stream.  ``spare_handshake`` (default on) forwards the first frame of
each leg faithfully so HELLO/WELCOME always completes and chaos lands
on the protocol, not on connection establishment.

This is the wire-level twin of :class:`repro.fleet.lifecycle.FaultModel`,
which injects the same taxonomy of trouble into the in-process path.
"""

from __future__ import annotations

import asyncio
import struct
from dataclasses import dataclass
from typing import Optional, Set

from repro.obs.instrument import RegistryBackedCounters
from repro.utils.rng import derive_rng

__all__ = ["ChaosMetrics", "ChaosTransport", "LegChaos"]

_LENGTH = struct.Struct(">I")


@dataclass(frozen=True)
class LegChaos:
    """Fault probabilities for one direction of a proxied connection."""

    drop: float = 0.0
    delay: float = 0.0
    duplicate: float = 0.0
    truncate: float = 0.0
    blackhole: float = 0.0
    delay_range_s: tuple = (0.0005, 0.005)

    def __post_init__(self) -> None:
        for name in ("drop", "delay", "duplicate", "truncate", "blackhole"):
            value = float(getattr(self, name))
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be a probability in [0, 1], got {value}"
                )
        low, high = self.delay_range_s
        if not 0.0 <= float(low) <= float(high):
            raise ValueError(
                f"delay_range_s must be ordered and non-negative, got "
                f"{self.delay_range_s}"
            )


class ChaosMetrics(RegistryBackedCounters):
    """What the proxy actually did; the plain-int attribute API is
    unchanged, but the counts now live as ``repro_net_chaos_*`` series
    on a :class:`~repro.obs.MetricsRegistry`.

    .. deprecated:: 0.8.0
        Constructing ``ChaosMetrics()`` standalone is deprecated;
        attach a shared registry with
        :func:`repro.obs.instrument_chaos` instead.
    """

    _PREFIX = "repro_net_chaos_"
    _FIELDS = (
        "connections_opened", "connections_killed", "frames_forwarded",
        "frames_dropped", "frames_delayed", "frames_duplicated",
        "frames_truncated", "legs_blackholed",
    )
    _HELP = {
        "connections_opened": "Proxied connections accepted",
        "connections_killed": "Connections severed by kill_connections",
        "frames_forwarded": "Frames forwarded intact",
        "frames_dropped": "Frames silently dropped",
        "frames_delayed": "Frames held for a delay draw",
        "frames_duplicated": "Frames forwarded twice",
        "frames_truncated": "Frames torn mid-body (connection killed)",
        "legs_blackholed": "Legs gone permanently silent",
    }


class _TornFrame(Exception):
    """Internal: a truncate fault fired; kill the connection."""


class ChaosTransport:
    """A listening proxy that forwards frames to a target with faults.

    >>> chaos = ChaosTransport(server.host, server.port,
    ...                        uplink=LegChaos(drop=0.05), seed=7)
    >>> await chaos.start()
    >>> client = await AuthClient.connect(chaos.host, chaos.port)

    ``uplink`` faults client→server frames (requests, RESPONSEs, acks);
    ``downlink`` faults server→client frames (CHALLENGEs,
    CONFIRMATIONs, RESULTs).  :meth:`kill_connections` severs every
    live proxied connection at once — the transport face of a replica
    crash or a network partition.
    """

    def __init__(self, target_host: str, target_port: int, *,
                 uplink: Optional[LegChaos] = None,
                 downlink: Optional[LegChaos] = None,
                 seed: int = 0, spare_handshake: bool = True,
                 host: str = "127.0.0.1", port: int = 0):
        self.target_host = target_host
        self.target_port = int(target_port)
        self.uplink = uplink or LegChaos()
        self.downlink = downlink or LegChaos()
        self.seed = int(seed)
        self.spare_handshake = bool(spare_handshake)
        self._host = host
        self._port = int(port)
        self.metrics = ChaosMetrics._for_owner()
        self._server: Optional[asyncio.base_events.Server] = None
        self._handlers: Set[asyncio.Task] = set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._conn_counter = 0
        self._closing = False

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> "ChaosTransport":
        self._server = await asyncio.start_server(
            self._on_connection, self._host, self._port)
        return self

    @property
    def port(self) -> int:
        return self._server.sockets[0].getsockname()[1]

    @property
    def host(self) -> str:
        return self._server.sockets[0].getsockname()[0]

    async def __aenter__(self) -> "ChaosTransport":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.aclose()

    async def aclose(self) -> None:
        if self._closing:
            return
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.kill_connections()
        if self._handlers:
            await asyncio.gather(*list(self._handlers),
                                 return_exceptions=True)

    def kill_connections(self) -> int:
        """Sever every live proxied connection; returns how many."""
        killed = 0
        for writer in list(self._writers):
            try:
                writer.close()
            except RuntimeError:
                pass
            killed += 1
        for task in list(self._handlers):
            task.cancel()
        self.metrics.connections_killed += killed // 2  # two writers each
        return killed // 2

    # -- proxying ---------------------------------------------------------

    def _on_connection(self, reader: asyncio.StreamReader,
                       writer: asyncio.StreamWriter) -> None:
        if self._closing:
            writer.close()
            return
        task = asyncio.get_running_loop().create_task(
            self._handle(reader, writer))
        self._handlers.add(task)
        task.add_done_callback(self._handlers.discard)

    async def _handle(self, client_reader: asyncio.StreamReader,
                      client_writer: asyncio.StreamWriter) -> None:
        index = self._conn_counter
        self._conn_counter += 1
        self.metrics.connections_opened += 1
        try:
            target_reader, target_writer = await asyncio.open_connection(
                self.target_host, self.target_port)
        except (ConnectionError, OSError):
            client_writer.close()
            return
        self._writers.add(client_writer)
        self._writers.add(target_writer)
        up = asyncio.get_running_loop().create_task(self._pump(
            client_reader, target_writer, self.uplink,
            derive_rng(self.seed, "chaos", index, "up")))
        down = asyncio.get_running_loop().create_task(self._pump(
            target_reader, client_writer, self.downlink,
            derive_rng(self.seed, "chaos", index, "down")))
        try:
            # Either side closing (EOF, torn frame, error) tears down the
            # whole proxied connection, like a real middlebox would.
            await asyncio.wait({up, down},
                               return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in (up, down):
                task.cancel()
            await asyncio.gather(up, down, return_exceptions=True)
            for writer in (client_writer, target_writer):
                self._writers.discard(writer)
                try:
                    writer.close()
                except RuntimeError:
                    pass

    async def _pump(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter, leg: LegChaos,
                    rng) -> None:
        metrics = self.metrics
        first = True
        blackholed = False
        try:
            while True:
                header = await reader.readexactly(4)
                (length,) = _LENGTH.unpack(header)
                payload = await reader.readexactly(length)
                if blackholed:
                    continue                  # consume forever, forward nothing
                if first:
                    first = False
                    if self.spare_handshake:
                        writer.write(header + payload)
                        await writer.drain()
                        metrics.frames_forwarded += 1
                        continue
                # Zero-probability faults draw nothing, so enabling one
                # fault never shifts another fault's stream.
                if leg.blackhole and rng.random() < leg.blackhole:
                    blackholed = True
                    metrics.legs_blackholed += 1
                    continue
                if leg.drop and rng.random() < leg.drop:
                    metrics.frames_dropped += 1
                    continue
                if leg.truncate and rng.random() < leg.truncate:
                    writer.write(header + payload[: max(1, length // 2)])
                    await writer.drain()
                    metrics.frames_truncated += 1
                    raise _TornFrame()
                if leg.delay and rng.random() < leg.delay:
                    metrics.frames_delayed += 1
                    low, high = leg.delay_range_s
                    await asyncio.sleep(float(low)
                                        + float(rng.random())
                                        * (float(high) - float(low)))
                writer.write(header + payload)
                if leg.duplicate and rng.random() < leg.duplicate:
                    writer.write(header + payload)
                    metrics.frames_duplicated += 1
                await writer.drain()
                metrics.frames_forwarded += 1
        except (_TornFrame, asyncio.IncompleteReadError, ConnectionError,
                OSError):
            pass
