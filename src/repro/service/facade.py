"""The transport-agnostic authentication service facade.

:class:`AuthService` is the single supported entry point to the fleet
stack.  It wraps the enrollment registry, the batch verifier, the
request coalescer, and the fleet-stacked execution plane behind a small
verb set:

``provision``
    build + enroll a whole fleet from one :class:`FleetConfig`;
``enroll`` / ``revoke``
    fleet membership;
``authenticate`` / ``authenticate_batch``
    synchronous single/batch mutual authentication;
``submit`` / ``poll`` / ``flush``
    staged authentication through the micro-round coalescer;
``spot_check``
    Hamming-threshold spot checks against the enrollment pool;
``snapshot`` / ``restore`` / ``save`` / ``load``
    crash-safe persistence (registry, verifier, device state, config);
``open_round_wire`` / ``verify_round_wire``
    the byte-level round for transports, framed by the versioned codec
    (:mod:`repro.service.codec`).

Policies (:mod:`repro.service.policy`) hook every verb: rate limiting
denies requests before they burn a nonce, audit logging observes
lifecycle events, and a :class:`~repro.service.policy.RetryPolicy`
drives transient-failure retries.  Lifecycle simulation is just another
client: :meth:`AuthService.simulator` wires a
:class:`~repro.fleet.lifecycle.FleetSimulator` onto the same registry,
devices, and verifier.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.fleet.lifecycle import Adversary, FaultModel, FleetSimulator
from repro.fleet.registry import FleetRegistry
from repro.fleet.storage import make_backend
from repro.fleet.storage.base import adopt_scratch
from repro.fleet.storage.memory import MONOLITHIC_STATE_VERSION
from repro.fleet.verifier import (
    AuthResponse,
    BatchAuthReport,
    BatchVerifier,
    CoalescedAuth,
    FleetDevice,
    RoundCoalescer,
    SpotCheckReport,
    provisioning_challenge,
)
from repro.protocols.mutual_auth import AuthenticationFailure
from repro.puf.photonic_strong import photonic_strong_family
from repro.service.codec import (
    AuthChallenge,
    AuthConfirmation,
    CodecError,
    decode_message,
    encode_message,
)
from repro.service.config import FleetConfig
from repro.service.policy import (
    RetryPolicy,
    ServicePolicy,
    deny_reason,
    run_hooks,
)
from repro.utils.serialization import load_state, save_state

DeviceLike = Union[str, FleetDevice]


@dataclass
class AuthOutcome:
    """Settled result of one :meth:`AuthService.authenticate` call."""

    device_id: str
    accepted: bool
    failure: Optional[str] = None
    failure_kind: Optional[str] = None
    attempts: int = 1

    @classmethod
    def from_report(cls, device_id: str, report: BatchAuthReport,
                    attempts: int = 1) -> "AuthOutcome":
        if device_id in report.confirmations:
            return cls(device_id, True, attempts=attempts)
        return cls(
            device_id, False,
            failure=report.failures.get(device_id, "not part of the round"),
            failure_kind=report.failure_kinds.get(device_id),
            attempts=attempts,
        )


class AuthService:
    """Facade over registry + verifier + coalescer + execution plane."""

    def __init__(self, registry: FleetRegistry,
                 devices: Sequence[FleetDevice],
                 verifier: Optional[BatchVerifier] = None,
                 *, config: Optional[FleetConfig] = None,
                 policies: Sequence[ServicePolicy] = (),
                 clock: Callable[[], float] = time.monotonic):
        self.config = (config if config is not None
                       else FleetConfig(n_devices=max(1, len(devices))))
        self.registry = registry
        self._devices: Dict[str, FleetDevice] = {
            device.device_id: device for device in devices
        }
        self.verifier = verifier if verifier is not None else BatchVerifier(
            registry, seed=self.config.seed,
            clock_tolerance=self.config.clock_tolerance,
        )
        self.policies: List[ServicePolicy] = list(policies)
        self._clock = clock
        # Observability hook (repro.obs.ServiceObs via
        # instrument_service); None costs one attribute load per verb.
        self._obs = None
        self.coalescer = self._build_coalescer()
        self._owned_plane = None

    def _build_coalescer(self) -> RoundCoalescer:
        coalescer = RoundCoalescer(
            self.verifier,
            latency_budget_s=self.config.latency_budget_s,
            max_batch=self.config.max_batch,
            clock=self._clock,
        )
        coalescer._obs = getattr(self, "_obs", None)
        return coalescer

    # -- construction ------------------------------------------------------

    @classmethod
    def provision(cls, config: FleetConfig, *,
                  policies: Sequence[ServicePolicy] = (),
                  clock: Callable[[], float] = time.monotonic,
                  ) -> "AuthService":
        """Build, provision and enroll a whole fleet from one config.

        Every die shares the design of
        :func:`repro.puf.photonic_strong.photonic_strong_family`.  With
        ``config.engine.stacked`` (default), the family is compiled
        **once** into a fleet-stacked execution plane: provisioning
        responses and the optional spot-check pools are harvested as
        single stacked tensor passes, and every device is
        plane-attached so subsequent rounds run one pass each.
        ``config.engine.shard_workers`` additionally attaches a sharded
        multi-core executor to the plane.  The challenge streams, noise
        realisations, and resulting records are bit-identical to the
        per-die path (``stacked=False``).
        """
        family = photonic_strong_family(config.n_devices, seed=config.seed,
                                        **config.puf)
        registry = FleetRegistry(config.make_registry_backend())
        plane = (family.stack(backend=config.engine.backend)
                 if config.engine.stacked else None)
        if plane is not None and config.engine.shard_workers is not None:
            plane.shard(n_workers=config.engine.shard_workers)
        verifier = BatchVerifier(registry, seed=config.seed,
                                 clock_tolerance=config.clock_tolerance)
        if plane is None:
            devices: List[FleetDevice] = []
            for die in range(config.n_devices):
                device = FleetDevice(f"dev-{die:06d}", family.device(die))
                device.provision(config.seed)
                registry.enroll(device, n_spot_crps=config.n_spot_crps,
                                seed=config.seed)
                devices.append(device)
            return cls(registry, devices, verifier, config=config,
                       policies=policies, clock=clock)
        pufs = plane.pufs
        devices = [FleetDevice(f"dev-{die:06d}", pufs[die])
                   for die in range(config.n_devices)]
        # Manufacturing-time measurement of every die's enrollment CRP in
        # one stacked pass (same challenge streams and noise realisations
        # as the per-die FleetDevice.provision path).
        challenges = np.stack([
            provisioning_challenge(config.seed, device.device_id,
                                   pufs[0].challenge_bits)
            for device in devices
        ])
        responses = plane.evaluate(challenges[:, np.newaxis, :])[:, 0, :]
        for die, device in enumerate(devices):
            device.current_response = np.asarray(responses[die],
                                                 dtype=np.uint8)
            device.attach_plane(plane, die)
        registry.enroll_fleet(devices, n_spot_crps=config.n_spot_crps,
                              seed=config.seed)
        service = cls(registry, devices, verifier, config=config,
                      policies=policies, clock=clock)
        service._owned_plane = plane
        return service

    # -- fleet membership --------------------------------------------------

    def __len__(self) -> int:
        return len(self._devices)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._devices

    def device_ids(self) -> List[str]:
        return list(self._devices)

    @property
    def device_list(self) -> List[FleetDevice]:
        """Devices in enrollment order (the legacy tuple's list)."""
        return list(self._devices.values())

    @property
    def clock(self):
        """The monotonic clock this service (and its coalescer) reads.

        Transports that run their own flush timers — e.g.
        :class:`repro.service.net.AuthServer` — must schedule against
        this clock so latency budgets mean the same thing on both sides
        of the timer.
        """
        return self._clock

    def device(self, device_id: str) -> FleetDevice:
        try:
            return self._devices[device_id]
        except KeyError:
            raise AuthenticationFailure(
                f"device {device_id!r} is not held by this service",
                "not-enrolled",
            ) from None

    def _resolve(self, device: DeviceLike) -> FleetDevice:
        return self.device(device) if isinstance(device, str) else device

    def _resolve_all(self, devices: Optional[Sequence[DeviceLike]],
                     ) -> List[FleetDevice]:
        if devices is None:
            return self.device_list
        return [self._resolve(device) for device in devices]

    def enroll(self, device: FleetDevice,
               n_spot_crps: Optional[int] = None):
        """Enroll one device (provisions its first CRP if needed)."""
        if device.current_response is None:
            device.provision(self.config.seed)
        record = self.registry.enroll(
            device,
            n_spot_crps=(self.config.n_spot_crps if n_spot_crps is None
                         else n_spot_crps),
            seed=self.config.seed,
        )
        self._devices[device.device_id] = device
        run_hooks(self.policies, "on_enroll", device.device_id)
        if self._obs is not None:
            self._obs.on_enroll()
        return record

    def revoke(self, device_id: str):
        """Remove one device: registry record, verifier state, coalescer.

        A ticket the device still has pending inside the coalescer
        settles as a rejection at the next flush (it no longer poisons
        the micro-round it would have joined).
        """
        record = self.registry.revoke(device_id)
        self.verifier.evict(device_id)
        self._devices.pop(device_id, None)
        run_hooks(self.policies, "on_revoke", device_id)
        if self._obs is not None:
            self._obs.on_revoke()
        return record

    # -- authentication ----------------------------------------------------

    def authenticate(self, device: DeviceLike, *,
                     retry_policy: Optional[RetryPolicy] = None,
                     ) -> AuthOutcome:
        """One synchronous mutual-auth session for one device.

        With a :class:`~repro.service.policy.RetryPolicy`, transient
        failures (duplicate/replay interference) are retried up to its
        budget; deterministic failures settle immediately.
        """
        device = self._resolve(device)
        attempt = 0
        while True:
            attempt += 1
            report = self.authenticate_batch([device])
            outcome = AuthOutcome.from_report(device.device_id, report,
                                              attempts=attempt)
            if outcome.accepted or retry_policy is None:
                return outcome
            if not retry_policy.should_retry(outcome.failure_kind, attempt):
                return outcome

    def authenticate_batch(self,
                           devices: Optional[Sequence[DeviceLike]] = None,
                           ) -> BatchAuthReport:
        """One full mutual-auth round for many devices, in one call.

        Policy vetoes (rate limits) are applied first — a denied device
        lands in the report without burning a nonce or a plane pass —
        and the surviving devices run through the pipelined batch
        verifier exactly as one fleet round.
        """
        obs = self._obs
        started = self._clock() if obs is not None else 0.0
        devices = self._resolve_all(devices)
        denied: List[Tuple[str, AuthenticationFailure]] = []
        admitted: List[FleetDevice] = []
        for device in devices:
            failure = deny_reason(self.policies, device.device_id)
            if failure is None:
                admitted.append(device)
            else:
                denied.append((device.device_id, failure))
        if admitted:
            report = self.verifier.authenticate_fleet(admitted)
        else:
            report = BatchAuthReport()
        for device_id, failure in denied:
            report.record_failure(device_id, failure)
        run_hooks(self.policies, "after_round", report)
        if obs is not None:
            obs.on_round(report, self._clock() - started, "batch")
        return report

    def submit(self, device: DeviceLike) -> CoalescedAuth:
        """Queue one request into the staged micro-round coalescer.

        Policy vetoes settle the ticket immediately; admitted requests
        settle when the coalescer flushes (size, deadline via
        :meth:`poll`, or duplicate arrival).
        """
        device = self._resolve(device)
        failure = deny_reason(self.policies, device.device_id)
        if failure is not None:
            ticket = CoalescedAuth(device.device_id)
            ticket.done = True
            ticket.accepted = False
            ticket.failure = str(failure)
            ticket.failure_kind = failure.kind.value
            return ticket
        return self.coalescer.submit(device)

    def poll(self) -> Optional[BatchAuthReport]:
        """Flush the pending micro-round once its latency budget expires."""
        obs = self._obs
        started = self._clock() if obs is not None else 0.0
        report = self.coalescer.poll()
        if report is not None:
            run_hooks(self.policies, "after_round", report)
            if obs is not None:
                obs.on_round(report, self._clock() - started, "poll")
        return report

    def flush(self) -> Optional[BatchAuthReport]:
        """Flush the pending micro-round now."""
        obs = self._obs
        started = self._clock() if obs is not None else 0.0
        report = self.coalescer.flush()
        if report is not None:
            run_hooks(self.policies, "after_round", report)
            if obs is not None:
                obs.on_round(report, self._clock() - started, "flush")
        return report

    def spot_check(self, devices: Optional[Sequence[DeviceLike]] = None,
                   k: int = 8, threshold: float = 0.25) -> SpotCheckReport:
        """Burn ``k`` enrollment CRPs per device; one batched pass each."""
        return self.verifier.spot_check(self._resolve_all(devices), k=k,
                                        threshold=threshold)

    # -- wire-level round (transport integration) --------------------------

    def open_round_wire(self,
                        device_ids: Optional[Sequence[str]] = None,
                        ) -> Tuple[Dict[str, bytes], Dict[str, bytes]]:
        """Open a round for transports: ``(nonces, challenge frames)``.

        The frames are codec-encoded :class:`AuthChallenge` messages,
        one per device; the transport keeps the plain ``nonces`` mapping
        to hand back to :meth:`verify_round_wire`.
        """
        ids = list(device_ids) if device_ids is not None \
            else self.device_ids()
        nonces = self.verifier.open_round(ids)
        frames = {
            device_id: encode_message(AuthChallenge(device_id, nonce))
            for device_id, nonce in nonces.items()
        }
        return nonces, frames

    def verify_round_wire(self, frames: Sequence[bytes],
                          nonces: Dict[str, bytes],
                          ) -> Tuple[bytes, Dict[str, bytes]]:
        """Verify codec-framed device responses; emit framed replies.

        Returns ``(report frame, {device_id: confirmation frame})``.
        Frames that fail to decode as a
        :class:`~repro.fleet.verifier.AuthResponse` raise
        :class:`~repro.service.codec.CodecError` — a transport must not
        hand the protocol undecodable bytes.
        """
        messages: List[AuthResponse] = []
        for frame in frames:
            message = decode_message(frame)
            if not isinstance(message, AuthResponse):
                raise CodecError(
                    f"expected a RESPONSE frame, got "
                    f"{type(message).__name__}"
                )
            messages.append(message)
        obs = self._obs
        started = self._clock() if obs is not None else 0.0
        report = self.verifier.verify_round(messages, nonces)
        run_hooks(self.policies, "after_round", report)
        if obs is not None:
            obs.on_round(report, self._clock() - started, "wire")
        confirmations = {
            device_id: encode_message(AuthConfirmation(device_id, mac))
            for device_id, mac in report.confirmations.items()
        }
        return encode_message(report), confirmations

    # -- persistence -------------------------------------------------------

    def snapshot(self) -> dict:
        """Everything a restarted service needs, as one state capture."""
        state = self.registry.to_state()
        state["manifest"]["verifier"] = self.verifier.to_state()
        state["manifest"]["config"] = self.config.to_state()
        state["manifest"]["device_states"] = [
            self._devices[device_id].to_state()
            for device_id in sorted(self._devices)
        ]
        return state

    def restore(self, state: dict) -> None:
        """Verifier restart from a snapshot; physical devices untouched.

        In-flight sessions (verifier pendings, coalescer tickets) die
        with the old verifier; affected devices recover by plain retry
        under the two-phase commit.  Devices enrolled *after* the
        snapshot are dropped from the service's fleet view — the
        restored registry no longer knows them, and one stray unknown
        device would fail ``open_round`` for a whole default-scope
        round.  (A device the snapshot knows but this service no longer
        holds stays absent from rounds: physical devices cannot be
        conjured from state — rebuild the service around the hardware,
        as :meth:`load` does, to bring it back.)

        A pointer snapshot (out-of-core registry) re-attaches its shard
        directory at the snapshotted generation — post-snapshot rolls
        and burns are discarded, exactly like the monolithic capture.
        """
        config = (FleetConfig.from_state(state["manifest"]["config"])
                  if "config" in state["manifest"] else self.config)
        old_registry = self.registry
        self.registry = FleetRegistry.from_state(
            state,
            backend=self._registry_target_backend(state["manifest"], config),
        )
        adopt_scratch(old_registry.backend, self.registry.backend)
        if old_registry.backend is not self.registry.backend:
            old_registry.close()
        # A pointer re-attach starts from backend defaults; the resident
        # cap is config-level state, so carry it forward.
        if config.resident_records is not None \
                and hasattr(self.registry.backend, "resident_records"):
            self.registry.backend.resident_records = \
                int(config.resident_records)
        self.verifier = BatchVerifier.from_state(
            self.registry, state["manifest"]["verifier"]
        )
        self.config = config
        self._devices = {
            device_id: device
            for device_id, device in self._devices.items()
            if device_id in self.registry
        }
        self.coalescer = self._build_coalescer()
        if self._obs is not None:
            # The restored verifier and coalescer are new objects; keep
            # them on the same registry as the service they serve.
            self._obs.bind(self)

    @staticmethod
    def _registry_target_backend(manifest: dict, config: FleetConfig):
        """The backend a *monolithic* registry state loads into.

        Honors ``config.registry_backend`` so a legacy archive restores
        straight into out-of-core storage; always a scratch root (never
        ``config.storage_root`` — the named directory may already hold
        the live fleet's shards).  Pointer states re-attach their own
        directory, so they take no target (None).
        """
        if manifest.get("version") != MONOLITHIC_STATE_VERSION \
                or config.registry_backend == "memory":
            return None
        return make_backend(config.registry_backend,
                            resident_records=config.resident_records)

    def save(self, path: Optional[str] = None) -> str:
        """Persist :meth:`snapshot` as one ``.npz`` archive."""
        path = path if path is not None else self.config.snapshot_path
        if path is None:
            raise ValueError(
                "no path given and config.snapshot_path is unset"
            )
        state = self.snapshot()
        return save_state(path, state["manifest"], state["arrays"])

    @classmethod
    def load(cls, path: str, devices: Sequence[FleetDevice],
             *, policies: Sequence[ServicePolicy] = (),
             clock: Callable[[], float] = time.monotonic) -> "AuthService":
        """Rebuild a service from :meth:`save` around the physical devices."""
        manifest, arrays = load_state(path)
        state = {"manifest": manifest, "arrays": arrays}
        config = (FleetConfig.from_state(manifest["config"])
                  if "config" in manifest else None)
        registry = FleetRegistry.from_state(
            state,
            backend=(cls._registry_target_backend(manifest, config)
                     if config is not None else None),
        )
        verifier = BatchVerifier.from_state(registry, manifest["verifier"])
        if config is None:
            config = FleetConfig(n_devices=max(1, len(registry)))
        return cls(registry, devices, verifier, config=config,
                   policies=policies, clock=clock)

    # -- lifecycle simulation and teardown ---------------------------------

    def simulator(self, faults: Optional[FaultModel] = None,
                  adversaries: Sequence[Adversary] = (),
                  **kwargs) -> FleetSimulator:
        """A lifecycle simulator driving *this* service's fleet.

        Fault-injection campaigns are just another client of the
        facade: the simulator shares the registry, devices, and
        verifier, so campaign outcomes are the service's outcomes.
        (Delegates to :meth:`FleetSimulator.from_service` — the wiring
        exists exactly once.)
        """
        return FleetSimulator.from_service(self, faults=faults,
                                           adversaries=adversaries, **kwargs)

    def close(self) -> None:
        """Shut down the owned plane's executor and the registry backend."""
        if self._owned_plane is not None:
            self._owned_plane.close_executor()
        self.registry.close()

    def __enter__(self) -> "AuthService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
