"""Legacy setup shim: the sandbox lacks the `wheel` package, so PEP 660
editable installs fail; `pip install -e . --no-use-pep517` uses this file."""

from setuptools import setup

setup()
