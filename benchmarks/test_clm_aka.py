"""CLM-AKA: EKE-based AKA vs plain HSC-IoT (Sec. IV).

The paper: EKE "protects against most possible attacks to the CRP while
providing perfect forward security... Note that this approach is
computationally more expensive."  This bench quantifies the trade:
messages, bytes, device time, and the security properties gained.
"""

import numpy as np
import pytest

from repro.attacks.brute_force import (
    online_guess_success_probability,
    response_entropy_bits,
)
from repro.protocols.aka import AkaError, establish_session
from repro.protocols.mutual_auth import provision, run_session
from repro.system.soc import DeviceSoC, SoCConfig


@pytest.fixture(scope="module")
def setup():
    soc = DeviceSoC(SoCConfig(seed=170, memory_size=8 * 1024))
    device, verifier = provision(soc, seed=170)
    return soc, device, verifier


def test_clm_aka_cost_comparison(benchmark, table_printer, setup):
    soc, device, verifier = setup
    hsc_record = run_session(device, verifier)
    assert hsc_record.success
    session = benchmark.pedantic(
        establish_session, args=(device.current_response, soc),
        kwargs={"seed": 170}, rounds=1, iterations=1,
    )
    table_printer(
        "CLM-AKA — HSC-IoT update vs EKE-based AKA",
        ["quantity", "HSC-IoT", "EKE AKA"],
        [
            ("messages", 3, session.messages),
            ("bytes exchanged",
             hsc_record.bytes_device_to_verifier
             + hsc_record.bytes_verifier_to_device,
             session.bytes_exchanged),
            ("modular exponentiations", 0, session.modexp_total),
            ("device time (ms)",
             f"{hsc_record.device_time_s * 1e3:.2f}",
             f"{session.device_time_s * 1e3:.2f}"),
            ("forward secrecy", "no", "yes"),
            ("offline CRP guessing", "MAC-limited", "impossible (EKE)"),
        ],
    )
    # The paper's "computationally more expensive" claim, quantified.
    assert session.device_time_s > 10 * hsc_record.device_time_s
    assert session.bytes_exchanged > hsc_record.bytes_device_to_verifier


def test_clm_aka_forward_secrecy(benchmark, setup):
    __, device, __ = setup
    a = establish_session(device.current_response, seed=171, session_id=0)
    b = establish_session(device.current_response, seed=171, session_id=1)
    assert a.session_key != b.session_key


def test_clm_aka_wrong_crp_rejected(benchmark, setup):
    __, device, __ = setup
    wrong = 1 - device.current_response
    with pytest.raises(AkaError):
        establish_session(device.current_response, seed=172,
                          device_response=wrong)


def test_clm_aka_online_guessing_bounded(benchmark, table_printer):
    # The CRP is low-entropy by crypto standards; EKE reduces the attacker
    # to online guessing, whose success probability this table bounds.
    rng = np.random.default_rng(173)
    corpus = rng.integers(0, 2, size=(500, 32), dtype=np.uint8)
    entropy = response_entropy_bits(corpus)
    rows = [
        (attempts, f"{online_guess_success_probability(entropy, attempts):.2e}")
        for attempts in (1, 10, 1000)
    ]
    table_printer(
        f"CLM-AKA — online guessing success (CRP entropy {entropy:.1f} bits)",
        ["attempts", "success probability"],
        rows,
    )
    assert online_guess_success_probability(entropy, 1000) < 1e-3
