"""ABL-ENC: ablation — challenge encryption in front of the photonic PUF [30].

DESIGN.md ablation 1: does pre-whitening the challenges through a
weak-PUF-keyed Feistel permutation measurably reduce the modeling
attacker's advantage?  Accuracy alone is misleading when the response bit
is biased, so the table reports advantage over the constant-guess
baseline.
"""

import pytest

from repro.attacks.modeling import (
    LogisticRegressionAttack,
    MLPAttack,
    attack_curve,
    collect_crps,
    raw_features,
)
from repro.puf import ChallengeEncryptedPUF, PhotonicStrongPUF


def _advantage(puf, attacker_factory, n_train=2000, n_test=400):
    point = attack_curve(puf, attacker_factory, [n_train], n_test=n_test)[0]
    __, labels = collect_crps(puf, 400, seed=777)
    baseline = max(labels.mean(), 1 - labels.mean())
    if baseline >= 1.0:
        return point.accuracy, baseline, 0.0
    advantage = max(0.0, (point.accuracy - baseline) / (1.0 - baseline))
    return point.accuracy, baseline, advantage


@pytest.fixture(scope="module")
def targets():
    plain = PhotonicStrongPUF(64, response_bits=8, seed=180)
    protected = ChallengeEncryptedPUF(plain, key=b"weak-puf-derived-key")
    return plain, protected


def test_abl_enc_lr(benchmark, table_printer, targets):
    plain, protected = targets
    rows = []
    results = {}
    for name, puf in (("plain photonic", plain),
                      ("challenge-encrypted", protected)):
        accuracy, baseline, advantage = _advantage(
            puf, lambda: LogisticRegressionAttack(raw_features)
        )
        results[name] = advantage
        rows.append((name, f"{accuracy:.3f}", f"{baseline:.3f}",
                     f"{advantage:.3f}"))
    table_printer(
        "ABL-ENC — LR attack with/without challenge encryption (2000 CRPs)",
        ["target", "accuracy", "baseline", "advantage"],
        rows,
    )
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # The [30] effect: encryption must collapse the attacker's advantage.
    # (0.25 absolute bound: the advantage estimate carries ~0.05 of
    # sampling noise at 400 test CRPs.)
    assert results["challenge-encrypted"] < results["plain photonic"] / 2
    assert results["challenge-encrypted"] < 0.25


def test_abl_enc_mlp(benchmark, table_printer, targets):
    plain, protected = targets
    rows = []
    results = {}
    for name, puf in (("plain photonic", plain),
                      ("challenge-encrypted", protected)):
        accuracy, baseline, advantage = _advantage(
            puf, lambda: MLPAttack(raw_features, hidden=32, epochs=150),
            n_train=1500,
        )
        results[name] = advantage
        rows.append((name, f"{accuracy:.3f}", f"{baseline:.3f}",
                     f"{advantage:.3f}"))
    table_printer(
        "ABL-ENC — MLP attack with/without challenge encryption (1500 CRPs)",
        ["target", "accuracy", "baseline", "advantage"],
        rows,
    )
    assert results["challenge-encrypted"] <= results["plain photonic"]
