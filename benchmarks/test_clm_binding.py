"""CLM-BIND: composite PIC+ASIC response binds the two chips (Sec. IV).

The tamper-protection claim: the composite response is a function of both
dies, so replacing either the photonic chip or the driving ASIC with a
counterfeit changes the response and is detected.
"""

import numpy as np
import pytest

from repro.puf import CompositePUF, PhotonicStrongPUF, SRAMPUF


@pytest.fixture(scope="module")
def assembly():
    rng = np.random.default_rng(160)
    challenges = rng.integers(0, 2, size=(30, 64), dtype=np.uint8)
    pic = {i: PhotonicStrongPUF(64, response_bits=32, seed=160, die_index=i)
           for i in range(2)}
    asic = {i: SRAMPUF(n_cells=512, seed=161, die_index=i) for i in range(2)}
    return challenges, pic, asic


def test_clm_bind_matrix(benchmark, table_printer, assembly):
    challenges, pic, asic = assembly
    genuine = CompositePUF(pic[0], asic[0])
    reference = benchmark.pedantic(
        genuine.evaluate_batch, args=(challenges,),
        kwargs={"measurement": 0}, rounds=1, iterations=1,
    )
    combos = {
        "genuine PIC + genuine ASIC": CompositePUF(pic[0], asic[0]),
        "counterfeit PIC": CompositePUF(pic[1], asic[0]),
        "counterfeit ASIC": CompositePUF(pic[0], asic[1]),
        "both counterfeit": CompositePUF(pic[1], asic[1]),
    }
    rows = []
    distances = {}
    for name, puf in combos.items():
        response = puf.evaluate_batch(challenges, measurement=0)
        distance = float(np.mean(response != reference))
        distances[name] = distance
        rows.append((name, f"{distance:.4f}",
                     "accept" if distance < 0.2 else "reject"))
    table_printer(
        "CLM-BIND — composite response distance to the enrolled assembly",
        ["assembly", "fractional HD", "verdict (thr 0.2)"],
        rows,
    )
    assert distances["genuine PIC + genuine ASIC"] < 0.05
    assert distances["counterfeit PIC"] > 0.2
    assert distances["counterfeit ASIC"] > 0.2
    assert distances["both counterfeit"] > 0.2


def test_clm_bind_stability_across_reassembly(benchmark, assembly):
    challenges, pic, asic = assembly
    a = CompositePUF(pic[0], asic[0]).evaluate_batch(challenges, measurement=0)
    b = CompositePUF(pic[0], asic[0]).evaluate_batch(challenges, measurement=0)
    assert np.array_equal(a, b)
