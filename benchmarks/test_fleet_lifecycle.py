"""FLEET-LC: lifecycle-campaign smoke — fault tolerance under load.

Runs a compressed hostile campaign (drops on every message leg, replay +
tamper + corruption adversaries, churn, one mid-campaign verifier
crash/restore) and writes the aggregated :class:`CampaignStats` to
``BENCH_campaign.json`` next to ``BENCH_engine.json``, so CI archives the
fault-tolerance trajectory PR-over-PR.  The hard gate is the scheme's
core invariant: zero desynchronized devices, ever.
"""

import json

from repro.fleet import (
    CorruptionAdversary,
    FaultModel,
    ReplayAdversary,
    TamperAdversary,
    photonic_device_factory,
)
from repro.service import AuthService, FleetConfig

CAMPAIGN_JSON = "BENCH_campaign.json"
FAST_PUF = dict(challenge_bits=32, n_stages=4, response_bits=16)


def test_campaign_fault_tolerance_smoke(table_printer):
    fleet_size, rounds = 16, 20
    service = AuthService.provision(FleetConfig(
        n_devices=fleet_size, seed=2024, puf=FAST_PUF,
        fault_model=FaultModel(
            request_drop=0.02, response_drop=0.05, confirmation_drop=0.2,
            max_retries=4, enroll_prob=0.2, revoke_prob=0.1,
            min_fleet_size=fleet_size // 2,
        ),
    ))
    simulator = service.simulator(
        adversaries=[ReplayAdversary(probability=0.3),
                     TamperAdversary(probability=0.05, factor=1.4),
                     CorruptionAdversary(probability=0.1)],
        device_factory=photonic_device_factory(seed=2024, **FAST_PUF),
    )
    stats = simulator.run_campaign(rounds, crash_after_round=rounds // 2)

    table_printer(
        "FLEET-LC — lifecycle campaign under faults + adversaries",
        ["metric", "value"],
        [
            ("rounds", stats.rounds),
            ("session attempts", stats.attempts),
            ("authenticated", stats.authenticated),
            ("retries", stats.retries),
            ("dropped req/resp/conf",
             f"{stats.dropped_requests}/{stats.dropped_responses}"
             f"/{stats.dropped_confirmations}"),
            ("adversary messages", stats.adversary_messages),
            ("failures by kind", dict(sorted(stats.failures_by_kind.items()))),
            ("enrolled/revoked", f"{stats.enrolled}/{stats.revoked}"),
            ("verifier restores", stats.restores),
            ("desynchronized devices", stats.desynchronized),
            ("auths/s", f"{stats.auths_per_sec:.0f}"),
        ],
    )

    with open(CAMPAIGN_JSON, "w") as handle:
        json.dump(stats.to_json(), handle, indent=2, sort_keys=True)
        handle.write("\n")

    assert stats.restores == 1
    assert stats.authenticated > 0
    assert stats.desynchronized == 0, "rolling CRPs desynchronized"
