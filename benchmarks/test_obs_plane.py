"""OBS: the observability plane's acceptance lane.

Three gates, all blocking in CI (results land in ``BENCH_obs.json``):

* **Exact reconciliation over the wire** — a 64-device net campaign
  runs with metrics on, the registry is scraped through the ``metrics``
  verb (wire 1.2), and the scraped Prometheus totals must equal the
  :class:`BatchAuthReport` totals *exactly* — counters are bookkeeping,
  not sampling.
* **Noninterference under replicated chaos** — the same 64-device
  hostile campaign (chaos legs on every replica, one mid-round primary
  kill) runs instrumented (metrics + tracing) and uninstrumented, and
  every byte of durable authentication state must be identical.  The
  instrumented group's scrape must reconcile with the registry's own
  session counts: every CRP roll is a ``finalized`` or ``recovered``
  increment, no more, no less.
* **Overhead ceiling** — a fleet-stacked authentication round with a
  live registry + tracer must cost no more than
  ``OBS_OVERHEAD_CEILING`` (default 1.03x) of the uninstrumented
  round.
"""

import asyncio
import json
import os
import time

from repro.obs import (
    MetricsRegistry,
    RoundTracer,
    instrument_replica_group,
    instrument_server,
    instrument_service,
    instrument_verifier,
    parse_prometheus,
)
from repro.service import AuthService, FleetConfig, HAConfig
from repro.service.ha import HAAuthClient, KillEvent, ReplicaGroup, \
    run_replicated_campaign
from repro.service.net import AuthClient, AuthServer, LegChaos, NetConfig

DEVICES = int(os.environ.get("OBS_BENCH_DEVICES", "64"))
ROUNDS = int(os.environ.get("OBS_BENCH_ROUNDS", "2"))
CHAOS_SEED = int(os.environ.get("OBS_BENCH_CHAOS_SEED", "3309"))
OBS_OVERHEAD_CEILING = float(os.environ.get("OBS_OVERHEAD_CEILING", "1.03"))
OBS_JSON = "BENCH_obs.json"
FLEET_JSON = "BENCH_fleet.json"

# noise_mw=0.0: durable state must be a pure function of (seed, rounds)
# so the instrumented and uninstrumented campaigns are comparable bit
# for bit regardless of retry timing.
PUF = dict(challenge_bits=32, n_stages=4, response_bits=16, noise_mw=0.0)
NET = NetConfig(response_timeout_s=1.0, latency_budget_s=0.01)
CHAOS_LEG = LegChaos(drop=0.03, delay=0.10, duplicate=0.03)

_results = {}


def _record(**kwargs) -> None:
    _results.update({k: (float(f"{v:.4g}") if isinstance(v, float) else v)
                     for k, v in kwargs.items()})
    payload = dict(sorted(_results.items()))
    payload["devices"] = DEVICES
    payload["rounds"] = ROUNDS
    payload["overhead_ceiling"] = OBS_OVERHEAD_CEILING
    with open(OBS_JSON, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def fleet_config(**kwargs):
    return FleetConfig(n_devices=DEVICES, seed=3309, puf=PUF,
                       latency_budget_s=0.01, **kwargs)


def durable_state(registry, devices):
    """The bytes both campaigns must agree on exactly."""
    state = {}
    for device in devices:
        record = registry.record(device.device_id)
        state[device.device_id] = {
            "device": device.to_state(),
            "record_response": record.current_response.tobytes(),
            "record_sessions": int(record.sessions),
            "spot_used": record.crp_used.tobytes(),
        }
    return state


def test_wire_scrape_reconciles_exactly(table_printer):
    """Net campaign with metrics on; scraped totals == report totals."""

    async def main():
        service = AuthService.provision(fleet_config())
        registry = MetricsRegistry()
        instrument_service(service, registry,
                           tracer=RoundTracer(capacity=512))
        accepted = 0
        async with AuthServer(service, NET) as server:
            instrument_server(server, registry)
            async with AuthClient.connect(
                    "127.0.0.1", server.port,
                    response_timeout_s=30.0) as client:
                for _ in range(ROUNDS):
                    report = await client.authenticate_batch(
                        service.device_list)
                    assert report.failures == {}
                    accepted += report.n_accepted
                await asyncio.sleep(0.05)  # settle async finalizes
                started = time.perf_counter()
                scrape = await client.metrics()
                scrape_s = time.perf_counter() - started
                spans = await client.trace()
        service.close()
        return accepted, scrape, scrape_s, spans

    accepted, scrape, scrape_s, spans = asyncio.run(main())
    parsed = parse_prometheus(scrape)
    assert accepted == DEVICES * ROUNDS

    # Exact reconciliation: bookkeeping, not sampling.
    assert parsed[("repro_auth_finalized_total", ())] == float(accepted)
    assert parsed[("repro_auth_results_total",
                   (("result", "accepted"),))] == float(accepted)
    assert parsed.get(("repro_auth_aborted_total", ()), 0.0) == 0.0
    # The socket plane lives in the same registry: the explicit wire
    # rounds crossed exactly one connection, several verbs per round.
    assert parsed[("repro_net_server_connections_opened_total", ())] == 1.0
    assert parsed[("repro_net_server_requests_total", ())] >= \
        float(ROUNDS * 2)

    # The tracer saw every coalesced round, finalized.
    assert spans and spans[-1]["status"] == "finalized"

    table_printer(
        "OBS wire scrape (metrics verb, wire 1.2)",
        ["metric", "value"],
        [("devices", DEVICES),
         ("rounds", ROUNDS),
         ("accepted (== scraped finalized)", accepted),
         ("scrape bytes", len(scrape)),
         ("scraped series", len(parsed)),
         ("retained spans", len(spans)),
         ("scrape ms", f"{scrape_s * 1e3:.2f}")])
    _record(wire_accepted=accepted, scrape_bytes=len(scrape),
            scrape_series=len(parsed), scrape_s=scrape_s,
            spans_retained=len(spans))


async def _chaos_campaign(instrumented: bool):
    """One hostile replicated campaign; optionally fully instrumented."""
    group = await ReplicaGroup.provision(
        fleet_config(ha=HAConfig(n_replicas=3, lease_timeout_s=0.4,
                                 heartbeat_interval_s=0.05)),
        net_config=NET, uplink=CHAOS_LEG, downlink=CHAOS_LEG,
        chaos_seed=CHAOS_SEED)
    try:
        obs = None
        if instrumented:
            obs = instrument_replica_group(
                group, tracer=RoundTracer(capacity=1024))
        report = await run_replicated_campaign(
            group, n_rounds=ROUNDS,
            kill_schedule=[KillEvent(0, DEVICES // 3, 0)],
            verb_timeout_s=2.0)
        await asyncio.sleep(0.1)  # settle fire-and-forget finalizes
        scrape = None
        if instrumented:
            async with HAAuthClient(group.endpoints,
                                    verb_timeout_s=2.0) as client:
                scrape = await client.scrape()
        state = durable_state(group.registry, group.devices)
        nonces = group.assert_nonces_unique()
        return report, state, nonces, scrape, obs
    finally:
        await group.aclose()


def test_replicated_chaos_campaign_unperturbed(table_printer):
    """Metrics + tracing on vs off: durable state bit-identical."""
    started = time.perf_counter()
    report, state, nonces, scrape, obs = asyncio.run(
        _chaos_campaign(instrumented=True))
    instrumented_s = time.perf_counter() - started

    started = time.perf_counter()
    bare_report, bare_state, bare_nonces, _, _ = asyncio.run(
        _chaos_campaign(instrumented=False))
    bare_s = time.perf_counter() - started

    # Both campaigns were genuinely hostile and converged.
    for rep in (report, bare_report):
        assert rep.kills == [(0, 0)], "the mid-round kill must fire"
        assert rep.promotions >= 1
        assert rep.failures == {}
        assert rep.accepted == DEVICES * (ROUNDS + 1)
        assert rep.desynchronized == []
        assert rep.commit_log_unresolved == 0
        assert rep.nonces_unique

    # The tentpole invariant: instrumentation is invisible in every
    # durable byte.
    assert set(state) == set(bare_state)
    for device_id in state:
        assert state[device_id] == bare_state[device_id], (
            f"{device_id}: durable state diverged between the "
            "instrumented and uninstrumented campaigns")

    # Scraped totals reconcile with the registry's own bookkeeping:
    # every CRP roll is exactly one finalized or recovered increment.
    parsed = parse_prometheus(scrape)
    total_sessions = sum(entry["record_sessions"]
                         for entry in state.values())
    scraped_rolls = parsed[("repro_auth_finalized_total", ())] + \
        parsed.get(("repro_auth_recovered_total", ()), 0.0)
    assert scraped_rolls == float(total_sessions)
    assert parsed[("repro_ha_promotions_total", ())] == \
        float(report.promotions)
    assert len(obs.tracer) > 0

    table_printer(
        "OBS replicated chaos campaign (1 mid-round kill)",
        ["metric", "value"],
        [("devices", DEVICES),
         ("rounds (incl. reconcile)", ROUNDS + 1),
         ("accepted", report.accepted),
         ("promotions", report.promotions),
         ("nonces issued (all unique)", nonces),
         ("session rolls (== scraped)", total_sessions),
         ("retained spans", len(obs.tracer)),
         ("instrumented seconds", f"{instrumented_s:.2f}"),
         ("uninstrumented seconds", f"{bare_s:.2f}")])
    _record(chaos_accepted=report.accepted,
            chaos_promotions=report.promotions,
            chaos_nonces=nonces, chaos_session_rolls=total_sessions,
            chaos_instrumented_s=instrumented_s, chaos_bare_s=bare_s,
            chaos_state_bit_identical=True)


def test_overhead_ceiling(table_printer):
    """A live registry + tracer costs <= OBS_OVERHEAD_CEILING per round."""
    repeats_min, repeats_max = 15, 60

    def provision():
        service = AuthService.provision(fleet_config())
        verifier, devices = service.verifier, service.device_list
        verifier.authenticate_fleet(devices)  # warm kernels + MAC states
        return service, verifier, devices

    def timed_round(verifier, devices):
        start = time.perf_counter()
        report = verifier.authenticate_fleet(devices)
        elapsed = time.perf_counter() - start
        assert report.n_accepted == len(devices)
        return elapsed

    base = provision()
    instrumented = provision()
    instrument_verifier(instrumented[1], MetricsRegistry(),
                        tracer=RoundTracer(capacity=512))
    # Interleave the samples: machine noise (frequency scaling, page
    # cache, a background task) hits both planes alike, so best-of is
    # a paired comparison rather than two disjoint measurement windows.
    # Best-of-N only ever decreases toward the true floor, so sampling
    # may stop as soon as the gate converges; a loaded machine gets
    # more draws instead of a false failure.
    base_s = obs_s = float("inf")
    samples = 0
    for samples in range(1, repeats_max + 1):
        base_s = min(base_s, timed_round(base[1], base[2]))
        obs_s = min(obs_s, timed_round(instrumented[1], instrumented[2]))
        if samples >= repeats_min and obs_s / base_s <= OBS_OVERHEAD_CEILING:
            break
    base[0].close()
    instrumented[0].close()

    ratio = obs_s / base_s
    fleet_ref = None
    if os.path.exists(FLEET_JSON):
        with open(FLEET_JSON) as handle:
            fleet_ref = json.load(handle).get("round_stacked_s")

    table_printer(
        "OBS per-round overhead (fleet-stacked, best of %d)" % samples,
        ["metric", "value"],
        [("devices", DEVICES),
         ("uninstrumented round ms", f"{base_s * 1e3:.3f}"),
         ("instrumented round ms", f"{obs_s * 1e3:.3f}"),
         ("overhead ratio", f"{ratio:.4f}"),
         ("ceiling", OBS_OVERHEAD_CEILING),
         ("BENCH_fleet round_stacked_s", fleet_ref)])
    _record(round_base_s=base_s, round_obs_s=obs_s,
            overhead_ratio=ratio,
            fleet_round_ref_s=fleet_ref if fleet_ref else 0.0)
    assert ratio <= OBS_OVERHEAD_CEILING, (
        f"instrumented round costs {ratio:.3f}x the uninstrumented "
        f"round (ceiling {OBS_OVERHEAD_CEILING}x)")
