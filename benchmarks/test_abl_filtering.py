"""ABL-FILT: ablation — threshold filter on/off under noise and temperature.

DESIGN.md ablation 2: the Fig. 3 filter costs CRPs; what does it buy?
Compares the retained-bit error rate with and without the enrollment
filter across noise scales and temperatures, and reports the CRP budget
spent.  Also compares against the complementary techniques (majority
voting, dark-bit masking) from :mod:`repro.quality.compensation`.
"""

import numpy as np

from repro.puf import PUFEnvironment, ROPUF, SRAMPUF
from repro.quality.compensation import DarkBitMask, MajorityVoteReader
from repro.quality.filtering import ThresholdFilter


def _filtered_error(puf, threshold, env, n_measurements=6):
    margins = puf.all_margins(measurement=0)
    mask = ThresholdFilter(threshold).select(margins)
    if mask.sum() == 0:
        return float("nan"), 0.0
    reference = (margins > 0).astype(np.uint8)[mask]
    errors = []
    for m in range(1, n_measurements):
        bits = (puf.all_margins(env, measurement=m) > 0).astype(np.uint8)[mask]
        errors.append(np.mean(bits != reference))
    return float(np.mean(errors)), float(mask.mean())


def test_abl_filt_noise_sweep(benchmark, table_printer):
    puf = ROPUF(n_ros=1024, seed=190, sigma_noise=6e-4)
    sigma = np.abs(puf.all_margins(measurement=0)).std()
    rows = []
    for noise_scale in (1.0, 3.0, 6.0):
        env = PUFEnvironment(noise_scale=noise_scale)
        raw_error, __ = _filtered_error(puf, 0.0, env)
        filtered_error, surviving = _filtered_error(puf, 0.6 * sigma, env)
        rows.append((f"{noise_scale:.0f}x", f"{raw_error:.4f}",
                     f"{filtered_error:.4f}", f"{surviving:.2f}"))
    table_printer(
        "ABL-FILT — RO PUF error rate, filter off vs on (0.6 sigma)",
        ["noise scale", "unfiltered error", "filtered error",
         "surviving CRPs"],
        rows,
    )
    benchmark.pedantic(_filtered_error, args=(puf, 0.6 * sigma,
                                              PUFEnvironment()),
                       rounds=1, iterations=1)
    # The filter must help at every noise level where errors exist.
    for __, raw, filtered, surviving in rows:
        if float(raw) > 0:
            assert float(filtered) <= float(raw)
        assert 0.1 < float(surviving) < 1.0


def test_abl_filt_temperature_sweep(benchmark, table_printer):
    puf = ROPUF(n_ros=1024, seed=191, sigma_noise=6e-4)
    sigma = np.abs(puf.all_margins(measurement=0)).std()
    rows = []
    for temperature in (0.0, 25.0, 65.0):
        env = PUFEnvironment(temperature_c=temperature)
        raw_error, __ = _filtered_error(puf, 0.0, env)
        filtered_error, surviving = _filtered_error(puf, 0.6 * sigma, env)
        rows.append((f"{temperature:.0f} C", f"{raw_error:.4f}",
                     f"{filtered_error:.4f}", f"{surviving:.2f}"))
    table_printer(
        "ABL-FILT — temperature robustness, filter off vs on",
        ["temperature", "unfiltered error", "filtered error",
         "surviving CRPs"],
        rows,
    )
    for __, raw, filtered, _s in rows:
        assert float(filtered) <= float(raw) + 1e-9


def test_abl_filt_vs_other_techniques(benchmark, table_printer):
    # The same reliability goal through the three mechanisms of Sec. II-B
    # / Fig. 1: margin filtering, majority voting, dark-bit masking.
    puf = SRAMPUF(n_cells=8192, seed=192, sigma_noise_mv=10.0)
    quiet = PUFEnvironment(noise_scale=0.0)
    truth = puf.power_up(quiet, measurement=0)

    raw_error = np.mean([
        np.mean(puf.power_up(measurement=m) != truth) for m in range(1, 6)
    ])
    voted = MajorityVoteReader(puf, n_votes=9).read(base_measurement=50)
    voted_error = float(np.mean(voted != truth))
    mask = DarkBitMask.enroll(puf, n_measurements=9)
    masked_errors = np.mean([
        np.mean(mask.apply(puf.power_up(measurement=m))
                != mask.stable_reference())
        for m in range(60, 65)
    ])
    rows = [
        ("raw read", f"{raw_error:.4f}", "1.00"),
        ("majority vote (9 reads)", f"{voted_error:.4f}", "1.00"),
        ("dark-bit mask", f"{masked_errors:.4f}",
         f"{mask.n_stable / puf.n_cells:.2f}"),
    ]
    table_printer(
        "ABL-FILT — alternative reliability techniques (SRAM PUF)",
        ["technique", "bit error rate", "bit budget"],
        rows,
    )
    assert voted_error < raw_error
    assert masked_errors < raw_error
