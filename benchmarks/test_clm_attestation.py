"""CLM-ATT: attestation timing and evasion detection (Sec. III-B).

Claims reproduced:

* the >= 5 Gb/s pPUF "guarantees that the constant challenge-and-response
  generation never slows down the protocol" — per-step PUF time is far
  below per-step hash time, so the walk is hash-bound;
* strict temporal constraints catch the memory-relocation evasion, while
  the chained hash catches naive infection;
* attestation wall-clock scales linearly with memory size.
"""


from repro.protocols.attestation import AttestationDevice, AttestationVerifier
from repro.system.soc import DeviceSoC, SoCConfig


def _setup(memory_size: int, seed: int = 140):
    soc = DeviceSoC(SoCConfig(seed=seed, memory_size=memory_size))
    verifier = AttestationVerifier(
        soc.memory.image(), soc.strong_puf,
        chunk_size=soc.memory.chunk_size, soc_model=soc,
    )
    return soc, verifier


def test_clm_att_timing_vs_memory_size(benchmark, table_printer):
    rows = []
    for kib in (4, 8, 16, 32):
        soc, verifier = _setup(kib * 1024)
        request = verifier.new_request(timestamp=kib)
        report = AttestationDevice(soc).attest(request)
        verdict = verifier.verify(request, report)
        assert verdict.accepted
        rows.append((f"{kib} KiB", report.n_chunks,
                     f"{report.elapsed_s * 1e3:.3f}",
                     f"{verdict.expected_time_s * 1.1 * 1e3:.3f}"))
    table_printer(
        "CLM-ATT — honest attestation time vs memory size",
        ["memory", "chunks walked", "device time (ms)", "budget (ms)"],
        rows,
    )
    # Linear scaling: 32 KiB takes ~8x the 4 KiB time.
    t4 = float(rows[0][2])
    t32 = float(rows[3][2])
    assert 6.0 < t32 / t4 < 10.0

    soc, verifier = _setup(8 * 1024)
    request = verifier.new_request(timestamp=999)
    benchmark.pedantic(AttestationDevice(soc).attest, args=(request,),
                       rounds=1, iterations=1)


def test_clm_att_puf_never_stalls(benchmark, table_printer):
    soc, __ = _setup(8 * 1024)
    puf_step = soc.strong_puf.interrogation_time_s()
    hash_step = soc.cpu.hash_time(soc.memory.chunk_size + 64)
    table_printer(
        "CLM-ATT — per-step costs (pPUF runs concurrently with the hash)",
        ["operation", "time (us)"],
        [
            ("pPUF challenge-response (25 Gb/s)", f"{puf_step * 1e6:.4f}"),
            ("SHA-256 of one chunk", f"{hash_step * 1e6:.4f}"),
        ],
    )
    # The >= 5 Gb/s claim: PUF time is a tiny fraction of the hash time.
    assert puf_step < hash_step / 100


def test_clm_att_detection_matrix(benchmark, table_printer):
    from repro.system.memory import RelocatingCompromisedMemory

    rows = []
    soc, verifier = _setup(8 * 1024, seed=141)
    request = verifier.new_request(timestamp=1)
    report = AttestationDevice(soc).attest(request)
    verdict = verifier.verify(request, report)
    rows.append(("honest", verdict.hash_ok, verdict.time_ok,
                 verdict.accepted))

    soc, verifier = _setup(8 * 1024, seed=142)
    soc.memory.infect(address=0, length=1024)
    request = verifier.new_request(timestamp=2)
    report = AttestationDevice(soc).attest(request)
    verdict = verifier.verify(request, report)
    rows.append(("naive infection", verdict.hash_ok, verdict.time_ok,
                 verdict.accepted))

    soc, verifier = _setup(8 * 1024, seed=143)
    compromised = RelocatingCompromisedMemory(
        soc.memory.image(), chunk_size=soc.memory.chunk_size,
        infected_chunks=set(range(8)),
    )
    request = verifier.new_request(timestamp=3)
    report = AttestationDevice(soc, memory=compromised).attest(request)
    verdict = verifier.verify(request, report)
    rows.append(("relocation", verdict.hash_ok, verdict.time_ok,
                 verdict.accepted))

    table_printer(
        "CLM-ATT — detection matrix",
        ["device state", "hash check", "time check", "accepted"],
        rows,
    )
    assert rows[0][3] is True
    assert rows[1][1] is False and rows[1][3] is False
    assert rows[2][2] is False and rows[2][3] is False
