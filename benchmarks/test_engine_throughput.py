"""ENG-THR: compiled engine throughput vs the loop-based propagation path.

The acceptance bar for the compiled engine (see README / CI): >= 10x
speedup over loop-based propagation at batch >= 256, with scalar/compiled
numerical agreement pinned by the equivalence tests.  The loop path is the
pre-engine workflow — one `slot_energies` interrogation per CRP, each call
rebuilding every mixing matrix and ring filter and running Python loops
over channels — which is exactly what the protocol stack used to pay per
authentication.
"""

import time

import numpy as np
import pytest

from repro.service import AuthService, FleetConfig
from repro.puf import PhotonicStrongPUF

BATCH = 256


@pytest.fixture(scope="module")
def puf():
    return PhotonicStrongPUF(challenge_bits=64, response_bits=32, seed=77)


@pytest.fixture(scope="module")
def challenges(puf):
    rng = np.random.default_rng(77)
    return rng.integers(0, 2, size=(BATCH, puf.challenge_bits), dtype=np.uint8)


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_engine_throughput_speedup_at_batch_256(table_printer, puf, challenges):
    # Loop path: the per-CRP interrogation loop, measured on a slice and
    # scaled (it is linear in batch by construction — one independent
    # propagate call per challenge); one full-slice pass keeps the bench
    # inside its CI budget.
    loop_slice = 32
    loop_time = _best_of(
        lambda: [puf.slot_energies(row, measurement=0, compiled=False)
                 for row in challenges[:loop_slice]],
        repeats=2,
    ) * (BATCH / loop_slice)
    puf.compiled_mesh()  # compile once; repeated calls hit the cache
    compiled_time = _best_of(
        lambda: puf.slot_energies_batch(challenges, measurement=0, compiled=True),
        repeats=3,
    )
    # The batched loop path (einsum over batch, Python loops over channels,
    # operators rebuilt per call) for reference.
    batched_loop_time = _best_of(
        lambda: puf.slot_energies_batch(challenges[:64], measurement=0,
                                        compiled=False),
        repeats=2,
    ) * (BATCH / 64)
    speedup = loop_time / compiled_time
    table_printer(
        "ENG-THR — compiled engine vs loop propagation (batch = 256)",
        ["path", "wall time", "CRPs/s", "speedup"],
        [
            ("per-CRP loop (pre-engine)", f"{loop_time * 1e3:.0f} ms",
             f"{BATCH / loop_time:.0f}", "1.0x"),
            ("batched loop path", f"{batched_loop_time * 1e3:.0f} ms",
             f"{BATCH / batched_loop_time:.0f}",
             f"{loop_time / batched_loop_time:.1f}x"),
            ("compiled engine", f"{compiled_time * 1e3:.0f} ms",
             f"{BATCH / compiled_time:.0f}", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= 10.0, (
        f"compiled engine is only {speedup:.1f}x faster than the loop path"
    )


def test_engine_throughput_scales_with_batch(table_printer, puf):
    rng = np.random.default_rng(7)
    puf.compiled_mesh()
    rows = []
    for batch in (16, 64, 256):
        block = rng.integers(0, 2, size=(batch, puf.challenge_bits),
                             dtype=np.uint8)
        elapsed = _best_of(
            lambda block=block: puf.evaluate_batch(block, measurement=0),
            repeats=2,
        )
        rows.append((batch, f"{elapsed * 1e3:.1f} ms",
                     f"{batch / elapsed:.0f} CRP/s"))
    table_printer(
        "ENG-THR — compiled batch scaling",
        ["batch", "wall time", "throughput"],
        rows,
    )
    # Throughput must not collapse as batches grow (amortised fixed cost).
    assert float(rows[-1][2].split()[0]) >= 0.5 * float(rows[0][2].split()[0])


def test_fleet_auth_throughput(table_printer):
    fleet_size = 6
    service = AuthService.provision(FleetConfig(
        n_devices=fleet_size, seed=1001, n_spot_crps=64,
        puf=dict(challenge_bits=32, n_stages=4, response_bits=16),
    ))
    devices, verifier = service.device_list, service.verifier
    start = time.perf_counter()
    rounds = 4
    for _ in range(rounds):
        report = verifier.authenticate_fleet(devices)
        assert report.n_accepted == fleet_size
    mutual_elapsed = time.perf_counter() - start
    mutual_rate = fleet_size * rounds / mutual_elapsed

    start = time.perf_counter()
    spot = verifier.spot_check(devices, k=32)
    spot_elapsed = time.perf_counter() - start
    assert spot.n_accepted == fleet_size
    spot_rate = fleet_size * 32 / spot_elapsed

    table_printer(
        "ENG-THR — fleet batch authentication",
        ["mode", "auths", "wall time", "auths/s"],
        [
            ("mutual-auth rounds", fleet_size * rounds,
             f"{mutual_elapsed * 1e3:.0f} ms", f"{mutual_rate:.0f}"),
            ("spot-check (batched CRPs)", fleet_size * 32,
             f"{spot_elapsed * 1e3:.0f} ms", f"{spot_rate:.0f}"),
        ],
    )
    assert mutual_rate > 0 and spot_rate > 0
