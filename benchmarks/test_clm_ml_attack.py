"""CLM-ML: modeling attacks — arbiter falls, photonic resists (Sec. IV).

The paper's argument: arbiter/RO PUFs have "a relatively small number of
components and variables" and fall to ML modeling [28], while photonic
PUFs gain resistance from their much larger number of interacting
variables.  This bench sweeps training-set sizes and reports the
accuracy-vs-data curve per target, judged against each target's
constant-guess baseline.
"""

import numpy as np
import pytest

from repro.attacks.modeling import (
    LogisticRegressionAttack,
    attack_curve,
    collect_crps,
    raw_features,
)
from repro.puf import ArbiterPUF, PhotonicStrongPUF, XORArbiterPUF
from repro.puf.arbiter import parity_features

TRAIN_SIZES = [100, 500, 2000]


def _baseline(puf) -> float:
    __, labels = collect_crps(puf, 400, seed=900)
    return float(max(labels.mean(), 1 - labels.mean()))


def _advantage(accuracy: float, baseline: float) -> float:
    """Attack advantage over the constant guess, normalised to [0,1]."""
    if baseline >= 1.0:
        return 0.0
    return max(0.0, (accuracy - baseline) / (1.0 - baseline))


def _most_balanced_bit(puf, n_bits: int) -> int:
    """Pick the response-bit index with uniformity closest to 0.5.

    Per-bit biases vary per die; attacking a heavily biased bit says
    nothing about modeling resistance, so the comparison uses the most
    balanced one.
    """
    rng = np.random.default_rng(901)
    challenges = rng.integers(0, 2, size=(300, puf.challenge_bits),
                              dtype=np.uint8)
    responses = puf.evaluate_batch(challenges, measurement=0)
    means = responses.mean(axis=0)
    return int(np.argmin(np.abs(means - 0.5)))


@pytest.fixture(scope="module")
def curves():
    photonic = PhotonicStrongPUF(64, response_bits=8, seed=122)
    photonic_bit = _most_balanced_bit(photonic, 8)
    targets = {
        "arbiter": (ArbiterPUF(64, seed=120), parity_features, 0),
        "xor4-arbiter": (XORArbiterPUF(64, k=4, seed=121), parity_features, 0),
        "photonic-strong": (photonic, raw_features, photonic_bit),
    }
    results = {}
    for name, (puf, features, bit) in targets.items():
        points = attack_curve(
            puf, lambda f=features: LogisticRegressionAttack(f),
            TRAIN_SIZES, n_test=400, response_bit=bit,
        )
        __, labels = collect_crps(puf, 400, seed=900, response_bit=bit)
        baseline = float(max(labels.mean(), 1 - labels.mean()))
        results[name] = (points, baseline)
    return results


def test_clm_ml_attack_curves(benchmark, table_printer, curves):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # data cached
    rows = []
    for name, (points, baseline) in curves.items():
        for point in points:
            rows.append((name, point.n_train, f"{point.accuracy:.3f}",
                         f"{baseline:.3f}",
                         f"{_advantage(point.accuracy, baseline):.3f}"))
    table_printer(
        "CLM-ML — LR modeling attack accuracy vs training CRPs",
        ["target", "train CRPs", "accuracy", "const baseline", "advantage"],
        rows,
    )


def test_clm_ml_arbiter_falls(benchmark, curves):
    points, baseline = curves["arbiter"]
    assert points[-1].accuracy > 0.95  # the [28] result


def test_clm_ml_photonic_resists_more(benchmark, curves):
    arbiter_points, arbiter_base = curves["arbiter"]
    photonic_points, photonic_base = curves["photonic-strong"]
    arbiter_adv = _advantage(arbiter_points[-1].accuracy, arbiter_base)
    photonic_adv = _advantage(photonic_points[-1].accuracy, photonic_base)
    # The paper's comparative claim: the photonic target yields a smaller
    # modeling advantage at equal attacker budget.
    assert photonic_adv < arbiter_adv


def test_clm_ml_xor_resists_linear_attack(benchmark, curves):
    points, baseline = curves["xor4-arbiter"]
    assert _advantage(points[-1].accuracy, baseline) < 0.2
