"""CLM-ECC: stable keys from noisy weak-PUF responses (Fig. 1's ECC block).

Sweeps the injected bit-error rate and reports the key-recovery failure
rate for three post-processing configurations (repetition-only, BCH-only,
concatenated), demonstrating why the concatenated code is the default.
"""

import numpy as np
import pytest

from repro.crypto.bch import BCHCode
from repro.crypto.fuzzy_extractor import (
    ConcatenatedCode,
    FuzzyExtractor,
    KeyRecoveryError,
)
from repro.crypto.repetition import RepetitionCode


class _RepetitionOnly:
    """Adapter giving the repetition code the (k, n) code interface."""

    def __init__(self, k: int = 64, n_rep: int = 5):
        self._inner = RepetitionCode(n_rep)
        self.k = k
        self.n = k * n_rep

    def encode(self, message):
        return self._inner.encode(message)

    def decode(self, received):
        return self._inner.decode(received)


def _failure_rate(extractor, error_rate, n_trials=30, seed=0):
    rng = np.random.default_rng(seed)
    response = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
    result = extractor.generate(response)
    failures = 0
    for __ in range(n_trials):
        noisy = response ^ (rng.random(response.size) < error_rate
                            ).astype(np.uint8)
        try:
            if extractor.reproduce(noisy, result.helper) != result.key:
                failures += 1
        except KeyRecoveryError:
            failures += 1
    return failures / n_trials


@pytest.fixture(scope="module")
def extractors():
    return {
        "repetition x5": FuzzyExtractor(_RepetitionOnly(64, 5)),
        "BCH(127,64,t=10)": FuzzyExtractor(BCHCode(7, 10)),
        "BCH(127,64) + rep x3": FuzzyExtractor(
            ConcatenatedCode(bch_m=7, bch_t=10, repetition=3)
        ),
    }


def test_clm_ecc_failure_rate_sweep(benchmark, table_printer, extractors):
    error_rates = [0.01, 0.05, 0.10, 0.15]
    rows = []
    for name, extractor in extractors.items():
        failure_by_rate = [
            _failure_rate(extractor, rate, seed=hash(name) % 1000)
            for rate in error_rates
        ]
        rows.append((name, extractor.response_bits,
                     *(f"{f:.2f}" for f in failure_by_rate)))
    table_printer(
        "CLM-ECC — key-recovery failure rate vs raw bit-error rate",
        ["code", "PUF bits", *(f"BER {r:.0%}" for r in error_rates)],
        rows,
    )
    benchmark.pedantic(
        _failure_rate, args=(extractors["BCH(127,64) + rep x3"], 0.05),
        kwargs={"n_trials": 5}, rounds=1, iterations=1,
    )
    # The concatenated code must dominate at realistic PUF error rates.
    concat_fail = _failure_rate(extractors["BCH(127,64) + rep x3"], 0.05)
    assert concat_fail == 0.0


def test_clm_ecc_helper_data_not_secret(benchmark, extractors):
    extractor = extractors["BCH(127,64) + rep x3"]
    rng = np.random.default_rng(5)
    response = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
    result = extractor.generate(response)
    # An attacker holding only helper data cannot reproduce the key.
    guess = rng.integers(0, 2, extractor.response_bits, dtype=np.uint8)
    try:
        key = extractor.reproduce(guess, result.helper)
        assert key != result.key
    except KeyRecoveryError:
        pass
