"""FIG4: the mutual-authentication session of Fig. 4.

Measures what the figure describes: the three-message exchange, the CRP
update on both sides, the message/byte budget, and the scalability
argument of Sec. III-A (constant verifier storage vs. the CRP-database
baseline).  Also checks the protocol's attack resistance inline.
"""

import numpy as np
import pytest

from repro.attacks.protocol_attacks import replay_attack, tamper_attack
from repro.protocols.mutual_auth import (
    CRPDatabaseVerifier,
    provision,
    run_session,
)
from repro.system.channel import Channel
from repro.system.soc import DeviceSoC, SoCConfig


@pytest.fixture(scope="module")
def parties():
    soc = DeviceSoC(SoCConfig(seed=80, memory_size=8 * 1024))
    return provision(soc, seed=80)


def test_fig4_session_loop(benchmark, table_printer, parties):
    device, verifier = parties
    channel = Channel(seed=80)

    def one_session():
        return run_session(device, verifier, channel=channel)

    record = benchmark.pedantic(one_session, rounds=5, iterations=1)
    assert record.success
    rows = [
        ("messages per session", 3, "Fig. 4 (request, m||mac, mac')"),
        ("device -> verifier bytes", record.bytes_device_to_verifier, "m||mac"),
        ("verifier -> device bytes", record.bytes_verifier_to_device,
         "nonce + mac'"),
        ("verifier storage (B)", verifier.storage_bytes,
         "ONE CRP + references"),
        ("CRPs stored verifier-side", 1, "vs a whole database [16]"),
    ]
    table_printer("FIG4 — mutual authentication session budget",
                  ["quantity", "value", "note"], rows)


def test_fig4_crp_rolls_every_session(benchmark, parties):
    device, verifier = parties
    seen = set()
    for __ in range(6):
        record = run_session(device, verifier)
        assert record.success
        key = device.current_response.tobytes()
        assert key not in seen, "CRP must be fresh every session"
        seen.add(key)


def test_fig4_scalability_vs_database(benchmark, table_printer):
    session_budgets = [8, 32, 128]
    rows = []
    for budget in session_budgets:
        soc = DeviceSoC(SoCConfig(seed=81, memory_size=8 * 1024))
        database = CRPDatabaseVerifier(soc, n_crps=budget, seed=81)
        soc2 = DeviceSoC(SoCConfig(seed=81, memory_size=8 * 1024))
        __, verifier = provision(soc2, seed=81)
        rows.append((budget, verifier.storage_bytes, database.storage_bytes))
    table_printer(
        "FIG4 — verifier storage: HSC-IoT vs CRP database",
        ["sessions supported", "HSC-IoT bytes", "database bytes"],
        rows,
    )
    # The paper's claim: HSC-IoT storage is constant, database grows.
    assert rows[0][1] == rows[-1][1]
    assert rows[-1][2] > rows[0][2] * 10


def test_fig4_attack_resistance(benchmark, parties):
    device, verifier = parties
    assert not replay_attack(device, verifier).succeeded
    assert not tamper_attack(device, verifier).succeeded
