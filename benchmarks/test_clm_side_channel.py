"""CLM-SC: side channels — electronic PUFs leak, photonic PUFs don't (Sec. IV).

Two claims from the paper:

* power/RF analysis extracts key information from electronic PUFs ([9],
  [24]) while photonic waveguides confine the signal to ~100 nm, leaving
  only the much weaker PIC/ASIC interface;
* SRAM PUFs are exposed to the remanence-decay side channel [27], while
  the photonic response vanishes in < 100 ns.
"""

import numpy as np
import pytest

from repro.attacks.remanence import (
    photonic_remanence_attempt,
    sram_remanence_sweep,
)
from repro.attacks.side_channel import compare_technologies, simulate_traces
from repro.attacks.side_channel import ELECTRONIC_LEAKAGE
from repro.puf import PhotonicStrongPUF, SRAMPUF


@pytest.fixture(scope="module")
def responses():
    return np.random.default_rng(130).integers(0, 2, size=(500, 32),
                                               dtype=np.uint8)


def test_clm_sc_power_analysis(benchmark, table_printer, responses):
    reports = benchmark.pedantic(compare_technologies, args=(responses,),
                                 rounds=1, iterations=1)
    table_printer(
        "CLM-SC — CPA against PUF evaluation power traces (500 traces)",
        ["technology", "peak correlation", "HW recovery", "chance"],
        [(r.technology, f"{r.correlation:.3f}",
          f"{r.hw_recovery_accuracy:.3f}", f"{r.chance_level:.3f}")
         for r in reports],
    )
    electronic, photonic = reports
    assert electronic.correlation > 0.8
    assert photonic.correlation < 0.3
    assert electronic.hw_recovery_accuracy > photonic.hw_recovery_accuracy


def test_clm_sc_trace_kernel(benchmark, responses):
    benchmark(simulate_traces, responses, ELECTRONIC_LEAKAGE)


def test_clm_sc_remanence(benchmark, table_printer):
    sram = SRAMPUF(n_cells=4096, seed=131)
    secret = np.random.default_rng(131).integers(0, 2, 4096, dtype=np.uint8)
    sram_rows = [
        (f"SRAM, {p.off_time_s:.2f} s off", f"{p.secret_recovery:.3f}")
        for p in sram_remanence_sweep(sram, secret,
                                      [0.01, 0.05, 0.2, 1.0, 10.0])
    ]
    photonic = PhotonicStrongPUF(32, response_bits=8, seed=132)
    challenge = np.random.default_rng(132).integers(0, 2, 32, dtype=np.uint8)
    photonic_rows = [
        (f"photonic, {delay:.0e} s delay",
         f"{photonic_remanence_attempt(photonic, challenge, delay):.3f}")
        for delay in (0.0, 1e-9, 1e-7)
    ]
    table_printer(
        "CLM-SC — remanence decay: stored-secret recovery rate",
        ["attack point", "recovery"],
        sram_rows + photonic_rows,
    )
    # SRAM leaks at short off-times; the photonic response lifetime is
    # < 100 ns (Sec. IV), so anything beyond that is chance.
    first = sram_remanence_sweep(sram, secret, [0.01])[0]
    assert first.secret_recovery > 0.9
    assert photonic.response_lifetime_s() < 100e-9
    late = photonic_remanence_attempt(photonic, challenge, 1e-6)
    assert late < 0.9  # no better than noisy guessing on 8 bits
